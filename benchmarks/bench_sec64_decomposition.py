"""Section 6.4 — dual decomposition for instances larger than one substrate.

Splits min-cut instances into two overlapping subproblems, coordinates them
with subgradient multiplier updates, and compares the stitched cut against
the global minimum.  This is the flow the paper proposes for graphs that
exceed the substrate's capacity; each subproblem would be solved by
reprogramming the same physical crossbar.
"""

from __future__ import annotations

from repro.bench import format_table
from repro.decomposition import DualDecompositionSolver, partition_with_overlap
from repro.flows import min_cut
from repro.graph import grid_graph, rmat_graph


def _run_decomposition():
    instances = [
        ("grid 4x8", grid_graph(4, 8, capacity=2.0, seed=2, capacity_jitter=0.3)),
        ("rmat 40", rmat_graph(40, 140, seed=9, max_capacity=20)),
        ("rmat 80", rmat_graph(80, 280, seed=10, max_capacity=20)),
    ]
    rows = []
    for name, network in instances:
        exact = min_cut(network).cut_value
        partition = partition_with_overlap(network)
        result = DualDecompositionSolver(max_iterations=60).solve(network)
        rows.append(
            {
                "instance": name,
                "|V|": network.num_vertices,
                "overlap vertices": len(partition.overlap),
                "exact min cut": round(exact, 2),
                "decomposed cut": round(result.cut_value, 2),
                "gap": f"{(result.cut_value - exact) / exact:.1%}" if exact else "0%",
                "iterations": result.iterations,
                "agreed": "yes" if result.converged else "no",
            }
        )
    return rows


def test_sec64_dual_decomposition(benchmark):
    rows = benchmark.pedantic(_run_decomposition, rounds=1, iterations=1)

    print()
    print(format_table(rows, title="Section 6.4: dual-decomposition min-cut"))

    for row in rows:
        assert row["decomposed cut"] >= row["exact min cut"] - 1e-6
        assert row["decomposed cut"] <= row["exact min cut"] * 1.8 + 1e-6
