"""Fig. 10b — convergence time and relative error on *sparse* R-MAT graphs.

Same comparison as Fig. 10a but in the sparse regime (|E| proportional to
|V|).  The paper reports a slightly larger average error for sparse graphs
(5.4 % versus 3.7 %), because the flow has to traverse longer paths.
"""

from __future__ import annotations

from repro.bench import Fig10Runner, fig10_sparse_suite, format_table
from conftest import bench_scale


def _run_sparse_suite():
    runner = Fig10Runner(transient_vertex_limit=40)
    workloads = fig10_sparse_suite(scale=bench_scale())
    return runner.run_suite(workloads)


def test_fig10b_sparse(benchmark):
    rows = benchmark.pedantic(_run_sparse_suite, rounds=1, iterations=1)

    print()
    print(format_table([row.as_dict() for row in rows],
                       title="Fig. 10b (sparse R-MAT): regenerated series"))

    errors = [row.relative_error for row in rows]
    mean_error = sum(errors) / len(errors)
    print(f"mean relative error: {mean_error:.2%} (paper: 5.4% for sparse graphs)")

    assert all(row.speedup_10g > 1.0 for row in rows)
    assert all(row.convergence_time_50g_s <= row.convergence_time_10g_s * 1.05 for row in rows)
    assert mean_error < 0.10
    assert rows[-1].speedup_10g >= rows[0].speedup_10g
