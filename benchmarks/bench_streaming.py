"""Streaming benchmark: warm incremental re-solves vs cold solves.

Measures, on Fig. 10-style R-MAT instances receiving successive 5%-of-edges
capacity-update batches (via the shared :mod:`repro.bench.streaming`
harness):

* **classical** — cold Dinic of each updated snapshot vs the incremental
  engine's warm repair/augmentation through a ``StreamingSession``;
* **analog** — cold compile + DC solve vs the warm re-solve (clamp-source
  re-programming + warm-started diode iteration against the cached base
  factorisation, diode flips as SMW rank-k corrections).

Thresholds (asserted whenever the instance is big enough that the per-push
floor — one maximality-certificate BFS / one RHS assembly — does not
dominate, i.e. >= 600 edges at the default ``REPRO_BENCH_SCALE`` of 0.25):
warm must be >= 3x faster than cold in *both* layers, classical warm/cold
flow values must agree to 1e-9, and analog warm/cold values to 1e-4 (the
substrate's bleed-leakage bound for degenerate-optimum instances — see
``docs/architecture.md``).  Instances of 400..600 edges still must show a
>= 1.5x win; tiny smoke scales only print the table.
"""

from __future__ import annotations

from repro.bench import format_table, measure_streaming_class
from conftest import bench_scale


def _as_row(regime: str, metrics: dict) -> dict:
    return {
        "instance": f"{regime}:{metrics['workload']}",
        "|E|": metrics["num_edges"],
        "delta": metrics["delta_edges"],
        "cls_cold_ms": round(metrics["classical_cold_s"] * 1e3, 3),
        "cls_warm_ms": round(metrics["classical_warm_s"] * 1e3, 3),
        "cls_speedup": round(metrics["classical_speedup"], 2),
        "cls_diff": float(f"{metrics['classical_value_diff']:.2e}"),
        "ana_cold_ms": round(metrics["analog_cold_s"] * 1e3, 2),
        "ana_warm_ms": round(metrics["analog_warm_s"] * 1e3, 2),
        "ana_speedup": round(metrics["analog_speedup"], 2),
        "ana_diff": float(f"{metrics['analog_value_diff']:.2e}"),
        "refacts": metrics["analog_warm_refactorizations"],
    }


def _run_suite():
    scale = bench_scale()
    return [
        _as_row(regime, measure_streaming_class(regime, scale, steps=5, reducer=min))
        for regime in ("dense", "sparse")
    ]


def test_streaming_warm_resolve(benchmark):
    rows = benchmark.pedantic(_run_suite, rounds=1, iterations=1)

    print()
    print(format_table(rows, title="Warm incremental re-solve vs cold solve"))

    for row in rows:
        if row["|E|"] < 400:
            continue  # smoke scales only exercise the machinery
        # Exactness: the classical pair are both exact algorithms.
        assert row["cls_diff"] <= 1e-9, (
            f"{row['instance']}: incremental flow diverged from cold solve "
            f"({row['cls_diff']:.2e} relative)"
        )
        # The analog pair solve the same circuit; degenerate interior optima
        # bound the agreement by the bleed leakage, not machine precision.
        assert row["ana_diff"] <= 1e-4, (
            f"{row['instance']}: warm analog re-solve diverged from cold "
            f"({row['ana_diff']:.2e} relative)"
        )
        floor = 3.0 if row["|E|"] >= 600 else 1.5
        assert row["cls_speedup"] >= floor, (
            f"{row['instance']}: classical warm re-solve only "
            f"{row['cls_speedup']}x faster (need >= {floor}x)"
        )
        assert row["ana_speedup"] >= floor, (
            f"{row['instance']}: analog warm re-solve only "
            f"{row['ana_speedup']}x faster (need >= {floor}x)"
        )
