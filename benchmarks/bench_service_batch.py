"""Batched solving service throughput on a Fig. 10-style mixed suite.

Not a paper figure: this bench exercises the serving path the ROADMAP targets
— many instances per call, mixed analog/classical backends, a shared worker
pool — and prints the per-instance report plus the aggregate throughput the
service achieved.  Scaled by ``REPRO_BENCH_SCALE`` like the Fig. 10 sweeps.

Run with:  pytest benchmarks/bench_service_batch.py -o python_files=bench_*.py -s
or:        python benchmarks/bench_service_batch.py  (smoke-sized)
"""

from __future__ import annotations

from repro.bench import BatchServiceSuiteRunner, fig10_sparse_suite

from conftest import bench_scale


def _run_suite(scale: float):
    runner = BatchServiceSuiteRunner(backends=("push-relabel", "dinic", "analog"))
    # The service is about throughput, not the full Fig. 10 sweep: a handful
    # of sparse instances mixed across three backends is representative.
    workloads = fig10_sparse_suite(scale=scale * 0.2)[:4]
    return runner.run_suite(workloads)


def test_service_batch_throughput(benchmark):
    report = benchmark.pedantic(_run_suite, args=(bench_scale(),), iterations=1, rounds=1)

    print()
    print(report.format(title="batched solving service (mixed backends)"))

    assert report.num_failed == 0
    # Three backends per workload (small scales can dedupe the suite).
    counts = report.backend_counts()
    assert set(counts) == {"push-relabel", "dinic", "analog"}
    assert len(set(counts.values())) == 1 and report.num_requests >= 3
    # Classical backends are exact; the reference is computed with Dinic, so
    # the push-relabel rows must agree to numerical noise.
    for result in report.results:
        if result.backend != "analog":
            assert result.relative_error is not None and result.relative_error < 1e-9


if __name__ == "__main__":
    report = _run_suite(0.1)
    print(report.format(title="batched solving service (smoke)"))
