"""Ablation A1 — solution error versus the number of voltage levels N.

Section 4.1 notes that N trades accuracy against circuit complexity (more
levels means more shared clamp sources).  This bench sweeps N and reports the
relative error of the analog solution, confirming that the Table 1 choice of
N = 20 sits at a few percent of error and that the error shrinks roughly as
1/N.
"""

from __future__ import annotations

import statistics

from repro.analog import AnalogMaxFlowSolver
from repro.bench import format_table
from repro.config import SubstrateParameters
from repro.flows import dinic
from repro.graph import rmat_graph

LEVELS = [4, 8, 16, 20, 32, 64, 128]
SEEDS = [3, 5, 7]


def _sweep_levels():
    networks = [(seed, rmat_graph(40, 140, seed=seed)) for seed in SEEDS]
    exact = {seed: dinic(network).flow_value for seed, network in networks}
    rows = []
    for levels in LEVELS:
        params = SubstrateParameters().with_voltage_levels(levels)
        errors = []
        for seed, network in networks:
            solver = AnalogMaxFlowSolver(parameters=params, quantize=True, adaptive_drive=True)
            result = solver.solve(network)
            errors.append(abs(result.flow_value - exact[seed]) / exact[seed])
        rows.append(
            {
                "voltage levels N": levels,
                "mean rel. error": f"{statistics.mean(errors):.2%}",
                "max rel. error": f"{max(errors):.2%}",
                "worst-case bound C/N": f"{1.0 / levels:.2%} of C",
            }
        )
    return rows


def test_ablation_voltage_levels(benchmark):
    rows = benchmark.pedantic(_sweep_levels, rounds=1, iterations=1)

    print()
    print(format_table(rows, title="Ablation A1: error vs number of voltage levels"))

    errors = [float(row["mean rel. error"].rstrip("%")) for row in rows]
    # Error decreases (weakly) with more levels and is a few percent at N=20.
    assert errors[-1] <= errors[0] + 1e-9
    n20 = errors[LEVELS.index(20)]
    assert n20 < 8.0
