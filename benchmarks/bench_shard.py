"""Sharding benchmark: N-way parallel vs sequential 2-way decomposition.

Measures, on capacity-jittered grid instances (via the shared
:mod:`repro.bench.shard` harness):

* **1-shard cold** — one Dinic solve of the whole instance (the reference
  value; only possible when the instance fits one solver);
* **sequential 2-way** — ``ShardedSolveService(executor="serial")`` with
  two shards (the paper's Section 6.4 flow);
* **N-way parallel** — four shards fanned out over the thread executor.

Thresholds:

* value agreement: on converged runs of >= 600-edge instances, both
  decomposed cut values must match the cold solve to 1e-6 relative, and
  the dual/feasible bounds must bracket it on *every* iteration;
* speedup: from the edge floor up (default 3000, override with
  ``REPRO_SHARD_EDGE_FLOOR``), N-way parallel end-to-end wall clock must
  beat sequential 2-way by ``REPRO_SHARD_MIN_SPEEDUP`` (default 1.1x).  Below the floor the fixed per-iteration overhead (stitching,
  residual cut extraction, pool dispatch) dominates the shrinking
  per-shard solves on few-core machines, and N-way pays more coordination
  iterations than 2-way — the harness records those sizes but does not
  gate on them.
"""

from __future__ import annotations

import os

from repro.bench import format_table, measure_shard_class
from conftest import bench_scale


def _min_speedup() -> float:
    return float(os.environ.get("REPRO_SHARD_MIN_SPEEDUP", "1.1"))


def _edge_floor() -> int:
    return int(os.environ.get("REPRO_SHARD_EDGE_FLOOR", "3000"))


def _as_row(regime: str, metrics: dict) -> dict:
    return {
        "instance": f"{regime}:{metrics['workload']}",
        "|E|": metrics["num_edges"],
        "N": metrics["shards"],
        "cold_ms": round(metrics["cold_s"] * 1e3, 2),
        "seq2_ms": round(metrics["seq2_s"] * 1e3, 1),
        "seq2_it": metrics["seq2_iterations"],
        "parN_ms": round(metrics["parn_s"] * 1e3, 1),
        "parN_it": metrics["parn_iterations"],
        "speedup": round(metrics["speedup"], 2),
        "it_speedup": round(metrics["iter_speedup"], 2),
        "seq2_diff": float(f"{metrics['seq2_value_diff']:.2e}"),
        "parN_diff": float(f"{metrics['parn_value_diff']:.2e}"),
        "conv": f"{metrics['seq2_converged']}/{metrics['parn_converged']}",
    }


def _run_suite():
    scale = bench_scale()
    return [
        (regime, measure_shard_class(regime, scale))
        for regime in ("band", "wide")
    ]


def test_shard_nway_vs_sequential(benchmark):
    results = benchmark.pedantic(_run_suite, rounds=1, iterations=1)
    rows = [_as_row(regime, metrics) for regime, metrics in results]

    print()
    print(format_table(rows, title="N-way parallel vs sequential 2-way decomposition"))

    for regime, metrics in results:
        edges = metrics["num_edges"]
        if edges < 600:
            continue  # smoke scales only exercise the machinery
        # Exactness: both decomposed paths must find the cold solve's cut
        # value on converged runs, and the bounds must bracket it always.
        assert metrics["seq2_converged"], f"{regime}: sequential 2-way did not converge"
        assert metrics["parn_converged"], f"{regime}: N-way did not converge"
        assert metrics["seq2_value_diff"] <= 1e-6, (
            f"{regime}: 2-way cut diverged from cold solve "
            f"({metrics['seq2_value_diff']:.2e} relative)"
        )
        assert metrics["parn_value_diff"] <= 1e-6, (
            f"{regime}: N-way cut diverged from cold solve "
            f"({metrics['parn_value_diff']:.2e} relative)"
        )
        assert metrics["seq2_bracket_ok"], f"{regime}: 2-way bounds failed to bracket"
        assert metrics["parn_bracket_ok"], f"{regime}: N-way bounds failed to bracket"
        if edges >= _edge_floor():
            floor = _min_speedup()
            assert metrics["speedup"] >= floor, (
                f"{regime}: N-way parallel only {metrics['speedup']:.2f}x faster "
                f"than sequential 2-way (need >= {floor}x)"
            )
