"""Section 6.2 / Fig. 11 — clustered island-style architectures.

The paper proposes 1-D and 2-D clustered architectures to exploit sparsity
and hypothesises a trade-off: the 1-D organisation is simpler but runs out of
routing capacity sooner than the 2-D organisation.  The bench maps sparse
R-MAT graphs onto both styles and reports island utilisation, channel
congestion, routability and the cell-count savings over a monolithic
crossbar, plus the memristor-vs-SRAM area advantage.
"""

from __future__ import annotations

from repro.bench import format_table
from repro.crossbar import (
    AreaModel,
    ClusteredArchitecture,
    place_network,
    route_placement,
)
from repro.graph import sparse_random_graph


def _run_clustered_study():
    rows = []
    for num_vertices in (64, 128, 192):
        network = sparse_random_graph(num_vertices, 4.0, seed=num_vertices)
        for style in ("1d", "2d"):
            architecture = ClusteredArchitecture(
                num_islands=8,
                island_size=max(12, num_vertices // 8 + 4),
                style=style,
                channel_width=24,
            )
            placement = place_network(network, architecture, seed=1)
            routing = route_placement(network, placement)
            rows.append(
                {
                    "|V|": num_vertices,
                    "style": style,
                    "cut edges": placement.num_cut_edges,
                    "cut fraction": f"{placement.cut_fraction:.1%}",
                    "peak channel occupancy": routing.max_occupancy,
                    "required width": routing.required_channel_width(),
                    "routable@24": "yes" if routing.routable else "no",
                    "cell savings vs crossbar": f"{architecture.cell_savings():.1f}x",
                }
            )
    area = AreaModel()
    return rows, area


def test_sec62_clustered_architectures(benchmark):
    rows, area = benchmark(_run_clustered_study)

    print()
    print(format_table(rows, title="Section 6.2: clustered 1-D vs 2-D architectures"))
    print(f"memristor vs SRAM cell area advantage: {area.memristor_vs_sram_ratio():.1f}x")

    # Same placement quality feeds both routers, so the 2-D fabric never needs
    # more tracks than the 1-D bus (the paper's scalability hypothesis).
    by_size = {}
    for row in rows:
        by_size.setdefault(row["|V|"], {})[row["style"]] = row
    for size, styles in by_size.items():
        assert styles["2d"]["required width"] <= styles["1d"]["required width"]
    assert area.memristor_vs_sram_ratio() > 1.3
    assert all(float(r["cell savings vs crossbar"].rstrip("x")) > 1.0 for r in rows)
