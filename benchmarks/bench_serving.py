"""Serving benchmark: sustained mixed-workload RPS and coalescing gates.

Measures, via the shared :mod:`repro.bench.serving` harness, the asyncio
front door (:class:`~repro.service.server.AsyncSolveServer`) end to end:

* **Mixed workload** — a seeded duplicate-heavy request plan (four grid
  topologies, four tenants, mixed priorities, loose deadlines) in
  concurrent waves: sustained RPS plus p50/p99 end-to-end latency, with
  zero failed/shed requests required (the queues are provisioned for the
  wave size, so any shed is a server bug, not a workload property).

* **Coalescing speedup** — the acceptance gate: the identical
  duplicate-heavy workload with coalescing on must beat coalescing off
  by at least ``REPRO_SERVING_MIN_COALESCE`` (default 2x) wall-clock,
  and the solve counts must prove *why*: one backend solve per wave when
  on, ``waves * duplicates`` when off.
"""

from __future__ import annotations

import os

from repro.bench import (
    format_table,
    measure_coalescing_speedup,
    measure_serving_mixed,
)
from conftest import bench_scale


def _min_coalesce_speedup() -> float:
    return float(os.environ.get("REPRO_SERVING_MIN_COALESCE", "2.0"))


def test_serving_mixed_workload_sustains_rps(benchmark):
    mixed = benchmark.pedantic(
        lambda: measure_serving_mixed(bench_scale(), repeats=2),
        rounds=1, iterations=1,
    )

    print()
    print(format_table(
        [{
            "workload": mixed["workload"],
            "requests": mixed["requests"],
            "workers": mixed["workers"],
            "rps": round(mixed["rps"], 1),
            "p50_ms": round(mixed["p50_ms"], 2),
            "p99_ms": round(mixed["p99_ms"], 2),
            "coalesced": mixed["coalesced"],
            "shed": mixed["shed"],
        }],
        title="Serving front door, mixed workload",
    ))

    assert mixed["failed"] == 0, f"{mixed['failed']} non-200 responses"
    assert mixed["shed"] == 0, "provisioned queues must not shed"
    assert mixed["rps"] > 0.0
    assert mixed["p99_ms"] >= mixed["p50_ms"]
    assert mixed["coalesced"] > 0, (
        "duplicate-heavy plan produced no coalescing"
    )


def test_coalescing_doubles_duplicate_heavy_throughput(benchmark):
    result = benchmark.pedantic(
        lambda: measure_coalescing_speedup(bench_scale()),
        rounds=1, iterations=1,
    )

    print()
    print(format_table(
        [{
            "workload": result["workload"],
            "waves": result["waves"],
            "dup": result["duplicates"],
            "on_ms": round(result["on_s"] * 1e3, 1),
            "off_ms": round(result["off_s"] * 1e3, 1),
            "on_solves": result["on_solves"],
            "off_solves": result["off_solves"],
            "speedup": f"{result['speedup']:.1f}x",
        }],
        title="Request coalescing, duplicate-heavy workload",
    ))

    # The mechanism must be real: coalescing-off solves every duplicate,
    # coalescing-on solves one request per wave.
    assert result["off_solves"] == result["waves"] * result["duplicates"]
    assert result["on_solves"] == result["waves"]
    floor = _min_coalesce_speedup()
    assert result["speedup"] >= floor, (
        f"coalescing speedup {result['speedup']:.2f}x below {floor:g}x "
        f"on {result['workload']}"
    )
