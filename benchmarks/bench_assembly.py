"""Assembly-engine benchmark: compiled stamp templates vs the reference loop.

Measures, on Fig. 10-style R-MAT instances (dense and sparse regimes, via
the shared :mod:`repro.bench.assembly` harness):

* **assembly time** — ``matrix(states) + rhs()`` through the compiled
  template vs the element-by-element reference assembler;
* **DC end-to-end** — the full diode-state iteration (assembly + solve) with
  compiled assembly + SMW low-rank updates vs legacy per-iteration
  reassembly/refactorisation, including solution agreement;
* **SMW vs refactorise** — the same compiled solver with the low-rank path
  disabled (``smw_crossover=0``), isolating the Sherman–Morrison–Woodbury
  contribution.

At the default ``REPRO_BENCH_SCALE`` (0.25) the dense instances exceed 500
unknowns and the acceptance thresholds are asserted (>= 5x assembly, >= 2x
DC end-to-end, < 1e-9 relative solution agreement); tiny smoke scales only
print the table.
"""

from __future__ import annotations

from repro.bench import format_table, measure_assembly_class
from conftest import bench_scale


def _as_row(regime: str, metrics: dict) -> dict:
    return {
        "instance": f"{regime}:{metrics['workload']}",
        "unknowns": metrics["unknowns"],
        "diodes": metrics["diodes"],
        "asm_legacy_ms": round(metrics["assembly_legacy_s"] * 1e3, 3),
        "asm_compiled_ms": round(metrics["assembly_compiled_s"] * 1e3, 4),
        "asm_speedup": round(
            metrics["assembly_legacy_s"] / metrics["assembly_compiled_s"], 1
        ),
        "dc_legacy_ms": round(metrics["dc_legacy_s"] * 1e3, 1),
        "dc_compiled_ms": round(metrics["dc_compiled_s"] * 1e3, 1),
        "dc_speedup": round(metrics["dc_legacy_s"] / metrics["dc_compiled_s"], 2),
        "smw_speedup": round(metrics["dc_no_smw_s"] / metrics["dc_compiled_s"], 2),
        "iterations": metrics["iterations"],
        "refactorizations": metrics["refactorizations"],
        "smw_solves": metrics["smw_solves"],
        "rel_agreement": float(f"{metrics['rel_agreement']:.2e}"),
        "same_states": metrics["same_states"],
    }


def _run_suite():
    scale = bench_scale()
    return [
        _as_row(regime, measure_assembly_class(regime, scale))
        for regime in ("dense", "sparse")
    ]


def test_assembly_engine(benchmark):
    rows = benchmark.pedantic(_run_suite, rounds=1, iterations=1)

    print()
    print(
        format_table(
            rows, title="Compiled stamp templates vs reference loop assembly"
        )
    )

    for row in rows:
        assert row["same_states"], f"{row['instance']}: diode patterns diverged"
        # The >= 500-unknown acceptance thresholds; smoke scales (tiny
        # instances) only exercise the machinery.
        if row["unknowns"] < 500:
            continue
        assert row["asm_speedup"] >= 5.0, (
            f"{row['instance']}: compiled assembly only "
            f"{row['asm_speedup']}x faster"
        )
        assert row["rel_agreement"] < 1e-8, (
            f"{row['instance']}: compiled/legacy operating points disagree "
            f"({row['rel_agreement']:.2e} relative)"
        )
        if row["instance"].startswith("dense"):
            assert row["dc_speedup"] >= 2.0, (
                f"{row['instance']}: DC end-to-end only {row['dc_speedup']}x"
            )
            assert row["rel_agreement"] < 1e-9
        else:
            # The sparse regime is factorisation-bound; the assembly win is
            # diluted but must still be visible end-to-end.
            assert row["dc_speedup"] >= 1.2
