"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and prints
the regenerated rows/series (use ``pytest benchmarks/ --benchmark-only -s``
to see them).  The ``REPRO_BENCH_SCALE`` environment variable scales the
Fig. 10 sweeps: 1.0 reproduces the paper's sizes (minutes of runtime in pure
Python), the default of 0.25 keeps the full harness in the minutes range
while preserving the trends.
"""

from __future__ import annotations

import os

import pytest


def bench_scale() -> float:
    """Workload scale factor for the Fig. 10 sweeps."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()
