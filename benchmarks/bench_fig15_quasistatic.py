"""Fig. 15 / Section 6.5 — quasi-static trajectory through the feasible region.

The paper ramps Vflow slowly on the three-variable example (capacities
4, 1, 4) and shows that the node voltages travel through the *interior* of
the feasible polytope: initially x1 = (2/9) Vflow and x2 = x3 = (1/9) Vflow,
x2 saturates at Vflow = 9 V (point D = (2, 1, 1)) and the trajectory reaches
the optimum (4, 1, 3) at Vflow = 19 V (point B).  The bench regenerates the
trajectory and checks those breakpoints.
"""

from __future__ import annotations

import numpy as np

from repro.analog import QuasiStaticAnalyzer
from repro.bench import format_series
from repro.graph import quasistatic_example_graph


def _trace():
    analyzer = QuasiStaticAnalyzer(num_points=121, drive_factor=6.0)
    return analyzer.trace(quasistatic_example_graph())


def test_fig15_quasistatic_trajectory(benchmark):
    trajectory = benchmark(_trace)

    drive, x1 = trajectory.edge_trajectory(0)
    _, x2 = trajectory.edge_trajectory(1)
    _, x3 = trajectory.edge_trajectory(2)
    stride = max(1, len(drive) // 12)
    print()
    print(
        format_series(
            [round(v, 2) for v in drive[::stride]],
            {
                "x1": [round(v, 3) for v in x1[::stride]],
                "x2": [round(v, 3) for v in x2[::stride]],
                "x3": [round(v, 3) for v in x3[::stride]],
            },
            x_label="Vflow (V)",
            title="Fig. 15c: quasi-static trajectory (regenerated)",
        )
    )
    print(f"breakpoints at Vflow = {[round(b, 2) for b in trajectory.breakpoints()]} "
          f"(paper: 9 V and 19 V); final point = "
          f"({trajectory.final.edge_flows[0]:.2f}, {trajectory.final.edge_flows[1]:.2f}, "
          f"{trajectory.final.edge_flows[2]:.2f}) (paper: (4, 1, 3))")

    # Early trajectory: x1 = 2/9 Vflow, x2 = x3 = 1/9 Vflow.
    early = 5
    assert np.isclose(x1[early], 2.0 * drive[early] / 9.0, rtol=0.05)
    assert np.isclose(x2[early], drive[early] / 9.0, rtol=0.05)
    # First breakpoint (x2 saturating) near 9 V, full saturation near 19 V.
    assert abs(trajectory.breakpoints()[0] - 9.0) < 0.7
    assert abs(trajectory.saturation_drive(1e-3) - 19.0) < 1.2
    # Final point is the optimum (4, 1, 3).
    assert abs(trajectory.final.edge_flows[0] - 4.0) < 0.02
    assert abs(trajectory.final.edge_flows[1] - 1.0) < 0.02
    assert abs(trajectory.final.edge_flows[2] - 3.0) < 0.02
