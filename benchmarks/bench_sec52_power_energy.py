"""Section 5.2 — analytical power model and energy-efficiency comparison.

Regenerates the two headline numbers of the power analysis (a 5 W budget
supports about 1e4 active edges, 150 W about 3e5) and the energy-efficiency
argument: the substrate's power is comparable to a CPU's but each solve
finishes orders of magnitude faster, so the energy per solve is two to three
orders of magnitude lower.
"""

from __future__ import annotations

from repro.analog import ConvergenceTimeEstimator
from repro.bench import format_table
from repro.config import NonIdealityModel, SubstrateParameters
from repro.flows import CpuCostModel, push_relabel
from repro.graph import rmat_graph
from repro.power import PowerModel, compare_energy


def _run_power_analysis():
    model = PowerModel()
    budget_rows = [
        {"power budget (W)": budget, "supported edges": model.max_edges_for_budget(budget),
         "paper": paper}
        for budget, paper in [(5.0, "1e4"), (150.0, "3e5")]
    ]

    estimator = ConvergenceTimeEstimator()
    params = SubstrateParameters()
    cpu_model = CpuCostModel()
    energy_rows = []
    for vertices, edges in [(128, 512), (256, 1024), (512, 3072)]:
        network = rmat_graph(vertices, edges, seed=vertices)
        baseline = push_relabel(network)
        cpu = cpu_model.estimate(baseline)
        power = PowerModel().estimate(network)
        t_conv = estimator.estimate(
            network, params, NonIdealityModel(parasitic_capacitance_f=20e-15)
        )
        comparison = compare_energy(power, t_conv, cpu)
        energy_rows.append(
            {
                "|V|": vertices,
                "|E|": network.num_edges,
                "P_analog (W)": round(comparison.analog_power_w, 3),
                "t_conv (s)": f"{comparison.analog_time_s:.2e}",
                "E_analog (J)": f"{comparison.analog_energy_j:.2e}",
                "t_cpu (s)": f"{comparison.cpu_time_s:.2e}",
                "E_cpu (J)": f"{comparison.cpu_energy_j:.2e}",
                "speedup": f"{comparison.speedup:.0f}x",
                "energy eff.": f"{comparison.energy_efficiency:.0f}x",
            }
        )
    return budget_rows, energy_rows


def test_sec52_power_energy(benchmark):
    budget_rows, energy_rows = benchmark(_run_power_analysis)

    print()
    print(format_table(budget_rows, title="Section 5.2: edges supported per power budget"))
    print()
    print(format_table(energy_rows, title="Section 5.2: energy per solve, substrate vs CPU"))

    assert abs(budget_rows[0]["supported edges"] - 1e4) / 1e4 < 0.01
    assert abs(budget_rows[1]["supported edges"] - 3e5) / 3e5 < 0.01
    # Energy efficiency exceeds the raw speedup whenever the substrate's power
    # is below the CPU's package power (the paper's qualitative argument).
    for row in energy_rows:
        assert float(row["speedup"].rstrip("x")) > 10
        assert float(row["energy eff."].rstrip("x")) > float(row["speedup"].rstrip("x"))
