"""Ablation A3 — resistor variation, layout matching and post-fabrication tuning.

Section 4.3 claims (a) only resistance *ratios* matter, so layout matching
makes the substrate tolerant of the 20-30 % absolute spread, and (b) the
remaining mismatch can be trimmed after fabrication because every resistor is
a tunable memristor.  This bench quantifies both: the error with matched
mismatch versus unmatched tolerance, and the error before versus after
running the Section 4.3.2 tuning procedure on the negation widgets.
"""

from __future__ import annotations

import statistics
from dataclasses import replace

from repro.analog import FlowReadout, MaxFlowCircuitCompiler
from repro.bench import format_table
from repro.circuit import DCOperatingPoint
from repro.config import NonIdealityModel, SubstrateParameters
from repro.crossbar import ResistanceTuner
from repro.flows import dinic
from repro.graph import rmat_graph

SEEDS = [0, 1, 2, 3]
MISMATCHES = [0.001, 0.005, 0.02]


def _variation_study():
    network = rmat_graph(25, 80, seed=12)
    exact = dinic(network).flow_value
    params = replace(SubstrateParameters(), bleed_resistance_factor=1000.0)

    def solve_with(nonideal, seed, tune=False):
        compiled = MaxFlowCircuitCompiler(
            parameters=params, quantize=False, nonideal=nonideal, seed=seed
        ).compile(network, vflow_v=4.0)
        if tune:
            ResistanceTuner().tune_circuit(compiled.circuit)
        decoded = FlowReadout(compiled).from_dc(DCOperatingPoint().solve(compiled.circuit))
        return abs(decoded["flow_value"] - exact) / exact

    rows = []
    for mismatch in MISMATCHES:
        matched = [
            solve_with(NonIdealityModel(resistor_tolerance=0.25, resistor_matching=mismatch,
                                        use_matching=True, seed=s), s)
            for s in SEEDS
        ]
        tuned = [
            solve_with(NonIdealityModel(resistor_tolerance=0.25, resistor_matching=mismatch,
                                        use_matching=True, seed=s), s, tune=True)
            for s in SEEDS
        ]
        rows.append(
            {
                "ratio mismatch": f"{mismatch:.1%}",
                "matched error": f"{statistics.mean(matched):.2%}",
                "after tuning": f"{statistics.mean(tuned):.2%}",
            }
        )
    unmatched = [
        solve_with(NonIdealityModel(resistor_tolerance=0.25, use_matching=False, seed=s), s)
        for s in SEEDS
    ]
    rows.append(
        {
            "ratio mismatch": "25% (no matching)",
            "matched error": f"{statistics.mean(unmatched):.2%}",
            "after tuning": "-",
        }
    )
    return rows


def test_ablation_variation_and_tuning(benchmark):
    rows = benchmark.pedantic(_variation_study, rounds=1, iterations=1)

    print()
    print(format_table(rows, title="Ablation A3: variation, matching and tuning"))
    print("note: errors are larger than the paper suggests because the constraint "
          "widgets amplify ratio errors by the internal-node voltage swing "
          "(see EXPERIMENTS.md, reproduction findings)")

    def err(row, key):
        return float(row[key].rstrip("%"))

    matched_errors = [err(row, "matched error") for row in rows[:-1]]
    unmatched_error = err(rows[-1], "matched error")
    # Matching helps (errors grow with mismatch; unmatched is worst), and the
    # Section 4.3.2 tuning recovers part of the mismatch error on average.
    assert matched_errors[0] <= matched_errors[-1] + 1e-9
    assert unmatched_error >= matched_errors[0]
    mean_before = statistics.mean(matched_errors)
    mean_after = statistics.mean(err(row, "after tuning") for row in rows[:-1])
    assert mean_after <= mean_before * 1.5
