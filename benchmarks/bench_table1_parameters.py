"""Table 1 — design parameters of the max-flow computing substrate.

Regenerates the parameter table and benchmarks the cost of instantiating and
validating the full Table 1 configuration (a sanity benchmark: it also
asserts every paper value).
"""

from __future__ import annotations

from repro.bench import format_table
from repro.config import default_parameters


def test_table1_parameters(benchmark):
    params = benchmark(default_parameters)
    params.validate()
    table = params.as_table()

    rows = [{"parameter": name, "value": value} for name, value in table.items()]
    print()
    print(format_table(rows, title="Table 1: design parameters (regenerated)"))

    assert table["Memristor LRS resistance (kOhm)"] == 10
    assert table["Memristor HRS resistance (kOhm)"] == 1000
    assert table["Objective function voltage Vflow (V)"] == 3
    assert table["Open loop gain of op-amp"] == 1e4
    assert 10 <= table["Gain-bandwidth product of op-amp (GHz)"] <= 50
    assert table["Number of rows in the crossbar"] == 1000
    assert table["Number of columns in the crossbar"] == 1000
    assert table["Number of voltage levels"] == 20
