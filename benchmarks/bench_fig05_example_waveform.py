"""Fig. 5 — the worked example: instance, circuit and node-voltage waveform.

The paper's example (capacities 3, 2, 1, 1, 2) converges to the max flow of
2 with x3/x4 saturating at their capacity; Fig. 5c shows the node voltages
settling within tens of nanoseconds.  The bench runs the device-level
transient (op-amp NICs, 20 fF parasitics) and prints the sampled waveform of
every edge voltage plus the measured 0.1 % convergence time.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.analog import AnalogMaxFlowSolver, measure_convergence_time
from repro.bench import format_series
from repro.config import NonIdealityModel, SubstrateParameters
from repro.graph import paper_example_graph


def _run_fig5():
    params = replace(SubstrateParameters(), bleed_resistance_factor=1000.0)
    nonideal = NonIdealityModel(parasitic_capacitance_f=20e-15, opamp_gbw_hz=10e9)
    solver = AnalogMaxFlowSolver(
        parameters=params, quantize=False, nonideal=nonideal, style="device"
    )
    compiled = solver.compile(paper_example_graph(), vflow_v=12.0)
    return compiled, measure_convergence_time(compiled, num_steps=900)


def test_fig05_example_waveform(benchmark):
    compiled, measurement = benchmark(_run_fig5)

    sample_times = np.linspace(0.0, measurement.t_stop, 12)
    series = {}
    for edge_index, node in sorted(compiled.edge_node.items()):
        wave = measurement.transient.voltage(node)
        series[f"V(x{edge_index + 1})"] = [round(wave.value_at(t), 3) for t in sample_times]
    print()
    print(
        format_series(
            [f"{t:.2e}" for t in sample_times],
            series,
            x_label="time (s)",
            title="Fig. 5c: edge-node voltage waveforms (regenerated)",
        )
    )
    print(f"flow value settles to {measurement.final_flow_value:.3f} "
          f"(paper: 2) in {measurement.convergence_time_s:.3e} s "
          f"(paper example: ~1e-8 s scale)")

    # Shape checks: the flow settles to ~2 and the bottleneck edges saturate.
    assert abs(measurement.final_flow_value - 2.0) / 2.0 < 0.06
    final = measurement.transient.voltage(compiled.edge_node[2]).final_value
    assert abs(final * compiled.quantization.scale - 1.0) < 0.1  # x3 saturates at 1
    assert 1e-9 < measurement.convergence_time_s < 1e-6
