"""Flat-array kernel benchmark: KernelDinic vs the pure-Python reference.

Measures, on the conformance-corpus instance families (via the shared
:mod:`repro.bench.kernel` harness), one reference Dinic solve against one
:class:`~repro.flows.kernel.KernelDinic` solve of the identical network.

Thresholds:

* value agreement: kernel and reference flow values must match to 1e-9
  relative on every class, at every scale — the speedup is meaningless if
  the answers differ;
* speedup, gated per class from that class's edge floor up (below it,
  smoke scales only exercise the machinery):

  - ``grid`` must clear ``REPRO_KERNEL_MIN_SPEEDUP`` (default 10x) from
    ``REPRO_KERNEL_EDGE_FLOOR`` edges (default 10000).  Deep vision grids
    are where interpreter overhead dominates the reference: the
    default-scale 96x96 instance measures ~25x, leaving honest headroom
    over the floor for CI wall-clock noise (the 64x64 size measures
    9-15x run to run — too close to gate at 10x).
  - ``rmat`` must clear ``REPRO_KERNEL_MIN_SPEEDUP_RMAT`` (default 1.5x)
    from ``REPRO_KERNEL_EDGE_FLOOR_RMAT`` edges (default 4000).
    Hub-dominated instances solve in few phases, so the reference has
    less interpreter work to lose — measured ~2-3x.
  - ``bipartite`` is recorded without a floor: matching-style instances
    are shallow enough that per-solve array setup eats the margin
    (~0.6-1.0x measured), and the honest record of that is worth more
    than a vacuous assertion.
"""

from __future__ import annotations

import os

from repro.bench import KERNEL_CLASSES, format_table, measure_kernel_class
from conftest import bench_scale


def _floors() -> dict:
    """Per-class (edge floor, speedup floor) gates; see the module docstring."""
    return {
        "grid": (
            int(os.environ.get("REPRO_KERNEL_EDGE_FLOOR", "10000")),
            float(os.environ.get("REPRO_KERNEL_MIN_SPEEDUP", "10.0")),
        ),
        "rmat": (
            int(os.environ.get("REPRO_KERNEL_EDGE_FLOOR_RMAT", "4000")),
            float(os.environ.get("REPRO_KERNEL_MIN_SPEEDUP_RMAT", "1.5")),
        ),
    }


def _as_row(regime: str, metrics: dict) -> dict:
    return {
        "instance": f"{regime}:{metrics['workload']}",
        "|V|": metrics["num_vertices"],
        "|E|": metrics["num_edges"],
        "dinic_ms": round(metrics["dinic_s"] * 1e3, 2),
        "kernel_ms": round(metrics["kernel_s"] * 1e3, 2),
        "speedup": round(metrics["speedup"], 2),
        "sweeps": metrics["kernel_sweeps"],
        "value_diff": float(f"{metrics['value_diff']:.2e}"),
    }


def _run_suite():
    scale = bench_scale()
    return [
        (regime, measure_kernel_class(regime, scale, repeats=3))
        for regime in KERNEL_CLASSES
    ]


def test_kernel_vs_reference_dinic(benchmark):
    results = benchmark.pedantic(_run_suite, rounds=1, iterations=1)
    rows = [_as_row(regime, metrics) for regime, metrics in results]

    print()
    print(format_table(rows, title="Flat-array kernel vs reference Dinic"))

    floors = _floors()
    for regime, metrics in results:
        assert metrics["value_diff"] <= 1e-9, (
            f"{regime}: kernel flow value diverged from the reference "
            f"({metrics['value_diff']:.2e} relative)"
        )
        if regime not in floors:
            continue  # bipartite: recorded, not gated
        edge_floor, speedup_floor = floors[regime]
        if metrics["num_edges"] < edge_floor:
            continue  # smoke scales only exercise the machinery
        assert metrics["speedup"] >= speedup_floor, (
            f"{regime}: kernel only {metrics['speedup']:.2f}x faster than "
            f"reference Dinic on {metrics['workload']} (need >= {speedup_floor}x)"
        )
