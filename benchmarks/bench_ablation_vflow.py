"""Ablation A4 — flow accuracy versus the objective drive voltage Vflow.

Table 1 lists Vflow = 3 V, but the substrate only reaches the true max flow
once the drive is large enough for every binding capacity clamp to engage
(the paper's own Fig. 15 example needs 19 V for capacities up to 4).  This
bench sweeps the drive and reports the under-estimation, quantifying the
finite-drive error that EXPERIMENTS.md documents as a reproduction finding.
"""

from __future__ import annotations

import statistics

from repro.analog import AnalogMaxFlowSolver
from repro.bench import format_table
from repro.flows import dinic
from repro.graph import rmat_graph

DRIVES = [1.5, 3.0, 6.0, 12.0, 24.0]
SEEDS = [2, 4, 6]


def _sweep_drive():
    networks = [(seed, rmat_graph(40, 140, seed=seed)) for seed in SEEDS]
    exact = {seed: dinic(network).flow_value for seed, network in networks}
    rows = []
    for drive in DRIVES:
        ratios = []
        for seed, network in networks:
            result = AnalogMaxFlowSolver(quantize=True).solve(network, vflow_v=drive)
            ratios.append(result.flow_value / exact[seed])
        rows.append(
            {
                "Vflow (V)": drive,
                "Vflow / Vdd": drive,
                "mean fraction of optimum": f"{statistics.mean(ratios):.1%}",
                "min fraction of optimum": f"{min(ratios):.1%}",
            }
        )
    return rows


def test_ablation_vflow_drive(benchmark):
    rows = benchmark.pedantic(_sweep_drive, rounds=1, iterations=1)

    print()
    print(format_table(rows, title="Ablation A4: achieved flow vs drive voltage"))
    print("Table 1's literal Vflow = 3 V under-drives typical instances; the "
          "Fig. 10 harness therefore uses a 6 V drive with adaptive doubling "
          "(see EXPERIMENTS.md).")

    fractions = [float(row["mean fraction of optimum"].rstrip("%")) for row in rows]
    # Monotone in the drive and essentially saturated at the largest drive.
    assert all(b >= a - 1e-9 for a, b in zip(fractions, fractions[1:]))
    assert fractions[-1] > 95.0
    assert fractions[0] < fractions[-1]
