"""Observability benchmark: telemetry overhead ceilings.

Measures, via the shared :mod:`repro.bench.obs` harness, the cost of the
tracing/metrics layer on the kernel-corpus grid instance: the same
``kernel-dinic`` solve timed raw (bare algorithm), through the service
backend with obs disabled (the default no-op path every caller pays),
and with obs enabled (live spans at the service boundaries plus a
registry counter bump per kernel discharge sweep).

Thresholds:

* disabled-mode overhead must stay under ``REPRO_OBS_MAX_DISABLED``
  (default 2 %) and enabled-mode under ``REPRO_OBS_MAX_ENABLED``
  (default 10 %), both against the raw algorithm, from
  ``REPRO_OBS_EDGE_FLOOR`` edges (default 10000; below it the per-solve
  wall clock is too small to resolve a percentage and only the
  machinery is exercised).  The measurement is retried up to three
  times and the best attempt is gated: contention on a shared machine
  can only inflate the measured ratios, never deflate them, so the
  minimum over attempts is the faithful estimate of the mechanism's
  cost (see :mod:`repro.bench.obs`);
* the enabled path must return the identical flow value and must have
  actually recorded telemetry (root spans and sweep counters > 0 — a
  silently-disabled "enabled" arm would gate nothing).
"""

from __future__ import annotations

import os

from repro.bench import format_table, measure_obs_overhead
from conftest import bench_scale


def _gates() -> tuple:
    return (
        int(os.environ.get("REPRO_OBS_EDGE_FLOOR", "10000")),
        float(os.environ.get("REPRO_OBS_MAX_DISABLED", "0.02")),
        float(os.environ.get("REPRO_OBS_MAX_ENABLED", "0.10")),
    )


def _run_suite():
    scale = bench_scale()
    _, max_disabled, max_enabled = _gates()
    return measure_obs_overhead(
        "grid",
        scale,
        repeats=5,
        disabled_target=max_disabled,
        enabled_target=max_enabled,
    )


def test_obs_overhead_ceilings(benchmark):
    overhead = benchmark.pedantic(_run_suite, rounds=1, iterations=1)

    print()
    print(format_table(
        [{
            "instance": overhead["workload"],
            "|E|": overhead["num_edges"],
            "raw_ms": round(overhead["raw_s"] * 1e3, 2),
            "disabled_ms": round(overhead["disabled_s"] * 1e3, 2),
            "enabled_ms": round(overhead["enabled_s"] * 1e3, 2),
            "disabled": f"{overhead['disabled_overhead_fraction']:+.1%}",
            "enabled": f"{overhead['enabled_overhead_fraction']:+.1%}",
            "sweeps": overhead["enabled_sweeps"],
        }],
        title="Telemetry overhead (kernel-dinic backend, raw baseline)",
    ))

    assert overhead["value_diff"] <= 1e-9, (
        "telemetry changed the flow value "
        f"({overhead['value_diff']:.2e} relative)"
    )
    assert overhead["enabled_sweeps"] > 0, "enabled arm counted no sweeps"
    assert overhead["enabled_root_spans"] > 0, "enabled arm recorded no spans"
    edge_floor, max_disabled, max_enabled = _gates()
    if overhead["num_edges"] >= edge_floor:
        assert overhead["disabled_overhead_fraction"] <= max_disabled, (
            f"disabled-mode obs overhead "
            f"{overhead['disabled_overhead_fraction']:.1%} exceeds "
            f"{max_disabled:.0%} on {overhead['workload']}"
        )
        assert overhead["enabled_overhead_fraction"] <= max_enabled, (
            f"enabled-mode obs overhead "
            f"{overhead['enabled_overhead_fraction']:.1%} exceeds "
            f"{max_enabled:.0%} on {overhead['workload']}"
        )
