"""Resilience benchmark: fault-free overhead ceiling + recovery latency.

Measures, via the shared :mod:`repro.bench.resilience` harness:

* the fault-free cost of the resilient solve path (ambient deadline scope
  + failover wrapper + breaker bookkeeping + fault-hook probes) against
  the plain service backend on the kernel-corpus grid instance, and
* the wall clock of one recovered solve per fault class — primary
  ``kernel-dinic`` poisoned with a persistent injected fault, degraded to
  the certified reference Dinic (``stall`` instead records the deadline
  abort, per the timeouts-are-terminal contract).

Thresholds:

* fault-free overhead must stay under ``REPRO_RESILIENCE_MAX_OVERHEAD``
  (default 5 %) from ``REPRO_RESILIENCE_EDGE_FLOOR`` edges (default
  10000; below it, smoke scales only exercise the machinery and the
  per-solve wall clock is too small to resolve a percentage).  The
  measurement is retried up to three times and the best attempt is
  gated: contention on a shared machine can only inflate the measured
  ratio, never deflate it, so the minimum over attempts is the faithful
  estimate of the mechanism's cost (see :mod:`repro.bench.resilience`);
* the resilient path must return the identical flow value, undegraded,
  with an empty failover trail;
* every raising fault class must recover to the exact reference value
  (1e-9 relative) with a non-empty trail;
* the ``stall`` abort must land within 1 s of its deadline budget — the
  cooperative cancellation lag, not the 60 s injected stall.
"""

from __future__ import annotations

import os

from repro.bench import (
    RESILIENCE_FAULT_CLASSES,
    format_table,
    measure_recovery_class,
    measure_resilience_overhead,
)
from repro.bench.resilience import STALL_ABORT_BUDGET_S
from conftest import bench_scale


def _overhead_gate() -> tuple:
    return (
        int(os.environ.get("REPRO_RESILIENCE_EDGE_FLOOR", "10000")),
        float(os.environ.get("REPRO_RESILIENCE_MAX_OVERHEAD", "0.05")),
    )


def _run_suite():
    scale = bench_scale()
    _, max_overhead = _overhead_gate()
    overhead = measure_resilience_overhead(
        "grid", scale, repeats=5, target=max_overhead
    )
    recoveries = [
        measure_recovery_class(kind, scale, repeats=1)
        for kind in RESILIENCE_FAULT_CLASSES
    ]
    return overhead, recoveries


def test_resilience_overhead_and_recovery(benchmark):
    overhead, recoveries = benchmark.pedantic(_run_suite, rounds=1, iterations=1)

    print()
    print(format_table(
        [{
            "instance": overhead["workload"],
            "|E|": overhead["num_edges"],
            "raw_ms": round(overhead["raw_s"] * 1e3, 2),
            "backend_ms": round(overhead["backend_s"] * 1e3, 2),
            "resilient_ms": round(overhead["resilient_s"] * 1e3, 2),
            "overhead": f"{overhead['overhead_fraction']:+.1%}",
        }],
        title="Fault-free resilience overhead (kernel-dinic backend)",
    ))
    print(format_table(
        [{
            "fault": row["fault"],
            "outcome": row["outcome"],
            "fallback": row["fallback_backend"] or "-",
            "baseline_ms": round(row["baseline_s"] * 1e3, 2),
            "recovered_ms": round(row["recovered_s"] * 1e3, 2),
            "ratio": round(row["recovery_ratio"], 2),
            "value_err": float(f"{row['value_error']:.2e}"),
        } for row in recoveries],
        title="Recovered-solve latency per fault class",
    ))

    assert overhead["value_diff"] <= 1e-9, (
        "resilient path changed the flow value "
        f"({overhead['value_diff']:.2e} relative)"
    )
    edge_floor, max_overhead = _overhead_gate()
    if overhead["num_edges"] >= edge_floor:
        assert overhead["overhead_fraction"] <= max_overhead, (
            f"fault-free resilience overhead {overhead['overhead_fraction']:.1%} "
            f"exceeds {max_overhead:.0%} on {overhead['workload']}"
        )

    for row in recoveries:
        if row["fault"] == "stall":
            assert row["outcome"] == "deadline-abort"
            assert row["recovered_s"] <= STALL_ABORT_BUDGET_S + 1.0, (
                f"deadline abort took {row['recovered_s']:.2f} s against a "
                f"{STALL_ABORT_BUDGET_S} s budget"
            )
        else:
            assert row["outcome"] == "degraded", row
            assert row["trail_length"] >= 1
            assert row["value_error"] <= 1e-9, (
                f"{row['fault']}: recovered value off by "
                f"{row['value_error']:.2e} relative"
            )
