"""Problem-reduction benchmark: four workloads through the service.

Routes one instance of each reduction class (bipartite matching,
vertex-disjoint paths, image segmentation, project selection — via the
shared :mod:`repro.bench.problems` harness) through
:class:`~repro.service.problems.ProblemSolveService` and prints the stage
split: reduction build, backend solve, decode + certificate.

Hard assertions at any scale: every class decodes and *certifies* (the
duality witness checks pass), and dinic / push-relabel agree on the
objective exactly.  The reduction layer's price is recorded as the
overhead fraction ``(reduce + decode) / total``; the perf-trajectory
record lives in ``BENCH_problems.json`` (``make perf-gate-problems``).
"""

from __future__ import annotations

from repro.bench import PROBLEM_CLASSES, format_table, measure_problems_class
from conftest import bench_scale


def _as_row(metrics: dict) -> dict:
    return {
        "class": metrics["kind"],
        "|V|": metrics["num_vertices"],
        "|E|": metrics["num_edges"],
        "objective": round(float(metrics["objective"]), 4),
        "reduce_ms": round(metrics["reduce_s"] * 1e3, 3),
        "solve_ms": round(metrics["solve_s"] * 1e3, 3),
        "decode_ms": round(metrics["decode_s"] * 1e3, 3),
        "overhead": f"{metrics['overhead_fraction']:.0%}",
        "certificate": "ok" if metrics["certified"] else "FAILED",
    }


def test_problem_reductions_certified_and_cheap(benchmark):
    scale = bench_scale()
    metrics = benchmark.pedantic(
        lambda: [
            measure_problems_class(kind, scale, repeats=3, reducer=min)
            for kind in PROBLEM_CLASSES
        ],
        rounds=1,
        iterations=1,
    )

    print()
    print(
        format_table(
            [_as_row(m) for m in metrics],
            title=f"Problem reductions through the service (scale {scale:g})",
        )
    )

    for m in metrics:
        assert m["certified"], f"{m['kind']}: certificate failed"
        # The classical backends must agree exactly on the domain objective.
        cross = measure_problems_class(
            m["kind"], scale, repeats=1, backend="push-relabel"
        )
        assert cross["certified"]
        assert abs(float(cross["objective"]) - float(m["objective"])) <= 1e-9 * max(
            1.0, abs(float(m["objective"]))
        )
