"""Fig. 8 — voltage-level quantization of the worked example.

The paper quantizes the Fig. 5a instance with N = 20 levels and Vdd = 1 V:
the capacities (3, 2, 1) map to clamp voltages (1 V, 0.65 V, 0.35 V), the
circuit solution reads 0.7 V, and the de-quantized flow value is 2.1 — a 5 %
deviation from the exact optimum of 2.  This bench regenerates the mapping
and the solved flow value.
"""

from __future__ import annotations

from repro.analog import AnalogMaxFlowSolver, VoltageQuantizer
from repro.bench import format_table
from repro.graph import paper_example_graph


def _solve_quantized():
    network = paper_example_graph()
    quantizer = VoltageQuantizer(num_levels=20, vdd=1.0, mode="round")
    quantization = quantizer.quantize(network)
    solver = AnalogMaxFlowSolver(quantize=True, adaptive_drive=True)
    result = solver.solve(network)
    return network, quantization, result


def test_fig08_quantization(benchmark):
    network, quantization, result = benchmark(_solve_quantized)

    rows = []
    paper_voltages = {0: 1.0, 1: 0.65, 2: 0.35, 3: 0.35, 4: 0.65}
    for edge in network.edges():
        rows.append(
            {
                "edge": f"x{edge.index + 1}",
                "capacity": edge.capacity,
                "clamp voltage (V)": round(quantization.voltage_of_edge[edge.index], 3),
                "paper (V)": paper_voltages[edge.index],
            }
        )
    print()
    print(format_table(rows, title="Fig. 8: quantized capacity voltages (N=20, Vdd=1V)"))
    print(
        f"analog flow value = {result.flow_value:.3f} "
        f"(paper: 2.1, exact: 2.0, deviation {abs(result.flow_value - 2.0) / 2.0:.1%})"
    )

    for edge_index, expected in paper_voltages.items():
        assert abs(quantization.voltage_of_edge[edge_index] - expected) < 1e-9
    assert abs(result.flow_value - 2.1) < 0.05
