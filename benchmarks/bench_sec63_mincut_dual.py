"""Section 6.3 / Fig. 12-14 — the min-cut dual analog formulation.

Maps the min-cut LP onto the analog LP substrate, integrates the dynamics to
steady state and compares the analog objective and the rounded cut against
the exact minimum cut (equal to the max flow by strong duality).
"""

from __future__ import annotations

from repro.analog import AnalogMinCutSolver
from repro.bench import format_table
from repro.flows import dinic
from repro.graph import grid_graph, paper_example_graph, rmat_graph


def _run_mincut_dual():
    instances = [
        ("fig5 example", paper_example_graph()),
        ("grid 3x4", grid_graph(3, 4, capacity=2.0, seed=1, capacity_jitter=0.2)),
        ("rmat 20", rmat_graph(20, 60, seed=4, max_capacity=10)),
    ]
    rows = []
    for name, network in instances:
        exact = dinic(network).flow_value
        result = AnalogMinCutSolver(t_final=60.0).solve(network)
        rows.append(
            {
                "instance": name,
                "|V|": network.num_vertices,
                "|E|": network.num_edges,
                "exact min cut": round(exact, 3),
                "analog LP objective": round(result.lp_objective, 3),
                "rounded cut": round(result.cut_value, 3),
                "LP rel. error": f"{result.relative_error:.2%}",
                "settling time (model s)": round(result.settling_time, 2),
            }
        )
    return rows


def test_sec63_mincut_dual(benchmark):
    rows = benchmark.pedantic(_run_mincut_dual, rounds=1, iterations=1)

    print()
    print(format_table(rows, title="Section 6.3: analog min-cut dual formulation"))

    for row in rows:
        exact = row["exact min cut"]
        assert abs(row["analog LP objective"] - exact) / exact < 0.15
        # The rounded cut is a valid cut, hence an upper bound on the optimum.
        assert row["rounded cut"] >= exact - 1e-6
