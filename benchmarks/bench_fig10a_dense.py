"""Fig. 10a — convergence time and relative error on *dense* R-MAT graphs.

Regenerates the dense-regime comparison: substrate convergence time at
GBW = 10 GHz and 50 GHz versus push-relabel on a conventional CPU, plus the
relative error of the analog solution.  The workload scale is controlled by
``REPRO_BENCH_SCALE`` (1.0 = the paper's |V| = 256..960 sweep).
"""

from __future__ import annotations

from repro.bench import Fig10Runner, fig10_dense_suite, format_table
from conftest import bench_scale


def _run_dense_suite():
    runner = Fig10Runner(transient_vertex_limit=40)
    workloads = fig10_dense_suite(scale=bench_scale())
    return runner.run_suite(workloads)


def test_fig10a_dense(benchmark):
    rows = benchmark.pedantic(_run_dense_suite, rounds=1, iterations=1)

    print()
    print(format_table([row.as_dict() for row in rows],
                       title="Fig. 10a (dense R-MAT): regenerated series"))

    errors = [row.relative_error for row in rows]
    mean_error = sum(errors) / len(errors)
    print(f"mean relative error: {mean_error:.2%} (paper: 3.7% for dense graphs)")

    # Shape assertions mirroring the paper's qualitative claims.
    assert all(row.speedup_10g > 1.0 for row in rows), "substrate must beat the CPU"
    assert all(row.convergence_time_50g_s <= row.convergence_time_10g_s * 1.05 for row in rows)
    assert mean_error < 0.10
    # CPU time grows with instance size much faster than the convergence time,
    # so the speedup of the largest instance exceeds that of the smallest.
    assert rows[-1].speedup_10g >= rows[0].speedup_10g
