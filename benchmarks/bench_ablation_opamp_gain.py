"""Ablation A2 — solution error versus op-amp open-loop gain (Section 4.2).

The paper argues that the negative-resistor error is inversely proportional
to the op-amp gain, so gains above ~1e3 have negligible impact.  This bench
sweeps the gain with the finite-gain widget realisation and reports the error
against the ideal (infinite-gain) solution.
"""

from __future__ import annotations

from repro.analog import AnalogMaxFlowSolver
from repro.bench import format_table
from repro.config import NonIdealityModel
from repro.graph import paper_example_graph, rmat_graph

GAINS = [10.0, 100.0, 1e3, 1e4, 1e5]


def _sweep_gain():
    networks = [("fig5", paper_example_graph()), ("rmat", rmat_graph(25, 80, seed=6))]
    rows = []
    ideal = {
        name: AnalogMaxFlowSolver(quantize=False).solve(network, vflow_v=6.0).flow_value
        for name, network in networks
    }
    for gain in GAINS:
        row = {"op-amp gain": f"{gain:g}"}
        for name, network in networks:
            solver = AnalogMaxFlowSolver(
                quantize=False,
                style="finite-gain",
                nonideal=NonIdealityModel(opamp_gain=gain),
            )
            value = solver.solve(network, vflow_v=6.0).flow_value
            row[f"{name}: deviation from ideal"] = f"{abs(value - ideal[name]) / ideal[name]:.3%}"
        rows.append(row)
    return rows


def test_ablation_opamp_gain(benchmark):
    rows = benchmark.pedantic(_sweep_gain, rounds=1, iterations=1)

    print()
    print(format_table(rows, title="Ablation A2: error vs op-amp open-loop gain"))

    def deviation(row, name):
        return float(row[f"{name}: deviation from ideal"].rstrip("%"))

    # Gain of 1e3 or better keeps the deviation small (the Section 4.2 claim),
    # and the deviation shrinks monotonically from the lowest gain.
    for name in ("fig5", "rmat"):
        assert deviation(rows[GAINS.index(1e4)], name) < 1.0
        assert deviation(rows[-1], name) <= deviation(rows[0], name)
