#!/usr/bin/env python
"""Seeded load generator / demo client for the asyncio serving front door.

Drives a mixed workload — a handful of grid topologies, several tenants,
mixed priorities, per-request deadlines, duplicate-heavy so coalescing
engages — through :class:`repro.service.server.AsyncSolveServer` and
prints the outcome: status counts, sustained RPS, latency percentiles and
the server's admission/coalescing counters.  This is the ``make
serve-demo`` entry point and a ready async-client example::

    PYTHONPATH=src python tools/load_gen.py [--requests 60] [--workers 4]
                                            [--scale 0.1] [--seed N]
                                            [--deadline-s 30] [--json]

``--json`` emits the summary as one JSON document on stdout instead of
the human-readable report (for scripting).  The request plan is fully
determined by ``--seed``/``--scale``; the timings of course are not.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.serving import _mixed_networks, _percentile  # noqa: E402
from repro.service import AsyncSolveServer, BatchSolveService  # noqa: E402


async def run_load(args) -> dict:
    networks = _mixed_networks(args.scale)
    rng = random.Random(args.seed)
    plan = [
        (
            rng.randrange(len(networks)),
            f"tenant-{rng.randrange(args.tenants)}",
            rng.randrange(3),
        )
        for _ in range(args.requests)
    ]

    latencies: list = []
    statuses: dict = {}
    backends: dict = {}

    async def one(index: int, tenant: str, priority: int) -> None:
        start = time.perf_counter()
        response = await server.submit(
            networks[index], tenant=tenant, priority=priority,
            deadline_s=args.deadline_s,
        )
        latencies.append(time.perf_counter() - start)
        statuses[response.status] = statuses.get(response.status, 0) + 1
        backends[response.backend] = backends.get(response.backend, 0) + 1

    began = time.perf_counter()
    async with AsyncSolveServer(
        BatchSolveService(executor="serial"),
        workers=args.workers,
        max_pending=2 * args.wave,
        per_tenant_queue=2 * args.wave,
    ) as server:
        for offset in range(0, len(plan), args.wave):
            await asyncio.gather(
                *[one(*spec) for spec in plan[offset:offset + args.wave]]
            )
    wall_s = time.perf_counter() - began
    return {
        "requests": len(plan),
        "workers": args.workers,
        "wave": args.wave,
        "deadline_s": args.deadline_s,
        "wall_s": round(wall_s, 4),
        "rps": round(len(plan) / max(wall_s, 1e-12), 1),
        "p50_ms": round(1e3 * _percentile(latencies, 0.50), 3),
        "p99_ms": round(1e3 * _percentile(latencies, 0.99), 3),
        "statuses": {str(k): v for k, v in sorted(statuses.items())},
        "backends": dict(sorted(backends.items())),
        "server": server.stats(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=60,
                        help="total requests to generate (default 60)")
    parser.add_argument("--workers", type=int, default=4,
                        help="server worker tasks (default 4)")
    parser.add_argument("--wave", type=int, default=32,
                        help="concurrent submissions per wave (default 32)")
    parser.add_argument("--tenants", type=int, default=4,
                        help="distinct tenants in the plan (default 4)")
    parser.add_argument("--scale", type=float, default=0.1,
                        help="grid workload scale (default 0.1)")
    parser.add_argument("--seed", type=int, default=20150607,
                        help="request-plan seed (default 20150607)")
    parser.add_argument("--deadline-s", type=float, default=30.0,
                        help="per-request deadline in seconds (default 30)")
    parser.add_argument("--json", action="store_true",
                        help="emit the summary as JSON on stdout")
    args = parser.parse_args(argv)
    if args.requests < 1 or args.workers < 1 or args.wave < 1:
        parser.error("--requests, --workers and --wave must be positive")

    summary = asyncio.run(run_load(args))
    if args.json:
        print(json.dumps(summary, indent=2))
        return 0
    print(
        f"served {summary['requests']} requests in {summary['wall_s']} s "
        f"({summary['rps']} rps, {summary['workers']} workers, "
        f"waves of {summary['wave']})"
    )
    print(f"latency: p50 {summary['p50_ms']} ms, p99 {summary['p99_ms']} ms")
    print(f"statuses: {summary['statuses']}  backends: {summary['backends']}")
    stats = summary["server"]
    print(
        f"server: {stats['admitted']} admitted, {stats['coalesced']} "
        f"coalesced, {stats['shed']} shed, {stats['expired']} expired"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
