#!/usr/bin/env python
"""Render a recorded trace document as an indented tree.

Reads the ``repro.trace/v1`` JSON produced by
``repro.obs.trace_document()`` (a bare span dict or a list of span dicts
is also accepted) and prints one line per span: cumulative time, self
time (cumulative minus children), and the span's attributes.  A full
``repro.telemetry/v1`` document — any report's ``telemetry()`` dumped to
JSON — also works: the embedded ``trace`` section is extracted, so one
telemetry dump is enough to render the run's span tree.

Usage::

    PYTHONPATH=src python - <<'EOF'
    import json
    from repro import set_obs_enabled, FlowNetwork, SolveRequest
    from repro.obs import trace_document
    from repro.service.batch import BatchSolveService

    set_obs_enabled(True)
    g = FlowNetwork(source="s", sink="t")
    g.add_edge("s", "a", 3.0); g.add_edge("a", "t", 2.0)
    BatchSolveService(executor="serial").solve_batch(
        [SolveRequest(network=g, backend="dinic")]
    )
    with open("TRACE.json", "w") as fh:
        json.dump(trace_document(), fh)
    EOF
    python tools/trace_dump.py TRACE.json

Output::

    batch.solve                         1.82 ms  (self 0.31 ms)  executor=serial requests=1
      backend.solve                     1.51 ms  (self 1.51 ms)  backend=dinic ok=True

Pass ``-`` to read the document from stdin.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List

TRACE_SCHEMA = "repro.trace/v1"
TELEMETRY_SCHEMA = "repro.telemetry/v1"


def _fmt_time(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds * 1e6:.0f} us"


def _fmt_attrs(attributes: Dict[str, object]) -> str:
    if not attributes:
        return ""
    return "  " + " ".join(f"{k}={attributes[k]}" for k in sorted(attributes))


def render_span(node: Dict[str, object], depth: int = 0) -> List[str]:
    """One indented line per span, children in recorded order."""
    indent = "  " * depth
    name = str(node.get("name", "?"))
    duration = float(node.get("duration_s", 0.0))
    self_time = float(node.get("self_time_s", duration))
    label = f"{indent}{name}"
    lines = [
        f"{label:<36}{_fmt_time(duration):>10}  "
        f"(self {_fmt_time(self_time)})"
        f"{_fmt_attrs(node.get('attributes') or {})}"
    ]
    for child in node.get("children") or []:
        lines.extend(render_span(child, depth + 1))
    return lines


def load_spans(document) -> List[Dict[str, object]]:
    """Accept a trace/telemetry document, a bare span dict, or a span list.

    A ``repro.telemetry/v1`` document (or any dict carrying a ``trace``
    sub-document) is unwrapped to its embedded trace first.
    """
    if isinstance(document, list):
        return document
    if isinstance(document, dict) and isinstance(document.get("trace"), dict):
        schema = document.get("schema")
        if schema not in (None, TELEMETRY_SCHEMA):
            raise ValueError(
                f"unsupported schema {schema!r} (expected {TELEMETRY_SCHEMA!r} "
                f"for documents embedding a trace, or {TRACE_SCHEMA!r})"
            )
        return load_spans(document["trace"])
    if isinstance(document, dict) and "spans" in document:
        schema = document.get("schema")
        if schema not in (None, TRACE_SCHEMA):
            raise ValueError(f"unsupported trace schema {schema!r}")
        return list(document["spans"])
    if isinstance(document, dict) and "name" in document:
        return [document]
    raise ValueError(
        "not a trace document (expected a span dict, a 'spans' list "
        f"({TRACE_SCHEMA}), or a telemetry document embedding one "
        f"({TELEMETRY_SCHEMA}))"
    )


def render_document(document) -> str:
    spans = load_spans(document)
    if not spans:
        return "(no spans recorded — is REPRO_OBS enabled?)"
    lines: List[str] = []
    for root in spans:
        lines.extend(render_span(root))
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Render a repro.trace/v1 JSON document as an indented tree"
    )
    parser.add_argument(
        "path", help="trace JSON file ('-' reads the document from stdin)"
    )
    args = parser.parse_args(argv)
    if args.path == "-":
        document = json.load(sys.stdin)
    else:
        with open(args.path, "r", encoding="utf-8") as fh:
            document = json.load(fh)
    print(render_document(document))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
