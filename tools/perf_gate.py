#!/usr/bin/env python
"""Performance gate: record assembly/DC-iteration medians to BENCH_assembly.json.

Runs the compiled-assembly engine on one instance per Fig. 10 class (dense /
sparse R-MAT) through the shared :mod:`repro.bench.assembly` harness — the
same instance selection and metrics the pytest thresholds in
``benchmarks/bench_assembly.py`` enforce — and writes median timings so later
PRs can track the perf trajectory of the MNA hot path::

    PYTHONPATH=src python tools/perf_gate.py [--scale 0.25] [--repeats 5]
                                             [--output BENCH_assembly.json]

The JSON maps each instance class to

* ``unknowns`` / ``diodes`` — instance size,
* ``assembly_ms`` — median compiled ``matrix(states) + rhs()`` time,
* ``assembly_ms_legacy`` — the reference loop assembler on the same instance,
* ``dc_solve_ms`` — median end-to-end DC solve (compiled + SMW),
* ``dc_iteration_ms`` — ``dc_solve_ms`` divided by the diode-state iteration
  count (the headline "median iteration time"),
* ``assembly_speedup`` / ``dc_speedup`` / ``smw_speedup`` — compiled vs
  legacy, and SMW-enabled vs refactorise-always.

The gate only *records*; regression thresholds live in
``benchmarks/bench_assembly.py`` where pytest can enforce them.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench import measure_assembly_class  # noqa: E402


def _as_record(metrics: dict) -> dict:
    return {
        "workload": metrics["workload"],
        "unknowns": metrics["unknowns"],
        "diodes": metrics["diodes"],
        "assembly_ms": round(metrics["assembly_compiled_s"] * 1e3, 4),
        "assembly_ms_legacy": round(metrics["assembly_legacy_s"] * 1e3, 4),
        "assembly_speedup": round(
            metrics["assembly_legacy_s"] / metrics["assembly_compiled_s"], 2
        ),
        "dc_solve_ms": round(metrics["dc_compiled_s"] * 1e3, 3),
        "dc_solve_ms_legacy": round(metrics["dc_legacy_s"] * 1e3, 3),
        "dc_iteration_ms": round(
            metrics["dc_compiled_s"] * 1e3 / max(1, metrics["iterations"]), 3
        ),
        "dc_iterations": metrics["iterations"],
        "dc_speedup": round(metrics["dc_legacy_s"] / metrics["dc_compiled_s"], 2),
        "smw_speedup": round(metrics["dc_no_smw_s"] / metrics["dc_compiled_s"], 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.25,
                        help="Fig. 10 workload scale (default 0.25)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timing repetitions per metric (median is kept)")
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_assembly.json")
    args = parser.parse_args(argv)

    report = {
        "scale": args.scale,
        "repeats": args.repeats,
        "classes": {
            regime: _as_record(
                measure_assembly_class(
                    regime, args.scale, repeats=args.repeats,
                    reducer=statistics.median,
                )
            )
            for regime in ("dense", "sparse")
        },
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    for regime, row in report["classes"].items():
        print(
            f"  {regime} ({row['workload']}, {row['unknowns']} unknowns): "
            f"assembly {row['assembly_ms']} ms ({row['assembly_speedup']}x), "
            f"dc iteration {row['dc_iteration_ms']} ms, "
            f"dc {row['dc_speedup']}x, smw {row['smw_speedup']}x"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
