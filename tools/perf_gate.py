#!/usr/bin/env python
"""Performance gate: record perf-trajectory medians to BENCH_*.json files.

Runs the shared :mod:`repro.bench` harnesses — the same instance selection
and metrics the pytest thresholds in ``benchmarks/`` enforce — and writes
median timings so later PRs can track the perf trajectory::

    PYTHONPATH=src python tools/perf_gate.py [--suite NAME|all] [--list-suites]
                                             [--scale 0.25] [--repeats 5]

``--list-suites`` prints the registered suite names and their output files;
an unknown ``--suite`` fails fast with the same list.

``--suite assembly`` (the default) writes ``BENCH_assembly.json`` with, per
Fig. 10 instance class,

* ``unknowns`` / ``diodes`` — instance size,
* ``assembly_ms`` — median compiled ``matrix(states) + rhs()`` time,
* ``assembly_ms_legacy`` — the reference loop assembler on the same instance,
* ``dc_solve_ms`` — median end-to-end DC solve (compiled + SMW),
* ``dc_iteration_ms`` — ``dc_solve_ms`` divided by the diode-state iteration
  count (the headline "median iteration time"),
* ``assembly_speedup`` / ``dc_speedup`` / ``smw_speedup`` — compiled vs
  legacy, and SMW-enabled vs refactorise-always.

``--suite streaming`` writes ``BENCH_streaming.json`` with, per class, the
median cold-vs-warm re-solve times of a 5%-of-edges capacity-update stream
(classical incremental repair and analog warm re-solve), the speedups, and
the worst warm/cold flow-value disagreement.

``--suite shard`` writes ``BENCH_shard.json`` with, per grid instance
class, 1-shard cold vs sequential 2-way vs N-way parallel sharded solving
(values, iterations, end-to-end and per-iteration wall clock, speedups)
plus the R-MAT coordination-overhead record (N-way vs 1-shard cold on the
large dense Fig. 10 instance — R-MAT's hubs bloat every overlap band, so
this records the price of scaling past one substrate, not a win).  Use
``--scale 1.0`` (the ``make perf-gate-shard`` default) for instances large
enough that N-way parallel beats sequential 2-way.

``--suite problems`` writes ``BENCH_problems.json`` with, per reduction
class (matching / paths / segmentation / closure), the reduced-network
size, the per-stage medians (reduction build, backend solve, decode +
certificate), the reduction-layer overhead fraction and the certificate
status.

``--suite kernel`` writes ``BENCH_kernel.json`` with, per conformance-
corpus instance class (grid / rmat / bipartite), the median reference
Dinic and flat-array :class:`KernelDinic` wall clocks on the identical
network, the speedup, the kernel's discharge-sweep count and the relative
flow-value disagreement.  The default scale (0.25) is the headline size —
the 64x64 vision grid where the kernel's >=10x floor is enforced by
``benchmarks/bench_kernel.py``.

``--suite resilience`` writes ``BENCH_resilience.json`` with the fault-free
overhead of the resilient solve path (deadline scope + failover wrapper +
breaker bookkeeping) over the plain service backend on the kernel-corpus
grid, and the recovered-solve latency per injected fault class
(convergence / singular / error degrade to the certified reference Dinic;
stall records the deadline-abort lag).  The <5 % overhead ceiling is
enforced by ``benchmarks/bench_resilience.py``.

``--suite obs`` writes ``BENCH_obs.json`` with the observability layer's
cost on the kernel-corpus grid: the same ``kernel-dinic`` solve timed raw
(bare algorithm), through the service backend with obs disabled (the
default no-op path), and with obs enabled (live spans + per-sweep probe
counters), plus both overhead fractions against raw.  The ceilings
(disabled <2 %, enabled <10 %) are enforced by ``benchmarks/bench_obs.py``.

``--suite serving`` writes ``BENCH_serving.json`` with the asyncio front
door's sustained RPS and p50/p99 end-to-end latency under the seeded mixed
workload (duplicate-heavy grids, four tenants, mixed priorities), plus the
coalescing on-vs-off wall-clock speedup with actual backend-solve counts.
The >=2x coalescing floor is enforced by ``benchmarks/bench_serving.py``.

Every run also *appends* itself to a bounded ``history`` list inside the
output file (each entry is the run's report plus a ``recorded_at`` UTC
timestamp; the newest :data:`HISTORY_LIMIT` entries are kept).  The flat
top-level keys always describe the latest full run, so existing consumers
keep reading them unchanged; ``tools/bench_watch.py`` reads the history to
compare a fresh run against the committed trajectory.  ``--history-only``
appends the run to the history *without* replacing the flat latest-run
keys — useful for recording extra scales (e.g. smoke-scale entries for
``make bench-check``) without disturbing the headline record.

The gate only *records*; regression thresholds live in the corresponding
``benchmarks/bench_*.py`` where pytest can enforce them.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench import (  # noqa: E402
    KERNEL_CLASSES,
    PROBLEM_CLASSES,
    RESILIENCE_FAULT_CLASSES,
    measure_assembly_class,
    measure_kernel_class,
    measure_obs_overhead,
    measure_problems_class,
    measure_recovery_class,
    measure_resilience_overhead,
    measure_coalescing_speedup,
    measure_serving_mixed,
    measure_shard_class,
    measure_shard_rmat,
    measure_streaming_class,
)


def _as_record(metrics: dict) -> dict:
    return {
        "workload": metrics["workload"],
        "unknowns": metrics["unknowns"],
        "diodes": metrics["diodes"],
        "assembly_ms": round(metrics["assembly_compiled_s"] * 1e3, 4),
        "assembly_ms_legacy": round(metrics["assembly_legacy_s"] * 1e3, 4),
        "assembly_speedup": round(
            metrics["assembly_legacy_s"] / metrics["assembly_compiled_s"], 2
        ),
        "dc_solve_ms": round(metrics["dc_compiled_s"] * 1e3, 3),
        "dc_solve_ms_legacy": round(metrics["dc_legacy_s"] * 1e3, 3),
        "dc_iteration_ms": round(
            metrics["dc_compiled_s"] * 1e3 / max(1, metrics["iterations"]), 3
        ),
        "dc_iterations": metrics["iterations"],
        "dc_speedup": round(metrics["dc_legacy_s"] / metrics["dc_compiled_s"], 2),
        "smw_speedup": round(metrics["dc_no_smw_s"] / metrics["dc_compiled_s"], 2),
    }


def _as_streaming_record(metrics: dict) -> dict:
    return {
        "workload": metrics["workload"],
        "num_vertices": metrics["num_vertices"],
        "num_edges": metrics["num_edges"],
        "delta_edges": metrics["delta_edges"],
        "steps": metrics["steps"],
        "classical_cold_ms": round(metrics["classical_cold_s"] * 1e3, 4),
        "classical_warm_ms": round(metrics["classical_warm_s"] * 1e3, 4),
        "classical_speedup": round(metrics["classical_speedup"], 2),
        "classical_value_diff": float(f"{metrics['classical_value_diff']:.3e}"),
        "analog_cold_ms": round(metrics["analog_cold_s"] * 1e3, 3),
        "analog_warm_ms": round(metrics["analog_warm_s"] * 1e3, 3),
        "analog_speedup": round(metrics["analog_speedup"], 2),
        "analog_value_diff": float(f"{metrics['analog_value_diff']:.3e}"),
        "analog_warm_refactorizations": metrics["analog_warm_refactorizations"],
    }


def _as_shard_record(metrics: dict) -> dict:
    return {
        "workload": metrics["workload"],
        "num_vertices": metrics["num_vertices"],
        "num_edges": metrics["num_edges"],
        "shards": metrics["shards"],
        "cold_ms": round(metrics["cold_s"] * 1e3, 3),
        "seq2_ms": round(metrics["seq2_s"] * 1e3, 2),
        "seq2_iterations": metrics["seq2_iterations"],
        "seq2_iter_ms": round(metrics["seq2_iter_s"] * 1e3, 3),
        "parn_ms": round(metrics["parn_s"] * 1e3, 2),
        "parn_iterations": metrics["parn_iterations"],
        "parn_iter_ms": round(metrics["parn_iter_s"] * 1e3, 3),
        "speedup": round(metrics["speedup"], 2),
        "iter_speedup": round(metrics["iter_speedup"], 2),
        "seq2_value_diff": float(f"{metrics['seq2_value_diff']:.3e}"),
        "parn_value_diff": float(f"{metrics['parn_value_diff']:.3e}"),
        "converged": bool(metrics["seq2_converged"] and metrics["parn_converged"]),
    }


def _assembly_report(args) -> dict:
    return {
        "scale": args.scale,
        "repeats": args.repeats,
        "classes": {
            regime: _as_record(
                measure_assembly_class(
                    regime, args.scale, repeats=args.repeats,
                    reducer=statistics.median,
                )
            )
            for regime in ("dense", "sparse")
        },
    }


def _streaming_report(args) -> dict:
    return {
        "scale": args.scale,
        "steps": args.repeats,
        "delta_fraction": 0.05,
        "classes": {
            regime: _as_streaming_record(
                measure_streaming_class(
                    regime, args.scale, steps=args.repeats,
                    reducer=statistics.median,
                )
            )
            for regime in ("dense", "sparse")
        },
    }


def _shard_report(args) -> dict:
    rmat = measure_shard_rmat(
        args.scale, repeats=args.repeats, reducer=statistics.median
    )
    return {
        "scale": args.scale,
        "repeats": args.repeats,
        "classes": {
            regime: _as_shard_record(
                measure_shard_class(
                    regime, args.scale, repeats=args.repeats,
                    reducer=statistics.median,
                )
            )
            for regime in ("band", "wide")
        },
        "rmat_overhead": {
            "workload": rmat["workload"],
            "num_edges": rmat["num_edges"],
            "shards": rmat["shards"],
            "cold_ms": round(rmat["cold_s"] * 1e3, 3),
            "parn_ms": round(rmat["parn_s"] * 1e3, 2),
            "parn_iterations": rmat["parn_iterations"],
            "overhead": round(rmat["overhead"], 2),
            "parn_value_diff": float(f"{rmat['parn_value_diff']:.3e}"),
            "overlap_fraction": round(rmat["overlap_fraction"], 3),
        },
    }


def _as_problems_record(metrics: dict) -> dict:
    return {
        "workload": metrics["workload"],
        "backend": metrics["backend"],
        "num_vertices": metrics["num_vertices"],
        "num_edges": metrics["num_edges"],
        "objective": round(float(metrics["objective"]), 4),
        "certified": bool(metrics["certified"]),
        "decode_source": metrics["decode_source"],
        "reduce_ms": round(metrics["reduce_s"] * 1e3, 4),
        "solve_ms": round(metrics["solve_s"] * 1e3, 4),
        "decode_ms": round(metrics["decode_s"] * 1e3, 4),
        "total_ms": round(metrics["total_s"] * 1e3, 4),
        "overhead_fraction": round(metrics["overhead_fraction"], 4),
    }


def _problems_report(args) -> dict:
    return {
        "scale": args.scale,
        "repeats": args.repeats,
        "classes": {
            kind: _as_problems_record(
                measure_problems_class(
                    kind, args.scale, repeats=args.repeats,
                    reducer=statistics.median,
                )
            )
            for kind in PROBLEM_CLASSES
        },
    }


def _as_kernel_record(metrics: dict) -> dict:
    return {
        "workload": metrics["workload"],
        "num_vertices": metrics["num_vertices"],
        "num_edges": metrics["num_edges"],
        "dinic_ms": round(metrics["dinic_s"] * 1e3, 3),
        "kernel_ms": round(metrics["kernel_s"] * 1e3, 3),
        "speedup": round(metrics["speedup"], 2),
        "kernel_sweeps": metrics["kernel_sweeps"],
        "value_diff": float(f"{metrics['value_diff']:.3e}"),
    }


def _kernel_report(args) -> dict:
    return {
        "scale": args.scale,
        "repeats": args.repeats,
        "classes": {
            regime: _as_kernel_record(
                measure_kernel_class(
                    regime, args.scale, repeats=args.repeats,
                    reducer=statistics.median,
                )
            )
            for regime in KERNEL_CLASSES
        },
    }


def _resilience_report(args) -> dict:
    # min, not median: the overhead is a ratio of near-identical solves and
    # contention only inflates samples (see repro.bench.resilience).
    overhead = measure_resilience_overhead(
        "grid", args.scale, repeats=args.repeats, reducer=min
    )
    recovery = {
        kind: measure_recovery_class(
            kind, args.scale, repeats=args.repeats, reducer=statistics.median
        )
        for kind in RESILIENCE_FAULT_CLASSES
    }
    return {
        "scale": args.scale,
        "repeats": args.repeats,
        "overhead": {
            "workload": overhead["workload"],
            "num_vertices": overhead["num_vertices"],
            "num_edges": overhead["num_edges"],
            "raw_ms": round(overhead["raw_s"] * 1e3, 3),
            "backend_ms": round(overhead["backend_s"] * 1e3, 3),
            "resilient_ms": round(overhead["resilient_s"] * 1e3, 3),
            "overhead_fraction": round(overhead["overhead_fraction"], 4),
            "value_diff": float(f"{overhead['value_diff']:.3e}"),
        },
        "recovery": {
            kind: {
                "workload": row["workload"],
                "outcome": row["outcome"],
                "fallback_backend": row["fallback_backend"],
                "trail_length": row["trail_length"],
                "baseline_ms": round(row["baseline_s"] * 1e3, 3),
                "recovered_ms": round(row["recovered_s"] * 1e3, 3),
                "recovery_ratio": round(row["recovery_ratio"], 2),
                "value_error": float(f"{row['value_error']:.3e}"),
            }
            for kind, row in recovery.items()
        },
    }


def _obs_report(args) -> dict:
    # min, not median: the overheads are ratios of near-identical solves
    # and contention only inflates samples (see repro.bench.obs).
    overhead = measure_obs_overhead(
        "grid", args.scale, repeats=args.repeats, reducer=min
    )
    return {
        "scale": args.scale,
        "repeats": args.repeats,
        "overhead": {
            "workload": overhead["workload"],
            "num_vertices": overhead["num_vertices"],
            "num_edges": overhead["num_edges"],
            "raw_ms": round(overhead["raw_s"] * 1e3, 3),
            "disabled_ms": round(overhead["disabled_s"] * 1e3, 3),
            "enabled_ms": round(overhead["enabled_s"] * 1e3, 3),
            "disabled_overhead_fraction": round(
                overhead["disabled_overhead_fraction"], 4
            ),
            "enabled_overhead_fraction": round(
                overhead["enabled_overhead_fraction"], 4
            ),
            "enabled_sweeps": overhead["enabled_sweeps"],
            "enabled_root_spans": overhead["enabled_root_spans"],
            "value_diff": float(f"{overhead['value_diff']:.3e}"),
        },
    }


def _serving_report(args) -> dict:
    mixed = measure_serving_mixed(args.scale, repeats=args.repeats)
    coalesce = measure_coalescing_speedup(args.scale)
    return {
        "scale": args.scale,
        "repeats": args.repeats,
        "mixed": {
            "workload": mixed["workload"],
            "num_vertices": mixed["num_vertices"],
            "num_edges": mixed["num_edges"],
            "requests": mixed["requests"],
            "workers": mixed["workers"],
            "wall_s": round(mixed["wall_s"], 4),
            "rps": round(mixed["rps"], 1),
            "p50_ms": round(mixed["p50_ms"], 3),
            "p99_ms": round(mixed["p99_ms"], 3),
            "coalesced": mixed["coalesced"],
            "shed": mixed["shed"],
            "failed": mixed["failed"],
        },
        "coalesce": {
            "workload": coalesce["workload"],
            "num_edges": coalesce["num_edges"],
            "waves": coalesce["waves"],
            "duplicates": coalesce["duplicates"],
            "on_ms": round(coalesce["on_s"] * 1e3, 2),
            "off_ms": round(coalesce["off_s"] * 1e3, 2),
            "on_solves": coalesce["on_solves"],
            "off_solves": coalesce["off_solves"],
            "speedup": round(coalesce["speedup"], 2),
        },
    }


#: Newest history entries kept per BENCH file; older runs fall off so the
#: committed records stay reviewably small.
HISTORY_LIMIT = 50


def _load_existing(output: Path) -> dict:
    """The committed record at ``output``, or ``{}`` when absent/corrupt."""
    if not output.exists():
        return {}
    try:
        existing = json.loads(output.read_text())
    except (OSError, ValueError):
        return {}
    return existing if isinstance(existing, dict) else {}


def _merge_history(existing: dict, report: dict, history_only: bool) -> dict:
    """Fold ``report`` into ``existing``: flat latest-run keys + history.

    The returned document is ``report``'s flat keys (or, under
    ``history_only`` with a pre-existing record, the *existing* flat keys)
    with a ``history`` list whose final entry is this run stamped with
    ``recorded_at``.  History entries never nest their own ``history``.
    """
    history = [e for e in existing.get("history", []) if isinstance(e, dict)]
    entry = {k: v for k, v in report.items() if k != "history"}
    entry["recorded_at"] = datetime.now(timezone.utc).isoformat(timespec="seconds")
    history.append(entry)
    history = history[-HISTORY_LIMIT:]
    flat = existing if history_only and existing else report
    merged = {k: v for k, v in flat.items() if k != "history"}
    merged["history"] = history
    return merged


#: Registered suites: name -> (report builder, default output file name).
SUITES = {
    "assembly": (_assembly_report, "BENCH_assembly.json"),
    "streaming": (_streaming_report, "BENCH_streaming.json"),
    "shard": (_shard_report, "BENCH_shard.json"),
    "problems": (_problems_report, "BENCH_problems.json"),
    "kernel": (_kernel_report, "BENCH_kernel.json"),
    "resilience": (_resilience_report, "BENCH_resilience.json"),
    "obs": (_obs_report, "BENCH_obs.json"),
    "serving": (_serving_report, "BENCH_serving.json"),
}


def _print_suite_summary(suite: str, report: dict) -> None:
    if suite == "serving":
        mixed = report["mixed"]
        coalesce = report["coalesce"]
        print(
            f"  mixed ({mixed['workload']}, {mixed['requests']} requests, "
            f"{mixed['workers']} workers): {mixed['rps']} rps, "
            f"p50 {mixed['p50_ms']} ms, p99 {mixed['p99_ms']} ms, "
            f"{mixed['coalesced']} coalesced, {mixed['shed']} shed, "
            f"{mixed['failed']} failed"
        )
        print(
            f"  coalescing ({coalesce['workload']}): on {coalesce['on_ms']} ms "
            f"({coalesce['on_solves']} solves) vs off {coalesce['off_ms']} ms "
            f"({coalesce['off_solves']} solves) = {coalesce['speedup']}x"
        )
        return
    if suite == "obs":
        over = report["overhead"]
        print(
            f"  obs cost ({over['workload']}, {over['num_edges']} edges): "
            f"raw {over['raw_ms']} ms, disabled {over['disabled_ms']} ms "
            f"({over['disabled_overhead_fraction']:+.1%}), enabled "
            f"{over['enabled_ms']} ms ({over['enabled_overhead_fraction']:+.1%}, "
            f"{over['enabled_sweeps']} sweeps counted)"
        )
        return
    if suite == "resilience":
        over = report["overhead"]
        print(
            f"  fault-free ({over['workload']}, {over['num_edges']} edges): "
            f"resilient {over['resilient_ms']} ms vs backend "
            f"{over['backend_ms']} ms ({over['overhead_fraction']:+.1%} overhead)"
        )
        for kind, row in report["recovery"].items():
            tail = (
                f"-> {row['fallback_backend']}"
                if row["outcome"] == "degraded"
                else row["outcome"]
            )
            print(
                f"  {kind}: {row['recovered_ms']} ms vs {row['baseline_ms']} ms "
                f"fault-free ({row['recovery_ratio']}x, {tail})"
            )
        return
    for regime, row in report["classes"].items():
        if suite == "assembly":
            print(
                f"  {regime} ({row['workload']}, {row['unknowns']} unknowns): "
                f"assembly {row['assembly_ms']} ms ({row['assembly_speedup']}x), "
                f"dc iteration {row['dc_iteration_ms']} ms, "
                f"dc {row['dc_speedup']}x, smw {row['smw_speedup']}x"
            )
        elif suite == "streaming":
            print(
                f"  {regime} ({row['workload']}, {row['num_edges']} edges, "
                f"{row['delta_edges']}-edge deltas): "
                f"classical {row['classical_warm_ms']} ms warm vs "
                f"{row['classical_cold_ms']} ms cold ({row['classical_speedup']}x), "
                f"analog {row['analog_warm_ms']} ms warm vs "
                f"{row['analog_cold_ms']} ms cold ({row['analog_speedup']}x)"
            )
        elif suite == "kernel":
            print(
                f"  {regime} ({row['workload']}, {row['num_edges']} edges): "
                f"kernel {row['kernel_ms']} ms vs dinic {row['dinic_ms']} ms "
                f"({row['speedup']}x, {row['kernel_sweeps']} sweeps, "
                f"value diff {row['value_diff']:.1e})"
            )
        elif suite == "problems":
            print(
                f"  {regime} ({row['workload']}, |E|={row['num_edges']}): "
                f"reduce {row['reduce_ms']} ms + solve {row['solve_ms']} ms + "
                f"decode {row['decode_ms']} ms "
                f"({row['overhead_fraction']:.0%} reduction-layer overhead, "
                f"{'certified' if row['certified'] else 'CERTIFICATE FAILED'})"
            )
        else:
            print(
                f"  {regime} ({row['workload']}, {row['num_edges']} edges): "
                f"{row['shards']}-way parallel {row['parn_ms']} ms "
                f"({row['parn_iterations']} it) vs sequential 2-way "
                f"{row['seq2_ms']} ms ({row['seq2_iterations']} it): "
                f"{row['speedup']}x end-to-end, {row['iter_speedup']}x per iteration"
            )
    if suite == "shard":
        rmat = report["rmat_overhead"]
        print(
            f"  rmat overhead ({rmat['workload']}, {rmat['num_edges']} edges): "
            f"{rmat['shards']}-way {rmat['parn_ms']} ms vs cold {rmat['cold_ms']} ms "
            f"({rmat['overhead']}x overhead, {rmat['overlap_fraction']:.0%} overlap)"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--suite", default="assembly",
                        help="which perf record to refresh: "
                             f"{', '.join(sorted(SUITES))}, or 'all' "
                             "(default assembly)")
    parser.add_argument("--list-suites", action="store_true",
                        help="print the registered suites and exit")
    parser.add_argument("--scale", type=float, default=0.25,
                        help="workload scale (default 0.25)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timing repetitions / update steps (median is kept)")
    parser.add_argument("--output", type=Path, default=None,
                        help="override the output path (single-suite runs only)")
    parser.add_argument("--history-only", action="store_true",
                        help="append this run to the record's history without "
                             "replacing the flat latest-run keys")
    args = parser.parse_args(argv)

    if args.list_suites:
        # The listing is machine-consumable output and must go to *stdout*
        # (``perf_gate.py --list-suites | grep ...``); only diagnostics may
        # use stderr.  Guarded by tests/test_perf_gate_cli.py.
        for name in sorted(SUITES):
            print(f"{name}\t-> {SUITES[name][1]}", file=sys.stdout)
        sys.stdout.flush()
        return 0
    if args.suite != "all" and args.suite not in SUITES:
        parser.error(
            f"unknown suite {args.suite!r}; valid suites: "
            f"{', '.join(sorted(SUITES))}, or 'all'"
        )

    suites = tuple(sorted(SUITES)) if args.suite == "all" else (args.suite,)
    if args.output is not None and len(suites) > 1:
        parser.error("--output needs a single --suite")

    for suite in suites:
        builder, default_output = SUITES[suite]
        report = builder(args)
        output = args.output or REPO_ROOT / default_output
        merged = _merge_history(_load_existing(output), report, args.history_only)
        output.write_text(json.dumps(merged, indent=2) + "\n")
        runs = len(merged["history"])
        print(f"wrote {output} ({runs} history run{'s' if runs != 1 else ''})")
        _print_suite_summary(suite, report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
