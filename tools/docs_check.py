#!/usr/bin/env python
"""Documentation health check (the ``make docs-check`` target).

Two gates, both hard failures:

1. **Intra-doc links** — every relative markdown link in ``README.md`` and
   ``docs/*.md`` must point at an existing file or directory, and an
   ``#anchor`` on a markdown target must match a heading in that file.
2. **Docstring coverage** — every public module, class, function and method
   in ``repro.service`` must carry a docstring (the service is the
   documented front door; its API surface may not grow undocumented).

Exit status 0 when clean, 1 with a findings list otherwise.
"""

from __future__ import annotations

import inspect
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
sys.path.insert(0, str(SRC))

LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
DOC_FILES = [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]
DOCSTRING_PACKAGES = ["repro.service"]


def heading_anchors(markdown: str) -> set:
    """GitHub-style anchors of every heading in a markdown document."""
    anchors = set()
    for line in markdown.splitlines():
        match = re.match(r"#+\s+(.*)", line)
        if match:
            text = re.sub(r"[`*_]", "", match.group(1)).strip().lower()
            anchors.add(re.sub(r"[^\w\- ]", "", text).replace(" ", "-"))
    return anchors


def check_links() -> list:
    problems = []
    for doc in DOC_FILES:
        if not doc.exists():
            problems.append(f"{doc.relative_to(REPO_ROOT)}: file missing")
            continue
        text = doc.read_text()
        for target in LINK_PATTERN.findall(text):
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, ...
                continue
            if target.startswith("#"):
                if target[1:] not in heading_anchors(text):
                    problems.append(
                        f"{doc.relative_to(REPO_ROOT)}: broken anchor {target!r}"
                    )
                continue
            path_part, _, anchor = target.partition("#")
            resolved = (doc.parent / path_part).resolve()
            if not resolved.exists():
                problems.append(
                    f"{doc.relative_to(REPO_ROOT)}: broken link {target!r}"
                )
            elif anchor and resolved.suffix == ".md":
                if anchor not in heading_anchors(resolved.read_text()):
                    problems.append(
                        f"{doc.relative_to(REPO_ROOT)}: broken anchor {target!r}"
                    )
    return problems


def _public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.getmodule(obj) is not module:
            continue  # re-exports are someone else's responsibility
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield name, obj
            if inspect.isclass(obj):
                for method_name, method in vars(obj).items():
                    if method_name.startswith("_"):
                        continue
                    if inspect.isfunction(method) or isinstance(method, property):
                        yield f"{name}.{method_name}", method


def check_docstrings() -> list:
    import importlib
    import pkgutil

    problems = []
    for package_name in DOCSTRING_PACKAGES:
        package = importlib.import_module(package_name)
        module_names = [package_name] + [
            f"{package_name}.{info.name}"
            for info in pkgutil.iter_modules(package.__path__)
        ]
        for module_name in module_names:
            module = importlib.import_module(module_name)
            if not (module.__doc__ or "").strip():
                problems.append(f"{module_name}: missing module docstring")
            for name, obj in _public_members(module):
                doc = inspect.getdoc(obj)
                if not (doc or "").strip():
                    problems.append(f"{module_name}.{name}: missing docstring")
    return problems


def main() -> int:
    problems = check_links() + check_docstrings()
    if problems:
        print(f"docs-check: {len(problems)} problem(s)")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    checked = ", ".join(str(d.relative_to(REPO_ROOT)) for d in DOC_FILES)
    print(f"docs-check: OK ({checked}; docstrings of {', '.join(DOCSTRING_PACKAGES)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
