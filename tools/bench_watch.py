#!/usr/bin/env python
"""Perf-regression sentinel: judge a fresh run against the BENCH trajectory.

``tools/perf_gate.py`` records; this tool *judges*.  For each suite it
takes a candidate report — either a fresh in-memory run (``--run``) or a
saved report file (``--candidate``) — and compares the suite's tracked
timing metrics against the best same-scale entry in the committed
``BENCH_*.json`` history (the flat latest-run keys count as the newest
entry).  A metric regresses when::

    candidate_ms > tolerance * best_same_scale_baseline_ms

and any regression makes the exit status nonzero, so ``make bench-check``
can hold the line in CI.  Comparisons are strictly same-scale: a smoke run
is never judged against a full-scale record.  Suites with no same-scale
history pass as ``new-baseline`` — the committed record simply has nothing
to defend yet.

The default tolerance (1.6x) is deliberately loose: BENCH medians come
from shared, noisy CI hosts, and the sentinel's job is catching real
slowdowns (an accidental O(n^2), a dropped cache), not 10 % jitter.
Override per run with ``--tolerance``.

Usage::

    PYTHONPATH=src python tools/bench_watch.py --suite all --run \
        --scale 0.05 --repeats 1
    PYTHONPATH=src python tools/bench_watch.py --suite kernel \
        --candidate fresh_kernel.json
    python tools/bench_watch.py --list-suites

Nothing is ever written: the sentinel reads committed records and prints a
verdict table (``--json`` for a machine-readable document).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "tools"))

import perf_gate  # noqa: E402

#: Tracked timing metrics per suite: dotted paths into the report, with
#: ``*`` expanding over every key at that level (instance classes).  Only
#: headline end-to-end timings are tracked — per-stage breakdowns shift
#: with refactors without the total regressing.
TRACKED_METRICS: Dict[str, List[str]] = {
    "assembly": ["classes.*.assembly_ms", "classes.*.dc_solve_ms"],
    "streaming": ["classes.*.classical_warm_ms", "classes.*.analog_warm_ms"],
    "shard": ["classes.*.parn_ms"],
    "problems": ["classes.*.total_ms"],
    "kernel": ["classes.*.kernel_ms"],
    "resilience": ["overhead.resilient_ms"],
    "obs": ["overhead.disabled_ms", "overhead.enabled_ms"],
    "serving": ["mixed.p50_ms", "mixed.p99_ms"],
}

#: Default regression tolerance: candidate/baseline ratios above this fail.
DEFAULT_TOLERANCE = 1.6


def extract_metrics(report: dict, paths: List[str]) -> Dict[str, float]:
    """Resolve tracked ``paths`` in ``report`` to ``{flat.path: value}``.

    ``*`` segments expand over the dict keys present at that level, so the
    sentinel follows whatever instance classes a record actually has;
    missing paths are silently absent (a suite may gain classes over time).
    """
    values: Dict[str, float] = {}
    for path in paths:
        frontier = [("", report)]
        for segment in path.split("."):
            grown: List[tuple] = []
            for prefix, node in frontier:
                if not isinstance(node, dict):
                    continue
                keys = sorted(node) if segment == "*" else [segment]
                for key in keys:
                    if key in node:
                        flat = f"{prefix}.{key}" if prefix else key
                        grown.append((flat, node[key]))
            frontier = grown
        for flat, value in frontier:
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                values[flat] = float(value)
    return values


def trajectory(record: dict) -> List[dict]:
    """The record's runs, oldest first: history entries, else the flat keys."""
    history = [e for e in record.get("history", []) if isinstance(e, dict)]
    if history:
        return history
    flat = {k: v for k, v in record.items() if k != "history"}
    return [flat] if flat else []


def baseline_metrics(
    record: dict, paths: List[str], scale: Optional[float]
) -> Dict[str, float]:
    """Best (minimum) value per tracked metric across same-scale runs."""
    best: Dict[str, float] = {}
    for entry in trajectory(record):
        if scale is not None and entry.get("scale") != scale:
            continue
        for flat, value in extract_metrics(entry, paths).items():
            if flat not in best or value < best[flat]:
                best[flat] = value
    return best


def judge_suite(
    suite: str, record: dict, candidate: dict, tolerance: float
) -> List[dict]:
    """Verdict rows for one suite's candidate report vs its committed record."""
    paths = TRACKED_METRICS[suite]
    scale = candidate.get("scale")
    candidate_values = extract_metrics(candidate, paths)
    baselines = baseline_metrics(record, paths, scale)
    rows: List[dict] = []
    for flat in sorted(candidate_values):
        value = candidate_values[flat]
        base = baselines.get(flat)
        row = {
            "suite": suite,
            "metric": flat,
            "scale": scale,
            "candidate_ms": round(value, 3),
            "baseline_ms": round(base, 3) if base is not None else None,
            "ratio": None,
            "tolerance": tolerance,
            "status": "new-baseline",
        }
        if base is not None:
            ratio = value / base if base > 0 else float("inf")
            row["ratio"] = round(ratio, 3)
            row["status"] = "regressed" if ratio > tolerance else "ok"
        rows.append(row)
    if not rows:
        rows.append({
            "suite": suite,
            "metric": "(none)",
            "scale": scale,
            "candidate_ms": None,
            "baseline_ms": None,
            "ratio": None,
            "tolerance": tolerance,
            "status": "skipped",
        })
    return rows


def _fmt(value, width: int) -> str:
    if value is None:
        text = "-"
    elif isinstance(value, float):
        text = f"{value:.3f}"
    else:
        text = str(value)
    return text.rjust(width)


def print_verdicts(rows: List[dict]) -> None:
    header = (
        f"{'suite':<11} {'metric':<38} {'candidate':>10} "
        f"{'baseline':>10} {'ratio':>7}  status"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['suite']:<11} {row['metric']:<38} "
            f"{_fmt(row['candidate_ms'], 10)} {_fmt(row['baseline_ms'], 10)} "
            f"{_fmt(row['ratio'], 7)}  {row['status']}"
        )


def _fresh_report(suite: str, scale: float, repeats: int) -> dict:
    """Run the suite's perf_gate builder in-memory (nothing written)."""
    builder, _ = perf_gate.SUITES[suite]
    args = argparse.Namespace(scale=scale, repeats=repeats)
    return builder(args)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--suite", default="all",
                        help="suite to judge: "
                             f"{', '.join(sorted(TRACKED_METRICS))}, or 'all' "
                             "(default all)")
    parser.add_argument("--list-suites", action="store_true",
                        help="print the watched suites and their metrics")
    parser.add_argument("--candidate", type=Path, default=None,
                        help="saved report JSON to judge (single --suite only); "
                             "default is a fresh --run")
    parser.add_argument("--run", action="store_true",
                        help="build the candidate by running the suite fresh "
                             "(the default when --candidate is absent)")
    parser.add_argument("--scale", type=float, default=0.25,
                        help="workload scale for fresh runs (default 0.25); "
                             "judged only against same-scale history")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repetitions for fresh runs (default 3)")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="candidate/baseline ratio above which a metric "
                             f"regresses (default {DEFAULT_TOLERANCE})")
    parser.add_argument("--json", action="store_true",
                        help="emit the verdict rows as a JSON document")
    args = parser.parse_args(argv)

    if args.list_suites:
        for name in sorted(TRACKED_METRICS):
            print(f"{name}\t-> {', '.join(TRACKED_METRICS[name])}")
        return 0
    if args.suite != "all" and args.suite not in TRACKED_METRICS:
        parser.error(
            f"unknown suite {args.suite!r}; valid suites: "
            f"{', '.join(sorted(TRACKED_METRICS))}, or 'all'"
        )
    if args.tolerance <= 1.0:
        parser.error("--tolerance must exceed 1.0")
    suites = tuple(sorted(TRACKED_METRICS)) if args.suite == "all" else (args.suite,)
    if args.candidate is not None and len(suites) > 1:
        parser.error("--candidate needs a single --suite")

    rows: List[dict] = []
    for suite in suites:
        _, record_name = perf_gate.SUITES[suite]
        record_path = REPO_ROOT / record_name
        record = perf_gate._load_existing(record_path)
        if args.candidate is not None:
            candidate = json.loads(args.candidate.read_text())
        else:
            candidate = _fresh_report(suite, args.scale, args.repeats)
        rows.extend(judge_suite(suite, record, candidate, args.tolerance))

    regressions = [r for r in rows if r["status"] == "regressed"]
    if args.json:
        print(json.dumps({"verdicts": rows, "regressions": len(regressions)},
                         indent=2))
    else:
        print_verdicts(rows)
        print()
        if regressions:
            print(f"FAIL: {len(regressions)} metric(s) regressed beyond "
                  f"{args.tolerance}x the committed baseline")
        else:
            print("OK: no tracked metric regressed")
    return 1 if regressions else 0


if __name__ == "__main__":
    raise SystemExit(main())
