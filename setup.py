"""Setup shim.

The pinned offline environment ships a setuptools without wheel/bdist_wheel
support, so PEP 517 editable installs fail.  This shim lets
``pip install -e . --no-build-isolation`` fall back to the legacy
``setup.py develop`` path.  All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
