"""Beyond max-flow: four classic problems on the same solving engine.

The paper's substrate computes one thing — s-t max-flow — but the reduction
layer (:mod:`repro.problems`) turns that single primitive into a family of
workloads.  This example solves, through the same
:class:`~repro.service.problems.ProblemSolveService`:

* a **bipartite matching** (task assignment), certified by a König cover;
* **vertex-disjoint paths** (fault-tolerant routing), certified by a
  Menger separator;
* a **binary image segmentation** (the computer-vision workload the paper
  cites), certified by the energy identity;
* a **project selection** (max-closure investment planning), certified by
  the profit identity —

each on a classical backend, on the analog substrate, and 2-way sharded,
printing the certificate status and stage timings for every route.

Run with:  python examples/problem_reductions.py
"""

from __future__ import annotations

import random

from repro import (
    BipartiteMatching,
    DisjointPaths,
    ImageSegmentation,
    ProblemSolveService,
    ProjectSelection,
)

WORKERS, TASKS = 8, 8
IMAGE_W, IMAGE_H = 8, 5
PROJECTS = 12
ROUTERS = 6


def build_problems(seed: int, workers: int, tasks: int, width: int, height: int,
                   projects: int, routers: int):
    """One deterministic instance per reduction class."""
    rng = random.Random(seed)

    matching = BipartiteMatching(
        [f"worker{i}" for i in range(workers)],
        [f"task{j}" for j in range(tasks)],
        [
            (f"worker{i}", f"task{j}")
            for i in range(workers)
            for j in range(tasks)
            if rng.random() < 0.35
        ],
    )

    mids = [f"r{i}" for i in range(routers)]
    paths = DisjointPaths(
        [("ingress", m) for m in mids]
        + [(m, "egress") for m in mids]
        + [(a, b) for a in mids for b in mids if a != b and rng.random() < 0.3],
        source="ingress",
        sink="egress",
        vertex_disjoint=True,
    )

    # A noisy bright blob on a dark background, like examples/image_segmentation.py
    # but through the certified reduction layer.
    fg_cost, bg_cost = [], []
    for y in range(height):
        fg_row, bg_row = [], []
        for x in range(width):
            bright = 0.8 if (x - width / 2) ** 2 + (y - height / 2) ** 2 < (height / 2) ** 2 else 0.2
            value = min(1.0, max(0.0, bright + rng.gauss(0.0, 0.1)))
            fg_row.append(1.0 - value)  # bright pixels are cheap to call fg
            bg_row.append(value)
        fg_cost.append(fg_row)
        bg_cost.append(bg_row)
    segmentation = ImageSegmentation(fg_cost, bg_cost, smoothness=0.15)

    closure = ProjectSelection(
        {f"p{i}": rng.uniform(-6.0, 8.0) for i in range(projects)},
        [
            (f"p{i}", f"p{j}")
            for i in range(projects)
            for j in range(projects)
            if i != j and rng.random() < 0.15
        ],
    )
    return [matching, paths, segmentation, closure]


def main(
    workers: int = WORKERS,
    tasks: int = TASKS,
    width: int = IMAGE_W,
    height: int = IMAGE_H,
    projects: int = PROJECTS,
    routers: int = ROUTERS,
    seed: int = 7,
) -> None:
    """Solve all four reductions on three backends; shrink sizes for smoke runs."""
    problems = build_problems(seed, workers, tasks, width, height, projects, routers)
    service = ProblemSolveService()

    routes = [
        ("dinic (classical)", dict(backend="dinic")),
        ("analog substrate", dict(backend="analog")),
        ("sharded 2-way", dict(backend="dinic", shards=2)),
    ]
    for problem in problems:
        print(f"\n=== {problem.kind} ===")
        for label, kwargs in routes:
            solved = service.solve(problem, **kwargs)
            print(f"  {label:18s} -> {solved.report.format()}")

    # Show one decoded answer in its domain language.
    matching_solved = service.solve(problems[0], backend="dinic")
    print(f"\nassignment ({int(matching_solved.value)} pairs): "
          f"{sorted(matching_solved.solution.pairs)[:4]} ...")
    seg_solved = service.solve(problems[2], backend="dinic")
    print("segmentation ('#' = foreground):")
    for row in seg_solved.solution.labels:
        print("  " + "".join("#" if label == "fg" else "." for label in row))


if __name__ == "__main__":
    main()
