"""Reconfigurable crossbar demo: program, compute, reprogram (Section 3).

Shows the hardware-level flow: one physical memristor crossbar is programmed
for an instance (row-by-row pulses), solves it, is erased, and is then
reprogrammed for a different instance — the reconfigurability that
distinguishes the substrate from the problem-specific circuits of [42].
Also reports programming statistics, half-select margins, crossbar
utilisation, power and convergence time.

Run with:  python examples/crossbar_reconfiguration.py
"""

from __future__ import annotations

from dataclasses import replace

from repro import (
    CrossbarMaxFlowEngine,
    CrossbarSubstrate,
    NonIdealityModel,
    PowerModel,
    SubstrateParameters,
    push_relabel,
    rmat_graph,
)
from repro.analog import ConvergenceTimeEstimator


def main(
    vertices: int = 48,
    edges: int = 180,
    crossbar_rows: int = 96,
    crossbar_columns: int = 96,
    seeds=(11, 23),
) -> None:
    """Program/solve/reprogram rounds; shrink the sizes for smoke runs."""
    parameters = replace(SubstrateParameters(), rows=crossbar_rows, columns=crossbar_columns)
    substrate = CrossbarSubstrate(parameters)
    engine = CrossbarMaxFlowEngine(
        substrate=substrate,
        nonideal=NonIdealityModel(parasitic_capacitance_f=20e-15),
    )
    estimator = ConvergenceTimeEstimator()
    power_model = PowerModel()

    for round_index, seed in enumerate(seeds, start=1):
        network = rmat_graph(vertices, edges, seed=seed)
        exact = push_relabel(network).flow_value
        result = engine.solve(network, vflow_v=12.0)

        report = result.programming
        occupancy = substrate.occupancy_report()
        power = power_model.estimate(network)
        t_conv = estimator.estimate(network, parameters,
                                    NonIdealityModel(parasitic_capacitance_f=20e-15))

        print(f"=== instance {round_index} (seed {seed}) ===")
        print(f"  graph: {network.num_vertices} vertices, {network.num_edges} edges")
        print(f"  programming: {report.cycles} row cycles, {report.set_pulses} set pulses, "
              f"{report.reset_pulses} reset pulses, "
              f"{report.half_selected_cells} half-select events "
              f"(disturb margin {report.disturb_margin_v:.2f} V)")
        print(f"  programming time: {report.programming_time_s * 1e9:.1f} ns, "
              f"crossbar utilisation: {occupancy['utilisation']:.2%}")
        print(f"  exact max flow     : {exact:.1f}")
        print(f"  crossbar solution  : {result.flow_value:.1f} "
              f"(error {result.quality(exact).relative_error:.1%})")
        print(f"  estimated convergence time: {t_conv * 1e9:.1f} ns, "
              f"substrate power: {power.total_power_w:.2f} W, "
              f"energy per solve: {power.total_power_w * t_conv * 1e9:.2f} nJ")
        print()


if __name__ == "__main__":
    main()
