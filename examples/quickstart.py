"""Quickstart: solve a max-flow instance on the simulated analog substrate.

Builds the paper's worked example (Fig. 5a), solves it with a classical
algorithm and with the analog substrate (both the unquantized ideal circuit
and the quantized Table 1 configuration), and prints the comparison,
including the Equation 7a current-based readout a physical substrate would
use.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    AnalogMaxFlowSolver,
    BatchSolveService,
    FlowNetwork,
    PowerModel,
    SolveRequest,
    paper_example_graph,
    push_relabel,
)


def build_custom_network() -> FlowNetwork:
    """A small custom instance showing the construction API."""
    network = FlowNetwork(source="plant", sink="city")
    network.add_edge("plant", "hub_a", 8.0)
    network.add_edge("plant", "hub_b", 5.0)
    network.add_edge("hub_a", "hub_b", 3.0)
    network.add_edge("hub_a", "city", 4.0)
    network.add_edge("hub_b", "city", 7.0)
    return network


def solve_and_report(name: str, network: FlowNetwork) -> None:
    exact = push_relabel(network)
    ideal = AnalogMaxFlowSolver(quantize=False, adaptive_drive=True).solve(network)
    quantized = AnalogMaxFlowSolver(quantize=True, adaptive_drive=True).solve(network)
    power = PowerModel().estimate(network)

    print(f"=== {name} ===")
    print(f"  vertices: {network.num_vertices}, edges: {network.num_edges}")
    print(f"  exact max flow (push-relabel) : {exact.flow_value:.3f}")
    print(f"  analog, exact capacities      : {ideal.flow_value:.3f}")
    print(f"  analog, 20 voltage levels     : {quantized.flow_value:.3f}  "
          f"(error {abs(quantized.flow_value - exact.flow_value) / exact.flow_value:.1%})")
    print(f"  Eq. 7a current readout        : {quantized.flow_value_from_current:.3f}")
    print(f"  drive voltage used            : {quantized.vflow_v:.1f} V")
    print(f"  substrate power (Section 5.2) : {power.total_power_w * 1e3:.1f} mW")
    print(f"  per-edge flows (quantized)    : "
          + ", ".join(f"{network.edge(i).tail}->{network.edge(i).head}: {f:.2f}"
                      for i, f in sorted(quantized.edge_flows.items())))
    print()


def batch_service_demo() -> None:
    """Solve several instances through the batched service in one call."""
    service = BatchSolveService(
        max_workers=4,
        analog_solver=AnalogMaxFlowSolver(quantize=True, adaptive_drive=True),
    )
    networks = {"paper": paper_example_graph(), "water": build_custom_network()}
    requests = []
    for tag, network in networks.items():
        exact = push_relabel(network).flow_value
        for backend in ("dinic", "analog"):
            requests.append(
                SolveRequest(
                    network=network, backend=backend, tag=tag, reference_value=exact
                )
            )
    report = service.solve_batch(requests)
    print(report.format(title="=== Batched solving service (mixed backends) ==="))


def main() -> None:
    solve_and_report("Paper example (Fig. 5a)", paper_example_graph())
    solve_and_report("Custom water-distribution network", build_custom_network())
    batch_service_demo()


if __name__ == "__main__":
    main()
