"""Computer-vision graph cut on the analog substrate.

The paper motivates max-flow with emerging applications such as computer
vision [6]: foreground/background segmentation reduces to a minimum s-t cut
on a grid graph whose terminal capacities encode per-pixel likelihoods and
whose neighbour capacities encode smoothness.  This example builds such a
graph for a small synthetic image, segments it exactly (max-flow/min-cut) and
with the analog substrate, and prints both label maps side by side.

Run with:  python examples/image_segmentation.py
"""

from __future__ import annotations

import math
import random

from repro import AnalogMaxFlowSolver, FlowNetwork, min_cut, push_relabel

WIDTH, HEIGHT = 12, 8
SMOOTHNESS = 2.0
CONTRAST = 6.0


def synthetic_image(seed: int = 7, width: int = WIDTH, height: int = HEIGHT):
    """A noisy image with a bright disc (foreground) on a dark background."""
    rng = random.Random(seed)
    image = [[0.0] * width for _ in range(height)]
    cx, cy, radius = width * 0.45, height * 0.5, min(width, height) * 0.3
    for y in range(height):
        for x in range(width):
            inside = math.hypot(x - cx, y - cy) <= radius
            base = 0.8 if inside else 0.2
            image[y][x] = min(1.0, max(0.0, base + rng.gauss(0.0, 0.08)))
    return image


def segmentation_graph(image) -> FlowNetwork:
    """Boykov-Kolmogorov style segmentation network."""
    height, width = len(image), len(image[0])
    network = FlowNetwork(source="fg", sink="bg")

    def pixel(x: int, y: int) -> str:
        return f"p{x}_{y}"

    for y in range(height):
        for x in range(width):
            intensity = image[y][x]
            # Terminal links: bright pixels are likely foreground.
            network.add_edge("fg", pixel(x, y), CONTRAST * intensity)
            network.add_edge(pixel(x, y), "bg", CONTRAST * (1.0 - intensity))
            # Smoothness links to the right and bottom neighbours.
            for dx, dy in ((1, 0), (0, 1)):
                nx, ny = x + dx, y + dy
                if nx < width and ny < height:
                    network.add_edge(pixel(x, y), pixel(nx, ny), SMOOTHNESS)
                    network.add_edge(pixel(nx, ny), pixel(x, y), SMOOTHNESS)
    return network


def labels_from_cut(source_side, width: int = WIDTH, height: int = HEIGHT) -> list:
    grid = [["." for _ in range(width)] for _ in range(height)]
    for y in range(height):
        for x in range(width):
            if f"p{x}_{y}" in source_side:
                grid[y][x] = "#"
    return grid


def render(grid) -> str:
    return "\n".join("".join(row) for row in grid)


def main(width: int = WIDTH, height: int = HEIGHT) -> None:
    """Segment a synthetic image; shrink ``width``/``height`` for smoke runs."""
    image = synthetic_image(width=width, height=height)
    network = segmentation_graph(image)
    print(f"segmentation graph: {network.num_vertices} vertices, {network.num_edges} edges")

    exact_flow = push_relabel(network)
    cut = min_cut(network, exact_flow)
    print(f"exact min-cut energy: {cut.cut_value:.2f} (max flow {exact_flow.flow_value:.2f})")

    analog = AnalogMaxFlowSolver(quantize=True, adaptive_drive=True).solve(network)
    print(f"analog substrate flow value: {analog.flow_value:.2f} "
          f"(error {abs(analog.flow_value - exact_flow.flow_value) / exact_flow.flow_value:.1%})")

    print("\nexact segmentation ('#' = foreground):")
    print(render(labels_from_cut(cut.source_side, width, height)))

    # An approximate segmentation from the analog solution: pixels whose
    # foreground terminal link is *not* saturated stay connected to the
    # source side.
    analog_side = {"fg"}
    for edge in network.out_edges("fg"):
        if analog.edge_flows.get(edge.index, 0.0) < edge.capacity * 0.98:
            analog_side.add(edge.head)
    print("\nanalog-substrate segmentation (saturation heuristic):")
    print(render(labels_from_cut(analog_side, width, height)))


if __name__ == "__main__":
    main()
