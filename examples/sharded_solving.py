"""Solving instances larger than one substrate by N-way sharding.

A capacity-jittered grid (the vision-workload family dual decomposition was
designed for) is split into overlapping shards, each shard is solved
independently — here with exact Dinic; swap ``backend="analog"`` for the
substrate pipeline with warm re-solves — and the dual coordinator stitches
the shard cuts into a globally optimal one, bracketing the optimum from
both sides on every subgradient iteration.

Run with defaults (16x60 grid, 4 shards)::

    PYTHONPATH=src python examples/sharded_solving.py
"""

from __future__ import annotations

from repro.flows import min_cut
from repro.graph import grid_graph
from repro.service import ShardedSolveService


def main(
    rows: int = 16,
    cols: int = 60,
    shards: int = 4,
    seed: int = 7,
    max_iterations: int = 100,
) -> None:
    """Partition, coordinate and compare against the exact min cut."""
    network = grid_graph(rows, cols, capacity=2.0, seed=seed, capacity_jitter=0.3)
    print(
        f"instance: {rows}x{cols} grid, |V|={network.num_vertices}, "
        f"|E|={network.num_edges}"
    )

    exact = min_cut(network)
    print(f"exact min cut (1-shard Dinic): {exact.cut_value:.6f}")

    service = ShardedSolveService(executor="thread")
    sharded = service.solve(
        network, shards=shards, backend="dinic", max_iterations=max_iterations,
        reference_value=exact.cut_value,
    )

    print()
    print(sharded.report.format(title=f"{shards}-way sharded solve"))
    print()
    print("bound trajectory (dual lower bound -> stitched upper bound):")
    trajectory = sharded.report.bound_trajectory
    steps = max(1, len(trajectory) // 8)
    for i in range(0, len(trajectory), steps):
        dual, feasible, disagreements = trajectory[i]
        print(
            f"  iteration {i + 1:3d}: {dual:10.4f} <= {exact.cut_value:.4f} "
            f"<= {feasible:10.4f}  ({disagreements} overlap disagreements)"
        )
    print()
    relative = sharded.result.relative_error
    print(
        f"sharded cut {sharded.flow_value:.6f} vs exact {exact.cut_value:.6f} "
        f"(relative error {relative:.2e}, "
        f"{'converged' if sharded.report.converged else 'budget exhausted'})"
    )


if __name__ == "__main__":
    main()
