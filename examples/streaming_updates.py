"""Dynamic networks: streaming capacity updates with warm re-solves.

Production traffic is rarely a stream of fresh instances — it is a stream of
small edits to a mostly-unchanged network: a road's capacity drops during
rush hour, a link fails, a new connection is provisioned.  This example opens
two :class:`~repro.service.streaming.StreamingSession` objects (one classical
incremental solver, one analog substrate with warm re-solves) on the same
road network, pushes a morning-rush scenario of update batches, and compares
every warm re-solve against a from-scratch solve — both for the answer and
for the time it took.

Run with:  python examples/streaming_updates.py
"""

from __future__ import annotations

import random
import time

from repro import AnalogMaxFlowSolver, FlowNetwork
from repro.flows.registry import solve_max_flow
from repro.graph.updates import CapacityUpdate, EdgeInsert, EdgeRemove
from repro.service import StreamingSession


def build_highway_network(districts: int = 6, seed: int = 12) -> FlowNetwork:
    """A ring of districts with highways toward the business center."""
    rng = random.Random(seed)
    network = FlowNetwork(source="suburbs", sink="center")
    for d in range(districts):
        network.add_edge("suburbs", f"district{d}", 800.0 * rng.uniform(0.8, 1.2))
        network.add_edge(f"district{d}", "center", 600.0 * rng.uniform(0.8, 1.2))
        network.add_edge(
            f"district{d}",
            f"district{(d + 1) % districts}",
            300.0 * rng.uniform(0.8, 1.2),
        )
    return network


def rush_hour_batches(network: FlowNetwork, steps: int, seed: int = 4):
    """Morning-rush update stream: congestion, one closure, one new ramp."""
    rng = random.Random(seed)
    closed = set()  # removed edges may not be re-weighted later
    batches = []
    for step in range(steps):
        events = []
        for edge in network.edges():
            if edge.index not in closed and rng.random() < 0.25:
                factor = rng.choice([0.6, 0.8, 1.2])  # congestion waves
                events.append(CapacityUpdate(edge.index, edge.capacity * factor))
        if step == steps // 2:
            events = [e for e in events if e.edge_index != 2]
            events.append(EdgeRemove(2))  # accident closes a ring road
            closed.add(2)
        if step == steps - 1:
            events.append(EdgeInsert("suburbs", "district0", 400.0))  # new ramp
        batches.append(events)
    return batches


def main(districts: int = 6, steps: int = 4) -> None:
    """Run the streaming scenario; shrink ``districts``/``steps`` for smoke runs."""
    network = build_highway_network(districts)
    print(
        f"highway network: {network.num_vertices} districts, "
        f"{network.num_edges} links"
    )

    classical = StreamingSession(network, backend="dinic", cold_ratio=1.0)
    analog = StreamingSession(
        network,
        backend="analog",
        analog_solver=AnalogMaxFlowSolver(quantize=False),
    )
    print(f"open: peak throughput {classical.flow_value:.0f} veh/h "
          f"(analog reads {analog.flow_value:.0f})")

    for step, events in enumerate(rush_hour_batches(network, steps)):
        start = time.perf_counter()
        delta = classical.push(list(events))
        warm_ms = (time.perf_counter() - start) * 1e3
        start = time.perf_counter()
        cold = solve_max_flow(classical.snapshot(), algorithm="dinic")
        cold_ms = (time.perf_counter() - start) * 1e3
        analog_delta = analog.push(list(events))
        mode = "warm" if delta.warm else "cold"
        print(
            f"step {step}: {len(events)} updates -> {delta.flow_value:.0f} veh/h "
            f"({delta.flow_delta:+.0f}), {len(delta.changed_edge_flows)} links "
            f"re-routed [{mode} {warm_ms:.2f} ms vs cold {cold_ms:.2f} ms; "
            f"analog {'warm' if analog_delta.warm else 'recompiled'}, "
            f"reads {analog_delta.flow_value:.0f}]"
        )
        assert abs(delta.flow_value - cold.flow_value) <= 1e-9 * max(1.0, cold.flow_value)

    summary = classical.summary()
    print(
        f"session: {summary['pushes']} pushes, {summary['warm_solves']} warm / "
        f"{summary['cold_solves']} cold, revision {summary['revision']}"
    )
    analog_summary = analog.summary()
    cache = analog_summary["cache"]
    print(
        f"analog session: {analog_summary['recompiles']} recompiles, "
        f"compiled-circuit cache {cache['hits']} hits / {cache['misses']} misses / "
        f"{cache['evictions']} evictions"
    )


if __name__ == "__main__":
    main()
