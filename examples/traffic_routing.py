"""Transportation-network capacity analysis on the analog substrate.

Max-flow's oldest application is transportation planning [38]: given a road
network with per-road capacities (vehicles/hour), how much traffic can move
from a residential district to the business district, and which roads form
the bottleneck (the min cut)?  This example builds a small synthetic city
grid with arterial roads, answers both questions exactly and on the analog
substrate, and then uses the quasi-static analyzer (Section 6.5) to show how
the achievable throughput ramps up with the drive voltage — the hardware
analog of progressively loading the network.

Run with:  python examples/traffic_routing.py
"""

from __future__ import annotations

import random

from repro import AnalogMaxFlowSolver, FlowNetwork, QuasiStaticAnalyzer, min_cut, push_relabel


def build_city(seed: int = 3, rows: int = 4, cols: int = 5) -> FlowNetwork:
    """A rows x cols street grid with a fast arterial road and capacity noise."""
    rng = random.Random(seed)
    network = FlowNetwork(source="residential", sink="downtown")

    def junction(r: int, c: int) -> str:
        return f"j{r}{c}"

    for r in range(rows):
        network.add_edge("residential", junction(r, 0), 1200.0)
        network.add_edge(junction(r, cols - 1), "downtown", 1200.0)
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                base = 900.0 if r == 1 else 400.0  # row 1 is an arterial road
                network.add_edge(junction(r, c), junction(r, c + 1), base * rng.uniform(0.8, 1.2))
            if r + 1 < rows:
                capacity = 300.0 * rng.uniform(0.8, 1.2)
                network.add_edge(junction(r, c), junction(r + 1, c), capacity)
                network.add_edge(junction(r + 1, c), junction(r, c), capacity)
    return network


def main(rows: int = 4, cols: int = 5, num_points: int = 25) -> None:
    """Run the full analysis; shrink ``rows``/``cols``/``num_points`` for smoke runs."""
    network = build_city(rows=rows, cols=cols)
    exact = push_relabel(network)
    cut = min_cut(network, exact)
    analog = AnalogMaxFlowSolver(quantize=True, adaptive_drive=True).solve(network)

    print(f"road network: {network.num_vertices} junctions, {network.num_edges} road segments")
    print(f"exact peak throughput  : {exact.flow_value:.0f} vehicles/hour")
    print(f"analog substrate       : {analog.flow_value:.0f} vehicles/hour "
          f"(error {abs(analog.flow_value - exact.flow_value) / exact.flow_value:.1%})")
    print("bottleneck roads (min cut):")
    for index in cut.cut_edges:
        edge = network.edge(index)
        print(f"  {edge.tail} -> {edge.head}  ({edge.capacity:.0f} veh/h)")

    print("\nthroughput vs drive voltage (quasi-static ramp, Section 6.5):")
    trajectory = QuasiStaticAnalyzer(num_points=num_points, drive_factor=8.0).trace(network)
    for point in trajectory.points[:: max(1, len(trajectory.points) // 10)]:
        bar = "#" * int(40 * point.flow_value / max(exact.flow_value, 1.0))
        print(f"  Vflow {point.vflow_v:8.1f} V -> {point.flow_value:8.0f} veh/h {bar}")


if __name__ == "__main__":
    main()
