# Developer entry points. Everything runs from the repository root with the
# library on PYTHONPATH; no install step required.

PYTHON ?= python
export PYTHONPATH := src

# Modules whose docstring examples are part of the documented API surface.
DOCTEST_MODULES := src/repro/service \
	src/repro/flows/registry.py \
	src/repro/analog/solver.py \
	src/repro/circuit/linsolve.py \
	src/repro/circuit/nonlinear.py

.PHONY: test bench-smoke docs-check

## tier-1 suite plus the documented-API doctests
test:
	$(PYTHON) -m pytest -x -q
	$(PYTHON) -m pytest --doctest-modules $(DOCTEST_MODULES) -q

## fast benchmark smoke at a small scale (service batch + Fig. 8)
bench-smoke:
	REPRO_BENCH_SCALE=0.05 $(PYTHON) -m pytest \
		benchmarks/bench_service_batch.py \
		benchmarks/bench_fig08_quantization.py \
		-o python_files='bench_*.py' -q -s

## broken intra-doc links + docstring coverage of repro.service
docs-check:
	$(PYTHON) tools/docs_check.py
