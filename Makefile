# Developer entry points. Everything runs from the repository root with the
# library on PYTHONPATH; no install step required.

PYTHON ?= python
export PYTHONPATH := src

# Modules whose docstring examples are part of the documented API surface.
DOCTEST_MODULES := src/repro/service \
	src/repro/flows/registry.py \
	src/repro/analog/solver.py \
	src/repro/circuit/linsolve.py \
	src/repro/circuit/nonlinear.py \
	src/repro/circuit/stamps.py \
	src/repro/obs/export.py \
	src/repro/obs/metrics.py \
	src/repro/obs/trace.py \
	src/repro/obs/windows.py

.PHONY: test test-conformance bench-smoke docs-check perf-gate perf-gate-streaming perf-gate-shard perf-gate-problems perf-gate-kernel perf-gate-resilience perf-gate-obs perf-gate-serving perf-gate-all bench-serving bench-check serve-demo ci

## tier-1 suite plus the documented-API doctests
test:
	$(PYTHON) -m pytest -x -q
	$(PYTHON) -m pytest --doctest-modules $(DOCTEST_MODULES) -q

## the cross-backend conformance gate + reduction property suites, with the
## heavy randomized cases enabled (REPRO_TEST_SEED replays a red run)
test-conformance:
	$(PYTHON) -m pytest \
		tests/test_backend_conformance.py \
		tests/test_problems_properties.py \
		tests/test_problems_service.py \
		--runslow -q

## fast benchmark smoke at a small scale (service batch + Fig. 8 + assembly
## + streaming + sharding + problem reductions + flow kernel + resilience
## + telemetry overhead + serving front door)
bench-smoke:
	REPRO_BENCH_SCALE=0.05 $(PYTHON) -m pytest \
		benchmarks/bench_service_batch.py \
		benchmarks/bench_fig08_quantization.py \
		benchmarks/bench_assembly.py \
		benchmarks/bench_streaming.py \
		benchmarks/bench_shard.py \
		benchmarks/bench_problems.py \
		benchmarks/bench_kernel.py \
		benchmarks/bench_resilience.py \
		benchmarks/bench_obs.py \
		benchmarks/bench_serving.py \
		-o python_files='bench_*.py' -q -s

## record assembly/DC-iteration medians to BENCH_assembly.json (perf trajectory)
perf-gate:
	$(PYTHON) tools/perf_gate.py

## record warm-vs-cold streaming re-solve medians to BENCH_streaming.json
## (scale 0.5 so the Fig. 10-style instances are large enough to be
## representative; the acceptance thresholds live in bench_streaming.py)
perf-gate-streaming:
	$(PYTHON) tools/perf_gate.py --suite streaming --scale 0.5

## record 1-shard-cold vs sequential-2-way vs N-way-parallel sharding to
## BENCH_shard.json (scale 1.0: instances large enough that N-way parallel
## beats sequential 2-way; thresholds live in bench_shard.py)
perf-gate-shard:
	$(PYTHON) tools/perf_gate.py --suite shard --scale 1.0

## record problem-reduction stage medians (reduce / solve / decode) to
## BENCH_problems.json; correctness thresholds live in bench_problems.py
perf-gate-problems:
	$(PYTHON) tools/perf_gate.py --suite problems --scale 1.0

## record flat-array-kernel vs reference-Dinic medians to BENCH_kernel.json
## (the default scale IS the headline 96x96-grid size; the >=10x floor is
## enforced by bench_kernel.py)
perf-gate-kernel:
	$(PYTHON) tools/perf_gate.py --suite kernel

## record fault-free resilience overhead + per-fault-class recovery latency
## to BENCH_resilience.json (the <5% overhead ceiling is enforced by
## bench_resilience.py on the same kernel-corpus grid)
perf-gate-resilience:
	$(PYTHON) tools/perf_gate.py --suite resilience

## record the telemetry layer's overhead (raw vs obs-off vs obs-on) to
## BENCH_obs.json (the <2% disabled / <10% enabled ceilings are enforced
## by bench_obs.py on the same kernel-corpus grid)
perf-gate-obs:
	$(PYTHON) tools/perf_gate.py --suite obs

## record the serving front door's mixed-workload RPS / latency percentiles
## and the coalescing on-vs-off speedup to BENCH_serving.json (the >=2x
## coalescing floor is enforced by bench_serving.py)
perf-gate-serving:
	$(PYTHON) tools/perf_gate.py --suite serving

## refresh every registered BENCH_*.json record at its canonical scale
## (minutes of wall clock; run before committing a perf-relevant change)
perf-gate-all: perf-gate perf-gate-streaming perf-gate-shard perf-gate-problems perf-gate-kernel perf-gate-resilience perf-gate-obs perf-gate-serving

## serving perf sentinel alone: fresh smoke-scale serving run judged
## against the committed BENCH_serving.json history
bench-serving:
	$(PYTHON) tools/bench_watch.py --suite serving --run --scale 0.05 --repeats 1

## demo client: seeded mixed load with deadlines through the async server
serve-demo:
	$(PYTHON) tools/load_gen.py --requests 60 --scale 0.1

## perf-regression sentinel: judge a fresh smoke-scale run of every suite
## against the same-scale entries committed in the BENCH_*.json histories
## (suites without smoke-scale history pass as new-baseline; nothing is
## written — tools/perf_gate.py --history-only records new entries)
bench-check:
	$(PYTHON) tools/bench_watch.py --suite all --run --scale 0.05 --repeats 1

## broken intra-doc links + docstring coverage of repro.service
docs-check:
	$(PYTHON) tools/docs_check.py

## the full local CI chain: tests + doctests, conformance gate, doc health,
## benchmark smoke, perf-regression sentinel
ci: test test-conformance docs-check bench-smoke bench-check
