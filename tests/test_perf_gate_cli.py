"""Regression tests for the ``tools/perf_gate.py`` command-line interface.

``--list-suites`` is machine-consumable (piped into ``grep``/``cut`` by
scripts), so the listing must land on **stdout** with exit status 0 and
nothing on stderr; error paths (unknown suite) must exit non-zero via
stderr.  Also pins the registered suite set, so adding a harness without
registering its perf record (or vice versa) fails here.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

PERF_GATE = Path(__file__).resolve().parent.parent / "tools" / "perf_gate.py"


@pytest.fixture(scope="module")
def perf_gate():
    spec = importlib.util.spec_from_file_location("perf_gate_under_test", PERF_GATE)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        yield module
    finally:
        sys.modules.pop(spec.name, None)


class TestListSuites:
    def test_listing_goes_to_stdout_and_exits_zero(self, perf_gate, capsys):
        status = perf_gate.main(["--list-suites"])
        captured = capsys.readouterr()
        assert status == 0
        assert captured.err == ""
        for name, (_, output) in perf_gate.SUITES.items():
            assert name in captured.out
            assert output in captured.out

    def test_listing_is_one_line_per_suite_sorted(self, perf_gate, capsys):
        perf_gate.main(["--list-suites"])
        lines = [l for l in capsys.readouterr().out.splitlines() if l.strip()]
        names = [line.split("\t")[0] for line in lines]
        assert names == sorted(perf_gate.SUITES)

    def test_registered_suites_include_problems(self, perf_gate):
        assert set(perf_gate.SUITES) == {
            "assembly",
            "streaming",
            "shard",
            "problems",
            "kernel",
            "resilience",
            "obs",
            "serving",
        }
        assert perf_gate.SUITES["problems"][1] == "BENCH_problems.json"
        assert perf_gate.SUITES["kernel"][1] == "BENCH_kernel.json"
        assert perf_gate.SUITES["resilience"][1] == "BENCH_resilience.json"
        assert perf_gate.SUITES["obs"][1] == "BENCH_obs.json"
        assert perf_gate.SUITES["serving"][1] == "BENCH_serving.json"


class TestErrorPaths:
    def test_unknown_suite_fails_fast_on_stderr(self, perf_gate, capsys):
        with pytest.raises(SystemExit) as excinfo:
            perf_gate.main(["--suite", "nope"])
        assert excinfo.value.code != 0
        captured = capsys.readouterr()
        assert "unknown suite" in captured.err
        assert "problems" in captured.err  # the message lists valid names

    def test_output_with_all_suites_is_rejected(self, perf_gate, capsys, tmp_path):
        with pytest.raises(SystemExit):
            perf_gate.main(
                ["--suite", "all", "--output", str(tmp_path / "out.json")]
            )


class TestProblemsSuiteSmoke:
    def test_problems_suite_writes_certified_record(self, perf_gate, tmp_path, capsys):
        output = tmp_path / "BENCH_problems.json"
        status = perf_gate.main(
            [
                "--suite",
                "problems",
                "--scale",
                "0.1",
                "--repeats",
                "1",
                "--output",
                str(output),
            ]
        )
        assert status == 0
        record = json.loads(output.read_text())
        assert set(record["classes"]) == {
            "matching",
            "paths",
            "segmentation",
            "closure",
        }
        for row in record["classes"].values():
            assert row["certified"] is True
            assert row["num_edges"] > 0
            assert row["total_ms"] >= 0.0
        summary = capsys.readouterr().out
        assert "wrote" in summary and "certified" in summary


class TestResilienceSuiteSmoke:
    def test_resilience_suite_records_overhead_and_recovery(
        self, perf_gate, tmp_path, capsys
    ):
        output = tmp_path / "BENCH_resilience.json"
        status = perf_gate.main(
            [
                "--suite",
                "resilience",
                "--scale",
                "0.02",
                "--repeats",
                "1",
                "--output",
                str(output),
            ]
        )
        assert status == 0
        record = json.loads(output.read_text())
        assert record["overhead"]["value_diff"] <= 1e-9
        assert set(record["recovery"]) == {
            "convergence",
            "singular",
            "error",
            "stall",
        }
        for kind, row in record["recovery"].items():
            if kind == "stall":
                assert row["outcome"] == "deadline-abort"
            else:
                assert row["outcome"] == "degraded"
                assert row["fallback_backend"] == "dinic"
                assert row["value_error"] <= 1e-9
        summary = capsys.readouterr().out
        assert "fault-free" in summary and "deadline-abort" in summary


class TestObsSuiteSmoke:
    def test_obs_suite_records_overhead_fractions(
        self, perf_gate, tmp_path, capsys
    ):
        output = tmp_path / "BENCH_obs.json"
        status = perf_gate.main(
            [
                "--suite",
                "obs",
                "--scale",
                "0.02",
                "--repeats",
                "1",
                "--output",
                str(output),
            ]
        )
        assert status == 0
        record = json.loads(output.read_text())
        over = record["overhead"]
        assert over["value_diff"] <= 1e-9
        assert over["enabled_sweeps"] > 0
        assert over["enabled_root_spans"] > 0
        assert over["raw_ms"] > 0.0
        for key in ("disabled_overhead_fraction", "enabled_overhead_fraction"):
            assert isinstance(over[key], float)
        summary = capsys.readouterr().out
        assert "wrote" in summary and "obs cost" in summary


class TestHistoryAppend:
    """Every run appends itself to the record's bounded history list."""

    def _run(self, perf_gate, output, extra=()):
        return perf_gate.main([
            "--suite", "problems", "--scale", "0.1", "--repeats", "1",
            "--output", str(output), *extra,
        ])

    def test_first_run_creates_single_entry_history(self, perf_gate, tmp_path):
        output = tmp_path / "BENCH_problems.json"
        assert self._run(perf_gate, output) == 0
        record = json.loads(output.read_text())
        assert len(record["history"]) == 1
        entry = record["history"][0]
        assert "recorded_at" in entry
        assert "history" not in entry  # entries never nest
        # The flat latest-run keys mirror the entry (minus the stamp).
        assert record["classes"] == entry["classes"]
        assert record["scale"] == entry["scale"] == 0.1

    def test_reruns_accumulate_and_flat_keys_track_latest(self, perf_gate, tmp_path):
        output = tmp_path / "BENCH_problems.json"
        self._run(perf_gate, output)
        self._run(perf_gate, output)
        record = json.loads(output.read_text())
        assert len(record["history"]) == 2
        assert record["classes"] == record["history"][-1]["classes"]

    def test_history_only_preserves_flat_keys(self, perf_gate, tmp_path):
        output = tmp_path / "BENCH_problems.json"
        self._run(perf_gate, output)
        first_flat = {
            k: v for k, v in json.loads(output.read_text()).items()
            if k != "history"
        }
        assert self._run(perf_gate, output, extra=("--history-only",)) == 0
        record = json.loads(output.read_text())
        assert len(record["history"]) == 2
        flat = {k: v for k, v in record.items() if k != "history"}
        assert flat == first_flat  # headline record untouched

    def test_history_is_bounded(self, perf_gate):
        existing = {"scale": 0.1, "history": [
            {"scale": 0.1, "n": i} for i in range(perf_gate.HISTORY_LIMIT)
        ]}
        merged = perf_gate._merge_history(
            existing, {"scale": 0.1, "n": "new"}, history_only=False
        )
        assert len(merged["history"]) == perf_gate.HISTORY_LIMIT
        assert merged["history"][-1]["n"] == "new"
        assert merged["history"][0]["n"] == 1  # oldest entry fell off

    def test_corrupt_existing_record_is_replaced(self, perf_gate, tmp_path):
        output = tmp_path / "BENCH_problems.json"
        output.write_text("{not json")
        assert self._run(perf_gate, output) == 0
        record = json.loads(output.read_text())
        assert len(record["history"]) == 1
