"""One telemetry document shape across all four solving services.

``BatchReport``, ``StreamingSession``, ``ShardReport`` and
``ProblemReport`` each expose ``telemetry()``; every document must share
the pinned ``repro.telemetry/v1`` top-level key set and survive a JSON
round trip unchanged, so a single dashboard/exporter understands any
solving path.  Cache-bearing services (batch, streaming) must also
mirror their ``CompiledCircuitCache.stats()`` into registry gauges when
obs is on.
"""

from __future__ import annotations

import json
import random

import pytest

from repro import (
    BatchSolveService,
    FlowNetwork,
    ShardedSolveService,
    SolveRequest,
    get_registry,
    reset_metrics,
    rmat_graph,
    set_obs_enabled,
)
from repro.obs import clear_traces
from seeding import derive_seed
from repro.obs.telemetry import TELEMETRY_KEYS, TELEMETRY_SCHEMA, build_telemetry
from repro.problems import BipartiteMatching
from repro.service import ProblemSolveService, StreamingSession


@pytest.fixture
def obs_on():
    previous = set_obs_enabled(True)
    clear_traces()
    reset_metrics()
    yield
    set_obs_enabled(previous)
    clear_traces()
    reset_metrics()


def tiny_network() -> FlowNetwork:
    g = FlowNetwork()
    g.add_edge("s", "a", 4.0)
    g.add_edge("a", "t", 2.0)
    return g


def matching_problem() -> BipartiteMatching:
    rng = random.Random(derive_seed("obs-telemetry-matching"))
    return BipartiteMatching(
        list(range(5)),
        list(range(5)),
        [(i, j) for i in range(5) for j in range(5) if rng.random() < 0.5],
    )


def all_service_documents():
    """Run one solve per service and collect the four telemetry docs."""
    batch = BatchSolveService(executor="serial").solve_batch(
        [SolveRequest(network=tiny_network(), backend="dinic")]
    )
    session = StreamingSession(tiny_network(), backend="dinic")
    sharded = ShardedSolveService(executor="serial").solve(
        rmat_graph(12, 30, seed=derive_seed("obs-telemetry-shard")), shards=2
    )
    problem = ProblemSolveService().solve(matching_problem(), backend="dinic")
    return {
        "batch": batch.telemetry(),
        "streaming": session.telemetry(),
        "sharded": sharded.report.telemetry(),
        "problems": problem.report.telemetry(),
    }


class TestBuildTelemetry:
    def test_document_shape_and_schema(self):
        doc = build_telemetry("batch", {"ok": 1})
        assert tuple(doc) == TELEMETRY_KEYS
        assert doc["schema"] == TELEMETRY_SCHEMA
        assert doc["service"] == "batch"
        assert doc["summary"] == {"ok": 1}
        assert doc["cache"] == {}

    def test_enabled_flag_tracks_obs_state(self, obs_on):
        assert build_telemetry("x", {})["enabled"] is True
        set_obs_enabled(False)
        assert build_telemetry("x", {})["enabled"] is False

    def test_cache_stats_become_gauges_when_enabled(self, obs_on):
        build_telemetry("batch", {}, cache={"hits": 3, "misses": 1})
        reg = get_registry()
        assert reg.get_gauge("cache.hits", service="batch") == 3.0
        assert reg.get_gauge("cache.misses", service="batch") == 1.0

    def test_cache_stats_stay_out_of_registry_when_disabled(self):
        reset_metrics()
        doc = build_telemetry("batch", {}, cache={"hits": 3})
        assert doc["cache"] == {"hits": 3}
        assert get_registry().snapshot()["gauges"] == {}


class TestFourServiceSchema:
    def test_all_services_share_the_key_set_and_round_trip(self, obs_on):
        documents = all_service_documents()
        assert set(documents) == {"batch", "streaming", "sharded", "problems"}
        for name, doc in documents.items():
            assert tuple(doc) == TELEMETRY_KEYS, name
            assert doc["schema"] == TELEMETRY_SCHEMA
            assert doc["service"] == name
            assert doc["enabled"] is True
            assert isinstance(doc["summary"], dict) and doc["summary"]
            assert set(doc["metrics"]) == {"counters", "gauges", "histograms"}
            # The unified document is wire-ready: a JSON round trip is
            # the identity (no tuples, sets, numpy scalars, NaNs...).
            assert json.loads(json.dumps(doc)) == doc

    def test_cache_bearing_services_report_stats(self, obs_on):
        documents = all_service_documents()
        for name in ("batch", "streaming"):
            cache = documents[name]["cache"]
            assert {"hits", "misses"} <= set(cache), name
        for name in ("sharded", "problems"):
            assert documents[name]["cache"] == {}, name

    def test_solver_counters_visible_through_any_document(self, obs_on):
        documents = all_service_documents()
        # The registry snapshot embedded in each document is the same
        # process-wide view: the batch solve's counter shows up even in
        # the problems document (which solved last).
        counters = documents["problems"]["metrics"]["counters"]
        assert any(key.startswith("service.solves") for key in counters)

    def test_documents_work_with_obs_disabled_too(self):
        clear_traces()
        reset_metrics()
        documents = all_service_documents()
        for name, doc in documents.items():
            assert tuple(doc) == TELEMETRY_KEYS, name
            assert doc["enabled"] is False
            assert json.loads(json.dumps(doc)) == doc
        # No probes fired: the embedded snapshots are empty.
        assert documents["batch"]["metrics"]["counters"] == {}
