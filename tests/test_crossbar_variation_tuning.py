"""Tests for the process-variation model and the resistance-tuning procedure."""

from __future__ import annotations

import statistics

import pytest

from repro.analog import MaxFlowCircuitCompiler, FlowReadout
from repro.circuit import DCOperatingPoint
from repro.config import MemristorParameters, NonIdealityModel
from repro.crossbar import ProcessVariationModel, ResistanceTuner
from repro.crossbar.tuning import negation_error
from repro.errors import ConfigurationError, SubstrateError
from repro.flows import dinic
from repro.graph import rmat_graph


class TestProcessVariationModel:
    def test_sample_reproducible(self):
        model = ProcessVariationModel()
        a = model.sample(["r1", "r2"], seed=5)
        b = model.sample(["r1", "r2"], seed=5)
        assert a.device_factors == b.device_factors
        assert a.common_factor == b.common_factor

    def test_matched_mismatch_is_smaller(self):
        model = ProcessVariationModel(absolute_tolerance=0.25, matched_mismatch=0.005)
        names = [f"r{i}" for i in range(200)]
        matched = model.sample(names, matched=True, seed=1)
        unmatched = model.sample(names, matched=False, seed=1)
        assert matched.worst_ratio_error() < unmatched.worst_ratio_error()

    def test_monte_carlo_count(self):
        model = ProcessVariationModel()
        samples = model.monte_carlo(["a", "b"], num_samples=7, seed=3)
        assert len(samples) == 7

    def test_to_nonideality(self):
        model = ProcessVariationModel(absolute_tolerance=0.3, matched_mismatch=0.01)
        ni = model.to_nonideality(matched=True, seed=2)
        assert ni.resistor_tolerance == 0.3
        assert ni.resistor_matching == 0.01
        assert ni.use_matching

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            ProcessVariationModel(absolute_tolerance=-0.1)
        with pytest.raises(ConfigurationError):
            ProcessVariationModel(distribution="weird")

    def test_resistance_application(self):
        sample = ProcessVariationModel().sample(["r1"], seed=0)
        value = sample.resistance("r1", 10e3)
        assert value > 0
        assert value == pytest.approx(10e3 * sample.common_factor * sample.device_factors["r1"])


class TestNegationErrorMetric:
    def test_perfect_widget_has_zero_error(self):
        assert negation_error(10e3, 10e3, 5e3) == pytest.approx(0.0)

    def test_error_grows_with_mismatch(self):
        small = negation_error(10e3, 10.05e3, 5e3)
        large = negation_error(10e3, 11e3, 5e3)
        assert 0 < small < large

    def test_invalid_resistances(self):
        with pytest.raises(SubstrateError):
            negation_error(0.0, 1.0, 1.0)


class TestResistanceTuner:
    def test_tuning_reduces_widget_error(self):
        tuner = ResistanceTuner()
        widgets = {
            "w0": (10.3e3, 9.8e3, 5.4e3),
            "w1": (9.9e3, 10.4e3, 4.7e3),
            "w2": (10.1e3, 10.2e3, 5.2e3),
        }
        report = tuner.tune_widgets(widgets)
        assert report.widgets_tuned == 3
        assert report.error_after < report.error_before
        assert report.improvement > 5
        assert report.worst_after < report.worst_before

    def test_resolution_limits_precision(self):
        coarse = ResistanceTuner(memristor=MemristorParameters(tuning_resolution_ohm=500.0))
        fine = ResistanceTuner(memristor=MemristorParameters(tuning_resolution_ohm=1.0))
        widgets = {"w": (10.3e3, 9.7e3, 5.4e3)}
        assert fine.tune_widgets(widgets).error_after <= coarse.tune_widgets(widgets).error_after

    def test_empty_input_rejected(self):
        with pytest.raises(SubstrateError):
            ResistanceTuner().tune_widgets({})
        with pytest.raises(SubstrateError):
            ResistanceTuner(iterations=0)

    def test_tune_circuit_improves_solution(self):
        """Section 4.3.2: post-fabrication tuning recovers mismatch-induced error."""
        from dataclasses import replace
        from repro.config import SubstrateParameters

        network = rmat_graph(20, 60, seed=11)
        exact = dinic(network).flow_value
        params = replace(SubstrateParameters(), bleed_resistance_factor=1000.0)
        errors = {"before": [], "after": []}
        for seed in range(3):
            ni = NonIdealityModel(resistor_tolerance=0.2, resistor_matching=0.02, seed=seed)
            compiled = MaxFlowCircuitCompiler(
                parameters=params, quantize=False, nonideal=ni, seed=seed
            ).compile(network, vflow_v=4.0)
            readout = FlowReadout(compiled)
            before = readout.from_dc(DCOperatingPoint().solve(compiled.circuit))["flow_value"]
            ResistanceTuner().tune_circuit(compiled.circuit)
            after = readout.from_dc(DCOperatingPoint().solve(compiled.circuit))["flow_value"]
            errors["before"].append(abs(before - exact) / exact)
            errors["after"].append(abs(after - exact) / exact)
        assert statistics.mean(errors["after"]) <= statistics.mean(errors["before"]) + 0.02

    def test_tune_circuit_requires_ideal_widgets(self):
        compiled = MaxFlowCircuitCompiler(quantize=False, style="device").compile(
            rmat_graph(10, 25, seed=1)
        )
        with pytest.raises(SubstrateError):
            ResistanceTuner().tune_circuit(compiled.circuit)
