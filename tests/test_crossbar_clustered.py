"""Tests for the clustered island architectures, placement, routing and area."""

from __future__ import annotations

import pytest

from repro.crossbar import (
    AreaModel,
    ArchitectureStyle,
    ClusteredArchitecture,
    place_network,
    route_placement,
)
from repro.errors import ConfigurationError, MappingError
from repro.graph import rmat_graph, sparse_random_graph


class TestArchitecture:
    def test_capacities(self):
        arch = ClusteredArchitecture(num_islands=4, island_size=10)
        assert arch.total_vertex_capacity == 40
        assert arch.total_cell_count == 400
        assert arch.monolithic_cell_count() == 1600
        assert arch.cell_savings() == pytest.approx(4.0)

    def test_island_positions_1d_vs_2d(self):
        one_d = ClusteredArchitecture(num_islands=4, island_size=8, style="1d")
        two_d = ClusteredArchitecture(num_islands=4, island_size=8, style="2d")
        assert all(island.position[0] == 0 for island in one_d.islands())
        assert two_d.grid_side == 2
        assert {island.position for island in two_d.islands()} == {
            (0, 0), (0, 1), (1, 0), (1, 1)
        }

    def test_distance_metric(self):
        arch = ClusteredArchitecture(num_islands=9, island_size=4, style="2d")
        assert arch.island_distance(0, 8) == 4
        one_d = ClusteredArchitecture(num_islands=9, island_size=4, style="1d")
        assert one_d.island_distance(0, 8) == 8

    def test_channel_segments(self):
        one_d = ClusteredArchitecture(num_islands=4, island_size=4, style="1d")
        assert len(one_d.channel_segments()) == 3
        two_d = ClusteredArchitecture(num_islands=4, island_size=4, style="2d")
        assert len(two_d.channel_segments()) == 4

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ClusteredArchitecture(num_islands=0, island_size=4)
        with pytest.raises(ConfigurationError):
            ClusteredArchitecture(num_islands=2, island_size=1)
        with pytest.raises(ConfigurationError):
            ClusteredArchitecture(num_islands=2, island_size=4, style="3d")


class TestPlacement:
    def test_every_vertex_assigned_and_capacity_respected(self):
        network = sparse_random_graph(60, 4.0, seed=2)
        arch = ClusteredArchitecture(num_islands=8, island_size=12)
        placement = place_network(network, arch, seed=1)
        assert set(placement.island_of_vertex) == set(network.vertices())
        assert placement.max_utilisation() <= 1.0
        assert placement.num_cut_edges + len(placement.internal_edges) == network.num_edges

    def test_refinement_reduces_or_keeps_cut(self):
        network = sparse_random_graph(60, 4.0, seed=5)
        arch = ClusteredArchitecture(num_islands=6, island_size=16)
        rough = place_network(network, arch, refinement_passes=0, seed=3)
        refined = place_network(network, arch, refinement_passes=6, seed=3)
        assert refined.num_cut_edges <= rough.num_cut_edges

    def test_too_large_network_rejected(self):
        network = rmat_graph(50, 150, seed=1)
        arch = ClusteredArchitecture(num_islands=2, island_size=10)
        with pytest.raises(MappingError):
            place_network(network, arch)


class TestRouting:
    def test_2d_less_congested_than_1d(self):
        """Section 6.2's hypothesis: 1-D routing saturates before 2-D routing."""
        network = sparse_random_graph(64, 4.0, seed=7)
        results = {}
        for style in ("1d", "2d"):
            arch = ClusteredArchitecture(num_islands=8, island_size=12, style=style,
                                         channel_width=16)
            placement = place_network(network, arch, seed=1)
            results[style] = route_placement(network, placement)
        assert results["2d"].max_occupancy <= results["1d"].max_occupancy
        assert results["1d"].routed_edges == results["2d"].routed_edges

    def test_routability_flag(self):
        network = sparse_random_graph(40, 3.0, seed=9)
        arch = ClusteredArchitecture(num_islands=4, island_size=16, channel_width=1)
        placement = place_network(network, arch, seed=1)
        narrow = route_placement(network, placement)
        wide_arch = ClusteredArchitecture(num_islands=4, island_size=16, channel_width=1000)
        wide_placement = place_network(network, wide_arch, seed=1)
        wide = route_placement(network, wide_placement)
        assert wide.routable
        assert narrow.required_channel_width() >= wide.max_occupancy
        summary = narrow.summary()
        assert summary["routed_edges"] == narrow.routed_edges

    def test_no_cut_edges_trivially_routable(self):
        from repro.graph import path_graph

        network = path_graph(2, [1.0, 1.0, 1.0])
        arch = ClusteredArchitecture(num_islands=2, island_size=4)
        placement = place_network(network, arch, seed=0)
        result = route_placement(network, placement)
        assert result.max_occupancy >= 0
        assert result.routable or result.max_occupancy > arch.channel_width


class TestAreaModel:
    def test_memristor_advantage(self):
        model = AreaModel()
        assert model.memristor_vs_sram_ratio() > 1.0
        comparison = model.comparison(1000, 1000)
        assert comparison["sram_crossbar_mm2"] > comparison["memristor_crossbar_mm2"]

    def test_clustered_smaller_than_monolithic(self):
        model = AreaModel()
        arch = ClusteredArchitecture(num_islands=8, island_size=16, channel_width=8)
        clustered = model.clustered_area_um2(arch)
        monolithic = model.crossbar_area_um2(
            arch.total_vertex_capacity, arch.total_vertex_capacity
        )
        assert clustered < monolithic

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AreaModel(memristor_switch_f2=0.0)
        with pytest.raises(ConfigurationError):
            AreaModel().cell_area_f2("nvm")
