"""Fault-injection matrix: every service x every fault class.

The contract under test (ISSUE 7 / docs/architecture.md): for each cell of
(batch, streaming, sharded, problems) x (convergence, singular, error,
stall + deadline, corrupt), the service either

* **recovers** — returns a result equal to the fault-free reference (exact
  for classical fallbacks, within the analog tolerance otherwise), marked
  ``degraded`` where a fallback ran — or
* **fails typed** — raises / reports a :class:`~repro.errors.ReproError`
  subclass (never a bare Exception, never a silent wrong answer),

and never hangs: stalls are bounded by tiny deadlines.
"""

from __future__ import annotations

import pytest

from repro import FlowNetwork, grid_graph
from repro.errors import (
    CertificateError,
    ConfigurationError,
    InfeasibleFlowError,
    ReproError,
    SolveTimeoutError,
)
from repro.flows.dinic import Dinic
from repro.graph.updates import CapacityUpdate
from repro.resilience.faults import (
    FaultInjector,
    FaultPlan,
    corrupt_value,
    fault_point,
    inject_faults,
)
from repro.service import BatchSolveService, SolveRequest
from repro.service.problems import ProblemSolveService
from repro.service.sharded import ShardedSolveService
from repro.service.streaming import StreamingSession

RAISING_KINDS = ["convergence", "singular", "error"]
EXACT = 1e-9
ANALOG_RTOL = 0.1  # warm resolves drift a few percent more than solve()


def certificate_grade_analog():
    """Unquantized adaptive-drive solver: accurate enough that an inflated
    readout violates saturated min-cut capacities (the detection premise)."""
    from repro.analog import AnalogMaxFlowSolver

    return AnalogMaxFlowSolver(quantize=False, adaptive_drive=True)


def analog_session(network, **kwargs):
    """Streaming session on the compiled/resolve analog path.

    ``resolve()`` reuses the compiled drive voltage (adaptive drive only
    applies in ``solve()``), so the session needs an explicit ``vflow_v``
    big enough for the instance — 6 V saturates a unit-capacity grid.
    """
    return StreamingSession(
        network,
        backend="analog",
        analog_solver=certificate_grade_analog(),
        options={"vflow_v": 6.0},
        **kwargs,
    )


@pytest.fixture()
def network():
    return grid_graph(3, 4, capacity=4.0, seed=11)


@pytest.fixture()
def reference(network):
    return Dinic().solve(network).flow_value


# ---------------------------------------------------------------------------
# Injector unit behaviour
# ---------------------------------------------------------------------------


class TestFaultInjector:
    def test_plan_validation(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(kind="meteor")
        with pytest.raises(ConfigurationError):
            FaultPlan(kind="corrupt", relative_error=0.0)
        with pytest.raises(ConfigurationError):
            FaultPlan(kind="stall", times=-1)

    def test_spec_parsing_and_wildcards(self):
        injector = FaultInjector.from_spec(
            "kind=convergence,backend=analog,times=2;kind=corrupt,relative_error=0.5"
        )
        assert len(injector.plans) == 2
        assert injector.plans[0].matches("batch-solve", "analog")
        assert not injector.plans[0].matches("batch-solve", "dinic")
        assert injector.plans[1].matches("anything", "anything")

    def test_bad_spec_keys_are_typed_errors(self):
        with pytest.raises(ConfigurationError):
            FaultInjector.from_spec("kind=stall,wibble=1")
        with pytest.raises(ConfigurationError):
            FaultInjector.from_spec("backend=analog")  # no kind

    def test_times_and_skip_counters(self):
        plan = FaultPlan(kind="error", times=2, skip=1)
        with inject_faults(plan):
            fault_point("site", "b")  # skipped
            with pytest.raises(ReproError):
                fault_point("site", "b")
            with pytest.raises(ReproError):
                fault_point("site", "b")
            fault_point("site", "b")  # budget of 2 spent
        assert plan.matched == 4 and plan.fired == 2

    def test_corrupt_always_inflates(self):
        with inject_faults("kind=corrupt,relative_error=0.5,times=0"):
            assert corrupt_value("analog-readout", "analog", 2.0) == pytest.approx(3.0)
        assert corrupt_value("analog-readout", "analog", 2.0) == 2.0  # inactive

    def test_env_var_activation(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", "kind=error,site=env-only,times=1")
        with pytest.raises(ReproError):
            fault_point("env-only", "x")
        fault_point("env-only", "x")  # fired once, now spent
        monkeypatch.setenv("REPRO_FAULT_PLAN", "")
        fault_point("env-only", "x")

    def test_context_manager_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", "kind=error,times=0")
        with inject_faults("kind=error,site=elsewhere,times=0"):
            fault_point("here", "x")  # override only matches 'elsewhere'
        with pytest.raises(ReproError):
            fault_point("here", "x")  # env plan visible again


# ---------------------------------------------------------------------------
# Batch service
# ---------------------------------------------------------------------------


class TestBatchMatrix:
    @pytest.mark.parametrize("kind", RAISING_KINDS)
    def test_analog_fault_degrades_to_exact(self, network, reference, kind):
        service = BatchSolveService(failover=True)
        with inject_faults(f"kind={kind},site=batch-solve,backend=analog,times=0"):
            report = service.solve_batch(
                [SolveRequest(network=network, backend="analog")]
            )
        result = report.results[0]
        assert result.ok and result.degraded
        assert result.failover_trail
        assert result.flow_value == pytest.approx(reference, abs=EXACT)
        assert report.num_degraded == 1

    @pytest.mark.parametrize("kind", RAISING_KINDS)
    def test_without_failover_failures_are_typed_entries(self, network, kind):
        service = BatchSolveService()
        with inject_faults(f"kind={kind},site=batch-solve,times=0"):
            report = service.solve_batch(
                [SolveRequest(network=network, backend="dinic")]
            )
        result = report.results[0]
        assert not result.ok
        assert result.error_type in (
            "ConvergenceError", "SingularCircuitError", "FaultInjectedError"
        )
        assert report.error_counts()[result.error_type] == 1

    def test_transient_fault_is_absorbed_by_failover_retry(self, network, reference):
        service = BatchSolveService(failover=True)
        with inject_faults("kind=convergence,site=batch-solve,backend=dinic,times=1"):
            result = service.solve(network, backend="dinic")
        assert result.ok
        assert result.flow_value == pytest.approx(reference, abs=EXACT)

    def test_stall_bounded_by_deadline(self, network):
        service = BatchSolveService()
        with inject_faults("kind=stall,site=batch-solve,stall_s=5.0,times=0"):
            report = service.solve_batch(
                [SolveRequest(network=network, backend="dinic")], deadline=0.05
            )
        result = report.results[0]
        assert not result.ok
        assert result.error_type == "SolveTimeoutError"

    def test_corrupt_readout_is_rejected_then_degraded(self, network, reference):
        service = BatchSolveService(
            failover=True, analog_solver=certificate_grade_analog()
        )
        with inject_faults(
            "kind=corrupt,site=analog-readout,relative_error=0.5,times=0"
        ):
            report = service.solve_batch(
                [SolveRequest(network=network, backend="analog")]
            )
        result = report.results[0]
        # Validation must refuse the corrupted analog answer and hand the
        # request to an exact fallback — never return the inflated value.
        assert result.ok and result.degraded
        assert result.flow_value == pytest.approx(reference, abs=EXACT)
        assert any("Infeasible" in step for step in result.failover_trail)

    def test_thread_executor_cells_recover_too(self, network, reference):
        service = BatchSolveService(executor="thread", max_workers=2, failover=True)
        with inject_faults("kind=singular,site=batch-solve,backend=analog,times=0"):
            report = service.solve_batch(
                [SolveRequest(network=network, backend="analog") for _ in range(3)]
            )
        assert report.num_failed == 0
        for result in report.results:
            assert result.flow_value == pytest.approx(reference, abs=EXACT)


# ---------------------------------------------------------------------------
# Streaming sessions
# ---------------------------------------------------------------------------


class TestStreamingMatrix:
    @pytest.mark.parametrize("kind", RAISING_KINDS)
    def test_classical_repair_fault_recovers_cold(self, network, kind):
        session = StreamingSession(network, backend="dinic", validate=True)
        with inject_faults(f"kind={kind},site=warm-repair,times=1"):
            delta = session.push([CapacityUpdate(0, 1.0)])
        edited = session.snapshot()
        assert delta.flow_value == pytest.approx(
            Dinic().solve(edited).flow_value, abs=EXACT
        )
        assert session.degraded_pushes == 1

    @pytest.mark.parametrize("kind", RAISING_KINDS)
    def test_analog_warm_fault_degrades_to_cold_recompile(self, kind):
        session = analog_session(grid_graph(3, 4, capacity=1.0, seed=11))
        with inject_faults(f"kind={kind},site=streaming-warm,times=1"):
            delta = session.push([CapacityUpdate(0, 0.5)])
        reference = Dinic().solve(session.snapshot()).flow_value
        assert not delta.warm
        assert session.degraded_pushes == 1
        assert delta.flow_value == pytest.approx(reference, rel=ANALOG_RTOL)

    def test_stall_bounded_by_deadline_session_stays_usable(self, network):
        session = StreamingSession(network, backend="dinic")
        with inject_faults("kind=stall,site=warm-repair,stall_s=5.0,times=1"):
            with pytest.raises(SolveTimeoutError):
                session.push([CapacityUpdate(0, 1.0)], deadline=0.05)
        # The events were applied; the next push rebuilds cold and agrees
        # with an exact solve of the current revision.
        delta = session.push([CapacityUpdate(1, 2.0)])
        assert delta.flow_value == pytest.approx(
            Dinic().solve(session.snapshot()).flow_value, abs=EXACT
        )

    def test_corrupt_readout_validated_and_recovered(self):
        session = analog_session(
            grid_graph(3, 4, capacity=1.0, seed=11), validate=True
        )
        with inject_faults(
            "kind=corrupt,site=analog-readout,relative_error=0.5,times=1"
        ):
            delta = session.push([CapacityUpdate(0, 0.5)])
        reference = Dinic().solve(session.snapshot()).flow_value
        assert delta.flow_value == pytest.approx(reference, rel=ANALOG_RTOL)

    def test_persistent_corruption_raises_typed_never_silent(self):
        session = analog_session(
            grid_graph(3, 4, capacity=1.0, seed=11), validate=True
        )
        with inject_faults(
            "kind=corrupt,site=analog-readout,relative_error=0.5,times=0"
        ):
            with pytest.raises(InfeasibleFlowError):
                session.push([CapacityUpdate(0, 0.5)])
        # Session recovers once the fault clears.
        delta = session.push([CapacityUpdate(1, 0.75)])
        reference = Dinic().solve(session.snapshot()).flow_value
        assert delta.flow_value == pytest.approx(reference, rel=ANALOG_RTOL)


# ---------------------------------------------------------------------------
# Sharded service
# ---------------------------------------------------------------------------


class TestShardedMatrix:
    @pytest.mark.parametrize("kind", RAISING_KINDS)
    def test_persistent_shard_fault_falls_back_unsharded(
        self, network, reference, kind
    ):
        service = ShardedSolveService(executor="serial")
        with inject_faults(f"kind={kind},site=shard-solve,times=0"):
            sharded = service.solve(network, shards=2, backend="dinic")
        assert sharded.result.ok and sharded.result.degraded
        assert sharded.result.flow_value == pytest.approx(reference, abs=EXACT)
        assert sharded.report.num_shards == 1
        assert sharded.result.edge_flows  # the fallback is a real flow

    def test_transient_shard_fault_recovers_via_retry(self, network, reference):
        service = ShardedSolveService(executor="serial")
        with inject_faults("kind=convergence,site=shard-solve,times=1"):
            sharded = service.solve(network, shards=2, backend="dinic")
        assert not sharded.result.degraded
        assert sharded.result.flow_value == pytest.approx(reference, abs=EXACT)

    def test_stall_bounded_by_deadline_no_fallback(self, network):
        service = ShardedSolveService(executor="serial")
        with inject_faults("kind=stall,site=shard-solve,stall_s=5.0,times=0"):
            with pytest.raises(SolveTimeoutError):
                service.solve(network, shards=2, backend="dinic", deadline=0.05)

    def test_corrupt_cannot_touch_exact_sharded_solves(self, network, reference):
        # Corrupt faults only exist at analog readouts; a classical sharded
        # solve has none, so the answer must equal the reference untouched.
        service = ShardedSolveService(executor="serial")
        with inject_faults("kind=corrupt,relative_error=0.5,times=0"):
            sharded = service.solve(network, shards=2, backend="dinic")
        assert sharded.result.flow_value == pytest.approx(reference, abs=EXACT)

    def test_fallback_false_raises_typed(self, network):
        service = ShardedSolveService(executor="serial")
        with inject_faults("kind=singular,site=shard-solve,times=0"):
            with pytest.raises(ReproError):
                service.solve(network, shards=2, backend="dinic", fallback=False)


# ---------------------------------------------------------------------------
# Problems service
# ---------------------------------------------------------------------------


def _matching_problem():
    from repro.problems import BipartiteMatching

    return BipartiteMatching(
        ["a", "b", "c"],
        ["x", "y", "z"],
        [("a", "x"), ("b", "x"), ("b", "y"), ("c", "y"), ("c", "z")],
    )


class TestProblemsMatrix:
    @pytest.mark.parametrize("kind", RAISING_KINDS)
    def test_backend_fault_walks_degradation_chain(self, kind):
        problem = _matching_problem()
        service = ProblemSolveService()
        baseline = service.solve(problem, backend="dinic")
        with inject_faults(f"kind={kind},site=batch-solve,backend=dinic,times=0"):
            solved = service.solve(problem, backend="dinic")
        assert solved.certified
        assert solved.result.degraded
        assert solved.value == pytest.approx(baseline.value, abs=EXACT)
        assert solved.report.backend != "dinic"

    def test_stall_bounded_by_deadline(self):
        service = ProblemSolveService()
        with inject_faults("kind=stall,site=batch-solve,stall_s=5.0,times=0"):
            with pytest.raises(SolveTimeoutError):
                service.solve(_matching_problem(), backend="dinic", deadline=0.05)

    def test_corrupt_analog_fails_certificate_in_strict_mode(self):
        problem = _matching_problem()
        strict = ProblemSolveService(strict=True)
        with inject_faults(
            "kind=corrupt,site=analog-readout,relative_error=0.5,times=0"
        ):
            with pytest.raises(CertificateError):
                strict.solve(problem, backend="analog")

    def test_corrupt_analog_is_flagged_in_lenient_mode(self):
        problem = _matching_problem()
        service = ProblemSolveService()
        baseline = service.solve(problem, backend="dinic")
        with inject_faults(
            "kind=corrupt,site=analog-readout,relative_error=0.5,times=0"
        ):
            solved = service.solve(problem, backend="analog")
        # The decoded answer comes from the exact decode pass (correct), and
        # the failed cross-check is recorded — never a silent wrong answer.
        assert solved.value == pytest.approx(baseline.value, abs=EXACT)
        assert not solved.certified
        assert "backend-value-consistent" in solved.report.certificate_status

    def test_failover_disabled_fails_typed(self):
        service = ProblemSolveService(failover=False)
        with inject_faults("kind=convergence,site=batch-solve,backend=dinic,times=0"):
            with pytest.raises(ReproError):
                service.solve(_matching_problem(), backend="dinic")


# ---------------------------------------------------------------------------
# ParallelMap worker-exception context (satellite 3)
# ---------------------------------------------------------------------------


class TestParallelMapContext:
    def test_worker_exception_carries_item_index_and_description(self):
        from repro.service.batch import ParallelMap

        def explode(item):
            raise ValueError(f"boom on {item}")

        pool = ParallelMap(executor="thread", max_workers=2)
        with pytest.raises(ValueError) as info:
            pool.map(explode, ["alpha", "beta"], describe=lambda item: f"item={item}")
        notes = "".join(getattr(info.value, "__notes__", []) or [])
        combined = notes + str(info.value)
        assert "while processing item" in combined
        assert "item=" in combined
