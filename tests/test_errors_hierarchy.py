"""The error taxonomy contract: one catchable root, typed leaves.

Every exception the package raises must subclass :class:`repro.errors.ReproError`
so that service layers (and users) can write ``except ReproError`` once and
catch *everything* typed — the property the failover and retry machinery of
:mod:`repro.resilience` is built on.
"""

from __future__ import annotations

import inspect

import pytest

import repro.errors as errors
from repro.errors import (
    BackendUnavailableError,
    FaultInjectedError,
    ReproError,
    ResilienceError,
    SolveTimeoutError,
)


class TestHierarchy:
    def test_every_public_name_subclasses_repro_error(self):
        for name in errors.__all__:
            obj = getattr(errors, name)
            assert inspect.isclass(obj), f"{name} is not a class"
            assert issubclass(obj, ReproError), f"{name} escapes ReproError"
            assert issubclass(obj, Exception)

    def test_every_module_level_exception_is_exported(self):
        # No hidden exception classes: anything defined in the module that
        # subclasses Exception must be in __all__ (so failover code that
        # matches on the taxonomy can't be surprised).
        for name, obj in vars(errors).items():
            if inspect.isclass(obj) and issubclass(obj, Exception):
                assert name in errors.__all__, f"{name} defined but not exported"

    def test_root_is_exception_not_base_exception_leaf(self):
        # ReproError must not derive from SystemExit/KeyboardInterrupt,
        # which would let `except ReproError` eat interpreter shutdowns.
        assert not issubclass(ReproError, SystemExit)
        assert not issubclass(ReproError, KeyboardInterrupt)
        assert issubclass(ReproError, Exception)

    def test_resilience_errors_form_their_own_family(self):
        assert issubclass(ResilienceError, ReproError)
        for leaf in (SolveTimeoutError, BackendUnavailableError, FaultInjectedError):
            assert issubclass(leaf, ResilienceError)

    def test_timeout_is_catchable_and_distinguishable(self):
        # The failover machinery relies on timeouts being ReproErrors that
        # are nevertheless *distinguishable* from retryable failures.
        with pytest.raises(ReproError):
            raise SolveTimeoutError("budget gone")
        assert not issubclass(errors.ConvergenceError, ResilienceError)

    def test_names_are_stable_strings(self):
        # error_type fields serialize type names; duplicates would make
        # them ambiguous.
        assert len(errors.__all__) == len(set(errors.__all__))
