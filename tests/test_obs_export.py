"""Exporter gates: Prometheus round-trip, metrics document, JSONL sink.

The Prometheus exposition must be *reversible* — ``parse_prometheus_text``
over ``prometheus_text`` must reproduce the exact ``snapshot()`` dict —
because that equality is the only way to prove nothing (a label, a bucket
count, an overflow observation) is lost on the way out.  The JSONL sink is
pinned for bounded rotation and the probe fan-out contract.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    METRICS_SCHEMA,
    JsonlEventSink,
    MetricsRegistry,
    clear_traces,
    metrics_document,
    parse_prometheus_text,
    probes,
    prometheus_text,
    reset_metrics,
    set_obs_enabled,
)


@pytest.fixture
def obs_on():
    previous = set_obs_enabled(True)
    clear_traces()
    reset_metrics()
    yield
    set_obs_enabled(previous)
    clear_traces()
    reset_metrics()


def populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry(latency_buckets_s=(0.001, 0.1, 1.0))
    reg.counter("service.solves", 5, backend="dinic")
    reg.counter("service.solves", 2, backend="kernel-dinic")
    reg.counter("service.solve_errors", 1, backend="dinic", error_type="numerical")
    reg.gauge("cache.hits", 7, service="batch")
    reg.gauge("solver.depth", 3)
    for value in (0.0005, 0.05, 0.5, 50.0):
        reg.observe("service.solve.seconds", value, backend="dinic")
    return reg


class TestPrometheusText:
    def test_counter_rendering_with_sorted_labels(self):
        reg = MetricsRegistry()
        reg.counter("service.solves", 3, tag="x", backend="dinic")
        text = prometheus_text(registry=reg)
        assert "# TYPE repro_service_solves counter" in text
        assert '# HELP repro_service_solves service.solves' in text
        assert 'repro_service_solves{backend="dinic",tag="x"} 3.0' in text

    def test_histogram_ladder_is_cumulative_and_ends_at_inf(self):
        reg = MetricsRegistry(latency_buckets_s=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            reg.observe("lat", value)
        text = prometheus_text(registry=reg)
        assert 'repro_lat_bucket{le="0.1"} 1' in text
        assert 'repro_lat_bucket{le="1.0"} 2' in text
        assert 'repro_lat_bucket{le="+Inf"} 3' in text
        assert "repro_lat_count 3" in text

    def test_label_values_are_escaped(self):
        reg = MetricsRegistry()
        reg.counter("ev", 1, detail='say "hi"\nplease')
        text = prometheus_text(registry=reg)
        assert '\\"hi\\"' in text and "\\n" in text
        assert parse_prometheus_text(text) == reg.snapshot()

    def test_round_trip_equality_on_mixed_registry(self):
        snap = populated_registry().snapshot()
        assert parse_prometheus_text(prometheus_text(snapshot=snap)) == snap

    def test_empty_registry_round_trips(self):
        snap = MetricsRegistry().snapshot()
        assert parse_prometheus_text(prometheus_text(snapshot=snap)) == snap


class TestMetricsDocument:
    def test_schema_and_family_grouping(self):
        doc = metrics_document(registry=populated_registry())
        assert doc["schema"] == METRICS_SCHEMA
        assert doc["resource"]["service.name"] == "repro"
        by_name = {m["name"]: m for m in doc["metrics"]}
        solves = by_name["service.solves"]
        assert solves["type"] == "sum" and solves["is_monotonic"] is True
        assert len(solves["data_points"]) == 2  # one per backend label set
        hist = by_name["service.solve.seconds"]
        point = hist["data_points"][0]
        assert len(point["bucket_counts"]) == len(point["explicit_bounds"]) + 1
        assert sum(point["bucket_counts"]) == point["count"]

    def test_document_is_json_clean_and_deterministic(self):
        reg = populated_registry()
        once = json.dumps(metrics_document(registry=reg))
        again = json.dumps(metrics_document(registry=reg))
        assert once == again

    def test_resource_overrides_merge(self):
        doc = metrics_document(
            registry=MetricsRegistry(), resource={"host": "h1"}
        )
        assert doc["resource"] == {"service.name": "repro", "host": "h1"}


class TestJsonlEventSink:
    def test_writes_are_clock_stamped_jsonl(self, tmp_path):
        ticks = iter([10.0, 11.0])
        sink = JsonlEventSink(tmp_path / "events.jsonl", clock=lambda: next(ticks))
        sink.emit("service.solves", backend="dinic")
        sink.emit("service.solve_errors", 2.0, backend="analog")
        lines = [json.loads(l) for l in
                 (tmp_path / "events.jsonl").read_text().splitlines()]
        assert lines[0] == {"ts": 10.0, "event": "service.solves",
                            "amount": 1.0, "backend": "dinic"}
        assert lines[1]["ts"] == 11.0 and lines[1]["amount"] == 2.0
        assert sink.events_written == 2

    def test_rotation_caps_disk_usage(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlEventSink(path, max_bytes=200, clock=lambda: 0.0)
        for i in range(50):
            sink.write({"event": "e", "i": i})
        assert sink.rotations > 0
        assert path.stat().st_size <= 200
        assert (tmp_path / "events.jsonl.1").stat().st_size <= 200

    def test_rejects_nonpositive_cap(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlEventSink(tmp_path / "x.jsonl", max_bytes=0)

    def test_probe_fanout_mirrors_enabled_emissions(self, obs_on, tmp_path):
        sink = JsonlEventSink(tmp_path / "events.jsonl", clock=lambda: 1.0)
        probes.add_event_sink(sink.emit)
        try:
            probes.solve_finished("dinic", cache_hit=False)
        finally:
            probes.remove_event_sink(sink.emit)
        events = [json.loads(l)["event"] for l in
                  (tmp_path / "events.jsonl").read_text().splitlines()]
        assert probes.EVENT_SOLVE in events

    def test_probe_fanout_silent_when_disabled(self, tmp_path):
        set_obs_enabled(False)
        sink = JsonlEventSink(tmp_path / "events.jsonl")
        probes.add_event_sink(sink.emit)
        try:
            probes.solve_finished("dinic", cache_hit=False)
        finally:
            probes.remove_event_sink(sink.emit)
        assert not (tmp_path / "events.jsonl").exists()

    def test_sink_errors_never_propagate(self, obs_on):
        def broken(event, amount=1.0, **labels):
            raise OSError("disk full")

        probes.add_event_sink(broken)
        try:
            probes.solve_finished("dinic", cache_hit=False)  # must not raise
        finally:
            probes.remove_event_sink(broken)


class TestTraceDumpAcceptsTelemetry:
    """tools/trace_dump.py unwraps a full telemetry document."""

    @pytest.fixture(scope="class")
    def trace_dump(self):
        import importlib.util
        import sys
        from pathlib import Path

        path = Path(__file__).resolve().parent.parent / "tools" / "trace_dump.py"
        spec = importlib.util.spec_from_file_location("trace_dump_under_test", path)
        module = importlib.util.module_from_spec(spec)
        sys.modules[spec.name] = module
        try:
            spec.loader.exec_module(module)
            yield module
        finally:
            sys.modules.pop(spec.name, None)

    def _span(self):
        return {"name": "batch.solve", "duration_s": 0.002,
                "self_time_s": 0.002, "attributes": {}, "children": []}

    def test_telemetry_document_unwraps_to_embedded_trace(self, trace_dump):
        document = {
            "schema": "repro.telemetry/v1",
            "service": "batch",
            "trace": {"schema": "repro.trace/v1", "spans": [self._span()]},
        }
        assert "batch.solve" in trace_dump.render_document(document)

    def test_plain_trace_document_still_renders(self, trace_dump):
        document = {"schema": "repro.trace/v1", "spans": [self._span()]}
        assert "batch.solve" in trace_dump.render_document(document)

    def test_error_names_both_schemas(self, trace_dump):
        with pytest.raises(ValueError) as excinfo:
            trace_dump.load_spans({"unrelated": 1})
        message = str(excinfo.value)
        assert "repro.trace/v1" in message
        assert "repro.telemetry/v1" in message

    def test_unknown_wrapper_schema_rejected(self, trace_dump):
        document = {"schema": "other/v9", "trace": {"spans": []}}
        with pytest.raises(ValueError):
            trace_dump.load_spans(document)
