"""Exporter gates: Prometheus round-trip, metrics document, JSONL sink.

The Prometheus exposition must be *reversible* — ``parse_prometheus_text``
over ``prometheus_text`` must reproduce the exact ``snapshot()`` dict —
because that equality is the only way to prove nothing (a label, a bucket
count, an overflow observation) is lost on the way out.  The JSONL sink is
pinned for bounded rotation and the probe fan-out contract.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    METRICS_SCHEMA,
    JsonlEventSink,
    MetricsRegistry,
    clear_traces,
    metrics_document,
    parse_prometheus_text,
    probes,
    prometheus_text,
    reset_metrics,
    set_obs_enabled,
)


@pytest.fixture
def obs_on():
    previous = set_obs_enabled(True)
    clear_traces()
    reset_metrics()
    yield
    set_obs_enabled(previous)
    clear_traces()
    reset_metrics()


def populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry(latency_buckets_s=(0.001, 0.1, 1.0))
    reg.counter("service.solves", 5, backend="dinic")
    reg.counter("service.solves", 2, backend="kernel-dinic")
    reg.counter("service.solve_errors", 1, backend="dinic", error_type="numerical")
    reg.gauge("cache.hits", 7, service="batch")
    reg.gauge("solver.depth", 3)
    for value in (0.0005, 0.05, 0.5, 50.0):
        reg.observe("service.solve.seconds", value, backend="dinic")
    return reg


class TestPrometheusText:
    def test_counter_rendering_with_sorted_labels(self):
        reg = MetricsRegistry()
        reg.counter("service.solves", 3, tag="x", backend="dinic")
        text = prometheus_text(registry=reg)
        assert "# TYPE repro_service_solves counter" in text
        assert '# HELP repro_service_solves service.solves' in text
        assert 'repro_service_solves{backend="dinic",tag="x"} 3.0' in text

    def test_histogram_ladder_is_cumulative_and_ends_at_inf(self):
        reg = MetricsRegistry(latency_buckets_s=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            reg.observe("lat", value)
        text = prometheus_text(registry=reg)
        assert 'repro_lat_bucket{le="0.1"} 1' in text
        assert 'repro_lat_bucket{le="1.0"} 2' in text
        assert 'repro_lat_bucket{le="+Inf"} 3' in text
        assert "repro_lat_count 3" in text

    def test_label_values_are_escaped(self):
        reg = MetricsRegistry()
        reg.counter("ev", 1, detail='say "hi"\nplease')
        text = prometheus_text(registry=reg)
        assert '\\"hi\\"' in text and "\\n" in text
        assert parse_prometheus_text(text) == reg.snapshot()

    def test_round_trip_equality_on_mixed_registry(self):
        snap = populated_registry().snapshot()
        assert parse_prometheus_text(prometheus_text(snapshot=snap)) == snap

    def test_empty_registry_round_trips(self):
        snap = MetricsRegistry().snapshot()
        assert parse_prometheus_text(prometheus_text(snapshot=snap)) == snap


class TestPrometheusRoundTripProperty:
    """Seeded property gate: every expressible registry must round-trip.

    Label values draw from an adversarial pool (trailing backslashes,
    embedded quotes, newlines, spaces — everything the escape table
    handles; structural registry-key characters ``, = { }`` are out of
    the registry's own key grammar, not the exporter's).  This is the
    test that caught the parser's escape-lookbehind bug: a label value
    *ending* in a backslash renders as ``...\\\\\"`` and the old scanner
    treated the escaped backslash as escaping the closing quote.
    """

    #: Every escape-table edge plus benign fillers.
    LABEL_VALUES = (
        "plain",
        "",
        "with space",
        'say "hi"',
        "line\nbreak",
        "tab\tis-literal",
        "back\\slash\\middle",
        "tail\\",
        '\\"',
        "\\n-literal",
        'mix \\ "q" \nend\\',
    )

    def _random_registry(self, rng) -> MetricsRegistry:
        reg = MetricsRegistry(latency_buckets_s=(0.001, 0.1, 1.0))
        for _ in range(rng.randrange(1, 6)):
            name = rng.choice(["service.solves", "a.b.c", "ev", "x.y"])
            labels = {
                key: rng.choice(self.LABEL_VALUES)
                for key in rng.sample(["backend", "tenant", "detail"],
                                      rng.randrange(0, 3))
            }
            reg.counter(name, rng.randrange(1, 50), **labels)
        for _ in range(rng.randrange(0, 4)):
            reg.gauge(rng.choice(["depth", "q.d"]),
                      rng.uniform(-10, 10),
                      detail=rng.choice(self.LABEL_VALUES))
        for _ in range(rng.randrange(0, 4)):
            name = rng.choice(["lat.seconds", "service.solve.seconds"])
            labels = {}
            if rng.random() < 0.7:
                labels["backend"] = rng.choice(self.LABEL_VALUES)
            for _ in range(rng.randrange(0, 6)):
                # Values straddle every bucket including the +Inf overflow.
                reg.observe(name, rng.choice([0.0005, 0.05, 0.5, 50.0]),
                            **labels)
        return reg

    def test_random_registries_round_trip(self, rng):
        for case in range(25):
            snap = self._random_registry(rng).snapshot()
            parsed = parse_prometheus_text(prometheus_text(snapshot=snap))
            assert parsed == snap, f"case {case} diverged"

    def test_label_value_ending_in_backslash_round_trips(self):
        # Regression: the escaped trailing backslash must not swallow the
        # closing quote (old parser ran off the end of the line).
        reg = MetricsRegistry()
        reg.counter("ev", 1, path="C:\\temp\\")
        snap = reg.snapshot()
        assert parse_prometheus_text(prometheus_text(snapshot=snap)) == snap

    def test_unterminated_label_value_is_a_typed_error(self):
        with pytest.raises(ValueError, match="unterminated label value"):
            parse_prometheus_text('repro_ev{detail="oops\\"} 1.0\n')

    def test_empty_histogram_round_trips(self):
        # A histogram family that exists but has zero observations is
        # expressible in snapshots (e.g. hand-built baselines): the text
        # form must preserve its bucket ladder and zero counts.
        snap = {
            "counters": {},
            "gauges": {},
            "histograms": {
                "lat": {"buckets": [0.1, 1.0], "counts": [0, 0, 0],
                        "sum": 0.0, "count": 0},
            },
        }
        assert parse_prometheus_text(prometheus_text(snapshot=snap)) == snap

    def test_plus_inf_only_histogram_round_trips(self):
        # Every observation past the last bound: the +Inf overflow slot
        # carries the whole count.
        reg = MetricsRegistry(latency_buckets_s=(0.1, 1.0))
        for _ in range(3):
            reg.observe("lat", 99.0)
        snap = reg.snapshot()
        key = next(iter(snap["histograms"]))
        assert snap["histograms"][key]["counts"][-1] == 3
        assert parse_prometheus_text(prometheus_text(snapshot=snap)) == snap


class TestMetricsDocument:
    def test_schema_and_family_grouping(self):
        doc = metrics_document(registry=populated_registry())
        assert doc["schema"] == METRICS_SCHEMA
        assert doc["resource"]["service.name"] == "repro"
        by_name = {m["name"]: m for m in doc["metrics"]}
        solves = by_name["service.solves"]
        assert solves["type"] == "sum" and solves["is_monotonic"] is True
        assert len(solves["data_points"]) == 2  # one per backend label set
        hist = by_name["service.solve.seconds"]
        point = hist["data_points"][0]
        assert len(point["bucket_counts"]) == len(point["explicit_bounds"]) + 1
        assert sum(point["bucket_counts"]) == point["count"]

    def test_document_is_json_clean_and_deterministic(self):
        reg = populated_registry()
        once = json.dumps(metrics_document(registry=reg))
        again = json.dumps(metrics_document(registry=reg))
        assert once == again

    def test_resource_overrides_merge(self):
        doc = metrics_document(
            registry=MetricsRegistry(), resource={"host": "h1"}
        )
        assert doc["resource"] == {"service.name": "repro", "host": "h1"}


class TestJsonlEventSink:
    def test_writes_are_clock_stamped_jsonl(self, tmp_path):
        ticks = iter([10.0, 11.0])
        sink = JsonlEventSink(tmp_path / "events.jsonl", clock=lambda: next(ticks))
        sink.emit("service.solves", backend="dinic")
        sink.emit("service.solve_errors", 2.0, backend="analog")
        lines = [json.loads(l) for l in
                 (tmp_path / "events.jsonl").read_text().splitlines()]
        assert lines[0] == {"ts": 10.0, "event": "service.solves",
                            "amount": 1.0, "backend": "dinic"}
        assert lines[1]["ts"] == 11.0 and lines[1]["amount"] == 2.0
        assert sink.events_written == 2

    def test_rotation_caps_disk_usage(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlEventSink(path, max_bytes=200, clock=lambda: 0.0)
        for i in range(50):
            sink.write({"event": "e", "i": i})
        assert sink.rotations > 0
        assert path.stat().st_size <= 200
        assert (tmp_path / "events.jsonl.1").stat().st_size <= 200

    def test_rejects_nonpositive_cap(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlEventSink(tmp_path / "x.jsonl", max_bytes=0)

    def test_probe_fanout_mirrors_enabled_emissions(self, obs_on, tmp_path):
        sink = JsonlEventSink(tmp_path / "events.jsonl", clock=lambda: 1.0)
        probes.add_event_sink(sink.emit)
        try:
            probes.solve_finished("dinic", cache_hit=False)
        finally:
            probes.remove_event_sink(sink.emit)
        events = [json.loads(l)["event"] for l in
                  (tmp_path / "events.jsonl").read_text().splitlines()]
        assert probes.EVENT_SOLVE in events

    def test_probe_fanout_silent_when_disabled(self, tmp_path):
        set_obs_enabled(False)
        sink = JsonlEventSink(tmp_path / "events.jsonl")
        probes.add_event_sink(sink.emit)
        try:
            probes.solve_finished("dinic", cache_hit=False)
        finally:
            probes.remove_event_sink(sink.emit)
        assert not (tmp_path / "events.jsonl").exists()

    def test_sink_errors_never_propagate(self, obs_on):
        def broken(event, amount=1.0, **labels):
            raise OSError("disk full")

        probes.add_event_sink(broken)
        try:
            probes.solve_finished("dinic", cache_hit=False)  # must not raise
        finally:
            probes.remove_event_sink(broken)


class TestTraceDumpAcceptsTelemetry:
    """tools/trace_dump.py unwraps a full telemetry document."""

    @pytest.fixture(scope="class")
    def trace_dump(self):
        import importlib.util
        import sys
        from pathlib import Path

        path = Path(__file__).resolve().parent.parent / "tools" / "trace_dump.py"
        spec = importlib.util.spec_from_file_location("trace_dump_under_test", path)
        module = importlib.util.module_from_spec(spec)
        sys.modules[spec.name] = module
        try:
            spec.loader.exec_module(module)
            yield module
        finally:
            sys.modules.pop(spec.name, None)

    def _span(self):
        return {"name": "batch.solve", "duration_s": 0.002,
                "self_time_s": 0.002, "attributes": {}, "children": []}

    def test_telemetry_document_unwraps_to_embedded_trace(self, trace_dump):
        document = {
            "schema": "repro.telemetry/v1",
            "service": "batch",
            "trace": {"schema": "repro.trace/v1", "spans": [self._span()]},
        }
        assert "batch.solve" in trace_dump.render_document(document)

    def test_plain_trace_document_still_renders(self, trace_dump):
        document = {"schema": "repro.trace/v1", "spans": [self._span()]}
        assert "batch.solve" in trace_dump.render_document(document)

    def test_error_names_both_schemas(self, trace_dump):
        with pytest.raises(ValueError) as excinfo:
            trace_dump.load_spans({"unrelated": 1})
        message = str(excinfo.value)
        assert "repro.trace/v1" in message
        assert "repro.telemetry/v1" in message

    def test_unknown_wrapper_schema_rejected(self, trace_dump):
        document = {"schema": "other/v9", "trace": {"spans": []}}
        with pytest.raises(ValueError):
            trace_dump.load_spans(document)
