"""Tests for the MNA assembler, DC operating point and transient simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit import (
    Capacitor,
    Circuit,
    DCOperatingPoint,
    Diode,
    GROUND,
    MNASystem,
    OpAmp,
    Resistor,
    StepWaveform,
    TransientSimulator,
    VCVS,
    VoltageSource,
    CurrentSource,
    dc_sweep,
    equivalent_resistance,
    is_passive_at,
)
from repro.config import OpAmpParameters
from repro.errors import SimulationError, SingularCircuitError


def divider() -> Circuit:
    circuit = Circuit("divider")
    circuit.add(VoltageSource("V1", "in", GROUND, 10.0))
    circuit.add(Resistor("R1", "in", "mid", 1000.0))
    circuit.add(Resistor("R2", "mid", GROUND, 1000.0))
    return circuit


class TestDCOperatingPoint:
    def test_voltage_divider(self):
        solution = DCOperatingPoint().solve(divider())
        assert solution.voltage("mid") == pytest.approx(5.0)
        # 5 mA is delivered by the source (branch current is negative by the
        # SPICE convention: it flows from + through the source).
        assert solution.current("V1") == pytest.approx(-0.005)

    def test_current_source(self):
        circuit = Circuit()
        circuit.add(CurrentSource("I1", GROUND, "a", 1e-3))
        circuit.add(Resistor("R1", "a", GROUND, 2000.0))
        solution = DCOperatingPoint().solve(circuit)
        assert solution.voltage("a") == pytest.approx(2.0)

    def test_vcvs(self):
        circuit = Circuit()
        circuit.add(VoltageSource("V1", "in", GROUND, 1.0))
        circuit.add(Resistor("Rload_in", "in", GROUND, 1e6))
        circuit.add(VCVS("E1", "out", GROUND, "in", GROUND, gain=5.0))
        circuit.add(Resistor("Rload", "out", GROUND, 1000.0))
        solution = DCOperatingPoint().solve(circuit)
        assert solution.voltage("out") == pytest.approx(5.0)

    def test_diode_clamp(self):
        circuit = Circuit()
        circuit.add(VoltageSource("V1", "in", GROUND, 5.0))
        circuit.add(Resistor("R1", "in", "x", 1000.0))
        circuit.add(VoltageSource("Vc", "clamp", GROUND, 2.0))
        circuit.add(Diode("D1", "x", "clamp"))
        solution = DCOperatingPoint().solve(circuit)
        assert solution.voltage("x") == pytest.approx(2.0, abs=1e-2)
        assert solution.diode_states["D1"] is True

    def test_diode_off_when_reverse_biased(self):
        circuit = Circuit()
        circuit.add(VoltageSource("V1", "in", GROUND, 1.0))
        circuit.add(Resistor("R1", "in", "x", 1000.0))
        circuit.add(VoltageSource("Vc", "clamp", GROUND, 2.0))
        circuit.add(Diode("D1", "x", "clamp"))
        solution = DCOperatingPoint().solve(circuit)
        assert solution.voltage("x") == pytest.approx(1.0, abs=1e-3)
        assert solution.diode_states["D1"] is False

    def test_negative_resistor(self):
        circuit = Circuit()
        circuit.add(VoltageSource("V1", "in", GROUND, 1.0))
        circuit.add(Resistor("R1", "in", "a", 1000.0))
        circuit.add(Resistor("RN", "a", GROUND, -2000.0))
        solution = DCOperatingPoint().solve(circuit)
        assert solution.voltage("a") == pytest.approx(2.0)

    def test_opamp_finite_gain_follower(self):
        circuit = Circuit()
        circuit.add(VoltageSource("V1", "vin", GROUND, 1.0))
        circuit.add(OpAmp("U1", "vin", "vout", "vout", parameters=OpAmpParameters(open_loop_gain=1e3)))
        circuit.add(Resistor("RL", "vout", GROUND, 1e4))
        solution = DCOperatingPoint().solve(circuit)
        assert solution.voltage("vout") == pytest.approx(1.0, rel=2e-3)
        assert solution.voltage("vout") < 1.0  # finite-gain error is negative

    def test_singular_circuit_detected(self):
        circuit = Circuit()
        circuit.add(CurrentSource("I1", GROUND, "a", 1e-3))
        circuit.add(Capacitor("C1", "a", GROUND, 1e-12))  # no DC path to ground
        with pytest.raises(SingularCircuitError):
            DCOperatingPoint().solve(circuit)

    def test_warm_start_states_accepted(self):
        circuit = Circuit()
        circuit.add(VoltageSource("V1", "in", GROUND, 5.0))
        circuit.add(Resistor("R1", "in", "x", 1000.0))
        circuit.add(Diode("D1", GROUND, "x"))
        solution = DCOperatingPoint().solve(circuit, initial_states={"D1": True})
        assert solution.voltage("x") == pytest.approx(5.0, abs=1e-3)
        assert solution.diode_states["D1"] is False


class TestMNASystem:
    def test_size_accounts_for_branches(self):
        system = MNASystem(divider())
        # two non-ground nodes + one voltage-source branch
        assert system.size == 3

    def test_voltages_dict(self):
        circuit = divider()
        system = MNASystem(circuit)
        solution = DCOperatingPoint().solve(circuit, mna=system)
        voltages = solution.voltages
        assert voltages[GROUND] == 0.0
        assert set(voltages) == {GROUND, "in", "mid"}

    def test_invalid_dt_rejected(self):
        system = MNASystem(divider())
        with pytest.raises(SimulationError):
            system.matrix(dt=-1.0)
        with pytest.raises(SimulationError):
            system.rhs(dt=1e-9, previous=None)


class TestTransient:
    def test_rc_step_response(self):
        circuit = Circuit()
        circuit.add(VoltageSource("V1", "in", GROUND, StepWaveform(1.0)))
        circuit.add(Resistor("R1", "in", "out", 1000.0))
        circuit.add(Capacitor("C1", "out", GROUND, 1e-9))
        result = TransientSimulator().run(circuit, t_stop=10e-6, dt=10e-9)
        wave = result.voltage("out")
        tau = 1e-6
        assert wave.value_at(tau) == pytest.approx(1 - np.exp(-1), abs=0.02)
        assert wave.final_value == pytest.approx(1.0, abs=1e-3)
        # 0.1 % settling of a single pole happens at about 6.9 tau.
        assert wave.settling_time(1e-3) == pytest.approx(6.9 * tau, rel=0.15)

    def test_opamp_follower_bandwidth(self):
        def settle_for(gbw):
            circuit = Circuit()
            circuit.add(VoltageSource("V1", "vin", GROUND, StepWaveform(1.0)))
            circuit.add(
                OpAmp("U1", "vin", "vout", "vout", parameters=OpAmpParameters(gbw_hz=gbw))
            )
            circuit.add(Resistor("RL", "vout", GROUND, 1e4))
            result = TransientSimulator().run(circuit, t_stop=3e-9, dt=1e-12)
            return result.voltage("vout").settling_time(1e-3)

        slow = settle_for(10e9)
        fast = settle_for(50e9)
        assert fast < slow
        assert slow / fast == pytest.approx(5.0, rel=0.3)

    def test_diode_clamp_transient(self):
        circuit = Circuit()
        circuit.add(VoltageSource("V1", "in", GROUND, StepWaveform(5.0)))
        circuit.add(Resistor("R1", "in", "x", 1000.0))
        circuit.add(Capacitor("C1", "x", GROUND, 1e-12))
        circuit.add(VoltageSource("Vc", "clamp", GROUND, 2.0))
        circuit.add(Diode("D1", "x", "clamp"))
        result = TransientSimulator().run(circuit, t_stop=50e-9, dt=0.05e-9)
        assert result.voltage("x").final_value == pytest.approx(2.0, abs=0.01)
        assert result.diode_state_changes >= 1

    def test_record_subset_and_currents(self):
        circuit = divider()
        circuit.add(Capacitor("C1", "mid", GROUND, 1e-12))
        result = TransientSimulator().run(
            circuit, t_stop=1e-9, dt=1e-11, record_nodes=["mid"], record_currents=["V1"]
        )
        assert set(result.node_voltages) == {"mid"}
        assert "V1" in result.branch_currents
        with pytest.raises(SimulationError):
            result.voltage("in")

    def test_invalid_parameters(self):
        with pytest.raises(SimulationError):
            TransientSimulator().run(divider(), t_stop=0.0, dt=1e-9)
        with pytest.raises(SimulationError):
            TransientSimulator().run(divider(), t_stop=1e-9, dt=1e-9, record_nodes=["zzz"])


class TestAnalysisHelpers:
    def test_equivalent_resistance_of_divider(self):
        assert equivalent_resistance(divider(), "mid") == pytest.approx(500.0)
        assert is_passive_at(divider(), "mid")

    def test_equivalent_resistance_with_negative_branch(self):
        circuit = Circuit()
        circuit.add(Resistor("R1", "a", GROUND, 1000.0))
        circuit.add(Resistor("RN", "a", GROUND, -2000.0))
        # parallel of 1k and -2k -> 2k
        assert equivalent_resistance(circuit, "a") == pytest.approx(2000.0)

    def test_dc_sweep_restores_waveform(self):
        circuit = divider()
        source = circuit.element("V1")
        original = source.waveform
        solutions = dc_sweep(circuit, "V1", [1.0, 2.0, 3.0])
        assert [s.voltage("mid") for s in solutions] == pytest.approx([0.5, 1.0, 1.5])
        assert source.waveform is original
