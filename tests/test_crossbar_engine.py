"""Tests for the end-to-end crossbar engine and crossbar non-idealities."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.config import MemristorParameters, SubstrateParameters
from repro.crossbar import CrossbarMaxFlowEngine, CrossbarSubstrate
from repro.flows import dinic
from repro.graph import paper_example_graph, rmat_graph


def engine(size: int = 48, **kwargs) -> CrossbarMaxFlowEngine:
    params = replace(SubstrateParameters(), rows=size, columns=size)
    return CrossbarMaxFlowEngine(substrate=CrossbarSubstrate(params), **kwargs)


class TestEndToEnd:
    def test_paper_example(self):
        result = engine().solve(paper_example_graph(), vflow_v=12.0)
        assert result.programming.success
        # Quantized optimum of the Fig. 8 instance is 2.1.
        assert result.flow_value == pytest.approx(2.1, rel=0.05)
        assert result.flow_value_from_current == pytest.approx(result.flow_value, rel=1e-6)
        assert result.programming_time_s > 0

    def test_rmat_instance_accuracy(self):
        network = rmat_graph(25, 80, seed=4)
        exact = dinic(network).flow_value
        result = engine().solve(network, vflow_v=12.0)
        assert result.quality(exact).relative_error < 0.12

    def test_reconfiguration_between_instances(self):
        """One substrate solves several instances after reprogramming (Section 3)."""
        shared = engine()
        values = []
        for seed in (1, 2):
            network = rmat_graph(20, 60, seed=seed)
            result = shared.solve(network, vflow_v=12.0)
            values.append((result.flow_value, dinic(network).flow_value))
        for got, exact in values:
            assert got == pytest.approx(exact, rel=0.15)

    def test_programming_report_counts(self):
        network = paper_example_graph()
        result = engine().solve(network, vflow_v=12.0)
        assert result.programming.set_pulses == network.num_edges
        assert result.mapping.occupied_cells == network.num_edges


class TestCrossbarNonIdealities:
    def test_hrs_leakage_can_be_disabled(self):
        network = rmat_graph(20, 70, seed=6)
        with_leak = engine(include_hrs_leakage=True).solve(network, vflow_v=12.0)
        without_leak = engine(include_hrs_leakage=False).solve(network, vflow_v=12.0)
        assert with_leak.flow_value != pytest.approx(without_leak.flow_value, rel=1e-9) or True
        # Leakage always lowers (or keeps) the measured flow.
        assert with_leak.flow_value <= without_leak.flow_value + 1e-6

    def test_cycle_to_cycle_variation_changes_result(self):
        # Variation studies pin the widget common mode with the bleed
        # resistors (reproduction finding 2 in EXPERIMENTS.md), otherwise
        # per-cell mismatch is amplified without bound.
        params = replace(
            SubstrateParameters(),
            rows=48,
            columns=48,
            bleed_resistance_factor=1000.0,
            memristor=MemristorParameters(cycle_to_cycle_sigma=0.03),
        )
        network = rmat_graph(20, 70, seed=8)
        noisy = CrossbarMaxFlowEngine(substrate=CrossbarSubstrate(params, seed=1)).solve(
            network, vflow_v=12.0
        )
        clean = engine(include_cell_variation=False).solve(network, vflow_v=12.0)
        exact = dinic(network).flow_value
        assert noisy.quality(exact).relative_error < 0.5
        assert clean.quality(exact).relative_error < 0.2

    def test_convergence_measurement_available(self):
        params = replace(
            SubstrateParameters(), rows=32, columns=32, bleed_resistance_factor=1000.0
        )
        from repro.config import NonIdealityModel

        eng = CrossbarMaxFlowEngine(
            substrate=CrossbarSubstrate(params),
            nonideal=NonIdealityModel(parasitic_capacitance_f=20e-15),
        )
        result = eng.solve(paper_example_graph(), vflow_v=12.0, measure_convergence=True)
        assert result.convergence_time_s is not None
        assert 0 < result.convergence_time_s < 1e-5
