"""Tests for the FlowNetwork data structure."""

from __future__ import annotations

import pytest

from repro.errors import EdgeNotFoundError, InvalidGraphError, VertexNotFoundError
from repro.graph import FlowNetwork, paper_example_graph


class TestConstruction:
    def test_source_and_sink_are_created(self):
        network = FlowNetwork(source="s", sink="t")
        assert network.has_vertex("s")
        assert network.has_vertex("t")
        assert network.num_vertices == 2
        assert network.num_edges == 0

    def test_source_equals_sink_rejected(self):
        with pytest.raises(InvalidGraphError):
            FlowNetwork(source="x", sink="x")

    def test_add_edge_creates_vertices(self):
        network = FlowNetwork()
        edge = network.add_edge("a", "b", 5.0)
        assert network.has_vertex("a") and network.has_vertex("b")
        assert edge.index == 0
        assert edge.capacity == 5.0

    def test_negative_capacity_rejected(self):
        network = FlowNetwork()
        with pytest.raises(InvalidGraphError):
            network.add_edge("a", "b", -1.0)

    def test_self_loop_rejected(self):
        network = FlowNetwork()
        with pytest.raises(InvalidGraphError):
            network.add_edge("a", "a", 1.0)

    def test_parallel_edges_allowed(self):
        network = FlowNetwork()
        network.add_edge("a", "b", 1.0)
        network.add_edge("a", "b", 2.0)
        assert network.num_edges == 2
        assert len(network.find_edges("a", "b")) == 2

    def test_edge_indices_are_positional(self):
        network = paper_example_graph()
        for position, edge in enumerate(network.edges()):
            assert edge.index == position
            assert network.edge(position) is not None

    def test_unknown_edge_index(self):
        with pytest.raises(EdgeNotFoundError):
            paper_example_graph().edge(99)

    def test_unknown_vertex_query(self):
        with pytest.raises(VertexNotFoundError):
            paper_example_graph().out_edges("nope")


class TestQueries:
    def test_paper_example_shape(self):
        g = paper_example_graph()
        assert g.num_vertices == 5
        assert g.num_edges == 5
        assert g.out_degree("s") == 1
        assert g.in_degree("t") == 2
        assert sorted(g.internal_vertices()) == ["n1", "n2", "n3"]

    def test_neighbors_are_unique(self):
        network = FlowNetwork()
        network.add_edge("s", "a", 1.0)
        network.add_edge("s", "a", 2.0)
        network.add_edge("s", "t", 3.0)
        assert network.neighbors("s") == ["a", "t"]

    def test_max_and_total_capacity(self):
        g = paper_example_graph()
        assert g.max_capacity() == 3.0
        assert g.total_capacity() == pytest.approx(9.0)

    def test_infinite_capacity_excluded_from_max(self):
        network = FlowNetwork()
        network.add_edge("s", "a", 2.0)
        network.add_edge("a", "t", float("inf"))
        assert network.max_capacity() == 2.0

    def test_adjacency_matrix_merges_parallel_edges(self):
        network = FlowNetwork()
        network.add_edge("s", "t", 1.0)
        network.add_edge("s", "t", 2.5)
        order, matrix = network.adjacency_matrix()
        i, j = order.index("s"), order.index("t")
        assert matrix[i][j] == pytest.approx(3.5)

    def test_copy_and_reversed(self):
        g = paper_example_graph()
        clone = g.copy()
        assert clone.num_edges == g.num_edges and clone is not g
        rev = g.reversed()
        assert rev.source == g.sink and rev.sink == g.source
        assert rev.has_edge("n1", "s")

    def test_subgraph_requires_terminals(self):
        g = paper_example_graph()
        with pytest.raises(InvalidGraphError):
            g.subgraph(["n1", "n2"])
        sub = g.subgraph(["s", "n1", "n2", "t"])
        assert sub.num_vertices == 4
        assert not sub.has_vertex("n3")


class TestFlowChecks:
    def test_feasible_flow_accepted(self):
        g = paper_example_graph()
        flow = {0: 2.0, 1: 1.0, 2: 1.0, 3: 1.0, 4: 1.0}
        assert g.is_feasible_flow(flow)
        assert g.flow_value(flow) == pytest.approx(2.0)

    def test_capacity_violation_detected(self):
        g = paper_example_graph()
        flow = {0: 4.0, 1: 2.0, 2: 2.0, 3: 2.0, 4: 2.0}
        problems = g.check_flow(flow)
        assert any("exceeds" in p for p in problems)

    def test_conservation_violation_detected(self):
        g = paper_example_graph()
        flow = {0: 2.0, 1: 0.5, 2: 1.0, 3: 1.0, 4: 1.0}
        problems = g.check_flow(flow)
        assert any("conservation" in p for p in problems)

    def test_negative_flow_detected(self):
        g = paper_example_graph()
        problems = g.check_flow({0: -0.5})
        assert any("negative" in p for p in problems)

    def test_excess(self):
        g = paper_example_graph()
        flow = {0: 2.0, 1: 1.0, 2: 1.0}
        assert g.excess(flow, "n1") == pytest.approx(0.0)
        assert g.excess(flow, "n2") == pytest.approx(1.0)

    def test_cut_capacity(self):
        g = paper_example_graph()
        assert g.cut_capacity({"s"}) == pytest.approx(3.0)
        assert g.cut_capacity({"s", "n1"}) == pytest.approx(3.0)
        assert g.cut_capacity({"s", "n1", "n2", "n3"}) == pytest.approx(3.0)

    def test_cut_capacity_requires_valid_partition(self):
        g = paper_example_graph()
        with pytest.raises(InvalidGraphError):
            g.cut_capacity({"n1"})
        with pytest.raises(InvalidGraphError):
            g.cut_capacity({"s", "t"})
