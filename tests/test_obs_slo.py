"""SLO engine gates: burn-rate verdicts and budget-aware failover routing.

The headline test is the acceptance scenario: a seeded fault plan drives
one backend's error budget to exhaustion on an injected clock, after
which ``solve_with_failover`` demonstrably *skips* that backend — the
skip appears in the failover trail, the ``slo.backend_skips`` counter,
and the backend's error counter stops growing.  Everything runs
deterministically: injected clocks, seeded fault plans, no sleeping.
"""

from __future__ import annotations

import pytest

from repro import FlowNetwork
from repro.obs import (
    MetricsRegistry,
    SloObjective,
    SloPolicy,
    clear_traces,
    get_registry,
    get_slo_policy,
    probes,
    reset_metrics,
    set_obs_enabled,
    set_slo_policy,
)
from repro.resilience import FailoverPolicy, inject_faults, solve_with_failover
from repro.resilience.faults import FaultPlan
from repro.service.api import SolveRequest
from repro.service.backends import create_backend


@pytest.fixture
def obs_slo():
    """Obs on, clean registry/traces, no leaked process-global SLO policy."""
    previous = set_obs_enabled(True)
    clear_traces()
    reset_metrics()
    saved = set_slo_policy(None)
    yield
    set_slo_policy(saved)
    set_obs_enabled(previous)
    clear_traces()
    reset_metrics()


def stepped_clock(start: float = 0.0):
    state = {"now": start}
    return (lambda: state["now"]), (lambda dt: state.__setitem__("now", state["now"] + dt))


def tiny_network() -> FlowNetwork:
    g = FlowNetwork()
    g.add_edge("s", "a", 4.0)
    g.add_edge("a", "t", 2.0)
    return g


class TestSloObjective:
    def test_budgets_derive_from_targets(self):
        objective = SloObjective(availability=0.99, latency_s=0.5,
                                 latency_quantile=0.95)
        assert objective.error_budget == pytest.approx(0.01)
        assert objective.latency_budget == pytest.approx(0.05)

    @pytest.mark.parametrize("kwargs", [
        {"availability": 0.0},
        {"availability": 1.0},
        {"latency_quantile": 1.0},
        {"latency_s": -1.0},
    ])
    def test_invalid_objectives_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SloObjective(**kwargs)


class TestSloPolicyVerdicts:
    def _policy(self, reg, clock, **kwargs):
        kwargs.setdefault("objective", SloObjective(availability=0.95))
        kwargs.setdefault("min_requests", 2)
        return SloPolicy(registry=reg, clock=clock, **kwargs)

    def test_unproven_backend_is_healthy(self, obs_slo):
        reg = MetricsRegistry()
        clock, _ = stepped_clock()
        policy = self._policy(reg, clock)
        health = policy.health("dinic")
        assert health.verdict == "healthy" and not health.should_skip
        assert "unproven" in health.reason

    def test_sustained_total_failure_exhausts_budget(self, obs_slo):
        reg = MetricsRegistry()
        clock, advance = stepped_clock()
        policy = self._policy(reg, clock)
        policy.observe()
        advance(60.0)
        reg.counter("service.solve_errors", 20, backend="dinic",
                    error_type="numerical")
        health = policy.health("dinic")
        assert health.verdict == "exhausted" and health.should_skip
        assert health.error_rate == pytest.approx(1.0)
        assert health.budget_remaining == 0.0
        assert "availability budget exhausted" in health.reason

    def test_small_sample_never_exhausts(self, obs_slo):
        reg = MetricsRegistry()
        clock, advance = stepped_clock()
        policy = self._policy(reg, clock, min_requests=10)
        policy.observe()
        advance(60.0)
        reg.counter("service.solve_errors", 3, backend="dinic", error_type="e")
        assert policy.health("dinic").verdict == "healthy"

    def test_slow_burn_without_fast_burn_is_degraded_not_exhausted(self, obs_slo):
        reg = MetricsRegistry()
        clock, advance = stepped_clock()
        policy = self._policy(reg, clock)
        # Old errors inside the slow window only: burn rides above 1 but
        # the fast window stays clean, so the verdict must stop at
        # "degraded" (the multi-window rule needs both to agree).
        policy.observe()                       # t=0 baseline for both windows
        advance(10.0)
        reg.counter("service.solves", 16, backend="dinic")
        reg.counter("service.solve_errors", 4, backend="dinic", error_type="e")
        policy.observe()                       # t=10: errors recorded
        advance(400.0)                         # past the fast window
        reg.counter("service.solves", 40, backend="dinic")
        policy.observe()
        health = policy.health("dinic")
        assert health.fast_burn < policy.fast_burn_threshold
        assert health.slow_burn >= policy.slow_burn_threshold
        assert health.verdict == "degraded" and not health.should_skip

    def test_latency_objective_burns_budget(self, obs_slo):
        reg = MetricsRegistry(latency_buckets_s=(0.1, 1.0))
        clock, advance = stepped_clock()
        policy = self._policy(
            reg, clock,
            objective=SloObjective(availability=0.999, latency_s=0.1,
                                   latency_quantile=0.95),
        )
        policy.observe()
        advance(30.0)
        for _ in range(10):
            reg.counter("service.solves", backend="analog")
            reg.observe("service.solve.seconds", 0.5, backend="analog")
        health = policy.health("analog")
        assert health.verdict == "exhausted"
        assert "latency budget exhausted" in health.reason

    def test_recovery_closes_the_gate(self, obs_slo):
        reg = MetricsRegistry()
        clock, advance = stepped_clock()
        policy = self._policy(reg, clock, fast_window_s=100.0,
                              slow_window_s=100.0)
        policy.observe()
        advance(10.0)
        reg.counter("service.solve_errors", 20, backend="dinic", error_type="e")
        policy.observe()
        assert policy.should_skip("dinic")
        # The bad minute ages out of both windows; clean traffic arrives.
        advance(200.0)
        policy.observe()
        advance(10.0)
        reg.counter("service.solves", 20, backend="dinic")
        assert not policy.should_skip("dinic")

    def test_report_shape_for_telemetry(self, obs_slo):
        reg = MetricsRegistry()
        clock, advance = stepped_clock()
        policy = self._policy(reg, clock)
        policy.observe()
        advance(10.0)
        reg.counter("service.solves", 5, backend="dinic")
        report = policy.report()
        assert set(report) == {"objective", "windows", "backends"}
        assert report["windows"]["fast_s"] == policy.fast_window_s
        assert report["backends"]["dinic"]["verdict"] == "healthy"

    def test_invalid_policy_parameters_rejected(self):
        with pytest.raises(ValueError):
            SloPolicy(fast_window_s=600.0, slow_window_s=300.0)
        with pytest.raises(ValueError):
            SloPolicy(min_requests=0)


class TestGlobalPolicyHook:
    def test_install_and_restore(self, obs_slo):
        assert get_slo_policy() is None
        policy = SloPolicy(registry=MetricsRegistry())
        assert set_slo_policy(policy) is None
        assert get_slo_policy() is policy
        assert set_slo_policy(None) is policy
        assert get_slo_policy() is None


class TestFailoverIntegration:
    """The acceptance scenario: exhaustion -> the chain routes around."""

    def _exhaust_kernel_dinic(self, slo_policy):
        """Seeded faults drive kernel-dinic's budget to zero, deterministically."""
        slo_policy.observe()  # baseline sample at t=0
        request = SolveRequest(network=tiny_network(), backend="kernel-dinic")
        plan = FaultPlan(kind="error", backend="kernel-dinic",
                         site="batch-solve", times=0)
        with inject_faults(plan):
            backend = create_backend("kernel-dinic")
            for _ in range(12):
                result = backend.solve(request)
                assert not result.ok
        assert plan.fired == 12

    def test_exhausted_backend_is_skipped_end_to_end(self, obs_slo):
        clock, advance = stepped_clock()
        slo_policy = SloPolicy(
            objective=SloObjective(availability=0.95),
            clock=clock, min_requests=5,
        )
        self._exhaust_kernel_dinic(slo_policy)
        advance(60.0)
        health = slo_policy.health("kernel-dinic")
        assert health.should_skip, health

        errors_before = get_registry().get_counter(
            probes.EVENT_SOLVE_ERROR, backend="kernel-dinic",
            error_type="AlgorithmError",
        )
        policy = FailoverPolicy(slo=slo_policy)
        result = solve_with_failover(
            SolveRequest(network=tiny_network(), backend="kernel-dinic"),
            policy,
            create_backend,
        )
        # The solve still succeeds -- on the fallback, pre-emptively.
        assert result.ok and result.degraded
        assert result.request.backend == "dinic"
        assert any("error budget exhausted" in step
                   for step in result.failover_trail)
        # kernel-dinic was never attempted: its error counter is frozen
        # and the skip itself was counted.
        errors_after = get_registry().get_counter(
            probes.EVENT_SOLVE_ERROR, backend="kernel-dinic",
            error_type="AlgorithmError",
        )
        assert errors_after == errors_before
        assert get_registry().get_counter(
            probes.EVENT_SLO_SKIP, backend="kernel-dinic", reason="exhausted"
        ) == 1.0

    def test_fully_exhausted_chain_tries_last_element_and_records_skips(
        self, obs_slo
    ):
        """Every chain member exhausted: skips land in trail + counters,
        and the last resort is still genuinely *attempted*."""
        clock, advance = stepped_clock()
        slo_policy = SloPolicy(
            objective=SloObjective(availability=0.95),
            clock=clock, min_requests=5,
        )
        slo_policy.observe()
        for backend in ("analog", "kernel-dinic", "dinic"):
            get_registry().counter("service.solve_errors", 20,
                                   backend=backend, error_type="e")
        advance(60.0)
        for backend in ("analog", "kernel-dinic", "dinic"):
            assert slo_policy.should_skip(backend), backend

        solves_before = get_registry().get_counter(
            probes.EVENT_SOLVE, backend="dinic"
        )
        policy = FailoverPolicy(slo=slo_policy)
        result = solve_with_failover(
            SolveRequest(network=tiny_network(), backend="analog"),
            policy,
            create_backend,
        )
        assert result.ok and result.degraded
        assert result.request.backend == "dinic"
        # Both non-last stages were skipped, in chain order, with the
        # exhaustion verdict recorded verbatim in the trail...
        assert len(result.failover_trail) == 2
        for step, name in zip(result.failover_trail,
                              ("analog", "kernel-dinic")):
            assert step.startswith(f"{name}: error budget exhausted")
        # ...and in the skip counters — but never for the last resort.
        reg = get_registry()
        for name in ("analog", "kernel-dinic"):
            assert reg.get_counter(
                probes.EVENT_SLO_SKIP, backend=name, reason="exhausted"
            ) == 1.0
        assert reg.get_counter(
            probes.EVENT_SLO_SKIP, backend="dinic", reason="exhausted"
        ) == 0.0
        # "still try the last element": dinic's solve counter moved.
        assert reg.get_counter(
            probes.EVENT_SOLVE, backend="dinic"
        ) == solves_before + 1.0

    def test_expired_deadline_aborts_chain_before_any_attempt(self, obs_slo):
        import time

        from repro.resilience import Deadline, deadline_scope

        deadline = Deadline(5.0)
        # Rewind the absolute expiry: the budget is already spent, with no
        # sleeping and no dependence on how fast this test runs.
        deadline._expires_at = time.monotonic() - 1.0
        assert deadline.expired()
        with deadline_scope(deadline):
            result = solve_with_failover(
                SolveRequest(network=tiny_network(), backend="kernel-dinic"),
                FailoverPolicy(),
                create_backend,
            )
        assert not result.ok
        assert result.error_type == "SolveTimeoutError"
        assert result.failover_trail == [
            "kernel-dinic: not attempted, deadline expired"
        ]
        assert get_registry().get_counter(
            probes.EVENT_FAILOVER_HOP, backend="kernel-dinic",
            outcome="deadline-expired",
        ) == 1.0

    def test_last_resort_is_never_skipped(self, obs_slo):
        clock, advance = stepped_clock()
        slo_policy = SloPolicy(
            objective=SloObjective(availability=0.95),
            clock=clock, min_requests=5,
        )
        slo_policy.observe()
        # Exhaust *every* chain member's budget.
        for backend in ("kernel-dinic", "dinic"):
            get_registry().counter("service.solve_errors", 20,
                                   backend=backend, error_type="e")
        advance(60.0)
        assert slo_policy.should_skip("dinic")
        policy = FailoverPolicy(slo=slo_policy)
        result = solve_with_failover(
            SolveRequest(network=tiny_network(), backend="kernel-dinic"),
            policy,
            create_backend,
        )
        # dinic is the chain's last element: degraded service beats none.
        assert result.ok
        assert result.request.backend == "dinic"

    def test_process_global_policy_reaches_chain_walks(self, obs_slo):
        clock, advance = stepped_clock()
        slo_policy = SloPolicy(
            objective=SloObjective(availability=0.95),
            clock=clock, min_requests=5,
        )
        slo_policy.observe()
        get_registry().counter("service.solve_errors", 20,
                               backend="kernel-dinic", error_type="e")
        advance(60.0)
        set_slo_policy(slo_policy)
        result = solve_with_failover(
            SolveRequest(network=tiny_network(), backend="kernel-dinic"),
            FailoverPolicy(),  # no explicit slo: falls through to global
            create_backend,
        )
        assert result.ok and result.request.backend == "dinic"
        assert any("error budget exhausted" in step
                   for step in result.failover_trail)


class TestTelemetrySloSection:
    def test_telemetry_carries_active_policy_report(self, obs_slo):
        from repro.service.batch import BatchSolveService

        clock, _ = stepped_clock()
        slo_policy = SloPolicy(clock=clock)
        set_slo_policy(slo_policy)
        report = BatchSolveService(executor="serial").solve_batch(
            [SolveRequest(network=tiny_network(), backend="dinic")]
        )
        document = report.telemetry()
        assert document["slo"]["backends"]["dinic"]["verdict"] == "healthy"
        assert document["trace"]["schema"] == "repro.trace/v1"

    def test_telemetry_slo_empty_without_policy(self, obs_slo):
        from repro.service.batch import BatchSolveService

        report = BatchSolveService(executor="serial").solve_batch(
            [SolveRequest(network=tiny_network(), backend="dinic")]
        )
        assert report.telemetry()["slo"] == {}
