"""Tests for the crossbar substrate, programming protocol and mapping."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.circuit import MemristorState
from repro.config import SubstrateParameters
from repro.crossbar import (
    CrossbarSubstrate,
    ProgrammingProtocol,
    map_network_to_crossbar,
)
from repro.errors import CrossbarCapacityError, MappingError, ProgrammingError
from repro.graph import FlowNetwork, paper_example_graph, rmat_graph


def small_substrate(size: int = 32) -> CrossbarSubstrate:
    return CrossbarSubstrate(replace(SubstrateParameters(), rows=size, columns=size))


class TestSubstrate:
    def test_lazy_materialisation(self):
        substrate = small_substrate()
        assert len(substrate.materialised_cells()) == 0
        cell = substrate.cell(3, 4)
        assert cell.row == 3 and cell.column == 4
        assert len(substrate.materialised_cells()) == 1
        assert substrate.cell(3, 4) is cell

    def test_out_of_range_cell(self):
        with pytest.raises(CrossbarCapacityError):
            small_substrate(8).cell(9, 0)

    def test_reset_clears_state(self):
        substrate = small_substrate()
        cell = substrate.cell(1, 2)
        cell.switch.force_state(MemristorState.LRS)
        cell.assign(0, 5)
        substrate.reset()
        assert not cell.is_programmed
        assert not cell.is_used

    def test_occupancy_report(self):
        substrate = small_substrate(16)
        substrate.cell(1, 2).switch.force_state(MemristorState.LRS)
        report = substrate.occupancy_report()
        assert report["programmed_cells"] == 1
        assert 0 < report["utilisation"] < 0.01

    def test_hrs_leakage_scales_with_subgrid(self):
        substrate = small_substrate(32)
        small = substrate.hrs_leakage_conductance(4)
        large = substrate.hrs_leakage_conductance(16)
        assert large > small > 0


class TestProgrammingProtocol:
    def test_voltage_margins_validated(self):
        substrate = small_substrate()
        with pytest.raises(ProgrammingError):
            ProgrammingProtocol(v_high=0.4, v_low=-0.4).validate_voltages(substrate)
        with pytest.raises(ProgrammingError):
            ProgrammingProtocol(v_high=1.5, v_low=-1.5).validate_voltages(substrate)
        set_margin, disturb_margin = ProgrammingProtocol(0.9, -0.9).validate_voltages(substrate)
        assert set_margin > 0 and disturb_margin > 0

    def test_program_selected_cells_only(self):
        substrate = small_substrate()
        targets = {(1, 2): True, (2, 3): True, (1, 3): False}
        # Materialise the off-target cell so disturb tracking can see it.
        substrate.cell(1, 3)
        report = ProgrammingProtocol().program(substrate, targets)
        assert report.success
        assert substrate.cell(1, 2).is_programmed
        assert substrate.cell(2, 3).is_programmed
        assert not substrate.cell(1, 3).is_programmed
        assert report.set_pulses == 2
        assert report.half_selected_cells > 0
        assert report.programming_time_s > 0

    def test_reprogramming_erases_previous_pattern(self):
        substrate = small_substrate()
        protocol = ProgrammingProtocol()
        protocol.program(substrate, {(1, 2): True})
        report = protocol.program(substrate, {(2, 3): True})
        assert report.success
        assert not substrate.cell(1, 2).is_programmed
        assert substrate.cell(2, 3).is_programmed

    def test_cycle_count_matches_rows_with_targets(self):
        substrate = small_substrate()
        report = ProgrammingProtocol().program(
            substrate, {(0, 3): True, (0, 5): True, (4, 2): True}
        )
        assert report.cycles == 2  # rows 0 and 4


class TestMapping:
    def test_paper_example_layout(self):
        substrate = small_substrate()
        g = paper_example_graph()
        mapping = map_network_to_crossbar(g, substrate)
        # The source edge sits on the objective row 0 (Fig. 6).
        assert mapping.cell_of_edge[0][0] == 0
        # Every edge has a distinct cell.
        assert len(set(mapping.cell_of_edge.values())) == g.num_edges
        assert mapping.occupied_cells == g.num_edges

    def test_capacity_limit_enforced(self):
        substrate = small_substrate(8)
        with pytest.raises(CrossbarCapacityError):
            map_network_to_crossbar(rmat_graph(20, 60, seed=1), substrate)

    def test_parallel_edges_merged(self):
        substrate = small_substrate()
        g = FlowNetwork()
        g.add_edge("s", "a", 1.0)
        g.add_edge("s", "a", 2.0)
        g.add_edge("a", "t", 4.0)
        mapping = map_network_to_crossbar(g, substrate)
        assert mapping.network.num_edges == 2
        assert mapping.network.max_capacity() == 4.0

    def test_bfs_ordering_accepted(self):
        substrate = small_substrate()
        mapping = map_network_to_crossbar(paper_example_graph(), substrate, ordering="bfs")
        assert mapping.index_of_vertex["s"] == 1
        with pytest.raises(MappingError):
            map_network_to_crossbar(paper_example_graph(), small_substrate(), ordering="zzz")

    def test_target_pattern_matches_cells(self):
        substrate = small_substrate()
        mapping = map_network_to_crossbar(paper_example_graph(), substrate)
        pattern = mapping.target_pattern()
        assert all(pattern[coords] for coords in mapping.cell_of_edge.values())
        assert len(pattern) == mapping.occupied_cells
