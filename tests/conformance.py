"""Shared cross-backend conformance corpus and backend adapters.

One randomized instance corpus (grids, R-MAT, bipartite, plus degenerate
shapes: zero-capacity edges, disconnected s/t, single edge) consumed by
``tests/test_backend_conformance.py`` — the single correctness gate every
solving path must clear instead of four per-subsystem copies:

* every classical algorithm in :data:`repro.flows.registry.ALGORITHMS`,
* the analog pipeline (certificate-grade: unquantized, adaptive drive),
* the sharded service (:class:`repro.service.ShardedSolveService`),
* a one-push :class:`repro.service.StreamingSession` (classical + analog).

Instance seeds derive from ``REPRO_TEST_SEED`` (see ``conftest.py``), so a
red run is reproducible by exporting the seed the failure report printed.

Backend tolerances
------------------
``TOLERANCES`` records the per-backend-family relative flow-value tolerance:
exact combinatorial backends must match the Dinic reference to 1e-9, the LP
reference to its solver tolerance, the analog substrate to its substrate
tolerance, and a warm streaming-analog push is compared against a *cold*
solve of the same solver configuration (drive adaptation is a compile-time
choice, so warm-vs-cold of one configuration is the meaningful invariant —
the substrate-vs-exact gap is covered by the analog pipeline gate).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from seeding import derive_seed

from repro.analog.solver import AnalogMaxFlowSolver
from repro.flows.registry import solve_max_flow
from repro.graph import (
    FlowNetwork,
    bipartite_graph,
    grid_graph,
    paper_example_graph,
    parallel_paths_graph,
    rmat_graph,
)
from repro.graph.updates import CapacityUpdate
from repro.service import ShardedSolveService, StreamingSession

#: Relative flow-value tolerance per backend family.
TOLERANCES: Dict[str, float] = {
    "classical": 1e-9,
    "lp-reference": 1e-6,
    "analog": 5e-3,
    "sharded": 1e-9,
    "streaming-classical": 1e-9,
    "streaming-analog": 1e-3,  # warm push vs cold solve, leakage-bounded
}


@dataclass
class ConformanceInstance:
    """One corpus entry: a network, its exact value and applicability flags."""

    name: str
    network: FlowNetwork
    reference_value: float
    #: Sharded solving needs interior vertices to partition and an instance
    #: class the coordinator is known to converge on.
    shardable: bool = True
    #: The analog *pipeline* handles every corpus shape (a dead source is a
    #: graceful zero-flow result) ...
    analog_ok: bool = True
    #: ... but the streaming session's compile path (dedicated clamp
    #: sources, no pruning) rejects a source with no usable outgoing edge.
    streaming_analog_ok: bool = True
    #: Streaming needs at least one edge to push an update against.
    streamable: bool = True
    tags: List[str] = field(default_factory=list)


def _instance(name: str, network: FlowNetwork, **flags) -> ConformanceInstance:
    reference = solve_max_flow(network, algorithm="dinic").flow_value
    return ConformanceInstance(
        name=name, network=network, reference_value=reference, **flags
    )


def _zero_capacity_network() -> FlowNetwork:
    """Zero-capacity edges on real paths plus a live parallel route."""
    g = FlowNetwork()
    g.add_edge("s", "a", 0.0)
    g.add_edge("a", "t", 2.0)
    g.add_edge("s", "b", 3.0)
    g.add_edge("b", "t", 0.0)
    g.add_edge("s", "t", 1.5)
    g.add_edge("b", "a", 1.0)
    return g


def _disconnected_network() -> FlowNetwork:
    """Source and sink in different components (max flow 0)."""
    g = FlowNetwork()
    g.add_edge("s", "a", 3.0)
    g.add_edge("a", "s", 1.0)
    g.add_edge("b", "t", 2.0)
    return g


def _single_edge_network() -> FlowNetwork:
    g = FlowNetwork()
    g.add_edge("s", "t", 4.5)
    return g


def build_corpus() -> List[ConformanceInstance]:
    """The shared randomized + degenerate instance corpus (fast subset)."""
    return [
        _instance("paper-fig5a", paper_example_graph()),
        _instance(
            "single-edge",
            _single_edge_network(),
            shardable=False,  # no interior vertices to partition
            tags=["degenerate"],
        ),
        _instance(
            "disconnected-st",
            _disconnected_network(),
            shardable=False,
            streaming_analog_ok=False,
            tags=["degenerate"],
        ),
        _instance("zero-capacity-edges", _zero_capacity_network(), tags=["degenerate"]),
        _instance("parallel-paths", parallel_paths_graph(3, path_length=2)),
        _instance(
            "grid-3x5",
            grid_graph(
                3, 5, capacity=2.0, seed=derive_seed("grid-3x5"), capacity_jitter=0.25
            ),
        ),
        _instance(
            "bipartite-6x6",
            bipartite_graph(6, 6, seed=derive_seed("bipartite-6x6"), connectivity=0.5),
        ),
        _instance("rmat-sparse", rmat_graph(24, 60, seed=derive_seed("rmat-sparse"))),
        _instance("rmat-dense", rmat_graph(16, 80, seed=derive_seed("rmat-dense"))),
    ]


def build_heavy_corpus() -> List[ConformanceInstance]:
    """The heavier randomized instances (``@pytest.mark.slow`` cases)."""
    return [
        _instance(
            "grid-6x10",
            grid_graph(
                6, 10, capacity=2.0, seed=derive_seed("grid-6x10"), capacity_jitter=0.25
            ),
        ),
        _instance(
            "bipartite-12x12",
            bipartite_graph(
                12, 12, seed=derive_seed("bipartite-12x12"), connectivity=0.4
            ),
        ),
        _instance("rmat-large", rmat_graph(60, 220, seed=derive_seed("rmat-large"))),
    ]


# ---------------------------------------------------------------------------
# Backend adapters: every solving path reduced to "network -> flow value"
# ---------------------------------------------------------------------------


def certificate_grade_analog_solver() -> AnalogMaxFlowSolver:
    """The analog configuration the conformance gate holds to tolerance."""
    return AnalogMaxFlowSolver(quantize=False, adaptive_drive=True)


def classical_value(network: FlowNetwork, algorithm: str) -> float:
    """Flow value via one classical registry algorithm (validated)."""
    return solve_max_flow(network, algorithm=algorithm, validate=True).flow_value


def analog_value(network: FlowNetwork) -> float:
    """Flow value via the certificate-grade analog pipeline."""
    return certificate_grade_analog_solver().solve(network).flow_value


def sharded_solve(network: FlowNetwork, shards: int = 2):
    """Full sharded result (value, convergence, bound trajectory)."""
    return ShardedSolveService(executor="serial").solve(
        network, shards=shards, backend="dinic", max_iterations=120
    )


def streaming_one_push_value(
    network: FlowNetwork,
    backend: str,
    analog_solver: Optional[AnalogMaxFlowSolver] = None,
) -> float:
    """Open a session on a perturbed snapshot, push the restoring update.

    Perturbing edge 0 before opening and restoring it through ``push``
    guarantees the returned value went through the *warm* incremental path,
    not the session's cold bootstrap solve.
    """
    original = network.edge(0).capacity
    perturbed = network.snapshot()
    perturbed.set_capacity(0, original + 1.0)
    session = StreamingSession(perturbed, backend=backend, analog_solver=analog_solver)
    delta = session.push([CapacityUpdate(0, original)])
    return delta.flow_value


def streaming_analog_pair(network: FlowNetwork):
    """(warm one-push value, cold same-config value) for the analog session."""

    def config() -> AnalogMaxFlowSolver:
        return AnalogMaxFlowSolver(quantize=False, dedicated_clamp_sources=True)

    warm = streaming_one_push_value(network, "analog", analog_solver=config())
    cold = config().solve(network).flow_value
    return warm, cold


def relative_gap(value: float, reference: float) -> float:
    """Relative disagreement under the conformance scale convention."""
    return abs(value - reference) / max(1.0, abs(reference))
