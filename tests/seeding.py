"""Seed plumbing for the randomized test suites.

Lives outside ``conftest.py`` because pytest imports every ``conftest.py``
under the same module name (``benchmarks/conftest.py`` would shadow the
tests one in a whole-repo run); test modules import the helpers from here.

Export ``REPRO_TEST_SEED`` to replay a red randomized run exactly — the
active value is printed in the pytest header and on every failure report.
"""

from __future__ import annotations

import os

#: Base seed of every randomized suite; export REPRO_TEST_SEED to replay.
REPRO_TEST_SEED = int(os.environ.get("REPRO_TEST_SEED", "20150607"))


def derive_seed(*parts) -> int:
    """Deterministic per-case seed mixing REPRO_TEST_SEED with ``parts``.

    Python's ``hash()`` of strings is salted per process, so mix with a
    stable string key instead: identical across processes and
    pytest-xdist workers.
    """
    key = ":".join(str(p) for p in (REPRO_TEST_SEED, *parts))
    mixed = 0
    for ch in key:
        mixed = (mixed * 1000003 + ord(ch)) & 0xFFFFFFFF
    return mixed
