"""Smoke tests: every script in ``examples/`` must import and run.

The examples are referenced from the README and ``docs/``; running each
``main()`` on tiny inputs here keeps them from rotting.  Each example's
``main`` accepts scale parameters whose defaults reproduce the full-size
demo, so the smoke runs stay fast without forking the example code.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

#: Tiny-input arguments per example script (keyword args for its main()).
SMOKE_ARGS = {
    "quickstart.py": {},
    "traffic_routing.py": {"rows": 2, "cols": 3, "num_points": 5},
    "image_segmentation.py": {"width": 4, "height": 3},
    "problem_reductions.py": {
        "workers": 3,
        "tasks": 3,
        "width": 4,
        "height": 3,
        "projects": 5,
        "routers": 4,
    },
    "sharded_solving.py": {"rows": 3, "cols": 8, "shards": 2, "max_iterations": 30},
    "streaming_updates.py": {"districts": 3, "steps": 2},
    "crossbar_reconfiguration.py": {
        "vertices": 10,
        "edges": 20,
        "crossbar_rows": 32,
        "crossbar_columns": 32,
        "seeds": (11,),
    },
}


def _load_example(path: Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(spec.name, None)
    return module


def test_every_example_script_has_smoke_args():
    """A new example must be added to SMOKE_ARGS (or it will rot silently)."""
    scripts = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))
    assert scripts == sorted(SMOKE_ARGS), (
        "examples/ and SMOKE_ARGS disagree; add new scripts to the smoke test"
    )


@pytest.mark.parametrize("script", sorted(SMOKE_ARGS))
def test_example_runs_on_tiny_inputs(script, capsys):
    module = _load_example(EXAMPLES_DIR / script)
    assert hasattr(module, "main"), f"{script} must expose a main() entry point"
    module.main(**SMOKE_ARGS[script])
    captured = capsys.readouterr()
    assert captured.out.strip(), f"{script} printed nothing"
