"""Tests for the configuration objects (Table 1 and the non-ideality model)."""

from __future__ import annotations

import math

import pytest

from repro.config import (
    DiodeParameters,
    MemristorParameters,
    NonIdealityModel,
    OpAmpParameters,
    SubstrateParameters,
    TABLE1,
    default_parameters,
    ideal_nonidealities,
)
from repro.errors import ConfigurationError


class TestTable1Defaults:
    def test_table1_matches_paper_values(self):
        table = TABLE1.as_table()
        assert table["Memristor LRS resistance (kOhm)"] == 10
        assert table["Memristor HRS resistance (kOhm)"] == 1000
        assert table["Objective function voltage Vflow (V)"] == 3
        assert table["Open loop gain of op-amp"] == 1e4
        assert table["Gain-bandwidth product of op-amp (GHz)"] == 10
        assert table["Number of columns in the crossbar"] == 1000
        assert table["Number of rows in the crossbar"] == 1000
        assert table["Number of voltage levels"] == 20

    def test_default_parameters_returns_fresh_equal_copy(self):
        a = default_parameters()
        b = default_parameters()
        assert a == b
        assert a == TABLE1

    def test_default_parameters_validate(self):
        default_parameters().validate()

    def test_unit_resistance_equals_lrs(self):
        params = default_parameters()
        assert params.unit_resistance_ohm == params.memristor.lrs_resistance_ohm


class TestParameterCopies:
    def test_with_gbw(self):
        params = default_parameters().with_gbw(50e9)
        assert params.opamp.gbw_hz == 50e9
        assert default_parameters().opamp.gbw_hz == 10e9

    def test_with_gain(self):
        assert default_parameters().with_gain(1e5).opamp.open_loop_gain == 1e5

    def test_with_voltage_levels(self):
        assert default_parameters().with_voltage_levels(64).voltage_levels == 64

    def test_with_vflow(self):
        assert default_parameters().with_vflow(6.0).vflow_v == 6.0

    def test_max_vertices(self):
        params = default_parameters()
        assert params.max_vertices == 1000


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(rows=0),
            dict(columns=-1),
            dict(unit_resistance_ohm=0.0),
            dict(vflow_v=0.0),
            dict(vdd_v=-1.0),
            dict(voltage_levels=1),
            dict(parasitic_capacitance_f=-1e-15),
            dict(convergence_tolerance=0.0),
            dict(convergence_tolerance=1.5),
            dict(bleed_resistance_factor=-1.0),
        ],
    )
    def test_invalid_substrate_parameters(self, kwargs):
        from dataclasses import replace

        params = replace(default_parameters(), **kwargs)
        with pytest.raises(ConfigurationError):
            params.validate()

    def test_opamp_validation(self):
        with pytest.raises(ConfigurationError):
            OpAmpParameters(open_loop_gain=0.5).validate()
        with pytest.raises(ConfigurationError):
            OpAmpParameters(gbw_hz=0.0).validate()

    def test_memristor_validation(self):
        with pytest.raises(ConfigurationError):
            MemristorParameters(lrs_resistance_ohm=2e6, hrs_resistance_ohm=1e6).validate()
        with pytest.raises(ConfigurationError):
            MemristorParameters(threshold_voltage_v=0.0).validate()

    def test_diode_validation(self):
        with pytest.raises(ConfigurationError):
            DiodeParameters(on_conductance_s=1e-10, off_conductance_s=1e-9).validate()


class TestDerivedQuantities:
    def test_opamp_time_constant(self):
        amp = OpAmpParameters(open_loop_gain=1e4, gbw_hz=10e9)
        assert amp.time_constant_s == pytest.approx(1e4 / (2 * math.pi * 10e9))
        assert amp.dominant_pole_hz == pytest.approx(1e6)

    def test_opamp_power(self):
        amp = OpAmpParameters(supply_current_a=500e-6, supply_voltage_v=1.0)
        assert amp.power_w == pytest.approx(500e-6)

    def test_memristor_on_off_ratio(self):
        assert MemristorParameters().on_off_ratio == pytest.approx(100.0)


class TestNonIdealityModel:
    def test_ideal_by_default(self):
        model = ideal_nonidealities()
        model.validate()
        assert model.is_ideal

    def test_not_ideal_with_any_effect(self):
        assert not NonIdealityModel(resistor_matching=0.01).is_ideal
        assert not NonIdealityModel(opamp_gain=1e3).is_ideal
        assert not NonIdealityModel(parasitic_capacitance_f=1e-15).is_ideal

    def test_effective_mismatch_respects_matching_flag(self):
        model = NonIdealityModel(resistor_tolerance=0.2, resistor_matching=0.005)
        assert model.effective_mismatch() == 0.005
        unmatched = NonIdealityModel(
            resistor_tolerance=0.2, resistor_matching=0.005, use_matching=False
        )
        assert unmatched.effective_mismatch() == 0.2

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(opamp_gain=0.5),
            dict(opamp_gbw_hz=0.0),
            dict(resistor_tolerance=-0.1),
            dict(parasitic_capacitance_f=-1.0),
            dict(diode_forward_voltage_v=-0.2),
        ],
    )
    def test_invalid_nonidealities(self, kwargs):
        with pytest.raises(ConfigurationError):
            NonIdealityModel(**kwargs).validate()


class TestEnvHelpers:
    """The centralized environment-knob parsers (shared by the kernel toggle
    and every resilience knob — 'what counts as off' is defined once)."""

    def test_env_flag_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv("_REPRO_TEST_FLAG", raising=False)
        from repro.config import env_flag

        assert env_flag("_REPRO_TEST_FLAG") is True
        assert env_flag("_REPRO_TEST_FLAG", default=False) is False

    @pytest.mark.parametrize("spelling", ["0", "off", "OFF", " false ", "No"])
    def test_env_flag_false_spellings(self, monkeypatch, spelling):
        from repro.config import env_flag

        monkeypatch.setenv("_REPRO_TEST_FLAG", spelling)
        assert env_flag("_REPRO_TEST_FLAG") is False

    @pytest.mark.parametrize("spelling", ["1", "on", "yes", "anything"])
    def test_env_flag_true_spellings(self, monkeypatch, spelling):
        from repro.config import env_flag

        monkeypatch.setenv("_REPRO_TEST_FLAG", spelling)
        assert env_flag("_REPRO_TEST_FLAG", default=False) is True

    def test_env_flag_extra_false_values(self, monkeypatch):
        from repro.config import env_flag

        monkeypatch.setenv("_REPRO_TEST_FLAG", "Reference")
        assert env_flag("_REPRO_TEST_FLAG", extra_false=("reference",)) is False

    def test_env_float_and_int(self, monkeypatch):
        from repro.config import env_float, env_int

        monkeypatch.delenv("_REPRO_TEST_NUM", raising=False)
        assert env_float("_REPRO_TEST_NUM", 1.5) == 1.5
        assert env_int("_REPRO_TEST_NUM", 7) == 7
        monkeypatch.setenv("_REPRO_TEST_NUM", "2.5")
        assert env_float("_REPRO_TEST_NUM", 0.0) == 2.5
        monkeypatch.setenv("_REPRO_TEST_NUM", "42")
        assert env_int("_REPRO_TEST_NUM", 0) == 42

    def test_env_numbers_reject_garbage_typed(self, monkeypatch):
        from repro.config import env_float, env_int

        monkeypatch.setenv("_REPRO_TEST_NUM", "tuesday")
        with pytest.raises(ConfigurationError):
            env_float("_REPRO_TEST_NUM", 0.0)
        with pytest.raises(ConfigurationError):
            env_int("_REPRO_TEST_NUM", 0)

    def test_env_floats_parses_comma_list(self, monkeypatch):
        from repro.config import env_floats

        monkeypatch.delenv("_REPRO_TEST_LIST", raising=False)
        assert env_floats("_REPRO_TEST_LIST", (1.0, 2.0)) == (1.0, 2.0)
        monkeypatch.setenv("_REPRO_TEST_LIST", " 0.001, 0.01 ,0.1 ")
        assert env_floats("_REPRO_TEST_LIST", ()) == (0.001, 0.01, 0.1)
        monkeypatch.setenv("_REPRO_TEST_LIST", "")
        assert env_floats("_REPRO_TEST_LIST", (5.0,)) == (5.0,)

    def test_env_floats_rejects_garbage_entry(self, monkeypatch):
        from repro.config import env_floats

        monkeypatch.setenv("_REPRO_TEST_LIST", "0.1,fast,0.2")
        with pytest.raises(ConfigurationError):
            env_floats("_REPRO_TEST_LIST", ())

    def test_env_plan_grammar(self):
        from repro.config import env_plan

        entries = env_plan(
            "_X_", raw=" kind=stall , stall_s=0.2 ; ; kind=corrupt ;"
        )
        assert entries == [
            {"kind": "stall", "stall_s": "0.2"},
            {"kind": "corrupt"},
        ]
        assert env_plan("_X_", raw="") == []

    def test_env_plan_rejects_malformed(self):
        from repro.config import env_plan

        with pytest.raises(ConfigurationError):
            env_plan("_X_", raw="no-equals-sign")
        with pytest.raises(ConfigurationError):
            env_plan("_X_", raw="=value")

    def test_env_plan_reads_environment(self, monkeypatch):
        from repro.config import env_plan

        monkeypatch.setenv("_REPRO_TEST_PLAN", "kind=error,times=2")
        assert env_plan("_REPRO_TEST_PLAN") == [{"kind": "error", "times": "2"}]
