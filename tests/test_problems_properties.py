"""Property tests: max-flow/min-cut duality certifies every decoded answer.

Randomized instances (seeded from ``REPRO_TEST_SEED``) through the
reference pipeline (:func:`repro.problems.solve_problem`), asserting the
domain-side duality identities directly:

* matching size == König cover size (and both structures valid),
* number of disjoint paths == Menger separator size (and the separator
  really disconnects),
* decoded segmentation energy == min-cut value, and no sampled labeling
  beats it,
* closure profit == total positive profit - min cut, and no sampled closed
  set beats it (with exact brute force on the smallest instances).

Plus the structural properties of the two new reduction helpers in
:mod:`repro.graph.transforms` (node splitting, super terminals).
"""

from __future__ import annotations

import itertools
import random

import pytest

from seeding import derive_seed

from repro.errors import InvalidGraphError, ProblemError
from repro.flows import dinic
from repro.graph import FlowNetwork, rmat_graph
from repro.graph.transforms import (
    attach_super_terminals,
    split_in_label,
    split_out_label,
    split_vertex_capacities,
    unsplit_label,
)
from repro.problems import (
    BipartiteMatching,
    DisjointPaths,
    ImageSegmentation,
    ProjectSelection,
    solve_problem,
)

ALGORITHMS_UNDER_TEST = ["dinic", "push-relabel", "edmonds-karp"]


def _rng(*parts) -> random.Random:
    return random.Random(derive_seed(*parts))


# ---------------------------------------------------------------------------
# Bipartite matching: König duality
# ---------------------------------------------------------------------------


class TestMatchingDuality:
    @pytest.mark.parametrize("trial", range(6))
    @pytest.mark.parametrize("algorithm", ALGORITHMS_UNDER_TEST)
    def test_matching_equals_cover(self, trial, algorithm):
        rng = _rng("matching", trial, algorithm)
        left = rng.randint(3, 9)
        right = rng.randint(3, 9)
        density = rng.uniform(0.15, 0.6)
        pairs = [
            (i, j)
            for i in range(left)
            for j in range(right)
            if rng.random() < density
        ]
        if not pairs:
            pairs = [(0, 0)]
        problem = BipartiteMatching(list(range(left)), list(range(right)), pairs)
        solution, _ = solve_problem(problem, algorithm=algorithm)
        assert solution.certificate.ok, solution.certificate.status
        # König: the certificate already checked |M| == |cover|; re-assert
        # the two quantities independently here so a certificate bug cannot
        # vacuously pass its own test.
        assert len(solution.pairs) == len(solution.cover)
        matched_left = {l for l, _ in solution.pairs}
        matched_right = {r for _, r in solution.pairs}
        assert len(matched_left) == len(solution.pairs)
        assert len(matched_right) == len(solution.pairs)
        cover = set(solution.cover)
        assert all(("L", l) in cover or ("R", r) in cover for l, r in pairs)

    def test_small_instances_match_brute_force(self):
        rng = _rng("matching-brute")
        for _ in range(4):
            left, right = 4, 4
            pairs = [
                (i, j) for i in range(left) for j in range(right) if rng.random() < 0.4
            ] or [(1, 2)]
            problem = BipartiteMatching(list(range(left)), list(range(right)), pairs)
            solution, _ = solve_problem(problem)
            best = 0
            for subset_size in range(len(pairs), 0, -1):
                for combo in itertools.combinations(pairs, subset_size):
                    if len({l for l, _ in combo}) == subset_size and len(
                        {r for _, r in combo}
                    ) == subset_size:
                        best = subset_size
                        break
                if best:
                    break
            assert int(solution.value) == best


# ---------------------------------------------------------------------------
# Disjoint paths: Menger duality
# ---------------------------------------------------------------------------


class TestPathsDuality:
    @pytest.mark.parametrize("trial", range(6))
    @pytest.mark.parametrize("vertex_disjoint", [False, True])
    def test_paths_equal_separator(self, trial, vertex_disjoint):
        rng = _rng("paths", trial, vertex_disjoint)
        mids = list(range(rng.randint(4, 8)))
        edges = (
            [("s", m) for m in mids if rng.random() < 0.7]
            + [(m, "t") for m in mids if rng.random() < 0.7]
            + [
                (a, b)
                for a in mids
                for b in mids
                if a != b and rng.random() < 0.3
            ]
        )
        if not edges:
            edges = [("s", 0), (0, "t")]
        problem = DisjointPaths(edges, vertex_disjoint=vertex_disjoint)
        solution, _ = solve_problem(problem)
        assert solution.certificate.ok, solution.certificate.status
        separator_size = len(solution.separator_vertices) + len(
            solution.separator_edges
        )
        assert separator_size == len(solution.paths)
        # Disjointness re-asserted independently of the certificate code.
        used_edges = [
            (u, v) for path in solution.paths for u, v in zip(path, path[1:])
        ]
        assert len(used_edges) == len(set(used_edges))
        if vertex_disjoint:
            internal = [v for path in solution.paths for v in path[1:-1]]
            assert len(internal) == len(set(internal))

    def test_vertex_disjoint_never_exceeds_edge_disjoint(self):
        rng = _rng("paths-mono")
        for trial in range(4):
            mids = list(range(6))
            edges = [
                (a, b)
                for a in ["s"] + mids
                for b in mids + ["t"]
                if a != b and rng.random() < 0.35
            ]
            if not edges:
                continue
            edge_sol, _ = solve_problem(DisjointPaths(edges))
            vertex_sol, _ = solve_problem(DisjointPaths(edges, vertex_disjoint=True))
            assert vertex_sol.value <= edge_sol.value + 1e-9


# ---------------------------------------------------------------------------
# Segmentation: the energy identity is a global optimality proof
# ---------------------------------------------------------------------------


class TestSegmentationDuality:
    @pytest.mark.parametrize("trial", range(5))
    def test_energy_equals_cut_and_beats_samples(self, trial):
        rng = _rng("segmentation", trial)
        height, width = rng.randint(2, 4), rng.randint(2, 5)
        fg = [[rng.random() for _ in range(width)] for _ in range(height)]
        bg = [[rng.random() for _ in range(width)] for _ in range(height)]
        problem = ImageSegmentation(fg, bg, smoothness=rng.uniform(0.0, 0.5))
        solution, reduction = solve_problem(problem)
        assert solution.certificate.ok, solution.certificate.status
        assert solution.energy == pytest.approx(solution.flow_value, rel=1e-9)
        # No sampled labeling may beat the decoded one.
        for _ in range(25):
            labels = [
                [rng.choice(["fg", "bg"]) for _ in range(width)]
                for _ in range(height)
            ]
            assert problem.energy_of(labels) >= solution.energy - 1e-9

    def test_tiny_instance_exact_by_enumeration(self):
        rng = _rng("segmentation-brute")
        height, width = 2, 3
        fg = [[rng.random() for _ in range(width)] for _ in range(height)]
        bg = [[rng.random() for _ in range(width)] for _ in range(height)]
        problem = ImageSegmentation(fg, bg, smoothness=0.25)
        solution, _ = solve_problem(problem)
        best = min(
            problem.energy_of(
                [
                    [
                        "fg" if mask & (1 << (y * width + x)) else "bg"
                        for x in range(width)
                    ]
                    for y in range(height)
                ]
            )
            for mask in range(1 << (height * width))
        )
        assert solution.energy == pytest.approx(best, rel=1e-9)


# ---------------------------------------------------------------------------
# Closure: the profit identity is a global optimality proof
# ---------------------------------------------------------------------------


class TestClosureDuality:
    @pytest.mark.parametrize("trial", range(5))
    def test_profit_identity_and_beats_samples(self, trial):
        rng = _rng("closure", trial)
        count = rng.randint(4, 12)
        profits = {i: rng.uniform(-6.0, 6.0) for i in range(count)}
        prerequisites = [
            (i, j)
            for i in range(count)
            for j in range(count)
            if i != j and rng.random() < 0.15
        ]
        problem = ProjectSelection(profits, prerequisites)
        solution, _ = solve_problem(problem)
        assert solution.certificate.ok, solution.certificate.status
        selected = set(solution.selected)
        assert all(b in selected for a, b in prerequisites if a in selected)
        # Greedy-sampled closed sets never beat the decoded profit.
        for _ in range(25):
            closed = {i for i in range(count) if rng.random() < 0.5}
            for _ in range(count):
                grown = closed | {
                    b for a, b in prerequisites if a in closed
                }
                if grown == closed:
                    break
                closed = grown
            assert problem.profit_of(closed) <= solution.profit + 1e-9

    def test_small_instances_match_brute_force(self):
        rng = _rng("closure-brute")
        for trial in range(3):
            count = 8
            profits = {i: rng.uniform(-5.0, 5.0) for i in range(count)}
            prerequisites = [
                (i, j)
                for i in range(count)
                for j in range(count)
                if i != j and rng.random() < 0.2
            ]
            problem = ProjectSelection(profits, prerequisites)
            solution, _ = solve_problem(problem)
            best = 0.0
            for mask in range(1 << count):
                chosen = {i for i in range(count) if mask & (1 << i)}
                if all(
                    not (a in chosen and b not in chosen) for a, b in prerequisites
                ):
                    best = max(best, sum(profits[i] for i in chosen))
            assert solution.value == pytest.approx(best, abs=1e-9)


# ---------------------------------------------------------------------------
# Reduction helpers (graph/transforms.py)
# ---------------------------------------------------------------------------


class TestReductionHelpers:
    def test_split_preserves_flow_under_loose_capacities(self):
        rng = _rng("split-loose")
        network = rmat_graph(18, 50, seed=derive_seed("split-loose-net"))
        before = dinic(network).flow_value
        loose = {
            v: network.total_capacity() + 1.0
            for v in network.internal_vertices()
        }
        split = split_vertex_capacities(network, loose)
        assert dinic(split).flow_value == pytest.approx(before, rel=1e-9)

    def test_split_caps_bind(self):
        network = FlowNetwork()
        network.add_edge("s", "a", 10.0)
        network.add_edge("a", "t", 10.0)
        split = split_vertex_capacities(network, {"a": 3.5})
        assert dinic(split).flow_value == pytest.approx(3.5)

    def test_split_rejects_terminals_and_unknowns(self):
        network = FlowNetwork()
        network.add_edge("s", "a", 1.0)
        network.add_edge("a", "t", 1.0)
        with pytest.raises(InvalidGraphError):
            split_vertex_capacities(network, {"s": 1.0})
        with pytest.raises(InvalidGraphError):
            split_vertex_capacities(network, {"zzz": 1.0})

    def test_split_labels_round_trip(self):
        assert unsplit_label(split_in_label("v")) == "v"
        assert unsplit_label(split_out_label(("x", 3))) == ("x", 3)
        assert unsplit_label("plain") == "plain"

    def test_attach_super_terminals_bounds_flow(self):
        core = FlowNetwork()
        core.add_edge("a", "b", 100.0)
        wired = attach_super_terminals(core, {"a": 7.0}, {"b": 9.0})
        assert dinic(wired).flow_value == pytest.approx(7.0)

    def test_attach_super_terminals_leaves_original_untouched(self):
        core = FlowNetwork()
        core.add_edge("a", "b", 1.0)
        edges_before = core.num_edges
        attach_super_terminals(core, {"a": 1.0}, {"b": 1.0})
        assert core.num_edges == edges_before

    def test_attach_rejects_terminal_self_edges(self):
        core = FlowNetwork()
        core.add_edge("a", "b", 1.0)
        with pytest.raises(InvalidGraphError):
            attach_super_terminals(core, {"s": 1.0}, {})
        with pytest.raises(InvalidGraphError):
            attach_super_terminals(core, {}, {"t": 1.0})


# ---------------------------------------------------------------------------
# Problem-construction validation
# ---------------------------------------------------------------------------


class TestProblemValidation:
    def test_matching_rejects_unknown_labels(self):
        with pytest.raises(ProblemError):
            BipartiteMatching(["a"], ["x"], [("a", "nope")])

    def test_paths_reject_self_loops(self):
        with pytest.raises(ProblemError):
            DisjointPaths([("a", "a")])

    def test_segmentation_rejects_shape_mismatch(self):
        with pytest.raises(ProblemError):
            ImageSegmentation([[1.0, 2.0]], [[1.0]], smoothness=0.1)

    def test_segmentation_rejects_negative_costs(self):
        with pytest.raises(ProblemError):
            ImageSegmentation([[-1.0]], [[1.0]])

    def test_closure_rejects_unknown_prerequisites(self):
        with pytest.raises(ProblemError):
            ProjectSelection({"a": 1.0}, [("a", "ghost")])

    def test_paths_reject_reserved_split_label_shape(self):
        with pytest.raises(ProblemError):
            DisjointPaths([("s", ("a", "#in")), (("a", "#in"), "t")])

    def test_split_rejects_networks_using_reserved_labels(self):
        network = FlowNetwork()
        network.add_edge("s", ("a", "#out"), 1.0)
        network.add_edge(("a", "#out"), "t", 1.0)
        with pytest.raises(InvalidGraphError):
            split_vertex_capacities(network, {("a", "#out"): 1.0})

    def test_smoothness_callable_evaluated_once_per_pair(self):
        calls = []

        def drifting(a, b):
            # A stateful callable: returns a different weight every call.
            calls.append((a, b))
            return 0.1 * len(calls)

        problem = ImageSegmentation(
            [[0.4, 0.6]], [[0.6, 0.4]], smoothness=drifting
        )
        evaluations = len(calls)
        assert evaluations == 1  # one neighbour pair, frozen at construction
        solution, _ = solve_problem(problem)
        # decode/verify recompute the energy from the frozen weights: the
        # callable is never consulted again and the certificate holds.
        assert len(calls) == evaluations
        assert solution.certificate.ok


# ---------------------------------------------------------------------------
# Heavy randomized rounds (slow)
# ---------------------------------------------------------------------------


@pytest.mark.slow
@pytest.mark.parametrize("trial", range(10))
def test_all_reductions_certify_under_heavy_randomization(trial):
    rng = _rng("heavy", trial)
    problems = [
        BipartiteMatching(
            list(range(12)),
            list(range(12)),
            [(i, j) for i in range(12) for j in range(12) if rng.random() < 0.3],
        ),
        DisjointPaths(
            [("s", m) for m in range(8)]
            + [(m, "t") for m in range(8)]
            + [
                (a, b)
                for a in range(8)
                for b in range(8)
                if a != b and rng.random() < 0.3
            ],
            vertex_disjoint=bool(trial % 2),
        ),
        ImageSegmentation(
            [[rng.random() for _ in range(7)] for _ in range(5)],
            [[rng.random() for _ in range(7)] for _ in range(5)],
            smoothness=rng.uniform(0.0, 0.6),
        ),
        ProjectSelection(
            {i: rng.uniform(-8.0, 8.0) for i in range(16)},
            [
                (i, j)
                for i in range(16)
                for j in range(16)
                if i != j and rng.random() < 0.1
            ],
        ),
    ]
    for problem in problems:
        solution, _ = solve_problem(problem)
        assert solution.certificate.ok, (
            f"{problem.kind} trial {trial}: {solution.certificate.status}"
        )
