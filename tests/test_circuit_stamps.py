"""Equivalence suite for the compiled MNA stamp templates.

Property-style checks over randomized circuits containing every element type
(resistors, switches, memristors, capacitors, diodes with and without forward
voltage, V/I sources with time-varying waveforms, VCVS, op-amps):

* compiled :meth:`CompiledMNA.matrix` equals the element-by-element reference
  :meth:`MNASystem.matrix` to 1e-12, for DC and transient assembly and random
  diode patterns;
* compiled :meth:`CompiledMNA.rhs` equals the loop reference
  :meth:`MNASystem.rhs_reference` to 1e-12;
* Sherman–Morrison–Woodbury flip solves match from-scratch factorisations;
* the compiled+SMW DC solver and the legacy DC solver find the same
  operating point.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit import (
    VCVS,
    Capacitor,
    Circuit,
    CurrentSource,
    Diode,
    MNASystem,
    Memristor,
    OpAmp,
    Resistor,
    Switch,
    VoltageSource,
    StepWaveform,
)
from repro.circuit.dc import DCOperatingPoint
from repro.circuit.linsolve import LinearSystemSolver
from repro.circuit.memristor import MemristorState
from repro.circuit.transient import TransientSimulator
from repro.config import DiodeParameters
from repro.graph.generators import rmat_graph
from repro.analog import AnalogMaxFlowSolver


# ----------------------------------------------------------------------
# Random circuit generation
# ----------------------------------------------------------------------


def random_circuit(rng: np.random.Generator, num_nodes: int = 12) -> Circuit:
    """A random circuit exercising every element type.

    Every node is anchored to an earlier node (or ground) through a
    resistor, so the conductance graph is connected; the remaining elements
    are sprinkled over random node pairs.
    """
    circuit = Circuit()
    nodes = ["0"] + [f"n{i}" for i in range(1, num_nodes)]

    def pick_pair():
        a, b = rng.choice(len(nodes), size=2, replace=False)
        return nodes[a], nodes[b]

    for i in range(1, num_nodes):
        anchor = nodes[rng.integers(0, i)]
        circuit.add(
            Resistor(f"Rl{i}", nodes[i], anchor, float(rng.uniform(0.5, 50.0)))
        )
    for i in range(num_nodes):
        a, b = pick_pair()
        circuit.add(Resistor(f"Rx{i}", a, b, float(rng.uniform(-30.0, 30.0) or 1.0)))
    for i in range(4):
        a, b = pick_pair()
        circuit.add(Capacitor(f"C{i}", a, b, float(rng.uniform(1e-9, 1e-6))))
    for i in range(6):
        a, b = pick_pair()
        parameters = DiodeParameters(
            forward_voltage_v=float(rng.choice([0.0, 0.3, 0.7])),
            on_conductance_s=float(rng.uniform(1e2, 1e4)),
            off_conductance_s=float(rng.uniform(1e-10, 1e-8)),
        )
        circuit.add(
            Diode(f"D{i}", a, b, parameters, initial_state=bool(rng.integers(0, 2)))
        )
    for i in range(2):
        a, b = pick_pair()
        circuit.add(
            VoltageSource(
                f"V{i}",
                a,
                b,
                StepWaveform(float(rng.uniform(1.0, 5.0)), delay=1e-6, rise_time=1e-6),
            )
        )
    for i in range(2):
        a, b = pick_pair()
        circuit.add(CurrentSource(f"I{i}", a, b, float(rng.uniform(-0.5, 0.5))))
    for i in range(2):
        a, b = pick_pair()
        circuit.add(
            Switch(f"S{i}", a, b, closed=bool(rng.integers(0, 2)))
        )
    for i in range(2):
        a, b = pick_pair()
        state = MemristorState.LRS if rng.integers(0, 2) else MemristorState.HRS
        circuit.add(Memristor(f"M{i}", a, b, state=state))
    a, b = pick_pair()
    c, d = pick_pair()
    circuit.add(VCVS("E0", a, b, c, d, float(rng.uniform(-3.0, 3.0))))
    a, b = pick_pair()
    out = nodes[rng.integers(1, num_nodes)]
    circuit.add(OpAmp("OA0", a, b, out))
    return circuit


def random_states(rng: np.random.Generator, system: MNASystem):
    return {d.name: bool(rng.integers(0, 2)) for d in system.diodes}


# ----------------------------------------------------------------------
# matrix() / rhs() equivalence
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_compiled_matrix_matches_reference(seed):
    rng = np.random.default_rng(seed)
    circuit = random_circuit(rng)
    system = MNASystem(circuit)
    template = system.compiled()
    for _ in range(4):
        states = random_states(rng, system)
        for dt in (None, 1e-7, 3.7e-5):
            reference = system.matrix(diode_states=states, dt=dt).toarray()
            compiled = template.matrix(states, dt=dt).toarray()
            scale = max(1.0, np.abs(reference).max())
            assert np.abs(reference - compiled).max() < 1e-12 * scale


@pytest.mark.parametrize("seed", [10, 11, 12, 13, 14])
def test_compiled_rhs_matches_reference(seed):
    rng = np.random.default_rng(seed)
    circuit = random_circuit(rng)
    system = MNASystem(circuit)
    for _ in range(4):
        states = random_states(rng, system)
        previous = rng.normal(size=system.size)
        cases = [
            dict(t=None, dt=None, previous=None),
            dict(t=0.0, dt=None, previous=None),
            dict(t=2e-6, dt=1e-7, previous=previous),
        ]
        for case in cases:
            reference = system.rhs_reference(diode_states=states, **case)
            compiled = system.rhs(diode_states=states, **case)
            assert np.abs(reference - compiled).max() < 1e-12


def test_compiled_matrix_tracks_switch_and_memristor_state():
    """Variable conductors are re-read per call, like the reference path."""
    circuit = Circuit()
    circuit.add(VoltageSource("V1", "a", "0", 1.0))
    circuit.add(Resistor("R1", "a", "b", 10.0))
    switch = circuit.add(Switch("S1", "b", "0", closed=False))
    circuit.add(Resistor("R2", "b", "0", 100.0))
    system = MNASystem(circuit)
    template = system.compiled()
    for closed in (False, True, False):
        switch.closed = closed
        reference = system.matrix().toarray()
        compiled = template.matrix().toarray()
        assert np.abs(reference - compiled).max() < 1e-12


def test_compiled_rhs_tracks_waveform_swap():
    """dc_sweep-style waveform replacement is visible to the template."""
    circuit = Circuit()
    source = circuit.add(VoltageSource("V1", "a", "0", 1.0))
    circuit.add(Resistor("R1", "a", "0", 10.0))
    system = MNASystem(circuit)
    assert system.rhs()[system.branch_index["V1"]] == 1.0
    from repro.circuit import ConstantWaveform

    source.waveform = ConstantWaveform(7.5)
    assert system.rhs()[system.branch_index["V1"]] == 7.5


def test_compiled_template_rebuilds_after_inplace_resistance_tuning():
    """In-place mutations of baked-in values must not go stale (tuning flow)."""
    circuit = Circuit()
    circuit.add(VoltageSource("V1", "a", "0", 2.0))
    circuit.add(Resistor("R1", "a", "b", 1.0))
    r2 = circuit.add(Resistor("R2", "b", "0", 1.0))
    system = MNASystem(circuit)
    solver = DCOperatingPoint()
    assert solver.solve(circuit, mna=system).voltage("b") == pytest.approx(1.0)
    r2.resistance = 3.0  # what ResistanceTuner.tune_circuit does in place
    assert solver.solve(circuit, mna=system).voltage("b") == pytest.approx(1.5)
    # rhs-side values too: the reused template must track them
    assert system.rhs()[system.branch_index["V1"]] == 2.0


def test_engine_reuse_across_sweep_keeps_solutions_and_saves_factorizations():
    """One solver instance re-solving one system reuses the base LU."""
    from repro.circuit.analysis import dc_sweep

    circuit = _clamp_network_circuit(5)
    system = MNASystem(circuit)
    source = next(
        e.name for e in system.voltage_sources  # the Vflow drive
    )
    levels = [2.0, 2.1, 2.2, 2.3]
    swept = dc_sweep(circuit, source, levels, warm_start=True, mna=system)
    for level, solution in zip(levels, swept):
        reference = DCOperatingPoint(assembly="legacy")
        from repro.circuit import ConstantWaveform

        element = circuit.element(source)
        original = element.waveform
        element.waveform = ConstantWaveform(level)
        try:
            expected = reference.solve(circuit, mna=system)
        finally:
            element.waveform = original
        scale = max(1.0, np.abs(expected.vector).max())
        diff = max(
            abs(expected.voltages[n] - solution.voltages[n])
            for n in expected.voltages
        )
        assert diff / scale < 1e-8
    # Warm-started consecutive levels share patterns: later levels must not
    # all pay a fresh factorisation.
    assert sum(s.refactorizations for s in swept[1:]) < sum(
        s.iterations for s in swept[1:]
    )


def test_engine_revalidates_after_switch_toggle():
    """A live switch toggle between solves drops the cached base LU."""
    circuit = Circuit()
    circuit.add(VoltageSource("V1", "a", "0", 1.0))
    circuit.add(Resistor("R1", "a", "b", 10.0))
    switch = circuit.add(Switch("S1", "b", "0", closed=True, on_resistance=10.0))
    circuit.add(Resistor("R2", "b", "0", 1e6))
    system = MNASystem(circuit)
    solver = DCOperatingPoint()
    closed_voltage = solver.solve(circuit, mna=system).voltage("b")
    switch.closed = False
    open_voltage = solver.solve(circuit, mna=system).voltage("b")
    assert closed_voltage == pytest.approx(0.5, abs=1e-3)
    assert open_voltage == pytest.approx(1.0, abs=1e-2)


# ----------------------------------------------------------------------
# SMW low-rank flip solves
# ----------------------------------------------------------------------


@pytest.mark.parametrize("mode", ["dense", "sparse"])
@pytest.mark.parametrize("seed", [21, 22, 23])
def test_smw_solve_matches_refactorization(mode, seed):
    rng = np.random.default_rng(seed)
    circuit = _clamp_network_circuit(seed)
    system = MNASystem(circuit)
    template = system.compiled()
    solver = LinearSystemSolver(mode=mode)

    base = system.default_diode_state_array.copy()
    factorization = solver.factorize(template.matrix(base))
    for flips in (1, 2, len(system.diodes)):
        flipped = base.copy()
        flip_idx = rng.choice(len(system.diodes), size=flips, replace=False)
        flipped[flip_idx] = ~flipped[flip_idx]
        rhs = template.rhs(states=flipped)
        via_smw = template.smw_solve(factorization, base, flipped, rhs)
        direct = solver.solve(template.matrix(flipped), rhs)
        scale = max(1.0, np.abs(direct).max())
        assert np.abs(via_smw - direct).max() / scale < 1e-6


def test_smw_solve_zero_flips_is_plain_solve():
    rng = np.random.default_rng(99)
    circuit = random_circuit(rng)
    system = MNASystem(circuit)
    template = system.compiled()
    solver = LinearSystemSolver()
    base = system.default_diode_state_array
    factorization = solver.factorize(template.matrix(base))
    rhs = template.rhs(states=base)
    assert np.array_equal(
        template.smw_solve(factorization, base, base.copy(), rhs),
        factorization.solve(rhs),
    )


# ----------------------------------------------------------------------
# Solver-level equivalence (compiled+SMW vs legacy assembly)
# ----------------------------------------------------------------------


def _clamp_network_circuit(seed: int):
    """A Fig. 10-style analog max-flow circuit (diode-heavy, solvable)."""
    network = rmat_graph(24, 72, seed=seed)
    compiled = AnalogMaxFlowSolver(quantize=False).compile(network)
    return compiled.circuit


@pytest.mark.parametrize("seed", [3, 7, 2015])
def test_dc_compiled_matches_legacy_assembly(seed):
    circuit = _clamp_network_circuit(seed)
    legacy = DCOperatingPoint(assembly="legacy").solve(circuit)
    compiled = DCOperatingPoint().solve(circuit)
    assert compiled.converged == legacy.converged
    assert compiled.diode_states == legacy.diode_states
    for node, voltage in legacy.voltages.items():
        assert abs(compiled.voltages[node] - voltage) < 1e-9
    # SMW actually engaged: fewer factorisations than iterations when the
    # state iteration took more than the initial solve.
    if compiled.iterations > 2:
        assert compiled.refactorizations < compiled.iterations


def test_dc_smw_disabled_matches_enabled():
    circuit = _clamp_network_circuit(42)
    without = DCOperatingPoint(smw_crossover=0).solve(circuit)
    with_smw = DCOperatingPoint().solve(circuit)
    assert without.diode_states == with_smw.diode_states
    assert without.smw_solves == 0
    for node, voltage in without.voltages.items():
        assert abs(with_smw.voltages[node] - voltage) < 1e-9


def test_dc_rejects_unknown_assembly_and_negative_crossover():
    from repro.errors import SimulationError

    with pytest.raises(SimulationError):
        DCOperatingPoint(assembly="magic")
    with pytest.raises(SimulationError):
        DCOperatingPoint(smw_crossover=-1)


# ----------------------------------------------------------------------
# Transient path (compiled assembly + vectorised recording)
# ----------------------------------------------------------------------


def test_transient_records_match_dc_limit():
    """An RC divider driven by a step settles to its DC operating point."""
    circuit = Circuit()
    circuit.add(VoltageSource("V1", "a", "0", StepWaveform(2.0, rise_time=1e-9)))
    circuit.add(Resistor("R1", "a", "b", 1e3))
    circuit.add(Capacitor("C1", "b", "0", 1e-9))
    circuit.add(Resistor("R2", "b", "0", 1e3))
    result = TransientSimulator().run(
        circuit, t_stop=2e-5, dt=1e-7, record_nodes=["b", "0"], record_currents=["V1"]
    )
    assert result.voltage("0").values.max() == 0.0
    assert abs(result.voltage("b").values[-1] - 1.0) < 1e-3
    assert abs(result.current("V1").values[-1] + 1e-3) < 1e-6
    assert result.steps == 200


def test_transient_with_diodes_matches_previous_behaviour():
    """Diode clamp engages mid-transient; recorded arrays stay per-name."""
    circuit = Circuit()
    circuit.add(VoltageSource("V1", "a", "0", StepWaveform(5.0, rise_time=1e-8)))
    circuit.add(Resistor("R1", "a", "b", 1e3))
    circuit.add(Capacitor("C1", "b", "0", 1e-9))
    circuit.add(Diode("D1", "b", "c", DiodeParameters(on_conductance_s=1e3)))
    circuit.add(VoltageSource("Vclamp", "c", "0", 2.0))
    result = TransientSimulator().run(circuit, t_stop=2e-5, dt=5e-8)
    final = result.voltage("b").values[-1]
    assert final == pytest.approx(2.0, abs=0.01)
    assert result.diode_state_changes >= 1
