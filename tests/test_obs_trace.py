"""Span ambience, propagation across executors, and the disabled no-op path.

The trace layer's contract mirrors the resilience deadline scope exactly
(see ``tests/test_resilience_policy.py``): ambient within a thread via a
contextvar, explicitly re-scoped across thread pools (``span_scope``),
recorded post hoc across process pools (``record_span``).  These tests
pin all three regimes plus the injectable clock and the guarantee that
the disabled path allocates no spans.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs import (
    Span,
    annotate_span,
    clear_traces,
    current_span,
    get_registry,
    obs_enabled,
    recent_traces,
    record_span,
    reset_metrics,
    set_obs_enabled,
    set_trace_clock,
    span,
    span_scope,
    trace_document,
)
from repro.obs.trace import _NOOP_CONTEXT, NOOP_SPAN


@pytest.fixture
def obs_on():
    previous = set_obs_enabled(True)
    clear_traces()
    reset_metrics()
    yield
    set_obs_enabled(previous)
    clear_traces()
    reset_metrics()


@pytest.fixture
def ticking_clock():
    ticks = iter(float(i) for i in range(10_000))
    restore = set_trace_clock(lambda: next(ticks))
    yield
    set_trace_clock(restore)


class TestDisabledPath:
    def test_disabled_by_default(self):
        assert obs_enabled() is False

    def test_disabled_span_is_the_shared_noop_context(self):
        # No Span (nor even a context manager) is allocated when off:
        # every call returns the same module-level singleton.
        assert span("batch.solve") is _NOOP_CONTEXT
        assert span("other", with_attrs=1) is _NOOP_CONTEXT

    def test_disabled_span_records_nothing(self):
        clear_traces()
        reset_metrics()
        with span("batch.solve") as sp:
            assert sp is NOOP_SPAN
            sp.set(ignored=True)
            annotate_span(also_ignored=True)
        assert recent_traces() == []
        assert get_registry().snapshot()["histograms"] == {}

    def test_disabled_record_span_returns_none(self):
        assert record_span("backend.solve", 0.5) is None
        assert recent_traces() == []

    def test_disabled_current_span_is_none(self):
        with span("x"):
            assert current_span() is None

    def test_span_scope_passes_noop_through(self):
        with span_scope(NOOP_SPAN) as sp:
            assert sp is NOOP_SPAN
            assert current_span() is None


class TestSpanNesting:
    def test_children_attach_and_parent_restores(self, obs_on):
        with span("root") as root:
            assert current_span() is root
            with span("child") as child:
                assert current_span() is child
            assert current_span() is root
        assert current_span() is None
        assert [c.name for c in root.children] == ["child"]
        assert recent_traces() == [root]

    def test_injectable_clock_gives_deterministic_durations(
        self, obs_on, ticking_clock
    ):
        with span("root") as root:           # start 0
            with span("child") as child:     # start 1
                pass                         # end 2
        assert child.duration_s == 1.0
        assert root.duration_s == 3.0
        assert root.self_time_s == 2.0

    def test_attributes_via_set_and_annotate(self, obs_on):
        with span("root", executor="serial") as root:
            annotate_span(sweeps=7)
            root.set(ok=True)
        assert root.attributes == {"executor": "serial", "sweeps": 7, "ok": True}

    def test_exception_tags_error_type_and_still_records(self, obs_on):
        with pytest.raises(ValueError):
            with span("root"):
                raise ValueError("boom")
        (root,) = recent_traces()
        assert root.attributes["error_type"] == "ValueError"
        assert root.end_s is not None

    def test_finished_spans_feed_latency_histograms(self, obs_on):
        with span("root"):
            pass
        hist = get_registry().snapshot()["histograms"]["span.root.seconds"]
        assert hist["count"] == 1

    def test_to_dict_round_trips_the_tree_shape(self, obs_on, ticking_clock):
        with span("root", executor="serial"):
            with span("child"):
                pass
        doc = trace_document()
        assert doc["schema"] == "repro.trace/v1"
        (root,) = doc["spans"]
        assert root["name"] == "root"
        assert root["children"][0]["name"] == "child"
        assert root["duration_s"] == root["self_time_s"] + root["children"][0][
            "duration_s"
        ]


class TestThreadPropagation:
    def test_context_does_not_leak_into_threads(self, obs_on):
        # The baseline fact that makes span_scope necessary at all.
        seen = []
        with span("root"):
            t = threading.Thread(target=lambda: seen.append(current_span()))
            t.start()
            t.join()
        assert seen == [None]

    def test_span_scope_reattaches_in_worker_threads(self, obs_on):
        # The executors' contract: capture at dispatch, re-enter per task
        # (mirrors test_deadline_object_crosses_threads_by_rescoping).
        with span("root") as root:
            parent = current_span()

            def work(i):
                with span_scope(parent):
                    with span("task") as sp:
                        sp.set(index=i)
                    return current_span() is parent

            with ThreadPoolExecutor(max_workers=4) as pool:
                assert all(pool.map(work, range(8)))
        assert len(root.children) == 8
        assert sorted(c.attributes["index"] for c in root.children) == list(range(8))

    def test_span_scope_restores_on_exit(self, obs_on):
        with span("root") as root:
            with span("other") as other:
                with span_scope(root):
                    assert current_span() is root
                assert current_span() is other


class TestProcessPropagation:
    def test_record_span_synthesises_completed_children(self, obs_on, ticking_clock):
        # The process-pool contract: workers return timings, the parent
        # records them post hoc (nothing ambient crosses the boundary).
        with span("root") as root:
            node = record_span("backend.solve", 0.25, backend="dinic", ok=True)
        assert node in root.children
        assert node.duration_s == 0.25
        assert node.attributes == {"backend": "dinic", "ok": True}
        hist = get_registry().snapshot()["histograms"]["span.backend.solve.seconds"]
        assert hist["count"] == 1

    def test_record_span_without_parent_is_a_root(self, obs_on):
        node = record_span("orphan", 0.1)
        assert node in recent_traces()


class TestEnableToggle:
    def test_set_obs_enabled_returns_previous(self):
        previous = set_obs_enabled(True)
        try:
            assert obs_enabled() is True
            assert set_obs_enabled(previous) is True
        finally:
            set_obs_enabled(previous)

    def test_spans_opened_while_enabled_record_normally(self):
        previous = set_obs_enabled(True)
        try:
            clear_traces()
            with span("x") as sp:
                assert isinstance(sp, Span)
            assert [s.name for s in recent_traces()] == ["x"]
        finally:
            set_obs_enabled(previous)
            clear_traces()
            reset_metrics()
