"""Metrics registry semantics plus aggregation across real executors.

The registry half pins key formatting, counter/gauge/histogram behaviour
and the deterministic snapshot.  The executor half runs actual
``BatchSolveService`` batches under every executor with obs enabled and
asserts the probes aggregate into one registry regardless of where the
work ran — thread workers count in-place (shared interpreter), process
workers count on the parent side when results come home.
"""

from __future__ import annotations

import json

import pytest

from repro import (
    BatchSolveService,
    FlowNetwork,
    SolveRequest,
    get_registry,
    reset_metrics,
    set_obs_enabled,
)
from repro.obs import clear_traces, probes, recent_traces
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_S,
    Histogram,
    MetricsRegistry,
    metric_key,
)


@pytest.fixture
def obs_on():
    previous = set_obs_enabled(True)
    clear_traces()
    reset_metrics()
    yield
    set_obs_enabled(previous)
    clear_traces()
    reset_metrics()


def tiny_network(bottleneck: float = 2.0) -> FlowNetwork:
    g = FlowNetwork()
    g.add_edge("s", "a", 4.0)
    g.add_edge("a", "t", bottleneck)
    return g


class TestMetricKey:
    def test_bare_name_without_labels(self):
        assert metric_key("service.solves", {}) == "service.solves"

    def test_labels_are_sorted_for_determinism(self):
        key = metric_key("service.solves", {"tag": "x", "backend": "dinic"})
        assert key == "service.solves{backend=dinic,tag=x}"


class TestRegistry:
    def test_counters_accumulate_per_label_set(self):
        reg = MetricsRegistry()
        assert reg.counter("hits", backend="a") == 1.0
        assert reg.counter("hits", 2.0, backend="a") == 3.0
        assert reg.counter("hits", backend="b") == 1.0
        assert reg.get_counter("hits", backend="a") == 3.0
        assert reg.get_counter("hits", backend="missing") == 0.0

    def test_gauges_overwrite(self):
        reg = MetricsRegistry()
        reg.gauge("depth", 4.0)
        reg.gauge("depth", 2.0)
        assert reg.get_gauge("depth") == 2.0

    def test_histogram_bins_against_fixed_buckets(self):
        hist = Histogram(bounds=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["counts"] == [1, 2, 1]  # <=0.1, <=1.0, overflow
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(6.05)

    def test_default_buckets_are_sorted_and_span_latencies(self):
        bounds = DEFAULT_LATENCY_BUCKETS_S
        assert list(bounds) == sorted(bounds)
        assert bounds[0] <= 1e-4 and bounds[-1] >= 10.0

    def test_snapshot_is_sorted_and_json_stable(self):
        reg = MetricsRegistry()
        reg.counter("z.last")
        reg.counter("a.first")
        reg.gauge("m.middle", 1.0)
        reg.observe("lat", 0.01)
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a.first", "z.last"]
        # to_json parses back to exactly the snapshot (determinism gate).
        assert json.loads(reg.to_json()) == snap

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.counter("c")
        reg.gauge("g", 1.0)
        reg.observe("h", 0.5)
        reg.reset()
        snap = reg.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}


class TestProbes:
    def test_probes_are_inert_when_disabled(self):
        reset_metrics()
        probes.kernel_sweep()
        probes.solve_finished("dinic", cache_hit=True)
        assert get_registry().snapshot()["counters"] == {}

    def test_probe_events_land_in_global_registry(self, obs_on):
        probes.kernel_sweep()
        probes.kernel_sweep()
        probes.solve_finished("dinic", cache_hit=True)
        reg = get_registry()
        assert reg.get_counter(probes.EVENT_KERNEL_SWEEP) == 2.0
        assert reg.get_counter(probes.EVENT_SOLVE, backend="dinic") == 1.0
        assert reg.get_counter(probes.EVENT_CACHE_HIT, backend="dinic") == 1.0


class TestExecutorAggregation:
    """One registry view per batch, identical across executors."""

    REQUESTS = 4

    def _requests(self):
        return [
            SolveRequest(network=tiny_network(), backend="dinic", tag=f"r{i}")
            for i in range(self.REQUESTS)
        ]

    @pytest.mark.parametrize("executor,workers", [
        ("serial", 1),
        ("thread", 2),
        ("process", 2),
    ])
    def test_solve_counters_aggregate_across_executors(
        self, obs_on, executor, workers
    ):
        service = BatchSolveService(executor=executor, max_workers=workers)
        report = service.solve_batch(self._requests())
        assert report.num_ok == self.REQUESTS
        assert get_registry().get_counter(
            probes.EVENT_SOLVE, backend="dinic"
        ) == float(self.REQUESTS)

    @pytest.mark.parametrize("executor,workers", [
        ("serial", 1),
        ("thread", 2),
        ("process", 2),
    ])
    def test_batch_span_collects_per_request_children(
        self, obs_on, executor, workers
    ):
        BatchSolveService(executor=executor, max_workers=workers).solve_batch(
            self._requests()
        )
        roots = [s for s in recent_traces() if s.name == "batch.solve"]
        assert roots, "batch.solve root span missing"
        root = roots[-1]
        children = [c for c in root.children if c.name == "backend.solve"]
        assert len(children) == self.REQUESTS
        assert all(c.attributes.get("ok") for c in children)
        assert root.attributes["ok"] == self.REQUESTS
        assert root.attributes["failed"] == 0

    def test_kernel_probe_counts_survive_thread_fanout(self, obs_on):
        BatchSolveService(executor="thread", max_workers=4).solve_batch(
            [
                SolveRequest(network=tiny_network(), backend="kernel-dinic")
                for _ in range(self.REQUESTS)
            ]
        )
        # Every worker thread bumps the same process-local registry.
        assert get_registry().get_counter(probes.EVENT_KERNEL_SWEEP) > 0


class TestHistogramOverflowInvariant:
    """The +Inf slot keeps every observation accounted for."""

    def test_counts_cover_every_observation(self):
        hist = Histogram(bounds=(0.1, 1.0))
        for value in (0.05, 0.5, 50.0, 1e9):
            hist.observe(value)
        snap = hist.snapshot()
        assert len(snap["counts"]) == len(snap["buckets"]) + 1
        assert sum(snap["counts"]) == snap["count"] == 4
        assert snap["counts"][-1] == 2  # both > 1.0 land in overflow

    def test_default_buckets_env_override(self):
        import subprocess
        import sys

        code = (
            "from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS_S; "
            "print(DEFAULT_LATENCY_BUCKETS_S)"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            env={"PYTHONPATH": "src", "REPRO_OBS_BUCKETS": "0.5, 1.5,9"},
            capture_output=True, text=True, check=True,
        )
        assert out.stdout.strip() == "(0.5, 1.5, 9.0)"


class TestSolveLatencyHistogram:
    """service.solve.seconds{backend=} exists under every executor."""

    REQUESTS = 3

    @pytest.mark.parametrize("executor,workers", [
        ("serial", 1),
        ("thread", 2),
        ("process", 2),
    ])
    def test_per_backend_latency_histogram(self, obs_on, executor, workers):
        service = BatchSolveService(executor=executor, max_workers=workers)
        report = service.solve_batch([
            SolveRequest(network=tiny_network(), backend="dinic", tag=f"r{i}")
            for i in range(self.REQUESTS)
        ])
        assert report.num_ok == self.REQUESTS
        snap = get_registry().snapshot()
        key = metric_key(probes.METRIC_SOLVE_SECONDS, {"backend": "dinic"})
        hist = snap["histograms"][key]
        assert hist["count"] == self.REQUESTS
        assert sum(hist["counts"]) == hist["count"]
        assert hist["sum"] > 0.0


class TestExporterRoundTrip:
    """Prometheus text from a live batch parses back to the exact snapshot."""

    def test_live_snapshot_survives_prometheus_round_trip(self, obs_on):
        from repro.obs import parse_prometheus_text, prometheus_text

        BatchSolveService(executor="serial").solve_batch([
            SolveRequest(network=tiny_network(), backend="dinic"),
            SolveRequest(network=tiny_network(), backend="kernel-dinic"),
        ])
        snap = get_registry().snapshot()
        assert snap["counters"], "live run produced no counters"
        assert snap["histograms"], "live run produced no histograms"
        assert parse_prometheus_text(prometheus_text(snapshot=snap)) == snap
