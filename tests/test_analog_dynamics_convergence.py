"""Tests for the quasi-static dynamics (Fig. 15) and convergence-time analysis."""

from __future__ import annotations

import math

import pytest

from repro.analog import (
    AnalogMaxFlowSolver,
    ConvergenceTimeEstimator,
    QuasiStaticAnalyzer,
    measure_convergence_time,
)
from repro.config import NonIdealityModel, SubstrateParameters
from repro.errors import SimulationError
from repro.graph import paper_example_graph, quasistatic_example_graph, rmat_graph


class TestQuasiStaticTrajectory:
    def test_fig15_final_point(self):
        trajectory = QuasiStaticAnalyzer(num_points=97).trace(quasistatic_example_graph())
        final = trajectory.final
        assert final.flow_value == pytest.approx(4.0, rel=1e-3)
        assert final.edge_flows[0] == pytest.approx(4.0, rel=1e-3)
        assert final.edge_flows[1] == pytest.approx(1.0, rel=1e-2)
        assert final.edge_flows[2] == pytest.approx(3.0, rel=1e-2)

    def test_fig15_breakpoints(self):
        """x2 saturates at Vflow = 9 V and x1/x3 at 19 V (paper's analysis)."""
        trajectory = QuasiStaticAnalyzer(num_points=121, drive_factor=6.0).trace(
            quasistatic_example_graph()
        )
        breakpoints = trajectory.breakpoints()
        assert len(breakpoints) >= 1
        assert breakpoints[0] == pytest.approx(9.0, abs=0.6)
        assert trajectory.saturation_drive(1e-3) == pytest.approx(19.0, abs=1.0)

    def test_trajectory_moves_through_interior(self):
        """Before saturation the flow splits across both edges (interior point)."""
        trajectory = QuasiStaticAnalyzer(num_points=97).trace(quasistatic_example_graph())
        drive, x2 = trajectory.edge_trajectory(1)
        drive, x3 = trajectory.edge_trajectory(2)
        mid = len(drive) // 4
        assert 0 < x2[mid] < 1.0
        assert 0 < x3[mid] < 4.0
        # Initially (low drive) x2 = x3 = Vflow / 9 per the paper's derivation.
        small = 3
        assert x2[small] == pytest.approx(drive[small] / 9.0, rel=0.05)
        assert trajectory.points[small].flow_value == pytest.approx(
            2.0 * drive[small] / 9.0, rel=0.05
        )

    def test_flow_curve_is_monotone(self):
        trajectory = QuasiStaticAnalyzer(num_points=60).trace(paper_example_graph())
        _, flow = trajectory.flow_curve()
        assert all(b >= a - 1e-9 for a, b in zip(flow, flow[1:]))
        assert flow[-1] == pytest.approx(2.0, rel=1e-3)


class TestConvergenceMeasurement:
    def make_compiled(self, gbw_hz=10e9, network=None, vflow=12.0):
        from dataclasses import replace

        params = replace(SubstrateParameters(), bleed_resistance_factor=1000.0)
        nonideal = NonIdealityModel(parasitic_capacitance_f=20e-15, opamp_gbw_hz=gbw_hz)
        solver = AnalogMaxFlowSolver(
            parameters=params, quantize=False, nonideal=nonideal, style="device"
        )
        return solver.compile(network or paper_example_graph(), vflow_v=vflow)

    def test_fig5_waveform_settles_to_maxflow(self):
        measurement = measure_convergence_time(self.make_compiled(), num_steps=900)
        assert measurement.converged
        assert measurement.final_flow_value == pytest.approx(2.0, rel=0.05)
        assert 1e-9 < measurement.convergence_time_s < 1e-6
        # The flow rises monotonically overall: it starts near zero.
        wave = measurement.flow_waveform
        assert wave.values[0] == pytest.approx(0.0, abs=1e-6)

    def test_higher_gbw_converges_faster(self):
        slow = measure_convergence_time(self.make_compiled(10e9), num_steps=700)
        fast = measure_convergence_time(self.make_compiled(50e9), num_steps=700)
        assert fast.convergence_time_s < slow.convergence_time_s

    def test_requires_dynamic_elements(self):
        compiled = AnalogMaxFlowSolver(quantize=False).compile(paper_example_graph())
        with pytest.raises(SimulationError):
            measure_convergence_time(compiled)


class TestConvergenceEstimator:
    def test_estimate_scales_with_depth(self):
        estimator = ConvergenceTimeEstimator()
        params = SubstrateParameters()
        shallow = rmat_graph(30, 200, seed=1)
        from repro.graph import path_graph

        deep = path_graph(10, [1.0] * 11)
        assert estimator.estimate(deep, params) > estimator.estimate(shallow, params)

    def test_estimate_scales_with_gbw_and_capacitance(self):
        estimator = ConvergenceTimeEstimator()
        params = SubstrateParameters()
        g = paper_example_graph()
        slow = estimator.estimate(g, params, NonIdealityModel(opamp_gbw_hz=10e9,
                                                              parasitic_capacitance_f=20e-15))
        fast = estimator.estimate(g, params, NonIdealityModel(opamp_gbw_hz=50e9,
                                                              parasitic_capacitance_f=20e-15))
        assert fast < slow

    def test_calibration_reduces_prediction_error(self):
        from dataclasses import replace

        params = replace(SubstrateParameters(), bleed_resistance_factor=1000.0)
        samples = []
        for gbw in (10e9, 50e9):
            nonideal = NonIdealityModel(parasitic_capacitance_f=20e-15, opamp_gbw_hz=gbw)
            solver = AnalogMaxFlowSolver(
                parameters=params, quantize=False, nonideal=nonideal, style="device"
            )
            compiled = solver.compile(paper_example_graph(), vflow_v=12.0)
            measured = measure_convergence_time(compiled, num_steps=700)
            samples.append((paper_example_graph(), params, nonideal, measured.convergence_time_s))

        base = ConvergenceTimeEstimator()
        calibrated = base.calibrate(samples)
        for network, p, nonideal, measured in samples:
            prediction = calibrated.estimate(network, p, nonideal)
            assert prediction == pytest.approx(measured, rel=0.8)

    def test_calibration_requires_samples(self):
        with pytest.raises(SimulationError):
            ConvergenceTimeEstimator().calibrate([])
