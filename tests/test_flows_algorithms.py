"""Tests for the classical max-flow algorithms and their shared machinery."""

from __future__ import annotations

import pytest

from repro.errors import AlgorithmError, InfeasibleFlowError
from repro.flows import (
    ALGORITHMS,
    CpuCostModel,
    Dinic,
    EdmondsKarp,
    FordFulkerson,
    LinearProgrammingSolver,
    PushRelabel,
    dinic,
    edmonds_karp,
    ford_fulkerson,
    get_algorithm,
    min_cut,
    min_cut_from_flow,
    push_relabel,
    solve_lp_maxflow,
    solve_max_flow,
    validate_max_flow,
)
from repro.graph import (
    bipartite_graph,
    grid_graph,
    paper_example_graph,
    parallel_paths_graph,
    path_graph,
    quasistatic_example_graph,
    rmat_graph,
)

ALL_SOLVERS = [FordFulkerson(), EdmondsKarp(), Dinic(), PushRelabel(),
               PushRelabel(selection="fifo"), LinearProgrammingSolver()]


def known_instances():
    """(network, expected max flow) pairs with hand-checkable answers."""
    return [
        (paper_example_graph(), 2.0),
        (quasistatic_example_graph(), 4.0),
        (path_graph(3, [5.0, 2.0, 7.0, 4.0]), 2.0),
        (parallel_paths_graph(3, path_length=2, capacity=1.5), 4.5),
        (grid_graph(2, 3, capacity=1.0), 2.0),
        (bipartite_graph(4, 4, connectivity=1.0, seed=0), 4.0),
    ]


class TestKnownInstances:
    @pytest.mark.parametrize("solver", ALL_SOLVERS, ids=lambda s: s.name)
    @pytest.mark.parametrize("case", range(len(known_instances())))
    def test_expected_value(self, solver, case):
        network, expected = known_instances()[case]
        result = solver.solve(network, validate=True)
        assert result.flow_value == pytest.approx(expected, abs=1e-6)

    @pytest.mark.parametrize("solver", ALL_SOLVERS, ids=lambda s: s.name)
    def test_flow_is_feasible_on_rmat(self, solver):
        network = rmat_graph(40, 160, seed=13)
        result = solver.solve(network, validate=True)
        assert network.is_feasible_flow(result.edge_flows, 1e-6, 1e-6)

    def test_all_algorithms_agree_on_rmat(self):
        network = rmat_graph(60, 220, seed=21)
        values = [solver.solve(network).flow_value for solver in ALL_SOLVERS]
        assert max(values) - min(values) < 1e-5

    def test_agreement_with_networkx(self):
        networkx = pytest.importorskip("networkx")
        network = rmat_graph(50, 200, seed=5)
        digraph = networkx.DiGraph()
        for edge in network.edges():
            if digraph.has_edge(edge.tail, edge.head):
                digraph[edge.tail][edge.head]["capacity"] += edge.capacity
            else:
                digraph.add_edge(edge.tail, edge.head, capacity=edge.capacity)
        reference, _ = networkx.maximum_flow(digraph, network.source, network.sink)
        assert dinic(network).flow_value == pytest.approx(reference, abs=1e-6)

    def test_zero_flow_when_disconnected(self):
        network = path_graph(1, [1.0, 1.0])
        disconnected = network.copy()
        # Build a graph where the sink is unreachable.
        from repro.graph import FlowNetwork

        g = FlowNetwork()
        g.add_edge("s", "a", 1.0)
        g.add_vertex("t")
        for solver in ALL_SOLVERS:
            assert solver.solve(g).flow_value == pytest.approx(0.0)


class TestResultContents:
    def test_operation_counters_populated(self):
        result = push_relabel(rmat_graph(40, 150, seed=2))
        assert result.operations.total() > 0
        assert result.operations.pushes > 0

    def test_wall_time_recorded(self):
        result = dinic(paper_example_graph())
        assert result.wall_time_s >= 0.0

    def test_flow_by_edge_keys(self):
        g = paper_example_graph()
        keyed = dinic(g).flow_by_edge(g)
        assert keyed[("s", "n1")] == pytest.approx(2.0)

    def test_validate_max_flow_rejects_bad_result(self):
        from repro.flows.base import MaxFlowResult

        g = paper_example_graph()
        bogus = MaxFlowResult(flow_value=10.0, edge_flows={0: 10.0}, algorithm="bogus")
        with pytest.raises(InfeasibleFlowError):
            validate_max_flow(g, bogus)


class TestVariantsAndRegistry:
    def test_push_relabel_variants_agree(self):
        g = rmat_graph(50, 200, seed=8)
        highest = PushRelabel(selection="highest").solve(g).flow_value
        fifo = PushRelabel(selection="fifo").solve(g).flow_value
        no_gap = PushRelabel(use_gap_heuristic=False).solve(g).flow_value
        periodic = PushRelabel(global_relabel_frequency=25).solve(g).flow_value
        assert highest == pytest.approx(fifo) == pytest.approx(no_gap) == pytest.approx(periodic)

    def test_invalid_selection_rejected(self):
        with pytest.raises(AlgorithmError):
            PushRelabel(selection="weird")

    def test_registry(self):
        assert set(ALGORITHMS) >= {"dinic", "push-relabel", "edmonds-karp", "ford-fulkerson"}
        assert get_algorithm("dinic").name == "dinic"
        with pytest.raises(AlgorithmError):
            get_algorithm("nope")
        g = paper_example_graph()
        assert solve_max_flow(g, "edmonds-karp").flow_value == pytest.approx(2.0)


class TestMinCut:
    def test_min_cut_equals_max_flow(self):
        for seed in range(4):
            g = rmat_graph(40, 150, seed=seed)
            flow = dinic(g)
            cut = min_cut_from_flow(g, flow)
            assert cut.cut_value == pytest.approx(flow.flow_value, abs=1e-6)
            assert g.source in cut.source_side
            assert g.sink in cut.sink_side

    def test_cut_edges_are_saturated(self):
        g = paper_example_graph()
        flow = dinic(g)
        cut = min_cut_from_flow(g, flow)
        for index in cut.cut_edges:
            assert flow.edge_flows[index] == pytest.approx(g.edge(index).capacity)

    def test_indicator_matches_lp_convention(self):
        g = paper_example_graph()
        cut = min_cut(g)
        labels = cut.indicator(g)
        assert labels[g.source] == 1
        assert labels[g.sink] == 0


class TestCpuCostModel:
    def test_estimate_scales_with_operations(self):
        small = push_relabel(rmat_graph(30, 90, seed=1))
        large = push_relabel(rmat_graph(120, 480, seed=1))
        model = CpuCostModel()
        assert model.estimate(large).seconds > model.estimate(small).seconds
        assert model.estimate(small).seconds > 0

    def test_energy_positive(self):
        estimate = CpuCostModel().estimate(push_relabel(paper_example_graph()))
        assert estimate.energy_j > 0
        assert estimate.cycles > 0
        assert estimate.microseconds == pytest.approx(estimate.seconds * 1e6)
