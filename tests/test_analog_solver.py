"""End-to-end tests of the analog max-flow solver (the paper's core claim)."""

from __future__ import annotations

import pytest

from repro.analog import AnalogMaxFlowSolver, FlowReadout
from repro.analog.verification import evaluate_solution
from repro.config import NonIdealityModel
from repro.errors import CircuitError
from repro.flows import dinic
from repro.graph import (
    FlowNetwork,
    paper_example_graph,
    parallel_paths_graph,
    path_graph,
    quasistatic_example_graph,
    rmat_graph,
)


def ideal_solver(**kwargs) -> AnalogMaxFlowSolver:
    defaults = dict(quantize=False, adaptive_drive=True)
    defaults.update(kwargs)
    return AnalogMaxFlowSolver(**defaults)


class TestOptimalityUnderIdealAssumptions:
    """Section 2's claim: the ideal circuit's steady state is the max flow."""

    @pytest.mark.parametrize(
        "network, expected",
        [
            (paper_example_graph(), 2.0),
            (quasistatic_example_graph(), 4.0),
            (path_graph(3, [5.0, 2.0, 7.0, 4.0]), 2.0),
            (parallel_paths_graph(3, path_length=2, capacity=1.0), 3.0),
        ],
        ids=["fig5", "fig15", "path", "parallel"],
    )
    def test_known_instances(self, network, expected):
        result = ideal_solver().solve(network)
        assert result.flow_value == pytest.approx(expected, rel=1e-3)

    @pytest.mark.parametrize("seed", range(4))
    def test_rmat_instances_match_exact(self, seed):
        network = rmat_graph(30, 110, seed=seed)
        exact = dinic(network).flow_value
        result = ideal_solver().solve(network)
        assert result.flow_value == pytest.approx(exact, rel=2e-3)

    def test_edge_flows_are_a_feasible_maxflow(self):
        network = rmat_graph(25, 90, seed=9)
        result = ideal_solver().solve(network)
        quality = result.quality(network)
        assert quality.max_capacity_violation < 1e-3
        assert quality.max_conservation_violation < 1e-2

    def test_paper_example_edge_flows(self):
        result = ideal_solver().solve(paper_example_graph())
        flows = result.edge_flows
        assert flows[0] == pytest.approx(2.0, abs=1e-2)
        assert flows[2] == pytest.approx(1.0, abs=1e-2)
        assert flows[3] == pytest.approx(1.0, abs=1e-2)


class TestReadout:
    def test_voltage_and_current_readouts_agree(self):
        result = ideal_solver().solve(paper_example_graph())
        assert result.flow_value == pytest.approx(result.flow_value_from_current, rel=1e-6)

    def test_disconnected_graph_gives_zero(self):
        g = FlowNetwork()
        g.add_edge("s", "a", 2.0)
        g.add_vertex("t")
        result = AnalogMaxFlowSolver().solve(g)
        assert result.flow_value == 0.0
        assert all(v == 0.0 for v in result.edge_flows.values())

    def test_pruned_edges_report_zero_flow(self):
        g = paper_example_graph()
        g.add_edge("n1", "dead", 5.0)
        result = ideal_solver().solve(g)
        assert result.edge_flows[5] == 0.0

    def test_flow_waveform_requires_transient(self):
        compiled = ideal_solver().compile(paper_example_graph())
        readout = FlowReadout(compiled)
        with pytest.raises(CircuitError):
            readout.edge_voltages({"bogus": 1.0})


class TestDriveVoltage:
    def test_insufficient_drive_underestimates(self):
        """Table 1's literal 3 V under-drives this instance (see EXPERIMENTS.md)."""
        network = paper_example_graph()
        low = AnalogMaxFlowSolver(quantize=False).solve(network, vflow_v=3.0)
        high = AnalogMaxFlowSolver(quantize=False).solve(network, vflow_v=12.0)
        assert low.flow_value < high.flow_value
        assert high.flow_value == pytest.approx(2.0, rel=1e-3)

    def test_flow_monotone_in_drive(self):
        network = rmat_graph(20, 70, seed=3)
        values = [
            AnalogMaxFlowSolver(quantize=False).solve(network, vflow_v=v).flow_value
            for v in (2.0, 4.0, 8.0, 16.0)
        ]
        assert all(b >= a - 1e-6 for a, b in zip(values, values[1:]))

    def test_adaptive_drive_reaches_optimum(self):
        network = rmat_graph(20, 70, seed=3)
        exact = dinic(network).flow_value
        result = ideal_solver().solve(network)
        assert result.flow_value == pytest.approx(exact, rel=2e-3)
        assert result.vflow_v > 3.0


class TestQuantizedAccuracy:
    """Fig. 10's relative-error claim: errors of a few percent at N = 20."""

    @pytest.mark.parametrize("seed", range(3))
    def test_error_within_paper_band(self, seed):
        network = rmat_graph(40, 140, seed=seed)
        exact = dinic(network).flow_value
        result = AnalogMaxFlowSolver(quantize=True, adaptive_drive=True).solve(network)
        quality = evaluate_solution(network, result.flow_value, result.edge_flows, exact)
        assert quality.relative_error < 0.08

    def test_more_levels_reduce_error(self):
        network = rmat_graph(40, 140, seed=5)
        exact = dinic(network).flow_value

        def error(levels):
            from repro.config import SubstrateParameters

            params = SubstrateParameters().with_voltage_levels(levels)
            solver = AnalogMaxFlowSolver(parameters=params, quantize=True, adaptive_drive=True)
            return solver.solve(network).quality(network, exact).relative_error

        coarse = error(5)
        fine = error(80)
        assert fine <= coarse + 1e-9
        assert fine < 0.03


class TestNonIdealities:
    def test_finite_gain_error_is_small(self):
        """Section 4.2: gain of 1e4 keeps the solution essentially unchanged."""
        network = paper_example_graph()
        ideal = AnalogMaxFlowSolver(quantize=False).solve(network, vflow_v=6.0)
        finite = AnalogMaxFlowSolver(quantize=False, style="finite-gain").solve(
            network, vflow_v=6.0
        )
        assert finite.flow_value == pytest.approx(ideal.flow_value, rel=0.02)

    def test_matching_beats_unmatched_variation(self):
        """Section 4.3.1: matched mismatch hurts far less than raw tolerance."""
        network = rmat_graph(25, 80, seed=7)
        exact = dinic(network).flow_value

        def mean_error(use_matching):
            errors = []
            for seed in range(3):
                ni = NonIdealityModel(
                    resistor_tolerance=0.25,
                    resistor_matching=0.002,
                    use_matching=use_matching,
                    seed=seed,
                )
                from dataclasses import replace

                from repro.config import SubstrateParameters

                params = replace(SubstrateParameters(), bleed_resistance_factor=1000.0)
                solver = AnalogMaxFlowSolver(
                    parameters=params, quantize=False, nonideal=ni, seed=seed
                )
                result = solver.solve(network, vflow_v=4.0)
                errors.append(result.quality(network, exact).relative_error)
            return sum(errors) / len(errors)

        assert mean_error(True) < mean_error(False)

    def test_diode_drop_compensation(self):
        network = paper_example_graph()
        ni = NonIdealityModel(diode_forward_voltage_v=0.3)
        result = AnalogMaxFlowSolver(quantize=False, nonideal=ni, adaptive_drive=True).solve(network)
        assert result.flow_value == pytest.approx(2.0, rel=0.05)

    def test_unknown_method_rejected(self):
        with pytest.raises(CircuitError):
            AnalogMaxFlowSolver().solve(paper_example_graph(), method="quantum")
