"""Deterministic concurrency gates for the asyncio serving front door.

Every property the server claims — coalescing collapses identical
concurrent requests into one backend solve, admission control sheds the
lowest-priority tenant first, deadline routing flips analog→classical
when the analog SLO budget exhausts, queued requests past their deadline
answer 504 — is pinned here with an injected virtual clock, gated fake
backends, and event-loop yields for synchronization.  No sleeps, no
real-clock races: the suites are exactly as deterministic as the event
loop's FIFO scheduling.
"""

from __future__ import annotations

import asyncio

import pytest

from repro import FlowNetwork
from repro.errors import AlgorithmError
from repro.obs import (
    SloObjective,
    SloPolicy,
    clear_traces,
    get_registry,
    probes,
    reset_metrics,
    set_obs_enabled,
    set_slo_policy,
)
from repro.service import AsyncSolveServer
from repro.service.api import SolveResult

from test_obs_slo import stepped_clock


@pytest.fixture
def obs_server():
    """Obs on, clean registry/traces, no leaked process-global SLO policy."""
    previous = set_obs_enabled(True)
    clear_traces()
    reset_metrics()
    saved = set_slo_policy(None)
    yield
    set_slo_policy(saved)
    set_obs_enabled(previous)
    clear_traces()
    reset_metrics()


def tiny_network(capacity: float = 3.0) -> FlowNetwork:
    g = FlowNetwork()
    g.add_edge("s", "t", capacity)
    return g


def distinct_network(i: int) -> FlowNetwork:
    """Networks with pairwise-distinct topology signatures."""
    g = FlowNetwork()
    g.add_edge("s", f"v{i}", 2.0)
    g.add_edge(f"v{i}", "t", 1.0)
    return g


class Recorder:
    """Async fake backend: records calls, optionally blocks on a gate."""

    def __init__(self, gated: bool = False):
        self.calls = []
        self.started = asyncio.Event()
        self.gate = asyncio.Event()
        if not gated:
            self.gate.set()

    async def __call__(self, request) -> SolveResult:
        self.calls.append(request)
        self.started.set()
        await self.gate.wait()
        return SolveResult(
            request=request, flow_value=1.0, edge_flows={0: 1.0}
        )


async def spin_until(predicate, rounds: int = 2000) -> None:
    """Yield the event loop (deterministically) until ``predicate()``."""
    for _ in range(rounds):
        if predicate():
            return
        await asyncio.sleep(0)
    raise AssertionError("predicate never became true while spinning")


class TestCoalescing:
    async def test_identical_concurrent_requests_share_one_solve(self, obs_server):
        backend = Recorder(gated=True)
        g = tiny_network()
        async with AsyncSolveServer(workers=2, solve_fn=backend) as server:
            waiters = [
                asyncio.ensure_future(server.submit(g, backend="dinic"))
                for _ in range(8)
            ]
            # All 8 must be registered against the shared future, and the
            # single backend solve started, before it may finish.
            await spin_until(
                lambda: server.stats()["waiting"] == 8 and backend.started.is_set()
            )
            assert len(backend.calls) == 1  # exactly one backend solve
            backend.gate.set()
            responses = await asyncio.gather(*waiters)
        assert len(backend.calls) == 1
        assert all(r.status == 200 for r in responses)
        assert all(r.result.flow_value == 1.0 for r in responses)
        assert sum(1 for r in responses if r.coalesced) == 7
        assert server.stats()["coalesced"] == 7
        assert get_registry().get_counter(
            probes.EVENT_COALESCE_HIT, backend="dinic"
        ) == 7.0

    async def test_coalescing_disabled_solves_every_request(self, obs_server):
        backend = Recorder()
        g = tiny_network()
        async with AsyncSolveServer(
            workers=2, solve_fn=backend, coalesce=False
        ) as server:
            responses = await asyncio.gather(
                *[server.submit(g, backend="dinic") for _ in range(5)]
            )
        assert len(backend.calls) == 5
        assert all(r.status == 200 and not r.coalesced for r in responses)

    async def test_different_options_do_not_coalesce(self, obs_server):
        backend = Recorder()
        g = tiny_network()
        async with AsyncSolveServer(workers=2, solve_fn=backend) as server:
            await asyncio.gather(
                server.submit(g, backend="dinic"),
                server.submit(g, backend="dinic", validate=True),
                server.submit(g, backend="push-relabel"),
            )
        assert len(backend.calls) == 3

    async def test_sequential_identical_requests_do_not_coalesce(self, obs_server):
        # Coalescing shares *in-flight* solves only: once resolved, the
        # key must be unregistered and the next request solves afresh.
        backend = Recorder()
        g = tiny_network()
        async with AsyncSolveServer(workers=1, solve_fn=backend) as server:
            first = await server.submit(g, backend="dinic")
            second = await server.submit(g, backend="dinic")
        assert len(backend.calls) == 2
        assert not first.coalesced and not second.coalesced
        assert server.stats()["inflight"] == 0


class TestAdmissionControl:
    async def test_overflow_sheds_lowest_priority_newest_first(self, obs_server):
        backend = Recorder(gated=True)
        async with AsyncSolveServer(
            workers=1, solve_fn=backend, coalesce=False,
            max_pending=3, per_tenant_queue=10,
        ) as server:
            blocker = asyncio.ensure_future(
                server.submit(distinct_network(0), tenant="z", priority=9,
                              backend="dinic")
            )
            await backend.started.wait()  # worker is busy, queue is free
            queued = {
                tenant: asyncio.ensure_future(
                    server.submit(distinct_network(i), tenant=tenant,
                                  priority=priority, backend="dinic")
                )
                for i, (tenant, priority) in enumerate(
                    [("a", 2), ("b", 1), ("c", 3)], start=1
                )
            }
            await spin_until(lambda: server.stats()["queue_depth"] == 3)

            # Higher-priority arrival: the lowest-priority queued request
            # (tenant b, priority 1) is evicted to make room.
            win = asyncio.ensure_future(
                server.submit(distinct_network(4), tenant="d", priority=4,
                              backend="dinic")
            )
            shed = await queued["b"]
            assert shed.status == 503
            assert shed.detail == "queue-full"
            assert shed.result is None
            assert server.stats()["queue_depth"] == 3

            # Equal-or-lower-priority arrival is itself rejected instead.
            reject = await server.submit(
                distinct_network(5), tenant="e", priority=1, backend="dinic"
            )
            assert reject.status == 503
            assert reject.detail == "queue-full"

            backend.gate.set()
            survivors = await asyncio.gather(
                blocker, queued["a"], queued["c"], win
            )
        assert all(r.status == 200 for r in survivors)
        reg = get_registry()
        assert reg.get_counter(
            probes.EVENT_REQUEST_SHED, tenant="b", reason="queue-full"
        ) == 1.0
        assert reg.get_counter(
            probes.EVENT_REQUEST_SHED, tenant="e", reason="queue-full"
        ) == 1.0
        assert server.stats()["shed"] == 2

    async def test_per_tenant_bound_isolates_noisy_tenant(self, obs_server):
        backend = Recorder(gated=True)
        async with AsyncSolveServer(
            workers=1, solve_fn=backend, coalesce=False,
            max_pending=50, per_tenant_queue=2,
        ) as server:
            blocker = asyncio.ensure_future(
                server.submit(distinct_network(0), tenant="quiet",
                              priority=9, backend="dinic")
            )
            await backend.started.wait()
            noisy = [
                asyncio.ensure_future(
                    server.submit(distinct_network(i), tenant="noisy",
                                  priority=i, backend="dinic")
                )
                for i in (1, 2)
            ]
            await spin_until(lambda: server.stats()["queue_depth"] == 2)

            # Third noisy request with low priority: rejected, not queued.
            reject = await server.submit(
                distinct_network(3), tenant="noisy", priority=0,
                backend="dinic",
            )
            assert reject.status == 503
            assert reject.detail == "tenant-queue-full"
            # Another tenant is unaffected by noisy's full queue.
            other = asyncio.ensure_future(
                server.submit(distinct_network(4), tenant="quiet",
                              priority=0, backend="dinic")
            )
            await spin_until(lambda: server.stats()["queue_depth"] == 3)

            # Higher-priority noisy request evicts noisy's own lowest.
            win = asyncio.ensure_future(
                server.submit(distinct_network(5), tenant="noisy",
                              priority=5, backend="dinic")
            )
            shed = await noisy[0]  # priority 1, noisy's lowest
            assert shed.status == 503
            assert shed.detail == "tenant-queue-full"

            backend.gate.set()
            survivors = await asyncio.gather(blocker, noisy[1], other, win)
        assert all(r.status == 200 for r in survivors)
        assert get_registry().get_counter(
            probes.EVENT_REQUEST_SHED, tenant="noisy",
            reason="tenant-queue-full",
        ) == 2.0

    async def test_queue_depth_gauges_track_admissions(self, obs_server):
        backend = Recorder(gated=True)
        async with AsyncSolveServer(
            workers=1, solve_fn=backend, coalesce=False,
        ) as server:
            blocker = asyncio.ensure_future(
                server.submit(distinct_network(0), tenant="t0", backend="dinic")
            )
            await backend.started.wait()
            queued = [
                asyncio.ensure_future(
                    server.submit(distinct_network(i), tenant="t1",
                                  backend="dinic")
                )
                for i in (1, 2)
            ]
            await spin_until(lambda: server.stats()["queue_depth"] == 2)
            reg = get_registry()
            assert reg.get_gauge(probes.METRIC_QUEUE_DEPTH) == 2
            assert reg.get_gauge(probes.METRIC_QUEUE_DEPTH, tenant="t1") == 2
            backend.gate.set()
            await asyncio.gather(blocker, *queued)
        assert get_registry().get_gauge(probes.METRIC_QUEUE_DEPTH) == 0


class TestDeadlineRouting:
    def _exhausted_analog_policy(self, clock, advance) -> SloPolicy:
        policy = SloPolicy(
            objective=SloObjective(availability=0.95),
            clock=clock, min_requests=5,
        )
        policy.observe()
        get_registry().counter(
            "service.solve_errors", 20, backend="analog", error_type="e"
        )
        advance(60.0)
        assert policy.health("analog").should_skip
        return policy

    async def test_tight_deadline_routes_analog_when_budget_healthy(
        self, obs_server
    ):
        backend = Recorder()
        clock, _ = stepped_clock()
        policy = SloPolicy(clock=clock)  # no traffic: analog is healthy
        async with AsyncSolveServer(
            workers=1, solve_fn=backend, slo=policy, clock=clock,
            analog_deadline_s=0.25,
        ) as server:
            tight = await server.submit(tiny_network(), deadline_s=0.1)
            loose = await server.submit(tiny_network(), deadline_s=10.0)
            bare = await server.submit(tiny_network())
        assert tight.backend == "analog"
        assert loose.backend == "dinic"
        assert bare.backend == "dinic"
        assert [r.backend for r in backend.calls] == ["analog", "dinic", "dinic"]

    async def test_exhausted_analog_budget_flips_tight_deadlines_classical(
        self, obs_server
    ):
        backend = Recorder()
        clock, advance = stepped_clock()
        policy = self._exhausted_analog_policy(clock, advance)
        async with AsyncSolveServer(
            workers=1, solve_fn=backend, slo=policy, clock=clock,
        ) as server:
            tight = await server.submit(tiny_network(), deadline_s=0.1)
        assert tight.backend == "dinic"
        assert backend.calls[0].backend == "dinic"

    async def test_router_falls_through_to_process_global_policy(
        self, obs_server
    ):
        backend = Recorder()
        clock, advance = stepped_clock()
        set_slo_policy(self._exhausted_analog_policy(clock, advance))
        async with AsyncSolveServer(
            workers=1, solve_fn=backend, clock=clock,
        ) as server:
            tight = await server.submit(tiny_network(), deadline_s=0.1)
        assert tight.backend == "dinic"

    async def test_explicit_backend_bypasses_router(self, obs_server):
        backend = Recorder()
        clock, advance = stepped_clock()
        policy = self._exhausted_analog_policy(clock, advance)
        async with AsyncSolveServer(
            workers=1, solve_fn=backend, slo=policy, clock=clock,
        ) as server:
            forced = await server.submit(
                tiny_network(), backend="analog", deadline_s=0.1
            )
        assert forced.backend == "analog"

    async def test_deadline_rides_into_solver_options(self, obs_server):
        backend = Recorder()
        async with AsyncSolveServer(workers=1, solve_fn=backend) as server:
            await server.submit(tiny_network(), backend="dinic", deadline_s=1.5)
        assert backend.calls[0].options["deadline_s"] == 1.5

    async def test_seeded_e2e_routing_scenario_on_injected_clock(
        self, obs_server, rng
    ):
        """End-to-end: mixed seeded traffic, budget exhausts mid-stream."""
        backend = Recorder()
        clock, advance = stepped_clock()
        policy = SloPolicy(
            objective=SloObjective(availability=0.95),
            clock=clock, min_requests=5,
        )
        policy.observe()
        async with AsyncSolveServer(
            workers=2, solve_fn=backend, slo=policy, clock=clock,
        ) as server:
            # Phase 1 — healthy budget: every tight deadline routes analog.
            phase1 = [
                await server.submit(
                    distinct_network(i), tenant=f"t{rng.randrange(3)}",
                    deadline_s=rng.choice([0.05, 0.1]),
                )
                for i in range(10)
            ]
            assert [r.backend for r in phase1] == ["analog"] * 10
            # Mid-stream incident: analog's error budget burns out.
            get_registry().counter(
                "service.solve_errors", 30, backend="analog", error_type="e"
            )
            advance(60.0)
            # Phase 2 — same seeded traffic shape now routes classical.
            phase2 = [
                await server.submit(
                    distinct_network(100 + i), tenant=f"t{rng.randrange(3)}",
                    deadline_s=rng.choice([0.05, 0.1]),
                )
                for i in range(10)
            ]
            assert [r.backend for r in phase2] == ["dinic"] * 10
        assert all(r.status == 200 for r in phase1 + phase2)


class TestDeadlineExpiry:
    async def test_request_expiring_in_queue_answers_504(self, obs_server):
        backend = Recorder(gated=True)
        clock, advance = stepped_clock()
        async with AsyncSolveServer(
            workers=1, solve_fn=backend, coalesce=False, clock=clock,
        ) as server:
            blocker = asyncio.ensure_future(
                server.submit(distinct_network(0), backend="dinic")
            )
            await backend.started.wait()
            doomed = asyncio.ensure_future(
                server.submit(distinct_network(1), backend="dinic",
                              deadline_s=1.0)
            )
            await spin_until(lambda: server.stats()["queue_depth"] == 1)
            advance(2.0)  # virtual time passes while queued
            backend.gate.set()
            blocked, expired = await asyncio.gather(blocker, doomed)
        assert blocked.status == 200
        assert expired.status == 504
        assert expired.result is None
        assert "deadline" in expired.detail and "expired" in expired.detail
        assert len(backend.calls) == 1  # the expired request never ran
        assert server.stats()["expired"] == 1

    async def test_timeout_result_maps_to_504(self, obs_server):
        async def timed_out(request) -> SolveResult:
            return SolveResult(
                request=request, ok=False,
                error="SolveTimeoutError: budget spent",
                error_type="SolveTimeoutError",
            )

        async with AsyncSolveServer(workers=1, solve_fn=timed_out) as server:
            response = await server.submit(tiny_network(), backend="dinic")
        assert response.status == 504

    async def test_typed_failure_maps_to_500(self, obs_server):
        async def broken(request) -> SolveResult:
            return SolveResult(
                request=request, ok=False,
                error="AlgorithmError: boom", error_type="AlgorithmError",
            )

        async with AsyncSolveServer(workers=1, solve_fn=broken) as server:
            response = await server.submit(tiny_network(), backend="dinic")
        assert response.status == 500
        assert response.detail == "AlgorithmError: boom"


class TestLifecycle:
    async def test_submit_after_close_raises(self, obs_server):
        server = AsyncSolveServer(workers=1, solve_fn=Recorder())
        server.start()
        await server.aclose()
        with pytest.raises(AlgorithmError):
            await server.submit(tiny_network(), backend="dinic")

    async def test_request_latency_histogram_is_observed(self, obs_server):
        backend = Recorder()
        async with AsyncSolveServer(workers=1, solve_fn=backend) as server:
            await server.submit(tiny_network(), backend="dinic")
        snapshot = get_registry().snapshot()
        keys = [
            k for k in snapshot["histograms"]
            if k.startswith(probes.METRIC_REQUEST_SECONDS)
        ]
        assert len(keys) == 1
        assert "status=200" in keys[0] and "backend=dinic" in keys[0]
        assert snapshot["histograms"][keys[0]]["count"] == 1

    async def test_default_service_serves_real_solves(self, obs_server):
        g = tiny_network(capacity=5.0)
        async with AsyncSolveServer(workers=1) as server:
            response = await server.submit(g, backend="dinic", deadline_s=30.0)
        assert response.status == 200
        assert response.result.flow_value == pytest.approx(5.0)
