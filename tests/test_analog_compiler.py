"""Tests for the graph-to-circuit compiler and its widgets."""

from __future__ import annotations

import pytest

from repro.analog import MaxFlowCircuitCompiler
from repro.analog.widgets import WidgetStyle
from repro.circuit import Capacitor, Diode, OpAmp, Resistor, VoltageSource
from repro.config import NonIdealityModel, SubstrateParameters
from repro.errors import CircuitError
from repro.graph import FlowNetwork, paper_example_graph, rmat_graph


class TestCompiledStructure:
    def test_paper_example_nodes_and_clamps(self):
        compiled = MaxFlowCircuitCompiler(quantize=False).compile(paper_example_graph())
        # One circuit node per edge.
        assert set(compiled.edge_node) == {0, 1, 2, 3, 4}
        # Three internal vertices get conservation widgets.
        assert set(compiled.vertex_node) == {"n1", "n2", "n3"}
        # Two diodes per finite-capacity edge.
        assert compiled.diode_count == 10
        # Only edge x1 leaves the source.
        assert compiled.source_edge_indices == [0]
        assert compiled.vflow_source == "Vflow"

    def test_negative_resistor_count(self):
        compiled = MaxFlowCircuitCompiler(quantize=False).compile(paper_example_graph())
        # One -r/2 per incoming edge of an internal vertex (x1, x2, x3) plus
        # one -r/N per internal vertex = 3 + 3.
        assert compiled.negative_resistor_count == 6

    def test_shared_capacity_sources(self):
        compiled = MaxFlowCircuitCompiler(quantize=True).compile(paper_example_graph())
        sources = [e for e in compiled.circuit.elements_of_type(VoltageSource) if e.name.startswith("Vcap")]
        # Capacities 3,2,1,1,2 quantize to three distinct levels -> 3 shared sources.
        assert len(sources) == 3

    def test_quantize_false_uses_exact_ratios(self):
        compiled = MaxFlowCircuitCompiler(quantize=False).compile(paper_example_graph())
        assert compiled.quantization.mode == "identity"
        assert compiled.quantization.voltage_of_edge[2] == pytest.approx(1.0 / 3.0)

    def test_styles_change_realisation(self):
        ideal = MaxFlowCircuitCompiler(quantize=False, style="ideal").compile(paper_example_graph())
        device = MaxFlowCircuitCompiler(quantize=False, style="device").compile(paper_example_graph())
        assert ideal.opamp_count == 0
        assert device.opamp_count == ideal.negative_resistor_count
        assert any(r.resistance < 0 for r in ideal.circuit.elements_of_type(Resistor))
        assert not any(r.resistance < 0 for r in device.circuit.elements_of_type(Resistor))
        assert len(device.circuit.elements_of_type(OpAmp)) == device.opamp_count

    def test_finite_gain_style_inflates_magnitude(self):
        params = SubstrateParameters()
        ideal = MaxFlowCircuitCompiler(quantize=False, style="ideal").compile(paper_example_graph())
        fg = MaxFlowCircuitCompiler(quantize=False, style="finite-gain").compile(paper_example_graph())
        r_ideal = abs(ideal.circuit.element("Rng_n0").resistance)
        r_fg = abs(fg.circuit.element("Rng_n0").resistance)
        assert r_fg == pytest.approx(r_ideal * (1 + 1 / params.opamp.open_loop_gain))

    def test_parasitic_capacitance_option(self):
        without = MaxFlowCircuitCompiler(quantize=False).compile(paper_example_graph())
        with_caps = MaxFlowCircuitCompiler(
            quantize=False, nonideal=NonIdealityModel(parasitic_capacitance_f=20e-15)
        ).compile(paper_example_graph())
        assert not without.circuit.elements_of_type(Capacitor)
        assert len(with_caps.circuit.elements_of_type(Capacitor)) >= len(with_caps.edge_node)

    def test_bleed_resistors_added_when_enabled(self):
        from dataclasses import replace

        params = replace(SubstrateParameters(), bleed_resistance_factor=1000.0)
        compiled = MaxFlowCircuitCompiler(parameters=params, quantize=False).compile(
            paper_example_graph()
        )
        bleeds = [r for r in compiled.circuit.elements_of_type(Resistor) if r.name.startswith("Rbleed")]
        assert len(bleeds) == compiled.negative_resistor_count
        assert all(r.resistance == pytest.approx(1000.0 * params.unit_resistance_ohm) for r in bleeds)

    def test_widget_style_parse(self):
        assert WidgetStyle.parse("ideal") is WidgetStyle.IDEAL
        with pytest.raises(CircuitError):
            WidgetStyle.parse("nonsense")


class TestPruningAndDegenerateCases:
    def test_pruning_drops_unreachable_edges(self):
        g = paper_example_graph()
        g.add_edge("n1", "dead_end", 7.0)
        compiled = MaxFlowCircuitCompiler(quantize=False, prune=True).compile(g)
        assert 5 not in compiled.edge_node
        unpruned = MaxFlowCircuitCompiler(quantize=False, prune=False).compile(g)
        assert 5 in unpruned.edge_node

    def test_edges_into_source_are_dropped(self):
        g = paper_example_graph()
        g.add_edge("n2", "s", 5.0)
        compiled = MaxFlowCircuitCompiler(quantize=False).compile(g)
        assert 5 not in compiled.edge_node

    def test_no_source_edge_raises(self):
        g = FlowNetwork()
        g.add_vertex("a")
        g.add_edge("a", "t", 1.0)
        with pytest.raises(CircuitError):
            MaxFlowCircuitCompiler().compile(g)

    def test_uncapacitated_edge_gets_only_lower_clamp(self):
        g = FlowNetwork()
        g.add_edge("s", "a", 2.0)
        g.add_edge("a", "t", float("inf"))
        compiled = MaxFlowCircuitCompiler(quantize=False).compile(g)
        diode_names = [d.name for d in compiled.circuit.elements_of_type(Diode)]
        assert "Dlo1" in diode_names and "Dhi1" not in diode_names

    def test_variation_is_reproducible_with_seed(self):
        ni = NonIdealityModel(resistor_tolerance=0.2, resistor_matching=0.01)
        a = MaxFlowCircuitCompiler(quantize=False, nonideal=ni, seed=3).compile(paper_example_graph())
        b = MaxFlowCircuitCompiler(quantize=False, nonideal=ni, seed=3).compile(paper_example_graph())
        c = MaxFlowCircuitCompiler(quantize=False, nonideal=ni, seed=4).compile(paper_example_graph())
        res_a = [r.resistance for r in a.circuit.elements_of_type(Resistor)]
        res_b = [r.resistance for r in b.circuit.elements_of_type(Resistor)]
        res_c = [r.resistance for r in c.circuit.elements_of_type(Resistor)]
        assert res_a == res_b
        assert res_a != res_c

    def test_compilation_scales_linearly_with_graph(self):
        small = MaxFlowCircuitCompiler().compile(rmat_graph(20, 60, seed=1))
        large = MaxFlowCircuitCompiler().compile(rmat_graph(40, 120, seed=1))
        assert large.num_elements > small.num_elements
        assert large.resistor_count > small.resistor_count
