"""Dense/sparse linear-solver policy: both paths must agree to < 1e-9."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import sparse

from repro import AnalogMaxFlowSolver, paper_example_graph, rmat_graph
from repro.circuit import (
    Circuit,
    DCOperatingPoint,
    LinearSystemSolver,
    Resistor,
    TransientSimulator,
    VoltageSource,
)
from repro.circuit.linsolve import DENSE_SIZE_THRESHOLD
from repro.errors import SimulationError, SingularCircuitError


def _divider_circuit() -> Circuit:
    circuit = Circuit()
    circuit.add(VoltageSource("V1", "in", "0", 2.0))
    circuit.add(Resistor("R1", "in", "mid", 1000.0))
    circuit.add(Resistor("R2", "mid", "0", 1000.0))
    return circuit


def _compiled_circuits():
    """Representative circuits: the worked example and an R-MAT instance."""
    solver = AnalogMaxFlowSolver(quantize=True)
    yield "paper", solver.compile(paper_example_graph(), vflow_v=6.0).circuit
    yield "rmat", solver.compile(rmat_graph(12, 30, seed=5), vflow_v=6.0).circuit


def test_mode_validation():
    with pytest.raises(SimulationError):
        LinearSystemSolver(mode="iterative")
    with pytest.raises(SimulationError):
        LinearSystemSolver(dense_threshold=-1)


def test_auto_mode_crossover():
    solver = LinearSystemSolver()
    assert solver.chosen_kind(DENSE_SIZE_THRESHOLD - 1) == "dense"
    assert solver.chosen_kind(DENSE_SIZE_THRESHOLD) == "sparse"
    assert LinearSystemSolver(mode="dense").chosen_kind(10_000) == "dense"
    assert LinearSystemSolver(mode="sparse").chosen_kind(2) == "sparse"


def test_dense_and_sparse_agree_on_random_systems():
    rng = np.random.default_rng(42)
    for size in (3, 20, 80):
        a = rng.standard_normal((size, size)) + size * np.eye(size)
        b = rng.standard_normal(size)
        x_dense = LinearSystemSolver(mode="dense").solve(a, b)
        x_sparse = LinearSystemSolver(mode="sparse").solve(sparse.csc_matrix(a), b)
        assert np.allclose(x_dense, x_sparse, atol=1e-9)


def test_singular_matrix_raises_on_both_paths():
    singular = np.zeros((3, 3))
    for mode in ("dense", "sparse"):
        with pytest.raises(SingularCircuitError):
            LinearSystemSolver(mode=mode).solve(singular, np.ones(3))


@pytest.mark.parametrize("name,circuit", list(_compiled_circuits()) + [("divider", _divider_circuit())])
def test_dc_solutions_match_between_paths(name, circuit):
    dense = DCOperatingPoint(linear_solver=LinearSystemSolver(mode="dense")).solve(circuit)
    sparse_ = DCOperatingPoint(linear_solver=LinearSystemSolver(mode="sparse")).solve(circuit)
    assert dense.diode_states == sparse_.diode_states
    # 1e-9 relative: the clamp circuits span nine decades of conductance, so
    # the two pivoting orders differ at the condition-number floor, not at
    # machine epsilon.
    for node, voltage in dense.voltages.items():
        assert abs(voltage - sparse_.voltages[node]) < 1e-9 * max(1.0, abs(voltage)), (name, node)
    for element, current in dense.branch_currents.items():
        assert abs(current - sparse_.branch_currents[element]) < 1e-9 * max(
            1.0, abs(current)
        ), (name, element)


def test_transient_matches_between_paths():
    from repro.circuit import Capacitor, StepWaveform

    circuit = Circuit()
    circuit.add(VoltageSource("V1", "in", "0", StepWaveform(final=1.0, initial=0.0, delay=1e-6)))
    circuit.add(Resistor("R1", "in", "out", 1e3))
    circuit.add(Capacitor("C1", "out", "0", 1e-9))
    runs = {}
    for mode in ("dense", "sparse"):
        sim = TransientSimulator(linear_solver=LinearSystemSolver(mode=mode))
        runs[mode] = sim.run(circuit, t_stop=1e-5, dt=1e-7, record_nodes=["out"])
    assert np.allclose(
        runs["dense"].node_voltages["out"], runs["sparse"].node_voltages["out"], atol=1e-9
    )
