"""Differential fuzz gate for the flat-array kernel.

A seeded randomized corpus (``REPRO_TEST_SEED`` via ``tests/seeding.py``)
spanning seven instance families — grids, R-MAT, bipartite, zero-capacity
edges, disconnected s/t, parallel edges, single-edge — drives
:class:`repro.flows.kernel.KernelDinic` against *both* exact references
(Dinic and push-relabel), asserting per instance that the kernel flow

* has the reference flow value to 1e-9 relative,
* is feasible (per-edge capacity bounds + vertex conservation, via
  ``validate=True``),
* certifies maximality: the residual cut extracted from the kernel's own
  flow has the same value (max-flow = min-cut equality, matched against
  the cut extracted from the reference flow).

The dtype-promotion guard pins the latent hazard the object-based path
never had: flat arrays built from int or mixed int/float capacities must
promote to float64, not truncate; ``INFINITY`` capacities must survive the
round trip as ``inf``.  Heavy sizes run behind ``--runslow``.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from seeding import derive_seed

from repro.flows.base import INFINITY
from repro.flows.dinic import Dinic
from repro.flows.kernel import (
    KERNEL_ENV_VAR,
    FlatResidual,
    KernelDinic,
    kernel_enabled,
    resolve_default_algorithm,
)
from repro.flows.mincut import min_cut_from_flow
from repro.flows.push_relabel import PushRelabel
from repro.graph import FlowNetwork, bipartite_graph, grid_graph, rmat_graph

# ----------------------------------------------------------------------
# Instance families (each: seed, heavy -> FlowNetwork)
# ----------------------------------------------------------------------


def _grid(seed: int, heavy: bool) -> FlowNetwork:
    rng = random.Random(seed)
    rows = rng.randint(9, 14) if heavy else rng.randint(3, 7)
    cols = rng.randint(12, 20) if heavy else rng.randint(4, 9)
    return grid_graph(
        rows,
        cols,
        capacity=rng.uniform(1.0, 4.0),
        seed=seed,
        capacity_jitter=rng.uniform(0.0, 0.5),
    )


def _rmat(seed: int, heavy: bool) -> FlowNetwork:
    rng = random.Random(seed)
    n = rng.randint(90, 140) if heavy else rng.randint(15, 45)
    m = rng.randint(4 * n, 6 * n) if heavy else rng.randint(3 * n, 5 * n)
    return rmat_graph(n, m, seed=seed)


def _bipartite(seed: int, heavy: bool) -> FlowNetwork:
    rng = random.Random(seed)
    left = rng.randint(14, 22) if heavy else rng.randint(4, 9)
    right = rng.randint(14, 22) if heavy else rng.randint(4, 9)
    return bipartite_graph(
        left, right, seed=seed, connectivity=rng.uniform(0.3, 0.7)
    )


def _zero_capacity(seed: int, heavy: bool) -> FlowNetwork:
    """Random instance with ~25% of its edges zeroed out (live tombstones)."""
    rng = random.Random(seed)
    network = _rmat(seed, heavy)
    for index in rng.sample(range(network.num_edges), network.num_edges // 4):
        network.set_capacity(index, 0.0)
    return network


def _disconnected(seed: int, heavy: bool) -> FlowNetwork:
    """Source and sink in different components (max flow exactly 0)."""
    rng = random.Random(seed)
    network = FlowNetwork()
    for i in range(rng.randint(2, 5)):
        network.add_edge("s", f"a{i}", rng.uniform(0.5, 5.0))
        if i and rng.random() < 0.7:
            network.add_edge(f"a{i}", f"a{i - 1}", rng.uniform(0.5, 5.0))
    for j in range(rng.randint(2, 5)):
        network.add_edge(f"b{j}", "t", rng.uniform(0.5, 5.0))
        if j and rng.random() < 0.7:
            network.add_edge(f"b{j - 1}", f"b{j}", rng.uniform(0.5, 5.0))
    return network


def _parallel_edges(seed: int, heavy: bool) -> FlowNetwork:
    """Multigraph: every chosen vertex pair carries 2-3 parallel edges."""
    rng = random.Random(seed)
    network = FlowNetwork()
    vertices = ["s", "u", "v", "w", "x", "t"]
    pairs = [
        (a, b) for a in vertices for b in vertices if a != b and b != "s" and a != "t"
    ]
    for tail, head in rng.sample(pairs, rng.randint(6, len(pairs))):
        for _ in range(rng.randint(2, 3)):
            network.add_edge(tail, head, round(rng.uniform(0.25, 4.0), 3))
    if not network.has_edge("s", "u"):
        network.add_edge("s", "u", 1.5)
    if not network.has_edge("x", "t"):
        network.add_edge("x", "t", 1.5)
    return network


def _single_edge(seed: int, heavy: bool) -> FlowNetwork:
    rng = random.Random(seed)
    network = FlowNetwork()
    network.add_edge("s", "t", rng.choice([0.0, 1e-9, 4.5, 7, 2.0**40 + 0.5]))
    return network


FAMILIES = {
    "grid": _grid,
    "rmat": _rmat,
    "bipartite": _bipartite,
    "zero-capacity": _zero_capacity,
    "disconnected": _disconnected,
    "parallel-edges": _parallel_edges,
    "single-edge": _single_edge,
}

#: Families whose heavy variants are worth the --runslow budget.
HEAVY_FAMILIES = ("grid", "rmat", "bipartite", "zero-capacity")


def _assert_kernel_conforms(network: FlowNetwork) -> None:
    """The full differential contract on one instance."""
    kernel = KernelDinic().solve(network, validate=True)  # feasibility gate
    for reference in (Dinic(), PushRelabel()):
        expected = reference.solve(network)
        assert kernel.flow_value == pytest.approx(
            expected.flow_value, rel=1e-9, abs=1e-9
        ), (
            f"kernel {kernel.flow_value} vs {reference.name} "
            f"{expected.flow_value}"
        )
    # Maximality certificate: the cut of the kernel's *own* residual must
    # equal its flow value, and match the reference flow's cut.
    kernel_cut = min_cut_from_flow(network, kernel)
    reference_cut = min_cut_from_flow(network, Dinic().solve(network))
    assert kernel_cut.cut_value == pytest.approx(
        kernel.flow_value, rel=1e-9, abs=1e-9
    ), "kernel flow is not maximum: its residual cut exceeds its value"
    assert kernel_cut.cut_value == pytest.approx(
        reference_cut.cut_value, rel=1e-9, abs=1e-9
    )


# ----------------------------------------------------------------------
# The fuzz gate
# ----------------------------------------------------------------------


@pytest.mark.parametrize("trial", range(3))
@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_kernel_matches_references(family, trial):
    seed = derive_seed("kernel-fuzz", family, trial)
    _assert_kernel_conforms(FAMILIES[family](seed, heavy=False))


@pytest.mark.slow
@pytest.mark.parametrize("trial", range(2))
@pytest.mark.parametrize("family", HEAVY_FAMILIES)
def test_kernel_matches_references_heavy(family, trial):
    seed = derive_seed("kernel-fuzz-heavy", family, trial)
    _assert_kernel_conforms(FAMILIES[family](seed, heavy=True))


# ----------------------------------------------------------------------
# Dtype-promotion / INFINITY guards (the flat-array-only hazards)
# ----------------------------------------------------------------------


class TestFlatArrayDtypes:
    def test_int_capacities_promote_without_truncation(self):
        # All-int capacities with a fractional max flow: an int-dtype
        # residual array would round 2.5 down to 2.
        network = FlowNetwork()
        network.add_edge("s", "a", 3)
        network.add_edge("a", "t", 2.5)
        network.add_edge("s", "t", 4)
        flat = FlatResidual.from_network(network)
        assert flat.residual.dtype == np.float64
        result = KernelDinic().solve(network, validate=True)
        assert result.flow_value == pytest.approx(6.5, abs=1e-12)

    def test_mixed_int_float_fuzz_agrees_with_reference(self):
        rng = random.Random(derive_seed("kernel-dtype-fuzz"))
        network = rmat_graph(25, 90, seed=derive_seed("kernel-dtype-net"))
        for edge in network.edges():
            if rng.random() < 0.5:  # make half the capacities Python ints
                network.set_capacity(edge.index, int(edge.capacity) + 1)
        _assert_kernel_conforms(network)

    def test_infinity_capacity_survives_round_trip(self):
        network = FlowNetwork()
        network.add_edge("s", "a", 3.0)
        network.add_edge("a", "b", INFINITY)
        network.add_edge("b", "t", 1.75)
        flat = FlatResidual.from_network(network)
        assert np.isinf(flat.residual).any()
        result = KernelDinic().solve(network, validate=True)
        assert result.flow_value == pytest.approx(1.75, abs=1e-12)
        # The uncapacitated arc must still be uncapacitated afterwards.
        assert np.isinf(flat.residual).any() or np.isinf(
            FlatResidual.from_network(network).residual
        ).any()


# ----------------------------------------------------------------------
# Default routing / escape hatch
# ----------------------------------------------------------------------


class TestKernelSelection:
    def test_dinic_default_routes_to_kernel(self, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)
        assert kernel_enabled()
        assert resolve_default_algorithm("dinic") == "kernel-dinic"
        # Explicit names always mean exactly that implementation.
        assert resolve_default_algorithm("push-relabel") == "push-relabel"
        assert resolve_default_algorithm("kernel-dinic") == "kernel-dinic"

    @pytest.mark.parametrize("value", ["0", "off", "reference", "FALSE", " no "])
    def test_escape_hatch_reverts_to_reference(self, monkeypatch, value):
        monkeypatch.setenv(KERNEL_ENV_VAR, value)
        assert not kernel_enabled()
        assert resolve_default_algorithm("dinic") == "dinic"

    def test_backend_and_registry_expose_kernel(self):
        from repro.flows.registry import ALGORITHMS, solve_max_flow
        from repro.service import available_backends

        assert "kernel-dinic" in ALGORITHMS
        assert "kernel-dinic" in available_backends()
        network = FlowNetwork()
        network.add_edge("s", "t", 2.25)
        result = solve_max_flow(network, algorithm="kernel-dinic", validate=True)
        assert result.algorithm == "kernel-dinic"
        assert result.flow_value == 2.25
