"""Windowed aggregation gates: deltas, rates, quantiles, ring behaviour.

Everything runs on an injected clock so windows are exact: the tests step
time explicitly and assert the deltas the SLO layer will compute from the
same machinery.
"""

from __future__ import annotations

import pytest

from repro.obs import MetricsRegistry, WindowedAggregator


def stepped_clock(start: float = 0.0):
    state = {"now": start}

    def clock() -> float:
        return state["now"]

    def advance(dt: float) -> None:
        state["now"] += dt

    return clock, advance


class TestWindowDelta:
    def test_counter_delta_and_rate(self):
        reg = MetricsRegistry()
        clock, advance = stepped_clock()
        agg = WindowedAggregator(registry=reg, clock=clock)
        reg.counter("service.solves", 10, backend="dinic")
        agg.sample()
        advance(50.0)
        reg.counter("service.solves", 5, backend="dinic")
        window = agg.window(100.0)
        assert window.counter_delta("service.solves", backend="dinic") == 5.0
        # The ring is younger than the window, so the rate denominator is
        # the actual observed span (50 s), not the full window length.
        assert window.rate("service.solves", backend="dinic") == pytest.approx(0.1)

    def test_label_sets_sum_across_extra_labels(self):
        reg = MetricsRegistry()
        clock, _ = stepped_clock()
        agg = WindowedAggregator(registry=reg, clock=clock)
        agg.sample()
        reg.counter("service.solve_errors", 2, backend="a", error_type="x")
        reg.counter("service.solve_errors", 3, backend="a", error_type="y")
        reg.counter("service.solve_errors", 7, backend="b", error_type="x")
        window = agg.window(60.0)
        assert window.counter_delta("service.solve_errors", backend="a") == 5.0
        assert window.counter_delta("service.solve_errors") == 12.0

    def test_label_values_enumerates_backends(self):
        reg = MetricsRegistry()
        clock, _ = stepped_clock()
        agg = WindowedAggregator(registry=reg, clock=clock)
        reg.counter("service.solves", backend="b")
        reg.counter("service.solves", backend="a")
        window = agg.window(60.0)
        assert window.label_values("service.solves", "backend") == ["a", "b"]

    def test_histogram_delta_subtracts_baseline(self):
        reg = MetricsRegistry(latency_buckets_s=(0.1, 1.0))
        clock, advance = stepped_clock()
        agg = WindowedAggregator(registry=reg, clock=clock)
        reg.observe("lat", 0.05, backend="d")
        agg.sample()
        advance(10.0)
        reg.observe("lat", 0.5, backend="d")
        reg.observe("lat", 5.0, backend="d")
        hist = agg.window(60.0).histogram_delta("lat", backend="d")
        assert hist["count"] == 2
        assert hist["counts"] == [0, 1, 1]
        assert hist["sum"] == pytest.approx(5.5)

    def test_quantile_interpolates_within_bucket(self):
        reg = MetricsRegistry(latency_buckets_s=(1.0, 2.0, 4.0))
        clock, _ = stepped_clock()
        agg = WindowedAggregator(registry=reg, clock=clock)
        agg.sample()
        for value in (0.5, 1.5, 1.5, 3.0):
            reg.observe("lat", value)
        window = agg.window(60.0)
        # Median rank 2.0 lands in the (1.0, 2.0] bucket.
        assert 1.0 <= window.quantile("lat", 0.5) <= 2.0
        assert window.quantile("lat", 0.0) == pytest.approx(0.5, abs=0.5)

    def test_quantile_overflow_reports_top_finite_bound(self):
        reg = MetricsRegistry(latency_buckets_s=(1.0, 2.0))
        clock, _ = stepped_clock()
        agg = WindowedAggregator(registry=reg, clock=clock)
        agg.sample()
        reg.observe("lat", 100.0)
        assert agg.window(60.0).quantile("lat", 0.99) == 2.0

    def test_quantile_none_when_window_empty(self):
        reg = MetricsRegistry()
        clock, _ = stepped_clock()
        agg = WindowedAggregator(registry=reg, clock=clock)
        assert agg.window(60.0).quantile("lat", 0.5) is None

    def test_fraction_above_is_conservative_on_straddling_buckets(self):
        reg = MetricsRegistry(latency_buckets_s=(1.0, 2.0))
        clock, _ = stepped_clock()
        agg = WindowedAggregator(registry=reg, clock=clock)
        agg.sample()
        for value in (0.5, 1.5, 3.0, 3.0):
            reg.observe("lat", value)
        window = agg.window(60.0)
        # Threshold 1.5 sits inside the (1.0, 2.0] bucket: that bucket's
        # observation counts as above.
        assert window.fraction_above("lat", 1.5) == pytest.approx(0.75)
        assert window.fraction_above("lat", 2.0) == pytest.approx(0.5)


class TestWindowedAggregator:
    def test_baseline_is_newest_sample_at_or_before_cutoff(self):
        reg = MetricsRegistry()
        clock, advance = stepped_clock()
        agg = WindowedAggregator(registry=reg, clock=clock)
        for growth in (1, 10, 100):
            reg.counter("n", growth)
            agg.sample()
            advance(30.0)
        # t=90 now; a 60 s window must baseline at the t=30 sample
        # (counter value 11), not the t=0 or t=60 ones.
        window = agg.window(60.0)
        assert window.counter_delta("n") == 100.0

    def test_empty_ring_degrades_to_since_process_start(self):
        reg = MetricsRegistry()
        clock, _ = stepped_clock()
        agg = WindowedAggregator(registry=reg, clock=clock)
        reg.counter("n", 5)
        window = agg.window(60.0)
        assert window.counter_delta("n") == 5.0
        assert window.elapsed_s == 60.0

    def test_ring_is_bounded(self):
        reg = MetricsRegistry()
        clock, advance = stepped_clock()
        agg = WindowedAggregator(registry=reg, clock=clock, maxlen=4)
        for _ in range(10):
            agg.sample()
            advance(1.0)
        assert len(agg) == 4

    def test_min_interval_coalesces_bursts(self):
        reg = MetricsRegistry()
        clock, advance = stepped_clock()
        agg = WindowedAggregator(
            registry=reg, clock=clock, min_interval_s=5.0
        )
        agg.sample()
        advance(1.0)
        agg.sample()  # coalesced into the previous slot
        assert len(agg) == 1
        advance(10.0)
        agg.sample()
        assert len(agg) == 2

    def test_invalid_parameters_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            WindowedAggregator(registry=reg, maxlen=0)
        clock, _ = stepped_clock()
        agg = WindowedAggregator(registry=reg, clock=clock)
        with pytest.raises(ValueError):
            agg.window(0.0)
