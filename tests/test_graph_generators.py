"""Tests for the synthetic graph generators (R-MAT and structured graphs)."""

from __future__ import annotations

import pytest

from repro.errors import InvalidGraphError
from repro.graph import (
    RMATGenerator,
    bipartite_graph,
    dense_random_graph,
    grid_graph,
    layered_graph,
    paper_example_graph,
    parallel_paths_graph,
    path_graph,
    quasistatic_example_graph,
    rmat_graph,
    sparse_random_graph,
)
from repro.graph.analysis import is_source_sink_connected
from repro.flows import dinic


class TestRMAT:
    def test_requested_size_is_met(self):
        g = rmat_graph(50, 200, seed=1)
        assert g.num_vertices == 50
        assert g.num_edges >= 200

    def test_deterministic_for_seed(self):
        a = rmat_graph(40, 150, seed=42)
        b = rmat_graph(40, 150, seed=42)
        assert [(e.tail, e.head, e.capacity) for e in a.edges()] == [
            (e.tail, e.head, e.capacity) for e in b.edges()
        ]

    def test_different_seeds_differ(self):
        a = rmat_graph(40, 150, seed=1)
        b = rmat_graph(40, 150, seed=2)
        assert [(e.tail, e.head) for e in a.edges()] != [(e.tail, e.head) for e in b.edges()]

    def test_capacities_within_range(self):
        g = rmat_graph(40, 150, seed=3, min_capacity=5, max_capacity=9)
        assert all(5 <= e.capacity <= 9 for e in g.edges())

    def test_integer_capacities_by_default(self):
        g = rmat_graph(30, 90, seed=4)
        assert all(float(e.capacity).is_integer() for e in g.edges())

    def test_st_connected(self):
        for seed in range(5):
            assert is_source_sink_connected(rmat_graph(30, 60, seed=seed))

    def test_no_duplicate_edges_by_default(self):
        g = rmat_graph(30, 120, seed=5)
        pairs = [(e.tail, e.head) for e in g.edges()]
        assert len(pairs) == len(set(pairs))

    def test_invalid_probabilities_rejected(self):
        with pytest.raises(InvalidGraphError):
            RMATGenerator(a=0.5, b=0.5, c=0.5, d=0.5)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(InvalidGraphError):
            rmat_graph(1, 5)
        with pytest.raises(InvalidGraphError):
            rmat_graph(10, 0)

    def test_dense_and_sparse_regimes(self):
        dense = dense_random_graph(100, density=0.05, seed=1)
        sparse = sparse_random_graph(100, average_degree=4.0, seed=1)
        assert dense.num_edges >= 0.05 * 100 * 100 * 0.8
        assert sparse.num_edges <= 6 * 100
        assert dense.num_edges > sparse.num_edges
        # The dense regime scales quadratically, the sparse one linearly.
        dense_big = dense_random_graph(200, density=0.05, seed=1)
        sparse_big = sparse_random_graph(200, average_degree=4.0, seed=1)
        assert dense_big.num_edges / dense.num_edges > 3.0
        assert sparse_big.num_edges / sparse.num_edges < 3.0


class TestStructuredGenerators:
    def test_path_graph_flow_is_min_capacity(self):
        g = path_graph(3, [4.0, 2.0, 5.0, 3.0])
        assert dinic(g).flow_value == pytest.approx(2.0)

    def test_parallel_paths_flow(self):
        g = parallel_paths_graph(4, path_length=3, capacity=2.0)
        assert dinic(g).flow_value == pytest.approx(8.0)

    def test_grid_graph_structure(self):
        g = grid_graph(3, 4, capacity=1.0)
        assert is_source_sink_connected(g)
        assert g.out_degree("s") == 3
        assert g.in_degree("t") == 3

    def test_grid_graph_maxflow_bounded_by_rows(self):
        g = grid_graph(3, 4, capacity=1.0)
        assert dinic(g).flow_value == pytest.approx(3.0)

    def test_layered_graph_connectivity(self):
        g = layered_graph(4, 5, seed=1)
        assert is_source_sink_connected(g)
        assert dinic(g).flow_value > 0

    def test_bipartite_graph(self):
        g = bipartite_graph(5, 5, connectivity=1.0, seed=0)
        assert dinic(g).flow_value == pytest.approx(5.0)

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: grid_graph(0, 3),
            lambda: layered_graph(0, 3),
            lambda: bipartite_graph(0, 3),
            lambda: path_graph(-1),
            lambda: parallel_paths_graph(0),
        ],
    )
    def test_invalid_arguments(self, factory):
        with pytest.raises(InvalidGraphError):
            factory()


class TestPaperExamples:
    def test_fig5_example(self):
        g = paper_example_graph()
        assert g.num_edges == 5
        assert [e.capacity for e in g.edges()] == [3.0, 2.0, 1.0, 1.0, 2.0]
        assert dinic(g).flow_value == pytest.approx(2.0)

    def test_fig15_example(self):
        g = quasistatic_example_graph()
        assert g.num_edges == 3
        assert dinic(g).flow_value == pytest.approx(4.0)
        result = dinic(g)
        # The optimum is x1 = 4, x2 = 1, x3 = 3.
        assert result.edge_flows[0] == pytest.approx(4.0)
        assert result.edge_flows[1] == pytest.approx(1.0)
        assert result.edge_flows[2] == pytest.approx(3.0)
