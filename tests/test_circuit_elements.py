"""Tests for circuit elements, waveforms and the netlist container."""

from __future__ import annotations

import pytest

from repro.circuit import (
    Capacitor,
    Circuit,
    ConstantWaveform,
    CurrentSource,
    Diode,
    GROUND,
    Memristor,
    MemristorState,
    OpAmp,
    PiecewiseLinearWaveform,
    RampWaveform,
    Resistor,
    StepWaveform,
    Switch,
    VCVS,
    VoltageSource,
    Waveform,
    settling_time,
)
from repro.config import MemristorParameters
from repro.errors import NetlistError, ProgrammingError, SimulationError


class TestWaveforms:
    def test_constant(self):
        wave = ConstantWaveform(2.5)
        assert wave(0.0) == 2.5 and wave(1e9) == 2.5
        assert wave.dc_value == 2.5

    def test_step(self):
        wave = StepWaveform(final=3.0, initial=1.0, delay=1e-9, rise_time=1e-9)
        assert wave(0.0) == 1.0
        assert wave(1.5e-9) == pytest.approx(2.0)
        assert wave(5e-9) == 3.0
        assert wave.dc_value == 3.0

    def test_ramp(self):
        wave = RampWaveform(final=10.0, duration=10.0)
        assert wave(5.0) == pytest.approx(5.0)
        assert wave(20.0) == 10.0

    def test_pwl(self):
        wave = PiecewiseLinearWaveform([(0.0, 0.0), (1.0, 2.0), (3.0, 2.0)])
        assert wave(0.5) == pytest.approx(1.0)
        assert wave(2.0) == pytest.approx(2.0)
        assert wave(10.0) == 2.0
        with pytest.raises(NetlistError):
            PiecewiseLinearWaveform([(0.0, 1.0), (0.0, 2.0)])

    def test_waveform_container_and_settling(self):
        import numpy as np

        times = np.linspace(0, 1, 101)
        values = 1.0 - np.exp(-times / 0.1)
        wave = Waveform(times, values, name="rc")
        assert wave.final_value == pytest.approx(1.0, abs=1e-3)
        # 1 % band around the final sample (~0.99995) is entered at about
        # -tau * ln(0.01) ~ 0.46 s.
        assert 0.40 < wave.settling_time(1e-2) < 0.55
        assert wave.value_at(0.1) == pytest.approx(1 - 2.718281828 ** -1, abs=1e-2)
        assert settling_time(times, np.ones_like(times)) == 0.0

    def test_settling_time_unsettled_is_infinite(self):
        import numpy as np

        times = np.linspace(0, 1, 50)
        values = times  # keeps growing; last sample defines the reference
        assert settling_time(times, values, tolerance=1e-6, reference=2.0) == float("inf")

    def test_waveform_validation(self):
        with pytest.raises(SimulationError):
            Waveform([0.0, 1.0], [1.0])


class TestElements:
    def test_resistor_rejects_zero(self):
        with pytest.raises(NetlistError):
            Resistor("R1", "a", "b", 0.0)

    def test_negative_resistor_flag(self):
        assert Resistor("R1", "a", "b", -100.0).is_negative
        assert not Resistor("R2", "a", "b", 100.0).is_negative

    def test_capacitor_rejects_nonpositive(self):
        with pytest.raises(NetlistError):
            Capacitor("C1", "a", "b", 0.0)

    def test_switch_resistance_depends_on_state(self):
        switch = Switch("S1", "a", "b", closed=False)
        open_resistance = switch.resistance
        switch.closed = True
        assert switch.resistance < open_resistance

    def test_diode_states(self):
        diode = Diode("D1", "a", "b")
        assert diode.should_conduct(1.0, 0.0)
        assert not diode.should_conduct(-0.5, 0.0)
        assert diode.conductance(True) > diode.conductance(False)

    def test_opamp_properties(self):
        amp = OpAmp("U1", "p", "m", "o")
        assert amp.open_loop_gain == 1e4
        assert amp.time_constant > 0
        assert amp.power_w == pytest.approx(500e-6)


class TestMemristor:
    def test_programming_with_pulses(self):
        device = Memristor("M1", "a", "b")
        assert device.state is MemristorState.HRS
        changed = device.apply_pulse(2.0, 20e-9)
        assert changed and device.is_on
        assert device.resistance == pytest.approx(10e3)
        changed = device.apply_pulse(-2.0, 20e-9)
        assert changed and not device.is_on

    def test_subthreshold_pulse_ignored(self):
        device = Memristor("M1", "a", "b")
        assert not device.apply_pulse(0.5, 20e-9)
        assert not device.apply_pulse(2.0, 1e-12)  # too short
        assert device.state is MemristorState.HRS

    def test_tuning_requires_lrs(self):
        device = Memristor("M1", "a", "b")
        with pytest.raises(ProgrammingError):
            device.tune(9000.0)
        device.apply_pulse(2.0, 20e-9)
        achieved = device.tune(9990.0)
        assert achieved == pytest.approx(9990.0, abs=device.parameters.tuning_resolution_ohm)

    def test_drift_moves_towards_hrs(self):
        device = Memristor(
            "M1", "a", "b", parameters=MemristorParameters(retention_drift_per_s=1e-3)
        )
        device.apply_pulse(2.0, 20e-9)
        before = device.resistance
        after = device.drift(1000.0)
        assert after > before


class TestCircuitContainer:
    def test_duplicate_names_rejected(self):
        circuit = Circuit()
        circuit.add(Resistor("R1", "a", GROUND, 100.0))
        with pytest.raises(NetlistError):
            circuit.add(Resistor("R1", "b", GROUND, 100.0))

    def test_validation_detects_floating_node(self):
        circuit = Circuit()
        circuit.add(VoltageSource("V1", "in", GROUND, 1.0))
        circuit.add(Resistor("R1", "in", "mid", 100.0))
        problems = circuit.validate()
        assert any("mid" in p for p in problems)

    def test_validation_passes_for_closed_circuit(self):
        circuit = Circuit()
        circuit.add(VoltageSource("V1", "in", GROUND, 1.0))
        circuit.add(Resistor("R1", "in", GROUND, 100.0))
        assert circuit.validate() == []

    def test_summary_and_lookup(self):
        circuit = Circuit("test")
        circuit.add(Resistor("R1", "a", GROUND, 100.0))
        circuit.add(Resistor("R2", "a", GROUND, 100.0))
        circuit.add(Capacitor("C1", "a", GROUND, 1e-12))
        assert circuit.summary() == {"Resistor": 2, "Capacitor": 1}
        assert circuit.element("C1").capacitance == 1e-12
        assert len(circuit.connected_elements("a")) == 3
        assert "R1" in circuit.to_spice()
