"""Tests for DIMACS I/O, graph analysis and transforms."""

from __future__ import annotations

import pytest

from repro.errors import InvalidGraphError
from repro.flows import dinic
from repro.graph import (
    FlowNetwork,
    from_edge_list,
    graph_statistics,
    is_source_sink_connected,
    merge_parallel_edges,
    paper_example_graph,
    prune_useless_vertices,
    read_dimacs,
    reachable_from,
    reaches,
    relabel_vertices,
    rmat_graph,
    scale_capacities,
    split_antiparallel_edges,
    to_edge_list,
    undirected_to_directed,
    upper_bound_flow,
    write_dimacs,
)


class TestDimacsIO:
    def test_round_trip(self, tmp_path):
        g = rmat_graph(25, 80, seed=9)
        path = tmp_path / "graph.dimacs"
        write_dimacs(g, path, comment="round trip test")
        loaded = read_dimacs(path)
        assert loaded.num_vertices == g.num_vertices
        assert loaded.num_edges == g.num_edges
        assert dinic(loaded).flow_value == pytest.approx(dinic(g).flow_value)

    def test_read_inline_text(self):
        text = "c tiny\np max 3 2\nn 1 s\nn 3 t\na 1 2 4\na 2 3 2\n"
        g = read_dimacs(text)
        assert g.num_vertices == 3
        assert dinic(g).flow_value == pytest.approx(2.0)

    @pytest.mark.parametrize(
        "text",
        [
            "n 1 s\nn 2 t\na 1 2 3\n",          # missing problem line
            "p max 2 1\na 1 2 3\n",              # missing terminals
            "p max 2 1\nn 1 s\nn 2 t\na 1 5 3\n",  # arc out of range
            "p max 2 1\nn 1 s\nn 2 q\na 1 2 3\n",  # bad node role
        ],
    )
    def test_malformed_inputs(self, text):
        with pytest.raises(InvalidGraphError):
            read_dimacs(text)

    def test_edge_list_round_trip(self):
        g = paper_example_graph()
        triples = to_edge_list(g)
        rebuilt = from_edge_list(triples, source="s", sink="t")
        assert dinic(rebuilt).flow_value == pytest.approx(2.0)


class TestAnalysis:
    def test_reachability(self):
        g = paper_example_graph()
        assert reachable_from(g, "s") == {"s", "n1", "n2", "n3", "t"}
        assert reaches(g, "t") == {"s", "n1", "n2", "n3", "t"}

    def test_prune_removes_dead_ends(self):
        g = paper_example_graph()
        g.add_edge("n1", "dead", 5.0)
        g.add_edge("isolated_a", "isolated_b", 3.0)
        pruned = prune_useless_vertices(g)
        assert not pruned.has_vertex("dead")
        assert not pruned.has_vertex("isolated_a")
        assert dinic(pruned).flow_value == pytest.approx(2.0)

    def test_upper_bound_flow(self):
        g = paper_example_graph()
        assert upper_bound_flow(g) == pytest.approx(3.0)
        assert dinic(g).flow_value <= upper_bound_flow(g)

    def test_statistics(self):
        g = paper_example_graph()
        stats = graph_statistics(g)
        assert stats.num_vertices == 5
        assert stats.num_edges == 5
        assert stats.max_capacity == 3.0
        assert stats.has_st_path
        assert stats.source_out_degree == 1
        assert stats.is_sparse()

    def test_connectivity_check(self):
        g = FlowNetwork()
        g.add_edge("s", "a", 1.0)
        assert not is_source_sink_connected(g)
        g.add_edge("a", "t", 1.0)
        assert is_source_sink_connected(g)


class TestTransforms:
    def test_undirected_to_directed_doubles_edges(self):
        g = undirected_to_directed([("s", "a", 2.0), ("a", "t", 3.0)])
        assert g.num_edges == 4
        assert dinic(g).flow_value == pytest.approx(2.0)

    def test_split_antiparallel(self):
        g = undirected_to_directed([("s", "a", 2.0), ("a", "t", 2.0)])
        split = split_antiparallel_edges(g)
        # No antiparallel pair remains.
        for edge in split.edges():
            assert not any(
                other.tail == edge.head and other.head == edge.tail
                for other in split.edges()
            )
        assert dinic(split).flow_value == pytest.approx(dinic(g).flow_value)

    def test_merge_parallel_edges(self):
        g = FlowNetwork()
        g.add_edge("s", "t", 1.0)
        g.add_edge("s", "t", 2.0)
        merged = merge_parallel_edges(g)
        assert merged.num_edges == 1
        assert merged.edges()[0].capacity == pytest.approx(3.0)

    def test_scale_capacities_scales_flow(self):
        g = paper_example_graph()
        scaled = scale_capacities(g, 2.5)
        assert dinic(scaled).flow_value == pytest.approx(5.0)
        with pytest.raises(InvalidGraphError):
            scale_capacities(g, 0.0)

    def test_relabel_vertices(self):
        g = paper_example_graph()
        relabeled = relabel_vertices(g, lambda v: f"v_{v}")
        assert relabeled.source == "v_s"
        assert dinic(relabeled).flow_value == pytest.approx(2.0)
        with pytest.raises(InvalidGraphError):
            relabel_vertices(g, lambda v: "same")
