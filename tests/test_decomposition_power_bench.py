"""Tests for dual decomposition (Section 6.4), the power model (Section 5.2)
and the benchmark harness."""

from __future__ import annotations

import math

import pytest

from repro.bench import (
    Fig10Runner,
    fig10_dense_suite,
    fig10_sparse_suite,
    format_series,
    format_table,
    relative,
)
from repro.bench.workloads import FIG10_VERTEX_COUNTS, Fig10Workload
from repro.decomposition import (
    DualDecompositionSolver,
    partition_with_overlap,
)
from repro.errors import DecompositionError, PowerBudgetError
from repro.flows import CpuCostModel, dinic, min_cut, push_relabel
from repro.graph import grid_graph, paper_example_graph, rmat_graph
from repro.power import PowerModel, compare_energy


class TestPartition:
    def test_overlap_partition_covers_graph(self):
        network = rmat_graph(30, 90, seed=3)
        partition = partition_with_overlap(network)
        assert partition.side_a | partition.side_b == set(network.vertices())
        assert network.source in partition.side_a
        assert network.sink in partition.side_b
        description = partition.describe()
        assert description["edges_a"] + description["edges_b"] >= network.num_edges

    def test_balance_validation(self):
        with pytest.raises(DecompositionError):
            partition_with_overlap(paper_example_graph(), balance=0.01)

    def test_overlap_edges_split_in_half(self):
        network = grid_graph(2, 4, capacity=2.0)
        partition = partition_with_overlap(network)
        for edge in partition.subproblem_a.edges():
            if edge.tail in partition.overlap and edge.head in partition.overlap:
                originals = network.find_edges(edge.tail, edge.head)
                assert edge.capacity == pytest.approx(originals[0].capacity / 2.0)


class TestDualDecomposition:
    @pytest.mark.parametrize("network_factory, name", [
        (lambda: grid_graph(3, 5, capacity=2.0, seed=3, capacity_jitter=0.3), "grid"),
        (lambda: rmat_graph(25, 70, seed=5), "rmat"),
        (lambda: paper_example_graph(), "paper"),
    ])
    def test_feasible_cut_upper_bounds_and_approximates_minimum(self, network_factory, name):
        network = network_factory()
        exact = min_cut(network).cut_value
        result = DualDecompositionSolver(max_iterations=50).solve(network)
        # The stitched cut is always a valid s-t cut, hence an upper bound on
        # the global minimum; the subgradient coordination keeps it within a
        # modest factor on these small instances (dual decomposition is an
        # approximation scheme, not an exact solver).
        assert result.cut_value >= exact - 1e-6
        assert result.cut_value <= exact * 1.8 + 1e-6
        assert network.source in result.partition
        assert network.sink not in result.partition

    def test_history_recorded(self):
        result = DualDecompositionSolver(max_iterations=10).solve(
            grid_graph(2, 4, capacity=1.0)
        )
        assert 1 <= result.iterations <= 10
        assert len(result.history) == result.iterations
        assert result.duality_gap >= -1e-6

    def test_invalid_solver_name(self):
        with pytest.raises(DecompositionError):
            DualDecompositionSolver(subproblem_solver="quantum")


class TestPowerModel:
    def test_paper_budget_numbers(self):
        """5 W supports ~1e4 edges and 150 W supports ~3e5 edges (Section 5.2)."""
        model = PowerModel()
        table = model.budget_table([5.0, 150.0])
        assert table[5.0] == pytest.approx(1e4, rel=0.01)
        assert table[150.0] == pytest.approx(3e5, rel=0.01)

    def test_estimate_formula(self):
        model = PowerModel()
        estimate = model.estimate({"edges": 1000, "vertices": 200})
        assert estimate.opamp_count == 1200
        assert estimate.total_power_w == pytest.approx(1200 * 500e-6)

    def test_estimate_from_network_and_compiled(self):
        network = paper_example_graph()
        model = PowerModel()
        from repro.analog import MaxFlowCircuitCompiler

        compiled = MaxFlowCircuitCompiler(quantize=False).compile(network)
        assert model.estimate(network).opamp_count == network.num_edges + network.num_vertices
        assert model.estimate(compiled).opamp_count == compiled.negative_resistor_count

    def test_budget_enforcement(self):
        model = PowerModel()
        with pytest.raises(PowerBudgetError):
            model.check_budget({"edges": 100000, "vertices": 0}, budget_w=5.0)
        with pytest.raises(PowerBudgetError):
            model.max_edges_for_budget(0.0)

    def test_energy_comparison(self):
        network = rmat_graph(30, 100, seed=2)
        cpu = CpuCostModel().estimate(push_relabel(network))
        power = PowerModel().estimate(network)
        comparison = compare_energy(power, convergence_time_s=1e-7, cpu_estimate=cpu)
        assert comparison.speedup > 1.0
        assert comparison.energy_efficiency > comparison.speedup * (
            comparison.analog_power_w / comparison.cpu_power_w
        ) * 0.99
        assert comparison.analog_energy_j > 0


class TestBenchHarness:
    def test_fig10_suites_cover_paper_sizes(self):
        dense = fig10_dense_suite()
        sparse = fig10_sparse_suite()
        assert [w.num_vertices for w in dense] == FIG10_VERTEX_COUNTS
        assert [w.num_vertices for w in sparse] == FIG10_VERTEX_COUNTS
        assert all(w.num_edges <= 8000 for w in dense)
        assert all(w.num_edges <= 8000 for w in sparse)
        # The dense regime grows quadratically, the sparse one linearly, so
        # the dense suite's largest instance is the densest of all.
        assert dense[-1].num_edges > sparse[-1].num_edges
        dense_growth = dense[-1].num_edges / dense[0].num_edges
        sparse_growth = sparse[-1].num_edges / sparse[0].num_edges
        assert dense_growth > sparse_growth

    def test_scaled_suites_shrink(self):
        quick = fig10_dense_suite(scale=0.1)
        assert max(w.num_vertices for w in quick) <= 96
        assert all(w.generate().num_vertices == w.num_vertices for w in quick[:2])

    def test_fig10_runner_row(self):
        runner = Fig10Runner(transient_vertex_limit=0)  # estimator-only: fast
        row = runner.run_workload(Fig10Workload("t", "sparse", 24, 70, seed=3))
        assert row.exact_flow > 0
        assert row.relative_error < 0.15
        assert row.convergence_time_10g_s > 0
        assert row.convergence_time_50g_s < row.convergence_time_10g_s
        assert row.speedup_10g > 1.0
        assert row.convergence_source == "estimator"
        table = format_table([row.as_dict()], title="row")
        assert "speedup" in table

    def test_reporting_helpers(self):
        assert relative(1.1, 1.0) == pytest.approx(0.1)
        assert relative(0.0, 0.0) == 0.0
        assert math.isinf(relative(1.0, 0.0))
        table = format_table([{"a": 1, "b": 2.5}, {"a": 3}])
        assert "a" in table and "b" in table
        series = format_series([1, 2], {"y": [0.1, 0.2]}, x_label="n")
        assert "n" in series and "y" in series
        assert format_table([]) == "(no rows)"
