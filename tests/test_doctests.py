"""Run the documentation examples of the public-facing modules as tests.

The docstring examples in the batch service, the solver registry and the
analog solver are part of the documented API surface (README and ``docs/``
reference them), so they run under the tier-1 suite here.  ``make test``
additionally runs ``pytest --doctest-modules`` over the same modules, which
catches examples in any newly added docstrings.
"""

from __future__ import annotations

import doctest

import pytest

import repro.analog.solver
import repro.circuit.linsolve
import repro.circuit.nonlinear
import repro.circuit.stamps
import repro.flows.incremental
import repro.flows.registry
import repro.graph.updates
import repro.obs.export
import repro.obs.metrics
import repro.obs.windows
import repro.service.api
import repro.service.backends
import repro.service.batch
import repro.service.cache
import repro.service.streaming

DOCUMENTED_MODULES = [
    repro.analog.solver,
    repro.circuit.linsolve,
    repro.circuit.nonlinear,
    repro.circuit.stamps,
    repro.flows.incremental,
    repro.flows.registry,
    repro.graph.updates,
    repro.obs.export,
    repro.obs.metrics,
    repro.obs.windows,
    repro.service.api,
    repro.service.backends,
    repro.service.batch,
    repro.service.cache,
    repro.service.streaming,
]


@pytest.mark.parametrize("module", DOCUMENTED_MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(
        module,
        verbose=False,
        optionflags=doctest.NORMALIZE_WHITESPACE | doctest.IGNORE_EXCEPTION_DETAIL,
    )
    assert results.attempted > 0, f"{module.__name__} lost its doctests"
    assert results.failed == 0
