"""Sentinel gates for ``tools/bench_watch.py``.

Pins the metric-path extraction (wildcard expansion), the same-scale
baseline selection over BENCH histories, the verdict/exit-status
contract, and the CLI flag surface.  All judgments run on synthetic
records — the sentinel never times anything here.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

TOOLS = Path(__file__).resolve().parent.parent / "tools"


@pytest.fixture(scope="module")
def bench_watch():
    spec = importlib.util.spec_from_file_location(
        "bench_watch_under_test", TOOLS / "bench_watch.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        yield module
    finally:
        sys.modules.pop(spec.name, None)


def kernel_report(grid_ms: float, scale: float = 0.25) -> dict:
    return {
        "scale": scale,
        "repeats": 5,
        "classes": {
            "grid": {"kernel_ms": grid_ms, "dinic_ms": 10 * grid_ms},
            "rmat": {"kernel_ms": 8.0, "dinic_ms": 20.0},
        },
    }


class TestExtractMetrics:
    def test_wildcard_expands_over_classes(self, bench_watch):
        values = bench_watch.extract_metrics(
            kernel_report(450.0), ["classes.*.kernel_ms"]
        )
        assert values == {
            "classes.grid.kernel_ms": 450.0,
            "classes.rmat.kernel_ms": 8.0,
        }

    def test_literal_paths_and_missing_keys(self, bench_watch):
        report = {"overhead": {"resilient_ms": 4.5}}
        assert bench_watch.extract_metrics(
            report, ["overhead.resilient_ms", "overhead.absent_ms"]
        ) == {"overhead.resilient_ms": 4.5}

    def test_non_numeric_leaves_are_ignored(self, bench_watch):
        report = {"classes": {"grid": {"kernel_ms": "n/a", "certified": True}}}
        assert bench_watch.extract_metrics(
            report, ["classes.*.kernel_ms", "classes.*.certified"]
        ) == {}

    def test_every_watched_suite_is_registered_in_perf_gate(self, bench_watch):
        import perf_gate  # sys.path set up by bench_watch import

        assert set(bench_watch.TRACKED_METRICS) == set(perf_gate.SUITES)


class TestBaselineSelection:
    def test_history_entries_beat_flat_record(self, bench_watch):
        record = kernel_report(500.0)
        record["history"] = [kernel_report(400.0), kernel_report(500.0)]
        best = bench_watch.baseline_metrics(
            record, ["classes.*.kernel_ms"], scale=0.25
        )
        assert best["classes.grid.kernel_ms"] == 400.0  # best, not latest

    def test_other_scales_are_excluded(self, bench_watch):
        record = {"history": [kernel_report(1.0, scale=0.05),
                              kernel_report(400.0, scale=0.25)]}
        best = bench_watch.baseline_metrics(
            record, ["classes.*.kernel_ms"], scale=0.25
        )
        assert best["classes.grid.kernel_ms"] == 400.0

    def test_flat_record_is_the_trajectory_without_history(self, bench_watch):
        assert bench_watch.trajectory(kernel_report(450.0))[0]["scale"] == 0.25
        assert bench_watch.trajectory({}) == []


class TestJudgeSuite:
    def test_ok_within_tolerance(self, bench_watch):
        rows = bench_watch.judge_suite(
            "kernel", kernel_report(400.0), kernel_report(500.0), tolerance=1.6
        )
        grid = next(r for r in rows if r["metric"] == "classes.grid.kernel_ms")
        assert grid["status"] == "ok" and grid["ratio"] == 1.25

    def test_regression_beyond_tolerance(self, bench_watch):
        rows = bench_watch.judge_suite(
            "kernel", kernel_report(400.0), kernel_report(700.0), tolerance=1.6
        )
        grid = next(r for r in rows if r["metric"] == "classes.grid.kernel_ms")
        assert grid["status"] == "regressed"
        assert grid["baseline_ms"] == 400.0 and grid["candidate_ms"] == 700.0

    def test_no_same_scale_history_is_new_baseline(self, bench_watch):
        rows = bench_watch.judge_suite(
            "kernel", kernel_report(400.0, scale=0.25),
            kernel_report(1.0, scale=0.05), tolerance=1.6,
        )
        assert {r["status"] for r in rows} == {"new-baseline"}

    def test_empty_candidate_is_skipped(self, bench_watch):
        rows = bench_watch.judge_suite("kernel", {}, {"scale": 0.25}, 1.6)
        assert rows == [pytest.approx(rows[0])]  # single row
        assert rows[0]["status"] == "skipped"


class TestCli:
    def test_list_suites(self, bench_watch, capsys):
        assert bench_watch.main(["--list-suites"]) == 0
        out = capsys.readouterr().out
        for name in bench_watch.TRACKED_METRICS:
            assert name in out

    def test_unknown_suite_rejected(self, bench_watch, capsys):
        with pytest.raises(SystemExit) as excinfo:
            bench_watch.main(["--suite", "nope"])
        assert excinfo.value.code != 0
        assert "unknown suite" in capsys.readouterr().err

    def test_tolerance_must_exceed_one(self, bench_watch, capsys):
        with pytest.raises(SystemExit):
            bench_watch.main(["--suite", "kernel", "--tolerance", "0.9"])

    def test_candidate_requires_single_suite(self, bench_watch, capsys, tmp_path):
        candidate = tmp_path / "c.json"
        candidate.write_text("{}")
        with pytest.raises(SystemExit):
            bench_watch.main(["--suite", "all", "--candidate", str(candidate)])

    def test_candidate_judgement_sets_exit_status(self, bench_watch, tmp_path,
                                                  capsys, monkeypatch):
        committed = kernel_report(400.0)
        monkeypatch.setattr(
            bench_watch.perf_gate, "_load_existing", lambda path: committed
        )
        good = tmp_path / "good.json"
        good.write_text(json.dumps(kernel_report(410.0)))
        assert bench_watch.main(
            ["--suite", "kernel", "--candidate", str(good)]
        ) == 0
        assert "OK" in capsys.readouterr().out
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(kernel_report(4000.0)))
        assert bench_watch.main(
            ["--suite", "kernel", "--candidate", str(bad)]
        ) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_json_output_is_machine_readable(self, bench_watch, tmp_path,
                                             capsys, monkeypatch):
        monkeypatch.setattr(
            bench_watch.perf_gate, "_load_existing",
            lambda path: kernel_report(400.0),
        )
        candidate = tmp_path / "c.json"
        candidate.write_text(json.dumps(kernel_report(4000.0)))
        bench_watch.main(
            ["--suite", "kernel", "--candidate", str(candidate), "--json"]
        )
        document = json.loads(capsys.readouterr().out)
        assert document["regressions"] == 1
        statuses = {r["status"] for r in document["verdicts"]}
        assert "regressed" in statuses
