"""Tests for voltage-level quantization (Section 4.1, Fig. 8)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.analog import VoltageQuantizer
from repro.errors import QuantizationError
from repro.graph import paper_example_graph, rmat_graph


class TestFig8Example:
    def test_paper_levels_with_rounding(self):
        """Fig. 8: capacities (3, 2, 1) map to (1 V, 0.65 V, 0.35 V) at N=20."""
        quantizer = VoltageQuantizer(num_levels=20, vdd=1.0, mode="round")
        result = quantizer.quantize(paper_example_graph())
        assert result.voltage_of_edge[0] == pytest.approx(1.0)
        assert result.voltage_of_edge[1] == pytest.approx(0.65)
        assert result.voltage_of_edge[2] == pytest.approx(0.35)
        assert result.voltage_of_edge[3] == pytest.approx(0.35)
        assert result.voltage_of_edge[4] == pytest.approx(0.65)

    def test_floor_mode_matches_printed_formula(self):
        quantizer = VoltageQuantizer(num_levels=20, vdd=1.0, mode="floor")
        result = quantizer.quantize(paper_example_graph())
        # floor(2/3 * 20)/20 = 13/20 and floor(1/3 * 20)/20 = 6/20.
        assert result.voltage_of_edge[1] == pytest.approx(0.65)
        assert result.voltage_of_edge[2] == pytest.approx(0.30)

    def test_quantized_maxflow_of_example_is_2_1(self):
        """The quantized instance's exact max flow equals the paper's 2.1."""
        from repro.flows import dinic
        from repro.graph import FlowNetwork

        quantizer = VoltageQuantizer(num_levels=20, vdd=1.0, mode="round")
        g = paper_example_graph()
        result = quantizer.quantize(g)
        quantized = FlowNetwork(g.source, g.sink)
        for edge in g.edges():
            quantized.add_edge(edge.tail, edge.head, result.quantized_capacity(edge.index))
        assert dinic(quantized).flow_value == pytest.approx(2.1)


class TestQuantizerMechanics:
    def test_scale_round_trip(self):
        quantizer = VoltageQuantizer(num_levels=20, vdd=1.0)
        result = quantizer.quantize(paper_example_graph())
        assert result.scale == pytest.approx(3.0)
        assert result.to_flow(result.to_voltage(2.0)) == pytest.approx(2.0)

    def test_step_and_worst_case_error(self):
        quantizer = VoltageQuantizer(num_levels=20, vdd=1.0)
        result = quantizer.quantize(paper_example_graph())
        assert result.step_voltage == pytest.approx(0.05)
        assert result.worst_case_edge_error == pytest.approx(3.0 / 20)

    def test_max_capacity_maps_to_vdd(self):
        quantizer = VoltageQuantizer(num_levels=10, vdd=2.0)
        g = rmat_graph(20, 60, seed=1)
        result = quantizer.quantize(g)
        top_edges = [e.index for e in g.edges() if e.capacity == g.max_capacity()]
        for index in top_edges:
            assert result.voltage_of_edge[index] == pytest.approx(2.0)

    def test_zero_promotion_option(self):
        quantizer = VoltageQuantizer(num_levels=10, vdd=1.0, clamp_zero_to_first_level=True)
        assert quantizer.level_of(0.01, 100.0) == 1
        plain = VoltageQuantizer(num_levels=10, vdd=1.0)
        assert plain.level_of(0.01, 100.0) == 0

    def test_identity_mode_preserves_ratios(self):
        quantizer = VoltageQuantizer(num_levels=20, vdd=1.0)
        result = quantizer.identity(paper_example_graph())
        assert result.voltage_of_edge[1] == pytest.approx(2.0 / 3.0)
        assert result.scale == pytest.approx(3.0)

    def test_uncapacitated_edges_are_skipped(self):
        from repro.graph import FlowNetwork

        g = FlowNetwork()
        g.add_edge("s", "a", 4.0)
        g.add_edge("a", "t", float("inf"))
        result = VoltageQuantizer(num_levels=8).quantize(g)
        assert 0 in result.voltage_of_edge
        assert 1 not in result.voltage_of_edge

    @pytest.mark.parametrize("kwargs", [dict(num_levels=1), dict(vdd=0.0), dict(mode="bogus")])
    def test_invalid_configuration(self, kwargs):
        with pytest.raises(QuantizationError):
            VoltageQuantizer(**kwargs)

    def test_levels_out_of_range_rejected(self):
        quantizer = VoltageQuantizer(num_levels=8)
        with pytest.raises(QuantizationError):
            quantizer.voltage_of_level(9)
        with pytest.raises(QuantizationError):
            quantizer.level_of(-1.0, 10.0)


class TestQuantizationProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        capacity=st.floats(min_value=0.0, max_value=100.0),
        levels=st.integers(min_value=2, max_value=128),
    )
    def test_per_edge_error_bounded_by_one_step(self, capacity, levels):
        quantizer = VoltageQuantizer(num_levels=levels, vdd=1.0, mode="round")
        max_capacity = 100.0
        level = quantizer.level_of(capacity, max_capacity)
        quantized = quantizer.voltage_of_level(level) * max_capacity / 1.0
        assert abs(quantized - capacity) <= max_capacity / levels + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(levels=st.integers(min_value=2, max_value=64), seed=st.integers(0, 1000))
    def test_quantized_instance_error_shrinks_with_levels(self, levels, seed):
        """Quantizing with more levels never increases the worst-case bound."""
        g = rmat_graph(15, 40, seed=seed)
        coarse = VoltageQuantizer(num_levels=levels).quantize(g)
        fine = VoltageQuantizer(num_levels=levels * 2).quantize(g)
        assert fine.worst_case_edge_error <= coarse.worst_case_edge_error + 1e-12
