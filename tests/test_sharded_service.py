"""Tests for the N-way shard coordinator and the sharded solving service."""

from __future__ import annotations

import pytest

from repro.decomposition import DualDecompositionSolver
from repro.errors import DecompositionError
from repro.flows import min_cut
from repro.graph import grid_graph, paper_example_graph, rmat_graph
from repro.service import ShardedSolveService
from repro.shard import ShardCoordinator, ShardExecutor, partition_multiway


EQUIVALENCE_CASES = [
    ("paper", lambda: paper_example_graph()),
    ("grid-a", lambda: grid_graph(3, 5, capacity=2.0, seed=3, capacity_jitter=0.3)),
    ("grid-b", lambda: grid_graph(5, 9, capacity=2.0, seed=11, capacity_jitter=0.3)),
    ("rmat-a", lambda: rmat_graph(25, 70, seed=5)),
    ("rmat-b", lambda: rmat_graph(40, 120, seed=9)),
    ("rmat-c", lambda: rmat_graph(60, 180, seed=7)),
]


class TestRandomizedEquivalence:
    """Acceptance: sharded == Dinic cold on converged runs, bounds bracket."""

    @pytest.mark.parametrize("name, factory", EQUIVALENCE_CASES)
    @pytest.mark.parametrize("num_shards", [2, 3, 4])
    def test_converged_cut_matches_exact_and_bounds_bracket(
        self, name, factory, num_shards
    ):
        network = factory()
        if num_shards > max(2, network.num_vertices - 2):
            pytest.skip("more shards than interior vertices")
        exact = min_cut(network).cut_value
        outcome = ShardCoordinator(num_shards=num_shards, max_iterations=100).solve(
            network, executor="serial"
        )
        # The dual lower bound and the stitched upper bound must bracket the
        # exact optimum on every iteration, converged or not.
        for dual, feasible, _ in outcome.history:
            assert dual <= exact + 1e-9
            assert feasible >= exact - 1e-9
        assert outcome.dual_value <= exact + 1e-9
        assert outcome.cut_value >= exact - 1e-9
        if outcome.converged:
            assert outcome.cut_value == pytest.approx(exact, abs=1e-9)
            assert network.cut_capacity(outcome.partition) == pytest.approx(
                outcome.cut_value
            )

    @pytest.mark.parametrize("num_shards", [2, 3])
    def test_executors_agree(self, num_shards):
        network = grid_graph(3, 6, capacity=2.0, seed=5, capacity_jitter=0.2)
        results = {}
        for executor in ("serial", "thread", "process"):
            outcome = ShardCoordinator(
                num_shards=num_shards, max_iterations=60
            ).solve(network, executor=executor, max_workers=2)
            results[executor] = outcome.cut_value
        assert results["serial"] == pytest.approx(results["thread"], abs=1e-9)
        assert results["serial"] == pytest.approx(results["process"], abs=1e-9)

    def test_warm_and_cold_shard_solves_agree(self):
        network = grid_graph(4, 8, capacity=2.0, seed=7, capacity_jitter=0.3)
        warm = ShardCoordinator(num_shards=3, max_iterations=60).solve(
            network, executor="serial", warm=True
        )
        cold = ShardCoordinator(num_shards=3, max_iterations=60).solve(
            network, executor="serial", warm=False
        )
        assert warm.cut_value == pytest.approx(cold.cut_value, abs=1e-9)
        assert warm.iterations == cold.iterations

    @pytest.mark.parametrize("step_rule", ["harmonic", "polyak"])
    def test_step_rules_keep_bounds_valid(self, step_rule):
        network = grid_graph(3, 6, capacity=2.0, seed=2, capacity_jitter=0.2)
        exact = min_cut(network).cut_value
        outcome = ShardCoordinator(
            num_shards=3, max_iterations=40, step_rule=step_rule
        ).solve(network, executor="serial")
        for dual, feasible, _ in outcome.history:
            assert dual <= exact + 1e-9
            assert feasible >= exact - 1e-9

    def test_analog_backend_agrees_to_substrate_tolerance(self):
        from repro.analog.solver import AnalogMaxFlowSolver
        from repro.config import SubstrateParameters

        network = grid_graph(3, 6, capacity=4.0, seed=5, capacity_jitter=0.2)
        exact = min_cut(network).cut_value
        # The objective drive must exceed the max-flow scale (the Section
        # 6.5 finite-drive caveat) or the shard values are badly biased.
        solver = AnalogMaxFlowSolver(
            quantize=False, parameters=SubstrateParameters(vflow_v=64.0)
        )
        outcome = ShardCoordinator(num_shards=2, max_iterations=30).solve(
            network, backend="analog", executor="serial", analog_solver=solver
        )
        # Analog shard values carry finite-drive/bleed error, so the cut is
        # substrate-accurate rather than exact (cf. docs/architecture.md).
        assert outcome.cut_value == pytest.approx(exact, rel=0.05)
        # Warm re-solves: every shard solved once per iteration but compiled
        # at most once.
        for row in outcome.shard_stats:
            assert row["solves"] == outcome.iterations
            assert row["warm_solves"] >= row["solves"] - 1


class TestShardExecutor:
    def test_per_shard_backends(self):
        network = grid_graph(3, 6, capacity=2.0, seed=4, capacity_jitter=0.2)
        partition = partition_multiway(network, 2)
        with ShardExecutor(
            partition, backend=["dinic", "push-relabel"], executor="serial"
        ) as executor:
            solves = executor.solve_iteration([{}, {}])
        assert [s.shard for s in solves] == [0, 1]
        stats = executor.shard_stats()
        assert [row["backend"] for row in stats] == ["dinic", "push-relabel"]

    def test_unknown_backend_rejected(self):
        partition = partition_multiway(paper_example_graph(), 2)
        with pytest.raises(DecompositionError):
            ShardExecutor(partition, backend="quantum")

    def test_backend_count_mismatch_rejected(self):
        partition = partition_multiway(paper_example_graph(), 2)
        with pytest.raises(DecompositionError):
            ShardExecutor(partition, backend=["dinic"])

    def test_analog_with_process_rejected(self):
        partition = partition_multiway(paper_example_graph(), 2)
        with pytest.raises(DecompositionError):
            ShardExecutor(partition, backend="analog", executor="process")

    def test_adaptive_drive_template_rejected(self):
        from repro.analog.solver import AnalogMaxFlowSolver

        partition = partition_multiway(paper_example_graph(), 2)
        adaptive = AnalogMaxFlowSolver(adaptive_drive=True)
        with pytest.raises(DecompositionError, match="adaptive_drive"):
            ShardExecutor(partition, backend="analog", analog_solver=adaptive)

    def test_multiplier_updates_are_capacity_edits(self):
        network = grid_graph(2, 5, capacity=2.0, seed=1, capacity_jitter=0.2)
        partition = partition_multiway(network, 2)
        with ShardExecutor(partition, backend="dinic", executor="serial") as ex:
            state = ex._states[0]
            vertex = next(iter(state.source_cost_edge))
            structural_before = state.mutable.structural_revision
            ex.solve_iteration([{vertex: 1.5}, {}])
            ex.solve_iteration([{vertex: -0.5}, {}])
            assert state.mutable.structural_revision == structural_before
            net = state.augmented
            assert net.edge(state.source_cost_edge[vertex]).capacity == 0.0
            assert net.edge(state.sink_cost_edge[vertex]).capacity == 0.5


class TestShardedSolveService:
    def test_solve_returns_result_and_report(self):
        network = grid_graph(3, 6, capacity=2.0, seed=3, capacity_jitter=0.2)
        exact = min_cut(network).cut_value
        sharded = ShardedSolveService(executor="thread").solve(
            network, shards=3, tag="unit", reference_value=exact
        )
        assert sharded.result.ok
        assert sharded.result.tag == "unit"
        assert sharded.result.backend == "sharded:dinic"
        assert sharded.flow_value == sharded.result.flow_value
        if sharded.report.converged:
            assert sharded.result.relative_error == pytest.approx(0.0, abs=1e-9)
        report = sharded.report
        assert report.num_shards == 3
        assert len(report.shard_rows) == 3
        assert report.iterations == len(report.bound_trajectory)
        assert report.duality_gap >= -1e-9
        formatted = report.format(title="sharded")
        assert "cut" in formatted and "iterations" in formatted
        summary = report.summary()
        assert summary["shards"] == 3
        assert summary["executor"] == "thread"

    def test_invalid_configuration(self):
        with pytest.raises(DecompositionError):
            ShardedSolveService(executor="fleet")
        with pytest.raises(DecompositionError):
            ShardedSolveService(max_workers=0)
        network = paper_example_graph()
        with pytest.raises(DecompositionError):
            ShardedSolveService().solve(network, shards=1)

    def test_report_rows_feed_format_table(self):
        from repro.bench import format_table

        network = grid_graph(2, 5, capacity=1.0, seed=1)
        sharded = ShardedSolveService(executor="serial").solve(network, shards=2)
        table = format_table(sharded.report.as_rows())
        assert "shard" in table


class TestDualDecompositionDelegation:
    """The 2-way Section 6.4 API now runs on the N-way coordinator."""

    def test_matches_exact_on_converged_runs(self):
        network = grid_graph(3, 5, capacity=2.0, seed=3, capacity_jitter=0.3)
        exact = min_cut(network).cut_value
        result = DualDecompositionSolver(max_iterations=80).solve(network)
        assert result.cut_value >= exact - 1e-9
        if result.converged:
            assert result.cut_value == pytest.approx(exact, abs=1e-9)
        assert len(result.history) == result.iterations
        assert result.duality_gap >= -1e-9

    def test_balance_forwarded_to_partitioner(self):
        network = grid_graph(3, 8, capacity=1.0, seed=2)
        result = DualDecompositionSolver(max_iterations=20, balance=0.3).solve(network)
        assert result.cut_value > 0

    def test_invalid_arguments_still_rejected(self):
        with pytest.raises(DecompositionError):
            DualDecompositionSolver(subproblem_solver="quantum")
        with pytest.raises(DecompositionError):
            DualDecompositionSolver(balance=0.01)
