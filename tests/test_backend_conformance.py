"""The cross-backend conformance gate.

Four independent solving paths grew up in this repo — classical registry
algorithms, the analog pipeline, the sharded service and streaming
sessions — each previously checked only inside its own test file.  This is
the single shared gate: every path must agree with the exact Dinic
reference on one randomized + degenerate instance corpus
(``tests/conformance.py``) to its backend tolerance, and every problem
reduction must solve correctly (certificates passing) through a classical,
the analog and the sharded backend.

Seeds derive from ``REPRO_TEST_SEED``; heavy randomized cases are marked
``slow`` (run with ``--runslow`` / ``make test-conformance``).
"""

from __future__ import annotations

import pytest

import conformance
from seeding import derive_seed

from repro.flows.registry import ALGORITHMS
from repro.problems import (
    BipartiteMatching,
    DisjointPaths,
    ImageSegmentation,
    ProjectSelection,
    solve_problem,
)
from repro.service import ProblemSolveService

CORPUS = conformance.build_corpus()
HEAVY_CORPUS = conformance.build_heavy_corpus()

ALL_INSTANCES = [pytest.param(inst, id=inst.name) for inst in CORPUS] + [
    pytest.param(inst, id=inst.name, marks=pytest.mark.slow)
    for inst in HEAVY_CORPUS
]


# ---------------------------------------------------------------------------
# Max-flow value conformance, every solving path
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
@pytest.mark.parametrize("instance", ALL_INSTANCES)
def test_classical_algorithms_agree(instance, algorithm):
    value = conformance.classical_value(instance.network, algorithm)
    tolerance = conformance.TOLERANCES[
        "lp-reference" if algorithm == "lp-reference" else "classical"
    ]
    assert conformance.relative_gap(value, instance.reference_value) <= tolerance, (
        f"{algorithm} disagrees on {instance.name}: "
        f"{value} vs reference {instance.reference_value}"
    )


@pytest.mark.parametrize("instance", ALL_INSTANCES)
def test_analog_pipeline_agrees(instance):
    value = conformance.analog_value(instance.network)
    assert (
        conformance.relative_gap(value, instance.reference_value)
        <= conformance.TOLERANCES["analog"]
    ), f"analog disagrees on {instance.name}: {value} vs {instance.reference_value}"


@pytest.mark.parametrize("instance", ALL_INSTANCES)
def test_sharded_service_agrees(instance):
    if not instance.shardable:
        pytest.skip("instance has no interior vertices to shard")
    sharded = conformance.sharded_solve(instance.network, shards=2)
    exact = instance.reference_value
    # Bound validity holds on every iteration, converged or not.
    for dual, feasible, _ in sharded.report.bound_trajectory:
        assert dual <= exact + 1e-9
        assert feasible >= exact - 1e-9
    assert sharded.report.converged, f"sharded did not converge on {instance.name}"
    assert (
        conformance.relative_gap(sharded.flow_value, exact)
        <= conformance.TOLERANCES["sharded"]
    )


@pytest.mark.parametrize("instance", ALL_INSTANCES)
def test_streaming_classical_one_push_agrees(instance):
    if not instance.streamable:
        pytest.skip("instance has no edge to push an update against")
    value = conformance.streaming_one_push_value(instance.network, "dinic")
    assert (
        conformance.relative_gap(value, instance.reference_value)
        <= conformance.TOLERANCES["streaming-classical"]
    )


@pytest.mark.parametrize("instance", ALL_INSTANCES)
def test_streaming_analog_one_push_matches_cold(instance):
    if not instance.streamable or not instance.streaming_analog_ok:
        pytest.skip("instance not solvable by an analog streaming session")
    warm, cold = conformance.streaming_analog_pair(instance.network)
    assert (
        conformance.relative_gap(warm, cold)
        <= conformance.TOLERANCES["streaming-analog"]
    ), f"warm push drifted from cold solve on {instance.name}: {warm} vs {cold}"


# ---------------------------------------------------------------------------
# Reduction conformance: every reduction through three backend families
# ---------------------------------------------------------------------------


def _problem_suite():
    """One randomized instance per reduction, seeded from REPRO_TEST_SEED."""
    import random

    problems = []

    rng = random.Random(derive_seed("conformance-matching"))
    problems.append(
        (
            "matching",
            BipartiteMatching(
                list(range(7)),
                list(range(7)),
                [
                    (i, j)
                    for i in range(7)
                    for j in range(7)
                    if rng.random() < 0.35
                ],
            ),
        )
    )

    rng = random.Random(derive_seed("conformance-paths"))
    mids = list(range(6))
    edges = (
        [("s", m) for m in mids if rng.random() < 0.8]
        + [(m, "t") for m in mids if rng.random() < 0.8]
        + [(a, b) for a in mids for b in mids if a != b and rng.random() < 0.25]
    )
    problems.append(
        ("paths", DisjointPaths(edges, source="s", sink="t", vertex_disjoint=True))
    )

    rng = random.Random(derive_seed("conformance-segmentation"))
    height, width = 3, 5
    problems.append(
        (
            "segmentation",
            ImageSegmentation(
                [[rng.random() for _ in range(width)] for _ in range(height)],
                [[rng.random() for _ in range(width)] for _ in range(height)],
                smoothness=0.3,
            ),
        )
    )

    rng = random.Random(derive_seed("conformance-closure"))
    problems.append(
        (
            "closure",
            ProjectSelection(
                {i: rng.uniform(-5.0, 5.0) for i in range(10)},
                [
                    (i, j)
                    for i in range(10)
                    for j in range(10)
                    if i != j and rng.random() < 0.12
                ],
            ),
        )
    )
    return problems


PROBLEMS = _problem_suite()

#: (backend, shards) routes covering classical (reference + flat-array
#: kernel), analog and sharded.
BACKEND_ROUTES = [
    ("dinic", None),
    ("push-relabel", None),
    ("kernel-dinic", None),
    ("analog", None),
    ("dinic", 2),
]


@pytest.fixture(scope="module")
def problem_service():
    return ProblemSolveService()


@pytest.fixture(scope="module")
def reference_solutions():
    """Exact reference objective per reduction (classical reference path)."""
    return {
        name: solve_problem(problem)[0].value for name, problem in PROBLEMS
    }


@pytest.mark.parametrize(
    "backend, shards", BACKEND_ROUTES, ids=lambda v: str(v)
)
@pytest.mark.parametrize("name, problem", PROBLEMS, ids=[n for n, _ in PROBLEMS])
def test_reductions_certified_on_every_backend(
    problem_service, reference_solutions, name, problem, backend, shards
):
    solved = problem_service.solve(problem, backend=backend, shards=shards)
    assert solved.certified, (
        f"{name} via {backend}/shards={shards}: "
        f"{solved.report.certificate_status}"
    )
    assert solved.value == pytest.approx(reference_solutions[name], rel=1e-9, abs=1e-9)
    # Approximate backends must still land within their declared tolerance.
    if solved.report.backend_value_error is not None:
        rtol = conformance.TOLERANCES["analog"] if backend == "analog" else 1e-6
        assert solved.report.backend_value_error <= rtol


@pytest.mark.slow
@pytest.mark.parametrize("trial", range(3))
def test_reduction_matrix_randomized_trials(problem_service, trial):
    """Extra randomized rounds of the full reduction x backend matrix."""
    import random

    rng = random.Random(derive_seed("matrix-trial", trial))
    problem = BipartiteMatching(
        list(range(9)),
        list(range(9)),
        [(i, j) for i in range(9) for j in range(9) if rng.random() < 0.3],
    )
    reference = solve_problem(problem)[0].value
    for backend, shards in BACKEND_ROUTES:
        solved = problem_service.solve(problem, backend=backend, shards=shards)
        assert solved.certified
        assert solved.value == pytest.approx(reference)
