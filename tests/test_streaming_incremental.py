"""Incremental-vs-cold equivalence for the streaming subsystem.

Randomized update streams (mixed capacity increases/decreases, edge inserts
and removals) drive the graph update log, the classical incremental engine,
the analog warm re-solve path and the streaming session, asserting at every
revision that the incrementally maintained solution matches a from-scratch
solve of a snapshot:

* classical: flow values agree to 1e-9 (both are exact algorithms) and the
  repaired flow is feasible;
* analog: the warm re-solve matches a cold compile+solve of the same
  configuration.  On instances with a unique optimal flow the agreement is
  1e-9; on random instances with degenerate (non-unique) interior optima the
  two solves may settle on different — equally valid — operating points,
  whose read-out values differ by at most the substrate's bleed-resistor
  leakage (asserted at 1e-4 relative; see ``docs/architecture.md``).
"""

from __future__ import annotations

import random

import pytest

from seeding import derive_seed

from repro.analog import AnalogMaxFlowSolver
from repro.errors import EdgeNotFoundError, InvalidGraphError
from repro.flows.incremental import IncrementalMaxFlow
from repro.flows.kernel import KernelDinic
from repro.flows.registry import solve_max_flow
from repro.graph import FlowNetwork, MutableFlowNetwork, rmat_graph
from repro.graph.updates import (
    CapacityUpdate,
    EdgeInsert,
    EdgeRemove,
    topology_signature,
)
from repro.service import CompiledCircuitCache, StreamingSession, push_all


def random_update_batch(dynamic: MutableFlowNetwork, rng: random.Random, size=4):
    """A valid random batch mixing re-weightings, removals and inserts."""
    events, touched = [], set()
    for _ in range(rng.randint(1, size)):
        # Skip zero-capacity edges: when the batch is generated against a
        # probe copy of a session's network, those may be removal tombstones
        # that the session itself would (correctly) refuse to update.
        live = [
            e.index
            for e in dynamic.live_edges()
            if e.index not in touched and e.capacity > 0
        ]
        kind = rng.random()
        if kind < 0.55 and live:
            index = rng.choice(live)
            touched.add(index)
            old = dynamic.network.edge(index).capacity
            factor = rng.choice([0.0, 0.1, 0.5, 0.9, 1.1, 2.0, 5.0])
            events.append(CapacityUpdate(index, round(old * factor, 6)))
        elif kind < 0.8 and live:
            index = rng.choice(live)
            touched.add(index)
            events.append(EdgeRemove(index))
        else:
            tail, head = rng.sample(dynamic.network.vertices(), 2)
            events.append(EdgeInsert(tail, head, rng.uniform(0.5, 10.0)))
    return events


# ----------------------------------------------------------------------
# Graph layer
# ----------------------------------------------------------------------


class TestMutableFlowNetwork:
    def test_snapshot_is_deep_and_preserves_indices(self):
        g = FlowNetwork()
        g.add_edge("s", "a", 2.0)
        g.add_edge("a", "t", 1.0)
        snap = g.snapshot()
        g.set_capacity(0, 9.0)
        assert snap.edge(0).capacity == 2.0
        assert [e.index for e in snap.edges()] == [0, 1]
        assert snap.edge(0) is not g.edge(0)

    def test_copy_delegates_to_snapshot(self):
        g = FlowNetwork()
        g.add_edge("s", "t", 3.0)
        clone = g.copy()
        g.set_capacity(0, 1.0)
        assert clone.edge(0).capacity == 3.0

    def test_revision_counters_and_structural_flag(self):
        g = FlowNetwork()
        g.add_edge("s", "a", 2.0)
        g.add_edge("a", "t", 1.0)
        dyn = MutableFlowNetwork(g)
        batch = dyn.apply([CapacityUpdate(0, 5.0)])
        assert (dyn.revision, dyn.structural_revision) == (1, 0)
        assert not batch.structural and batch.capacity_only
        batch = dyn.apply([EdgeInsert("a", "b", 1.0), EdgeInsert("b", "t", 1.0)])
        assert (dyn.revision, dyn.structural_revision) == (2, 1)
        assert batch.structural
        batch = dyn.apply([EdgeRemove(2)])
        assert (dyn.revision, dyn.structural_revision) == (3, 1)
        assert not batch.structural  # removal is a capacity-0 tombstone
        assert dyn.is_removed(2)
        assert dyn.network.edge(2).capacity == 0.0

    def test_caller_network_is_not_mutated(self):
        g = FlowNetwork()
        g.add_edge("s", "t", 2.0)
        dyn = MutableFlowNetwork(g)
        dyn.apply([CapacityUpdate(0, 7.0)])
        assert g.edge(0).capacity == 2.0

    def test_invalid_batches_leave_network_untouched(self):
        g = FlowNetwork()
        g.add_edge("s", "t", 2.0)
        dyn = MutableFlowNetwork(g)
        with pytest.raises(EdgeNotFoundError):
            dyn.apply([CapacityUpdate(0, 5.0), CapacityUpdate(7, 1.0)])
        assert dyn.network.edge(0).capacity == 2.0 and dyn.revision == 0
        with pytest.raises(InvalidGraphError):
            dyn.apply([CapacityUpdate(0, -1.0)])
        with pytest.raises(EdgeNotFoundError):
            dyn.apply([EdgeRemove(0), CapacityUpdate(0, 1.0)])
        assert dyn.revision == 0 and not dyn.is_removed(0)

    def test_topology_signature_ignores_capacities_not_structure(self):
        g = FlowNetwork()
        g.add_edge("s", "a", 2.0)
        g.add_edge("a", "t", 1.0)
        dyn = MutableFlowNetwork(g)
        base = dyn.topology_signature()
        dyn.apply([CapacityUpdate(0, 99.0)])
        assert dyn.topology_signature() == base
        dyn.apply([EdgeInsert("s", "t", 1.0)])
        assert dyn.topology_signature() != base
        assert topology_signature(g) == base  # original untouched

    def test_infinite_capacity_transition_is_structural(self):
        g = FlowNetwork()
        g.add_edge("s", "t", 2.0)
        dyn = MutableFlowNetwork(g)
        batch = dyn.apply([CapacityUpdate(0, float("inf"))])
        assert batch.structural


# ----------------------------------------------------------------------
# Classical layer
# ----------------------------------------------------------------------


class TestIncrementalMaxFlow:
    def test_randomized_streams_match_cold_solves(self):
        rng = random.Random(2015)
        for _ in range(12):
            g = rmat_graph(
                rng.randint(12, 40), rng.randint(40, 160), seed=rng.randint(0, 10**6)
            )
            dyn = MutableFlowNetwork(g)
            engine = IncrementalMaxFlow(dyn, validate=True)
            for _ in range(8):
                result = engine.push(random_update_batch(dyn, rng))
                cold = solve_max_flow(dyn.snapshot(), algorithm="dinic")
                assert result.flow_value == pytest.approx(
                    cold.flow_value, abs=1e-9, rel=1e-9
                )

    def test_warm_path_is_used_for_small_deltas(self):
        g = rmat_graph(30, 120, seed=5)
        dyn = MutableFlowNetwork(g)
        engine = IncrementalMaxFlow(dyn)
        result = engine.push([CapacityUpdate(0, g.edge(0).capacity * 2)])
        assert result.algorithm == "incremental-dinic"
        assert engine.warm_solves == 1

    def test_large_deltas_cut_over_to_cold(self):
        g = rmat_graph(20, 60, seed=5)
        dyn = MutableFlowNetwork(g)
        engine = IncrementalMaxFlow(dyn, cold_ratio=0.1)
        events = [
            CapacityUpdate(e.index, e.capacity * 0.5) for e in g.edges()[:30]
        ]
        result = engine.push(events)
        assert result.algorithm == "dinic"
        assert engine.cold_solves == 2  # initial + cutover

    def test_decrease_drains_overflow_exactly(self):
        # s -> a -> t carrying 2; cut a->t to 0.5: repair must drain 1.5.
        g = FlowNetwork()
        g.add_edge("s", "a", 2.0)
        g.add_edge("a", "t", 2.0)
        dyn = MutableFlowNetwork(g)
        engine = IncrementalMaxFlow(dyn, cold_ratio=1.0, validate=True)
        assert engine.result.flow_value == 2.0
        result = engine.push([CapacityUpdate(1, 0.5)])
        assert result.flow_value == pytest.approx(0.5, abs=1e-12)
        assert engine.warm_solves == 1

    def test_reroute_prefers_keeping_flow(self):
        # Two parallel a->t edges; cutting one reroutes onto the other.
        g = FlowNetwork()
        g.add_edge("s", "a", 2.0)
        g.add_edge("a", "t", 2.0)
        g.add_edge("a", "t", 2.0)
        dyn = MutableFlowNetwork(g)
        engine = IncrementalMaxFlow(dyn, cold_ratio=1.0, validate=True)
        assert engine.result.flow_value == 2.0
        result = engine.push([CapacityUpdate(1, 0.0)])
        assert result.flow_value == pytest.approx(2.0, abs=1e-12)

    def test_insert_with_new_vertex_resumes_augmentation(self):
        g = FlowNetwork()
        g.add_edge("s", "a", 1.0)
        g.add_edge("a", "t", 1.0)
        dyn = MutableFlowNetwork(g)
        engine = IncrementalMaxFlow(dyn, cold_ratio=1.0, validate=True)
        result = engine.push(
            [EdgeInsert("s", "b", 3.0), EdgeInsert("b", "t", 2.5)]
        )
        assert result.flow_value == pytest.approx(3.5, abs=1e-12)
        assert result.algorithm == "incremental-dinic"


class TestKernelIncremental:
    """Flat-array export/import round trip under randomized edit streams.

    The kernel-backed engine repairs on an object residual that is exported
    to flat arrays, augmented there, and stored back after every warm
    apply; these streams prove the round trip preserves residual state —
    any drift would desynchronise the maintained flow from a cold solve.
    """

    def test_kernel_backed_streams_match_cold_solves(self):
        rng = random.Random(derive_seed("kernel-incremental"))
        saw_warm = False
        for _ in range(6):
            g = rmat_graph(
                rng.randint(15, 40), rng.randint(50, 150), seed=rng.randint(0, 10**6)
            )
            dyn = MutableFlowNetwork(g)
            engine = IncrementalMaxFlow(dyn, algorithm="kernel-dinic", validate=True)
            for _ in range(6):
                result = engine.push(random_update_batch(dyn, rng))
                cold = solve_max_flow(dyn.snapshot(), algorithm="kernel-dinic")
                reference = solve_max_flow(dyn.snapshot(), algorithm="dinic")
                assert result.flow_value == pytest.approx(
                    cold.flow_value, abs=1e-9, rel=1e-9
                )
                assert result.flow_value == pytest.approx(
                    reference.flow_value, abs=1e-9, rel=1e-9
                )
            saw_warm = saw_warm or engine.warm_solves > 0
        assert saw_warm, "streams never exercised the warm kernel path"

    def test_kernel_warm_repair_reports_incremental(self):
        g = rmat_graph(30, 120, seed=derive_seed("kernel-warm"))
        dyn = MutableFlowNetwork(g)
        engine = IncrementalMaxFlow(dyn, algorithm="kernel-dinic", validate=True)
        result = engine.push([CapacityUpdate(0, g.edge(0).capacity * 2)])
        assert result.algorithm == "incremental-dinic"
        assert engine.warm_solves == 1 and engine.cold_solves == 1

    def test_kernel_engine_matches_reference_engine(self):
        """Same stream through the kernel engine and the reference engine.

        The "dinic" streaming default keeps the pure-Python repair engine
        (its per-push cost scales with the delta, not with |E| flat-array
        setup); explicit "kernel-dinic" swaps in the flat-array kernel.
        Both must walk the same stream to identical flow values.
        """
        events_seed = derive_seed("kernel-vs-reference")

        def run_stream(algorithm: str) -> list:
            rng = random.Random(events_seed)
            g = rmat_graph(25, 90, seed=events_seed)
            dyn = MutableFlowNetwork(g)
            engine = IncrementalMaxFlow(dyn, algorithm=algorithm, validate=True)
            assert isinstance(engine._dinic, KernelDinic) == (
                algorithm == "kernel-dinic"
            )
            return [
                engine.push(random_update_batch(dyn, rng)).flow_value
                for _ in range(6)
            ]

        kernel_values = run_stream("kernel-dinic")
        reference_values = run_stream("dinic")
        assert kernel_values == pytest.approx(reference_values, abs=1e-9, rel=1e-9)


# ----------------------------------------------------------------------
# Analog layer
# ----------------------------------------------------------------------


class TestAnalogWarmResolve:
    def test_warm_equals_cold_on_unique_optimum(self, paper_example):
        solver = AnalogMaxFlowSolver(quantize=False, dedicated_clamp_sources=True)
        compiled = solver.compile(paper_example)
        base = solver.resolve(compiled)
        edited = paper_example.snapshot()
        edited.set_capacity(0, edited.edge(0).capacity * 0.7)
        warm = solver.resolve(compiled, network=edited, previous=base)
        cold_solver = AnalogMaxFlowSolver(quantize=False, dedicated_clamp_sources=True)
        cold = cold_solver.resolve(cold_solver.compile(edited))
        assert warm.flow_value == pytest.approx(cold.flow_value, abs=1e-9)
        assert warm.dc_solution.diode_states == cold.dc_solution.diode_states

    def test_randomized_capacity_streams_track_cold(self):
        rng = random.Random(7)
        g = rmat_graph(40, 150, seed=21)
        solver = AnalogMaxFlowSolver(quantize=False, dedicated_clamp_sources=True)
        compiled = solver.compile(g)
        previous = solver.resolve(compiled)
        current = g
        for _ in range(4):
            edited = current.snapshot()
            for index in rng.sample(range(edited.num_edges), 7):
                factor = rng.choice([0.5, 0.8, 1.25, 2.0])
                edited.set_capacity(index, edited.edge(index).capacity * factor)
            warm = solver.resolve(compiled, network=edited, previous=previous)
            cold_solver = AnalogMaxFlowSolver(
                quantize=False, dedicated_clamp_sources=True
            )
            cold = cold_solver.resolve(cold_solver.compile(edited))
            assert warm.flow_value == pytest.approx(
                cold.flow_value, rel=1e-4, abs=1e-6
            )
            previous, current = warm, edited

    def test_warm_resolve_performs_no_refactorization(self):
        g = rmat_graph(30, 110, seed=13)
        solver = AnalogMaxFlowSolver(quantize=False, dedicated_clamp_sources=True)
        compiled = solver.compile(g)
        base = solver.resolve(compiled)
        edited = g.snapshot()
        edited.set_capacity(3, edited.edge(3).capacity * 1.5)
        warm = solver.resolve(compiled, network=edited, previous=base)
        assert warm.dc_solution.refactorizations == 0

    def test_resolve_requires_dedicated_clamps(self):
        from repro.errors import CircuitError

        g = rmat_graph(15, 40, seed=3)
        solver = AnalogMaxFlowSolver(quantize=False)
        compiled = solver.compile(g)
        edited = g.snapshot()
        edited.set_capacity(0, 1.0)
        with pytest.raises(CircuitError):
            solver.resolve(compiled, network=edited)

    def test_resolve_rejects_structural_updates(self):
        from repro.errors import CircuitError

        g = rmat_graph(15, 40, seed=3)
        solver = AnalogMaxFlowSolver(quantize=False, dedicated_clamp_sources=True)
        compiled = solver.compile(g)
        edited = g.snapshot()
        edited.add_edge("s", "t", 1.0)
        with pytest.raises(CircuitError):
            solver.resolve(compiled, network=edited)

    def test_resolve_rejects_in_place_structural_mutation(self):
        # compile() keeps a reference to the live network; the guard must
        # compare against the compile-time edge count, not that alias.
        from repro.errors import CircuitError

        g = rmat_graph(15, 40, seed=3)
        solver = AnalogMaxFlowSolver(quantize=False, dedicated_clamp_sources=True)
        compiled = solver.compile(g)
        solver.resolve(compiled)
        g.add_edge("s", "t", 5.0)
        with pytest.raises(CircuitError):
            solver.resolve(compiled, network=g)

    def test_dc_engine_cache_is_bounded(self):
        # The per-template engine cache must evict (each engine references
        # its template, so a weak mapping would retain LUs forever).
        from repro.circuit.dc import DCOperatingPoint

        dc = DCOperatingPoint()
        for i in range(dc._max_engines + 3):
            solver = AnalogMaxFlowSolver(quantize=False)
            compiled = solver.compile(rmat_graph(10, 25, seed=i))
            dc.solve(compiled.circuit, mna=compiled.mna())
        assert len(dc._engines) <= dc._max_engines


# ----------------------------------------------------------------------
# Service layer
# ----------------------------------------------------------------------


class TestStreamingSession:
    def test_randomized_streams_all_layers_agree(self):
        rng = random.Random(99)
        g = rmat_graph(25, 90, seed=17)
        classical = StreamingSession(g, backend="dinic")
        analog = StreamingSession(
            g,
            backend="analog",
            analog_solver=AnalogMaxFlowSolver(quantize=False),
        )
        for _ in range(6):
            dyn_probe = MutableFlowNetwork(classical.network, copy=True)
            events = random_update_batch(dyn_probe, rng, size=3)
            delta_c = classical.push(list(events))
            delta_a = analog.push(list(events))
            exact = solve_max_flow(classical.snapshot(), algorithm="dinic")
            assert delta_c.flow_value == pytest.approx(
                exact.flow_value, abs=1e-9, rel=1e-9
            )
            # The analog value carries the substrate's finite-drive error;
            # both sessions must agree on which instance they solved.
            assert delta_a.revision == delta_c.revision
            assert delta_a.flow_value <= exact.flow_value * 1.01 + 1e-6

    def test_capacity_only_pushes_are_warm_structural_recompile(self):
        g = rmat_graph(20, 70, seed=11)
        session = StreamingSession(
            g,
            backend="analog",
            analog_solver=AnalogMaxFlowSolver(quantize=False),
        )
        assert session.recompiles == 1  # the opening cold solve
        delta = session.push([CapacityUpdate(0, g.edge(0).capacity * 1.5)])
        assert delta.warm and not delta.recompiled
        delta = session.push([EdgeInsert("s", "t", 2.0)])
        assert not delta.warm and delta.recompiled
        delta = session.push([EdgeRemove(0)])  # tombstone: stays warm
        assert delta.warm and not delta.recompiled

    def test_structural_recompiles_hit_shared_cache(self):
        g = rmat_graph(20, 70, seed=11)
        cache = CompiledCircuitCache(max_entries=8)
        solver = AnalogMaxFlowSolver(quantize=False)
        first = StreamingSession(g, backend="analog", analog_solver=solver, cache=cache)
        second = StreamingSession(g, backend="analog", analog_solver=solver, cache=cache)
        assert cache.stats()["hits"] == 1  # second session reused the compile
        assert second.recompiles == 0

    def test_sessions_never_share_mutable_state(self):
        # resolve() mutates the compiled circuit in place, so cached entries
        # must stay pristine and each session must own private copies.
        g = rmat_graph(20, 70, seed=11)
        cache = CompiledCircuitCache(max_entries=8)
        solver = AnalogMaxFlowSolver(quantize=False)
        a = StreamingSession(g, backend="analog", analog_solver=solver, cache=cache)
        b = StreamingSession(g, backend="analog", analog_solver=solver, cache=cache)
        assert a._compiled is not b._compiled
        assert a.analog_solver is not b.analog_solver
        a.push([CapacityUpdate(0, g.edge(0).capacity * 5)])
        assert b.network.edge(0).capacity == g.edge(0).capacity
        assert b._compiled.network.edge(0).capacity == g.edge(0).capacity

    def test_classical_cold_solves_honor_backend_name(self):
        g = rmat_graph(20, 60, seed=5)
        session = StreamingSession(g, backend="push-relabel", cold_ratio=0.0)
        delta = session.push([CapacityUpdate(0, g.edge(0).capacity * 2)])
        assert delta.result.detail.algorithm == "push-relabel"
        warm_session = StreamingSession(g, backend="push-relabel", cold_ratio=1.0)
        warm = warm_session.push([CapacityUpdate(0, g.edge(0).capacity * 2)])
        assert warm.result.detail.algorithm == "incremental-dinic"
        exact = solve_max_flow(warm_session.snapshot(), algorithm="dinic")
        assert warm.flow_value == pytest.approx(exact.flow_value, abs=1e-9, rel=1e-9)

    def test_idempotent_push_does_not_recount_telemetry(self):
        g = FlowNetwork()
        g.add_edge("s", "a", 3.0)
        g.add_edge("a", "t", 2.0)
        session = StreamingSession(g, backend="dinic", cold_ratio=1.0)
        session.push([CapacityUpdate(1, 3.5)])
        before = (
            session.warm_solves,
            session.cold_solves,
            session.total_solve_time_s,
        )
        delta = session.push([CapacityUpdate(1, 3.5)])  # value already current
        assert (
            session.warm_solves,
            session.cold_solves,
            session.total_solve_time_s,
        ) == before
        assert delta.warm and delta.flow_delta == 0.0
        assert delta.revision == session.revision == 2

    def test_delta_reports_changed_edge_flows(self):
        g = FlowNetwork()
        g.add_edge("s", "a", 2.0)
        g.add_edge("a", "t", 2.0)
        session = StreamingSession(g, backend="dinic", cold_ratio=1.0)
        delta = session.push([CapacityUpdate(1, 0.5)])
        assert delta.flow_delta == pytest.approx(-1.5)
        assert set(delta.changed_edge_flows) == {0, 1}
        assert delta.changed_edge_flows[1] == (2.0, 0.5)

    def test_summary_surfaces_cache_stats(self):
        g = rmat_graph(15, 40, seed=2)
        session = StreamingSession(
            g, backend="analog", analog_solver=AnalogMaxFlowSolver(quantize=False)
        )
        summary = session.summary()
        assert {"hits", "misses", "evictions"} <= set(summary["cache"])
        assert summary["pushes"] == 1 and summary["cold_solves"] == 1

    def test_push_all_fans_out(self):
        g = rmat_graph(15, 40, seed=2)
        sessions = [
            StreamingSession(g, backend="dinic"),
            StreamingSession(g, backend="edmonds-karp"),
        ]
        batches = [[CapacityUpdate(0, 5.0)], [CapacityUpdate(0, 5.0)]]
        deltas = push_all(sessions, batches, max_workers=2)
        assert len(deltas) == 2
        assert deltas[0].flow_value == pytest.approx(deltas[1].flow_value)

    def test_unknown_backend_rejected(self):
        from repro.errors import AlgorithmError

        g = FlowNetwork()
        g.add_edge("s", "t", 1.0)
        with pytest.raises(AlgorithmError):
            StreamingSession(g, backend="simplex")


class TestCacheEvictions:
    def test_eviction_counter(self):
        cache = CompiledCircuitCache(max_entries=2)
        for key in "abc":
            cache.store(key, key)
        stats = cache.stats()
        assert stats["evictions"] == 1 and stats["entries"] == 2

    def test_batch_report_carries_eviction_stats(self):
        from repro.service import BatchSolveService

        g = FlowNetwork()
        g.add_edge("s", "t", 1.0)
        report = BatchSolveService(max_workers=1).solve_batch([g])
        assert "evictions" in report.cache_stats
        assert "evictions" in report.format()
