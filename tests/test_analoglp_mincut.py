"""Tests for the analog LP substrate and the min-cut dual solver (Section 6.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analog import AnalogMinCutSolver
from repro.analog.mincut_dual import build_mincut_lp
from repro.analoglp import AnalogLPSolver, LinearProgram
from repro.errors import ConfigurationError
from repro.flows import dinic, min_cut
from repro.graph import grid_graph, paper_example_graph, rmat_graph


class TestLinearProgram:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LinearProgram(objective=[])
        with pytest.raises(ConfigurationError):
            LinearProgram(objective=[1.0, 2.0], inequality_matrix=[[1.0]], inequality_rhs=[1.0])
        with pytest.raises(ConfigurationError):
            LinearProgram(objective=[1.0], lower_bounds=[2.0], upper_bounds=[1.0])

    def test_reference_solution(self):
        problem = LinearProgram(
            objective=[-1.0, -2.0],
            inequality_matrix=[[1.0, 1.0]],
            inequality_rhs=[4.0],
            lower_bounds=0.0,
            upper_bounds=3.0,
        )
        x = problem.solve_reference()
        assert problem.objective_value(x) == pytest.approx(-7.0)
        assert problem.is_feasible(x)

    def test_violation_metric(self):
        problem = LinearProgram(
            objective=[1.0],
            inequality_matrix=[[1.0]],
            inequality_rhs=[1.0],
            lower_bounds=0.0,
        )
        assert problem.constraint_violation(np.array([2.0])) == pytest.approx(1.0)
        assert problem.constraint_violation(np.array([0.5])) == 0.0


class TestAnalogLPSolver:
    def test_small_lp_matches_reference(self):
        problem = LinearProgram(
            objective=[-1.0, -2.0],
            inequality_matrix=[[1.0, 1.0]],
            inequality_rhs=[4.0],
            lower_bounds=0.0,
            upper_bounds=3.0,
        )
        analog = AnalogLPSolver(gain=500.0, t_final=60.0).solve(problem)
        reference = problem.solve_reference()
        assert analog.objective_value == pytest.approx(problem.objective_value(reference), rel=0.02)
        assert analog.constraint_violation < 0.05
        assert analog.settling_time > 0

    def test_equality_constraints(self):
        # minimize x + y subject to x + y = 2, 0 <= x,y <= 5.
        problem = LinearProgram(
            objective=[1.0, 1.0],
            equality_matrix=[[1.0, 1.0]],
            equality_rhs=[2.0],
            lower_bounds=0.0,
            upper_bounds=5.0,
        )
        analog = AnalogLPSolver(gain=500.0).solve(problem)
        assert analog.x.sum() == pytest.approx(2.0, abs=0.02)

    def test_trajectory_recorded(self):
        problem = LinearProgram(objective=[1.0], lower_bounds=0.0, upper_bounds=1.0)
        analog = AnalogLPSolver(t_final=10.0).solve(problem)
        assert analog.trajectory.shape[0] == analog.times.shape[0]
        assert analog.x[0] == pytest.approx(0.0, abs=0.01)


class TestMinCutLP:
    def test_lp_structure(self):
        g = paper_example_graph()
        problem, vertices, edge_order = build_mincut_lp(g)
        assert problem.num_variables == g.num_vertices + g.num_edges
        assert problem.num_inequalities == g.num_edges + 1
        assert len(edge_order) == g.num_edges

    def test_lp_reference_equals_maxflow(self):
        for network in (paper_example_graph(), rmat_graph(15, 45, seed=2)):
            problem, _, _ = build_mincut_lp(network)
            x = problem.solve_reference()
            assert problem.objective_value(x) == pytest.approx(
                dinic(network).flow_value, rel=1e-6
            )


class TestAnalogMinCut:
    def test_paper_example(self):
        result = AnalogMinCutSolver(t_final=40.0).solve(paper_example_graph())
        assert result.exact_value == pytest.approx(2.0)
        assert result.cut_value == pytest.approx(2.0)
        assert result.relative_error < 0.05
        assert result.partition["s"] == 1 and result.partition["t"] == 0

    def test_grid_graph(self):
        network = grid_graph(2, 3, capacity=1.0)
        result = AnalogMinCutSolver(t_final=40.0).solve(network)
        assert result.exact_value == pytest.approx(2.0)
        assert result.rounded_relative_error <= 0.5
        assert result.lp_objective == pytest.approx(2.0, rel=0.1)

    def test_cut_edges_cross_partition(self):
        network = paper_example_graph()
        result = AnalogMinCutSolver(t_final=40.0).solve(network)
        side = result.source_side()
        for index in result.cut_edges:
            edge = network.edge(index)
            assert edge.tail in side and edge.head not in side
