"""Seeded randomized soak of the serving front door.

Two system-level properties the unit suite cannot pin:

* **Conformance under traffic.**  A few hundred seeded mixed requests
  pushed through :class:`~repro.service.server.AsyncSolveServer` in
  concurrent waves (tenants, priorities, duplicate-heavy so coalescing
  engages) must produce *per-request* flow values identical — within the
  conformance gate's per-backend-family tolerances — to direct
  :class:`~repro.service.batch.BatchSolveService` calls on the same
  instances.  The front door may reorder, coalesce and route; it may
  never change an answer.

* **Zero dropped futures on cancellation.**  Cancelling individual
  waiters of a coalesced in-flight solve must never cancel the shared
  solve out from under the surviving waiters, and the server's internal
  maps must drain to empty.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from conformance import TOLERANCES, build_corpus, relative_gap
from seeding import derive_seed

from repro.service import AsyncSolveServer, BatchSolveService
from repro.service.api import SolveResult


@pytest.fixture(scope="module")
def corpus():
    return build_corpus()


class TestSoakConformance:
    def _family(self, backend: str) -> str:
        return "analog" if backend == "analog" else "classical"

    async def test_soak_matches_direct_service_calls(self, corpus):
        rng = random.Random(derive_seed("server-soak"))
        service = BatchSolveService(executor="serial")
        classical = [inst for inst in corpus]
        analog_ok = [
            inst for inst in corpus
            if inst.analog_ok and inst.network.num_edges <= 12
        ]

        # ~300 requests: duplicate-heavy (9 corpus instances, 2 backends)
        # so coalescing engages inside every concurrent wave.
        plan = []
        for _ in range(280):
            if analog_ok and rng.random() < 0.25:
                inst = rng.choice(analog_ok)
                backend = "analog"
            else:
                inst = rng.choice(classical)
                backend = rng.choice(["dinic", "push-relabel"])
            plan.append((inst, backend, f"tenant-{rng.randrange(4)}",
                         rng.randrange(3)))

        # Direct reference values, one per (instance, backend) pair.
        reference = {}
        for inst, backend, _, _ in plan:
            key = (inst.name, backend)
            if key not in reference:
                result = service.solve(inst.network, backend=backend)
                assert result.ok, (key, result.error)
                reference[key] = result.flow_value

        responses = []
        async with AsyncSolveServer(workers=4) as server:
            wave = 40
            for start in range(0, len(plan), wave):
                batch = plan[start:start + wave]
                responses.extend(await asyncio.gather(*[
                    server.submit(inst.network, backend=backend,
                                  tenant=tenant, priority=priority)
                    for inst, backend, tenant, priority in batch
                ]))

        assert len(responses) == len(plan)
        stats = server.stats()
        assert stats["shed"] == 0  # bounded queues never overflowed
        assert stats["coalesced"] > 0  # duplicate-heavy waves did coalesce
        for (inst, backend, _, _), response in zip(plan, responses):
            assert response.status == 200, (inst.name, backend,
                                            response.detail)
            gap = relative_gap(response.result.flow_value,
                               reference[(inst.name, backend)])
            tolerance = TOLERANCES[self._family(backend)]
            assert gap <= tolerance, (
                f"{inst.name}/{backend}: served {response.result.flow_value!r} "
                f"vs direct {reference[(inst.name, backend)]!r} "
                f"(gap {gap:.2e} > {tolerance:g})"
            )

    async def test_coalesced_answers_equal_leader_answers(self, corpus):
        # Every coalesced follower must see the exact result object the
        # leader's solve produced — same value, no re-solve drift.
        inst = next(i for i in corpus if i.name == "grid-3x5")
        async with AsyncSolveServer(workers=2) as server:
            responses = await asyncio.gather(*[
                server.submit(inst.network, backend="dinic")
                for _ in range(12)
            ])
        values = {r.result.flow_value for r in responses}
        assert len(values) == 1
        assert relative_gap(values.pop(), inst.reference_value) <= 1e-9
        assert sum(1 for r in responses if r.coalesced) >= 1


class TestCancellation:
    async def test_cancelled_waiters_never_drop_the_shared_future(self):
        from test_server import Recorder, spin_until, tiny_network

        backend = Recorder(gated=True)
        g = tiny_network()
        async with AsyncSolveServer(workers=1, solve_fn=backend) as server:
            waiters = [
                asyncio.ensure_future(server.submit(g, backend="dinic"))
                for _ in range(20)
            ]
            await spin_until(
                lambda: server.stats()["waiting"] == 20
                and backend.started.is_set()
            )
            # Cancel half the waiters, the leader's included (index 0) —
            # the shared in-flight solve must survive for the rest.
            doomed, surviving = waiters[:10], waiters[10:]
            for task in doomed:
                task.cancel()
            await asyncio.gather(*doomed, return_exceptions=True)
            assert all(task.cancelled() for task in doomed)
            backend.gate.set()
            responses = await asyncio.gather(*surviving)
        assert len(backend.calls) == 1
        assert all(r.status == 200 for r in responses)
        assert all(r.result.flow_value == 1.0 for r in responses)
        stats = server.stats()
        assert stats["inflight"] == 0 and stats["queue_depth"] == 0
        assert stats["waiting"] == 0

    async def test_cancelling_every_waiter_still_completes_the_solve(self):
        from test_server import Recorder, spin_until, tiny_network

        backend = Recorder(gated=True)
        g = tiny_network()
        async with AsyncSolveServer(workers=1, solve_fn=backend) as server:
            waiters = [
                asyncio.ensure_future(server.submit(g, backend="dinic"))
                for _ in range(5)
            ]
            await spin_until(
                lambda: server.stats()["waiting"] == 5
                and backend.started.is_set()
            )
            for task in waiters:
                task.cancel()
            await asyncio.gather(*waiters, return_exceptions=True)
            backend.gate.set()
            # The orphaned solve still runs to completion and unregisters.
            await spin_until(lambda: server.stats()["inflight"] == 0)
        assert len(backend.calls) == 1
        assert server.stats()["queue_depth"] == 0

    async def test_fresh_request_after_orphaned_solve_gets_fresh_result(self):
        from test_server import tiny_network

        calls = []

        async def counting(request) -> SolveResult:
            calls.append(request)
            return SolveResult(request=request, flow_value=float(len(calls)),
                               edge_flows={0: 1.0})

        g = tiny_network()
        async with AsyncSolveServer(workers=1, solve_fn=counting) as server:
            task = asyncio.ensure_future(server.submit(g, backend="dinic"))
            task.cancel()
            await asyncio.gather(task, return_exceptions=True)
            response = await server.submit(g, backend="dinic")
        assert response.status == 200
        assert server.stats()["inflight"] == 0
