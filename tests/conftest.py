"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.graph import (
    grid_graph,
    paper_example_graph,
    parallel_paths_graph,
    path_graph,
    quasistatic_example_graph,
    rmat_graph,
)


@pytest.fixture
def paper_example():
    """The Fig. 5a example instance (max flow 2)."""
    return paper_example_graph()


@pytest.fixture
def quasistatic_example():
    """The Section 6.5 / Fig. 15 example instance (max flow 4)."""
    return quasistatic_example_graph()


@pytest.fixture
def small_rmat():
    """A small, deterministic R-MAT instance used across modules."""
    return rmat_graph(30, 100, seed=7)


@pytest.fixture
def medium_rmat():
    """A medium R-MAT instance for algorithm cross-checks."""
    return rmat_graph(80, 320, seed=11)


@pytest.fixture
def small_grid():
    """A small vision-style grid graph."""
    return grid_graph(3, 5, capacity=2.0, seed=5, capacity_jitter=0.25)


@pytest.fixture
def unit_path():
    """A 3-edge unit-capacity path (max flow 1)."""
    return path_graph(2, [1.0, 1.0, 1.0])


@pytest.fixture
def three_parallel_paths():
    """Three disjoint unit paths (max flow 3)."""
    return parallel_paths_graph(3, path_length=2, capacity=1.0)
