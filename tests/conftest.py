"""Shared fixtures for the test suite.

Randomized-suite reproducibility
--------------------------------
Every randomized suite derives its RNG seeds from ``REPRO_TEST_SEED``
(default ``20150607``); export the env var to replay a red run exactly::

    REPRO_TEST_SEED=12345 python -m pytest tests/test_backend_conformance.py

The active seed is printed in the pytest header and appended to every
failure report, so a red conformance run can always be reproduced.

Slow tests
----------
The heaviest randomized cases are marked ``@pytest.mark.slow`` and skipped
by default to keep the tier-1 suite fast; ``--runslow`` (used by
``make test-conformance``) enables them.
"""

from __future__ import annotations

import asyncio
import inspect
import random

import pytest

from seeding import REPRO_TEST_SEED, derive_seed  # noqa: F401 - re-exported

from repro.graph import (
    grid_graph,
    paper_example_graph,
    parallel_paths_graph,
    path_graph,
    quasistatic_example_graph,
    rmat_graph,
)


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: heavy randomized case; skipped unless --runslow is given"
    )
    config.addinivalue_line(
        "markers", "asyncio: coroutine test run on a fresh event loop (built-in plumbing)"
    )


@pytest.hookimpl(tryfirst=True)
def pytest_pyfunc_call(pyfuncitem):
    """Run ``async def`` tests without a pytest-asyncio dependency.

    Each coroutine test gets a fresh event loop via :func:`asyncio.run`,
    so the server suites stay inside the tier-1 command with zero new
    hard deps.  Sync tests fall through to pytest's default caller.
    """
    fn = pyfuncitem.obj
    if not inspect.iscoroutinefunction(fn):
        return None
    argnames = pyfuncitem._fixtureinfo.argnames
    kwargs = {name: pyfuncitem.funcargs[name] for name in argnames}

    async def _bounded():
        # Backstop only (never hit on a passing run): an assertion that
        # fires while a gated fake backend is still blocked would
        # otherwise deadlock the server's draining close forever.
        await asyncio.wait_for(fn(**kwargs), timeout=120.0)

    asyncio.run(_bounded())
    return True


def pytest_addoption(parser):
    parser.addoption(
        "--runslow",
        action="store_true",
        default=False,
        help="run tests marked slow (the heavy randomized conformance cases)",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--runslow"):
        return
    skip_slow = pytest.mark.skip(reason="slow: pass --runslow (make test-conformance)")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


def pytest_report_header(config):
    return f"REPRO_TEST_SEED={REPRO_TEST_SEED} (export to replay randomized suites)"


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    if report.when == "call" and report.failed:
        report.sections.append(
            (
                "randomized-suite seed",
                f"REPRO_TEST_SEED={REPRO_TEST_SEED} reproduces this run",
            )
        )


@pytest.fixture
def test_seed() -> int:
    """The base seed every randomized suite derives from."""
    return REPRO_TEST_SEED


@pytest.fixture
def rng(test_seed):
    """A ``random.Random`` seeded from REPRO_TEST_SEED."""
    return random.Random(test_seed)


@pytest.fixture
def paper_example():
    """The Fig. 5a example instance (max flow 2)."""
    return paper_example_graph()


@pytest.fixture
def quasistatic_example():
    """The Section 6.5 / Fig. 15 example instance (max flow 4)."""
    return quasistatic_example_graph()


@pytest.fixture
def small_rmat():
    """A small, deterministic R-MAT instance used across modules."""
    return rmat_graph(30, 100, seed=7)


@pytest.fixture
def medium_rmat():
    """A medium R-MAT instance for algorithm cross-checks."""
    return rmat_graph(80, 320, seed=11)


@pytest.fixture
def small_grid():
    """A small vision-style grid graph."""
    return grid_graph(3, 5, capacity=2.0, seed=5, capacity_jitter=0.25)


@pytest.fixture
def unit_path():
    """A 3-edge unit-capacity path (max flow 1)."""
    return path_graph(2, [1.0, 1.0, 1.0])


@pytest.fixture
def three_parallel_paths():
    """Three disjoint unit paths (max flow 3)."""
    return parallel_paths_graph(3, path_length=2, capacity=1.0)
