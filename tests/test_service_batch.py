"""Batched solving service: API, backends, cache, concurrency, reporting."""

from __future__ import annotations

import math

import pytest

from repro import (
    BatchSolveService,
    FlowNetwork,
    SolveRequest,
    paper_example_graph,
    push_relabel,
    rmat_graph,
)
from repro.errors import AlgorithmError
from repro.service import (
    AnalogBackend,
    ClassicalBackend,
    CompiledCircuitCache,
    available_backends,
    create_backend,
    network_signature,
    register_backend,
)


def tiny_network(bottleneck: float = 2.0) -> FlowNetwork:
    g = FlowNetwork()
    g.add_edge("s", "a", 4.0)
    g.add_edge("a", "t", bottleneck)
    return g


# ----------------------------------------------------------------------
# Topology signatures and the compile cache
# ----------------------------------------------------------------------


def test_network_signature_distinguishes_topology_and_capacity():
    a, b, c = tiny_network(), tiny_network(), tiny_network(bottleneck=3.0)
    assert network_signature(a) == network_signature(b)
    assert network_signature(a) != network_signature(c)
    d = tiny_network()
    d.add_edge("s", "t", 1.0)
    assert network_signature(a) != network_signature(d)


def test_cache_lru_eviction_and_stats():
    cache = CompiledCircuitCache(max_entries=2)
    for key in ("a", "b", "c"):
        cache.store(key, key.upper())
    assert len(cache) == 2
    found, _ = cache.lookup("a")  # evicted as LRU
    assert not found
    found, value = cache.lookup("c")
    assert found and value == "C"
    stats = cache.stats()
    assert stats["hits"] == 1 and stats["misses"] == 1
    cache.clear()
    assert len(cache) == 0 and cache.stats()["hits"] == 0


def test_cache_zero_capacity_disables_memoization():
    cache = CompiledCircuitCache(max_entries=0)
    assert cache.get_or_create("k", lambda: 1) == 1
    assert cache.get_or_create("k", lambda: 2) == 2


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------


def test_classical_backend_matches_reference():
    network = paper_example_graph()
    exact = push_relabel(network).flow_value
    result = ClassicalBackend("dinic").solve(SolveRequest(network=network))
    assert result.ok
    assert abs(result.flow_value - exact) < 1e-9
    assert network.is_feasible_flow(result.edge_flows, capacity_tol=1e-6, conservation_tol=1e-6)


def test_analog_backend_compile_cache_round_trip():
    backend = AnalogBackend(cache=CompiledCircuitCache())
    network = tiny_network()
    first = backend.solve(SolveRequest(network=network))
    second = backend.solve(SolveRequest(network=network))
    assert first.ok and second.ok
    assert not first.cache_hit and second.cache_hit
    assert abs(first.flow_value - second.flow_value) < 1e-12


def test_analog_backend_handles_disconnected_network():
    g = FlowNetwork()
    g.add_edge("s", "a", 1.0)  # sink unreachable
    result = AnalogBackend(cache=CompiledCircuitCache()).solve(SolveRequest(network=g))
    assert result.ok and result.flow_value == 0.0


def test_backend_errors_are_captured_not_raised():
    class ExplodingBackend(ClassicalBackend):
        def _solve(self, request):
            raise RuntimeError("boom")

    result = ExplodingBackend("dinic").solve(SolveRequest(network=tiny_network()))
    assert not result.ok
    assert "boom" in result.error
    assert math.isnan(result.flow_value)


def test_registry_knows_analog_and_all_classical_algorithms():
    names = available_backends()
    assert "analog" in names
    for expected in ("dinic", "push-relabel", "edmonds-karp", "ford-fulkerson"):
        assert expected in names
    with pytest.raises(AlgorithmError):
        create_backend("quantum-annealer")


def test_register_custom_backend():
    register_backend("custom-bfs", lambda: ClassicalBackend("edmonds-karp"))
    backend = create_backend("custom-bfs")
    result = backend.solve(SolveRequest(network=tiny_network()))
    assert result.ok and abs(result.flow_value - 2.0) < 1e-9


# ----------------------------------------------------------------------
# The batch service
# ----------------------------------------------------------------------


def test_sixteen_instance_mixed_batch_one_call():
    """Acceptance: 16 mixed analog/classical instances through one API call."""
    networks = [rmat_graph(10, 25, seed=i) for i in range(8)]
    requests = []
    for i, network in enumerate(networks):
        exact = push_relabel(network).flow_value
        requests.append(
            SolveRequest(network=network, backend="dinic", tag=f"w{i}", reference_value=exact)
        )
        requests.append(
            SolveRequest(network=network, backend="analog", tag=f"w{i}", reference_value=exact)
        )
    service = BatchSolveService(max_workers=4)
    report = service.solve_batch(requests)

    assert report.num_requests == 16
    assert report.num_ok == 16
    assert report.backend_counts() == {"dinic": 8, "analog": 8}
    # Per-instance results come back in request order with timings.
    assert [r.tag for r in report.results] == [f"w{i // 2}" for i in range(16)]
    assert all(r.wall_time_s > 0 for r in report.results)
    # Classical results are exact; analog results are physical approximations.
    for result in report.results:
        if result.backend == "dinic":
            assert result.relative_error < 1e-9
        else:
            assert result.relative_error is not None
    # Aggregate stats are consistent.
    summary = report.summary()
    assert summary["ok"] == 16 and summary["failed"] == 0
    assert summary["wall_time_s"] > 0
    assert summary["solve_time_max_s"] <= summary["solve_time_total_s"] + 1e-12
    # And the report formats through the bench reporting helpers.
    table = report.format(title="acceptance")
    assert "acceptance" in table and "16/16 ok" in table


def test_batch_accepts_bare_networks_and_uses_analog_default():
    # max_workers=1 keeps the two identical requests sequential: the cache
    # deliberately has no single-flight, so concurrent first-misses may both
    # compile and a >=1-hit assertion would be racy on a wider pool.
    report = BatchSolveService(max_workers=1).solve_batch([tiny_network(), tiny_network()])
    assert report.num_ok == 2
    assert all(r.backend == "analog" for r in report.results)
    # Identical topologies share one compiled circuit.
    assert report.cache_stats["hits"] >= 1


def test_batch_rejects_unknown_backend_up_front():
    with pytest.raises(AlgorithmError):
        BatchSolveService().solve_batch([SolveRequest(network=tiny_network(), backend="nope")])
    with pytest.raises(AlgorithmError):
        BatchSolveService().solve_batch(["not a network"])


def test_empty_batch():
    report = BatchSolveService().solve_batch([])
    assert report.num_requests == 0
    assert report.total_wall_time_s == 0.0
    assert "(no rows)" in report.format()


def test_serial_and_thread_executors_agree():
    requests = [
        SolveRequest(network=rmat_graph(8, 14, seed=s), backend="push-relabel") for s in range(4)
    ]
    serial = BatchSolveService(executor="serial").solve_batch(requests)
    threaded = BatchSolveService(executor="thread", max_workers=4).solve_batch(requests)
    assert [r.flow_value for r in serial.results] == [r.flow_value for r in threaded.results]


def test_process_executor_round_trip():
    requests = [
        SolveRequest(network=tiny_network(), backend="dinic", tag="d"),
        SolveRequest(network=tiny_network(), backend="analog", tag="a"),
    ]
    report = BatchSolveService(executor="process", max_workers=2).solve_batch(requests)
    assert report.num_ok == 2
    assert report.executor == "process"
    assert abs(report.by_tag("d")[0].flow_value - 2.0) < 1e-9


def test_process_executor_single_request_keeps_shared_cache():
    """A one-request process batch runs inline and reuses the service cache."""
    service = BatchSolveService(executor="process", max_workers=2)
    network = tiny_network()
    first = service.solve_batch([SolveRequest(network=network, backend="analog")])
    second = service.solve_batch([SolveRequest(network=network, backend="analog")])
    assert first.results[0].cache_hit is False
    assert second.results[0].cache_hit is True


def test_single_solve_convenience():
    result = BatchSolveService().solve(tiny_network(), backend="dinic", validate=True)
    assert result.ok and abs(result.flow_value - 2.0) < 1e-9


def test_invalid_service_configuration():
    with pytest.raises(AlgorithmError):
        BatchSolveService(executor="fiber")
    with pytest.raises(AlgorithmError):
        BatchSolveService(max_workers=0)
