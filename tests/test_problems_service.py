"""Tests for the problem-reduction service front door.

Covers backend routing (classical / analog / sharded), decode-source
policy, report contents, batch solving through the shared worker pool,
strict-mode certificate enforcement, and failure propagation.
"""

from __future__ import annotations

import pytest

from seeding import derive_seed

import random

from repro.errors import CertificateError, ProblemError
from repro.problems import (
    BipartiteMatching,
    CertificateReport,
    ImageSegmentation,
    ProjectSelection,
    Reduction,
    Solution,
    solve_problem,
)
from repro.problems.base import Problem
from repro.service import (
    BatchSolveService,
    ProblemReport,
    ProblemSolve,
    ProblemSolveService,
)


@pytest.fixture(scope="module")
def service():
    return ProblemSolveService()


@pytest.fixture
def matching_problem():
    rng = random.Random(derive_seed("service-matching"))
    return BipartiteMatching(
        list(range(6)),
        list(range(6)),
        [(i, j) for i in range(6) for j in range(6) if rng.random() < 0.4],
    )


@pytest.fixture
def closure_problem():
    rng = random.Random(derive_seed("service-closure"))
    return ProjectSelection(
        {i: rng.uniform(-4.0, 4.0) for i in range(8)},
        [(i, (i + 1) % 8) for i in range(0, 8, 2)],
    )


class TestRouting:
    def test_classical_decodes_from_backend_flow(self, service, matching_problem):
        solved = service.solve(matching_problem, backend="dinic")
        assert solved.report.decode_source == "backend"
        assert solved.certified
        assert solved.result.backend == "dinic"

    def test_analog_uses_decode_pass(self, service, matching_problem):
        solved = service.solve(matching_problem, backend="analog")
        assert solved.report.decode_source == "decode-pass"
        assert solved.certified
        assert solved.report.backend_value_error is not None
        assert solved.report.backend_value_error < 2e-2

    def test_sharded_cut_problem_decodes_from_partition(self, service, closure_problem):
        solved = service.solve(closure_problem, backend="dinic", shards=2)
        assert solved.report.decode_source == "partition"
        assert solved.certified
        assert solved.report.shards == 2
        assert solved.report.backend.startswith("sharded:")

    def test_sharded_flow_problem_falls_back_to_decode_pass(
        self, service, matching_problem
    ):
        solved = service.solve(matching_problem, backend="dinic", shards=2)
        assert solved.report.decode_source == "decode-pass"
        assert solved.certified

    def test_backends_agree_on_objective(self, service, closure_problem):
        reference = solve_problem(closure_problem)[0].value
        for kwargs in (
            dict(backend="dinic"),
            dict(backend="push-relabel"),
            dict(backend="analog"),
            dict(backend="dinic", shards=2),
        ):
            solved = service.solve(closure_problem, **kwargs)
            assert solved.value == pytest.approx(reference, abs=1e-9)

    def test_unknown_backend_raises(self, service, matching_problem):
        with pytest.raises(Exception):
            service.solve(matching_problem, backend="not-a-backend")

    def test_tag_is_echoed_on_every_route(self, service, matching_problem):
        flat = service.solve(matching_problem, backend="dinic", tag="job-42")
        assert flat.result.request.tag == "job-42"
        sharded = service.solve(
            matching_problem, backend="dinic", shards=2, tag="job-43"
        )
        assert sharded.result.request.tag == "job-43"


class TestReports:
    def test_report_fields(self, service, matching_problem):
        solved = service.solve(matching_problem, backend="dinic", tag="conf")
        report = solved.report
        assert report.kind == "bipartite-matching"
        assert report.network_vertices > 0
        assert report.network_edges > 0
        assert report.certificate_status == "certified"
        assert report.certified
        assert report.wall_time_s >= 0.0
        summary = report.summary()
        assert summary["kind"] == "bipartite-matching"
        assert "objective" in summary and "certificate" in summary
        line = report.format()
        assert "bipartite-matching" in line and "certified" in line

    def test_solution_carries_certificate_checks(self, service, matching_problem):
        solved = service.solve(matching_problem, backend="dinic")
        checks = solved.solution.certificate.checks
        assert "koenig-equality" in checks
        assert "backend-value-consistent" in checks

    def test_problem_solve_shorthands(self, service, matching_problem):
        solved = service.solve(matching_problem, backend="dinic")
        assert isinstance(solved, ProblemSolve)
        assert solved.value == solved.solution.value
        assert solved.certified is True
        assert isinstance(solved.report, ProblemReport)


class TestBatch:
    def test_solve_batch_mixes_reductions(self, service):
        rng = random.Random(derive_seed("service-batch"))
        problems = [
            BipartiteMatching(
                list(range(5)),
                list(range(5)),
                [(i, j) for i in range(5) for j in range(5) if rng.random() < 0.4],
            ),
            ImageSegmentation(
                [[rng.random() for _ in range(4)] for _ in range(3)],
                [[rng.random() for _ in range(4)] for _ in range(3)],
                smoothness=0.2,
            ),
            ProjectSelection({0: 3.0, 1: -1.0}, [(0, 1)]),
        ]
        solves = service.solve_batch(problems, backend="dinic")
        assert len(solves) == 3
        assert all(s.certified for s in solves)
        # The batch path must account the reduction stage like solve() does.
        assert all(s.report.reduce_time_s > 0.0 for s in solves)
        kinds = [s.report.kind for s in solves]
        assert kinds == [
            "bipartite-matching",
            "image-segmentation",
            "project-selection",
        ]
        references = [solve_problem(p)[0].value for p in problems]
        for solved, reference in zip(solves, references):
            assert solved.value == pytest.approx(reference, abs=1e-9)

    def test_batch_shares_the_injected_service(self):
        batch = BatchSolveService(max_workers=2, executor="serial")
        service = ProblemSolveService(batch_service=batch)
        problem = ProjectSelection({0: 2.0, 1: -1.0}, [(0, 1)])
        solved = service.solve(problem, backend="dinic")
        assert solved.certified


class _BrokenDecodeProblem(Problem):
    """A problem whose verify always fails — exercises strict mode."""

    kind = "broken"
    decode_from = "flow"

    def reduce(self):
        from repro.graph import FlowNetwork

        network = FlowNetwork()
        network.add_edge("s", "t", 1.0)
        return Reduction(problem=self, network=network)

    def decode(self, reduction, flow=None, cut=None):
        flow = self._require_flow(flow)
        return Solution(kind=self.kind, value=0.0, flow_value=flow.flow_value)

    def verify(self, reduction, solution, flow=None, cut=None, tolerance=1e-9):
        report = CertificateReport(tolerance=tolerance)
        report.require("always-fails", False, "by construction")
        return report


class TestStrictAndFailures:
    def test_default_mode_reports_failed_certificate(self):
        service = ProblemSolveService()
        solved = service.solve(_BrokenDecodeProblem(), backend="dinic")
        assert not solved.certified
        assert solved.report.certificate_status.startswith("FAILED")

    def test_strict_mode_raises_certificate_error(self):
        service = ProblemSolveService(strict=True)
        with pytest.raises(CertificateError):
            service.solve(_BrokenDecodeProblem(), backend="dinic")

    def test_decode_without_flow_raises_problem_error(self):
        problem = _BrokenDecodeProblem()
        reduction = problem.reduce()
        with pytest.raises(ProblemError):
            problem.decode(reduction, flow=None)

    def test_value_rtol_override_tightens_analog_check(self, matching_problem):
        service = ProblemSolveService()
        solved = service.solve(
            matching_problem, backend="analog", value_rtol=1e-15
        )
        # An impossibly tight tolerance fails the consistency check but the
        # decoded solution itself is still the exact one.
        assert not solved.certified
        assert "backend-value-consistent" in solved.report.certificate_status


class TestTopLevelExports:
    def test_problem_layer_is_exported_from_repro(self):
        import repro

        for name in (
            "BipartiteMatching",
            "DisjointPaths",
            "ImageSegmentation",
            "ProjectSelection",
            "ProblemSolveService",
            "solve_problem",
            "CertificateReport",
        ):
            assert hasattr(repro, name), name
            assert name in repro.__all__
