"""Unit tests for the resilience policy primitives.

Covers the :class:`~repro.resilience.policy.Deadline` budget semantics, the
ambient :func:`deadline_scope` / :func:`check_deadline` plumbing (including
nesting and thread hand-off), the deterministic
:class:`~repro.resilience.policy.RetryPolicy` backoff, and the
:class:`~repro.resilience.policy.CircuitBreaker` state machine.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import ConfigurationError, ConvergenceError, ReproError, SolveTimeoutError
from repro.resilience.policy import (
    CircuitBreaker,
    Deadline,
    RetryPolicy,
    active_deadline,
    check_deadline,
    deadline_scope,
)


class TestDeadline:
    def test_fresh_deadline_is_not_expired(self):
        d = Deadline(60.0)
        assert not d.expired()
        assert 0.0 < d.remaining() <= 60.0
        d.check("anywhere")  # no raise

    def test_expired_deadline_raises_with_site_and_label(self):
        d = Deadline(1e-9, label="unit")
        with pytest.raises(SolveTimeoutError) as info:
            while True:
                d.check("busy loop")
        assert "busy loop" in str(info.value)
        assert "unit" in str(info.value)

    def test_budget_must_be_positive(self):
        for bad in (0.0, -1.0):
            with pytest.raises(ConfigurationError):
                Deadline(bad)

    def test_from_seconds_propagates_none(self):
        assert Deadline.from_seconds(None) is None
        assert isinstance(Deadline.from_seconds(5.0), Deadline)


class TestDeadlineScope:
    def test_no_active_deadline_by_default(self):
        assert active_deadline() is None
        check_deadline("idle")  # cheap no-op

    def test_scope_makes_deadline_ambient_and_restores(self):
        with deadline_scope(30.0, label="outer") as d:
            assert active_deadline() is d
        assert active_deadline() is None

    def test_none_scope_is_a_no_op(self):
        with deadline_scope(None):
            assert active_deadline() is None

    def test_nested_scope_keeps_the_tighter_deadline(self):
        tight = Deadline(0.5)
        with deadline_scope(tight):
            # A looser inner budget must NOT extend the outer one.
            with deadline_scope(3600.0) as inner:
                assert inner is tight
                assert active_deadline() is tight
            # A tighter inner budget takes over, then restores.
            tighter = Deadline(0.1)
            with deadline_scope(tighter) as inner2:
                assert inner2 is tighter
            assert active_deadline() is tight

    def test_check_deadline_raises_inside_expired_scope(self):
        with deadline_scope(1e-9):
            with pytest.raises(SolveTimeoutError):
                while True:
                    check_deadline("spin")

    def test_deadline_object_crosses_threads_by_rescoping(self):
        # contextvars don't propagate into worker threads; the executors
        # capture the Deadline object and re-open the scope — the absolute
        # expiry must mean the same instant there.
        d = Deadline(1e-9)
        seen = {}

        def worker():
            assert active_deadline() is None
            with deadline_scope(d):
                try:
                    while True:
                        check_deadline("worker")
                except SolveTimeoutError:
                    seen["timed_out"] = True

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        assert seen == {"timed_out": True}


class TestRetryPolicy:
    def test_success_on_first_attempt_calls_once(self):
        calls = []
        policy = RetryPolicy(max_attempts=3, sleep=lambda s: None)
        assert policy.run(lambda: calls.append(1) or "ok") == "ok"
        assert len(calls) == 1

    def test_retries_then_succeeds(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise ConvergenceError("transient")
            return 42

        policy = RetryPolicy(max_attempts=3, base_delay_s=0.0, sleep=lambda s: None)
        assert policy.run(flaky) == 42
        assert len(attempts) == 3

    def test_exhausted_attempts_reraise_last_error(self):
        policy = RetryPolicy(max_attempts=2, base_delay_s=0.0, sleep=lambda s: None)

        def always():
            raise ConvergenceError("permanent")

        with pytest.raises(ConvergenceError):
            policy.run(always)

    def test_non_repro_errors_are_not_retried(self):
        calls = []
        policy = RetryPolicy(max_attempts=5, sleep=lambda s: None)

        def boom():
            calls.append(1)
            raise ValueError("not ours")

        with pytest.raises(ValueError):
            policy.run(boom)
        assert len(calls) == 1

    def test_timeouts_are_never_retried(self):
        calls = []
        policy = RetryPolicy(max_attempts=5, sleep=lambda s: None)

        def timed_out():
            calls.append(1)
            raise SolveTimeoutError("budget gone")

        with pytest.raises(SolveTimeoutError):
            policy.run(timed_out)
        assert len(calls) == 1

    def test_backoff_is_deterministic_and_monotone_under_clamp(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay_s=0.1, multiplier=2.0, max_delay_s=10.0,
            jitter=0.1, seed=7, sleep=lambda s: None,
        )
        a = [policy.delay_for(i) for i in range(1, 5)]
        b = [policy.delay_for(i) for i in range(1, 5)]
        assert a == b  # seeded jitter: identical replay
        # Within 10% jitter the exponential growth still dominates.
        assert a[0] < a[1] < a[2] < a[3]
        assert policy.delay_for(1) == pytest.approx(0.1, rel=0.11)

    def test_zero_base_delay_means_no_sleep(self):
        slept = []
        policy = RetryPolicy(
            max_attempts=3, base_delay_s=0.0, sleep=lambda s: slept.append(s)
        )

        def flaky_once():
            if not slept and not getattr(flaky_once, "done", False):
                flaky_once.done = True
                raise ConvergenceError("once")
            return "ok"

        assert policy.run(flaky_once) == "ok"
        assert slept == []

    def test_sleep_that_would_outlive_deadline_raises_instead(self):
        slept = []
        policy = RetryPolicy(
            max_attempts=3, base_delay_s=5.0, jitter=0.0,
            sleep=lambda s: slept.append(s),
        )

        def always():
            raise ConvergenceError("transient")

        with deadline_scope(0.5):
            with pytest.raises(ConvergenceError):
                policy.run(always)
        assert slept == []  # never slept into the expired budget

    def test_on_retry_observes_each_failed_attempt(self):
        observed = []
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.0, sleep=lambda s: None)
        state = {"n": 0}

        def flaky():
            state["n"] += 1
            if state["n"] < 3:
                raise ConvergenceError(f"fail {state['n']}")
            return "ok"

        policy.run(flaky, on_retry=lambda attempt, exc: observed.append(attempt))
        assert observed == [1, 2]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_delay_s=-0.1)

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRY_MAX_ATTEMPTS", "5")
        monkeypatch.setenv("REPRO_RETRY_BASE_DELAY_S", "0.25")
        monkeypatch.setenv("REPRO_RETRY_SEED", "99")
        policy = RetryPolicy.from_env()
        assert policy.max_attempts == 5
        assert policy.base_delay_s == 0.25
        assert policy.seed == 99
        # Keyword overrides beat the environment.
        assert RetryPolicy.from_env(max_attempts=1).max_attempts == 1


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def test_starts_closed_and_allows(self):
        breaker = CircuitBreaker()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_opens_after_threshold_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(window=4, failure_threshold=2, cooldown_s=10.0, clock=clock)
        breaker.record_failure()
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()

    def test_successes_age_failures_out_of_the_window(self):
        breaker = CircuitBreaker(window=3, failure_threshold=2, cooldown_s=10.0)
        breaker.record_failure()
        for _ in range(3):
            breaker.record_success()
        assert breaker.failure_count == 0
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(window=2, failure_threshold=1, cooldown_s=5.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.now = 5.0
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()  # one probe
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.failure_count == 0

    def test_half_open_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(window=2, failure_threshold=1, cooldown_s=5.0, clock=clock)
        breaker.record_failure()
        clock.now = 5.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        clock.now = 9.9
        assert not breaker.allow()  # cooldown restarted at re-open
        clock.now = 10.0
        assert breaker.allow()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(window=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(window=2, failure_threshold=3)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(cooldown_s=-1.0)
