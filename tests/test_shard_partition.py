"""Tests for the N-way overlapping partitioner (`repro.shard.partition`)."""

from __future__ import annotations

import math

import pytest

from repro.errors import DecompositionError
from repro.graph import grid_graph, paper_example_graph, rmat_graph
from repro.shard import partition_multiway


NETWORKS = [
    ("paper", lambda: paper_example_graph()),
    ("grid", lambda: grid_graph(4, 8, capacity=2.0, seed=3, capacity_jitter=0.3)),
    ("rmat", lambda: rmat_graph(30, 90, seed=5)),
]


class TestPartitionStructure:
    @pytest.mark.parametrize("name, factory", NETWORKS)
    @pytest.mark.parametrize("num_shards", [2, 3, 4])
    def test_cores_partition_the_vertices(self, name, factory, num_shards):
        network = factory()
        if num_shards > max(2, network.num_vertices - 2):
            pytest.skip("more shards than interior vertices")
        partition = partition_multiway(network, num_shards)
        assert partition.num_shards == num_shards
        seen = set()
        for core in partition.cores:
            assert not (core & seen), "cores must be disjoint"
            seen |= core
        assert seen == set(network.vertices())
        assert network.source in partition.cores[0]
        assert network.sink in partition.cores[-1]

    @pytest.mark.parametrize("name, factory", NETWORKS)
    @pytest.mark.parametrize("num_shards", [2, 3, 4])
    def test_sides_cover_and_contain_terminals(self, name, factory, num_shards):
        network = factory()
        if num_shards > max(2, network.num_vertices - 2):
            pytest.skip("more shards than interior vertices")
        partition = partition_multiway(network, num_shards)
        covered = set()
        for side in partition.sides:
            assert network.source in side and network.sink in side
            covered |= side
        assert covered == set(network.vertices())

    @pytest.mark.parametrize("name, factory", NETWORKS)
    @pytest.mark.parametrize("num_shards", [2, 3, 4])
    def test_membership_matches_sides(self, name, factory, num_shards):
        network = factory()
        if num_shards > max(2, network.num_vertices - 2):
            pytest.skip("more shards than interior vertices")
        partition = partition_multiway(network, num_shards)
        terminals = {network.source, network.sink}
        for vertex, members in partition.membership.items():
            assert vertex not in terminals
            for shard in range(num_shards):
                assert (vertex in partition.sides[shard]) == (shard in members)
        assert partition.overlap == {
            v for v, members in partition.membership.items() if len(members) > 1
        }

    @pytest.mark.parametrize("name, factory", NETWORKS)
    @pytest.mark.parametrize("num_shards", [2, 3, 4])
    def test_capacity_shares_sum_to_original(self, name, factory, num_shards):
        """Every finite edge's capacity is split exactly across its shards."""
        network = factory()
        if num_shards > max(2, network.num_vertices - 2):
            pytest.skip("more shards than interior vertices")
        partition = partition_multiway(network, num_shards)
        totals = {}
        for sub in partition.subproblems:
            for edge in sub.edges():
                key = (edge.tail, edge.head)
                totals[key] = totals.get(key, 0.0) + edge.capacity
        for edge in network.edges():
            if edge.is_uncapacitated:
                continue
            key = (edge.tail, edge.head)
            expected = sum(
                e.capacity for e in network.find_edges(edge.tail, edge.head)
            )
            assert totals[key] == pytest.approx(expected)

    def test_two_way_overlap_edges_split_in_half(self):
        network = grid_graph(2, 4, capacity=2.0)
        partition = partition_multiway(network, 2)
        for shard, sub in enumerate(partition.subproblems):
            for edge in sub.edges():
                if edge.tail in partition.overlap and edge.head in partition.overlap:
                    if partition.edge_share.get(
                        network.find_edges(edge.tail, edge.head)[0].index
                    ) == 2:
                        originals = network.find_edges(edge.tail, edge.head)
                        assert edge.capacity == pytest.approx(
                            originals[0].capacity / 2.0
                        )

    def test_geometric_method_covers(self):
        network = grid_graph(4, 10, capacity=1.0, seed=2, capacity_jitter=0.2)
        partition = partition_multiway(network, 3, method="geometric")
        covered = set()
        for side in partition.sides:
            covered |= side
        assert covered == set(network.vertices())

    def test_fractions_bias_the_split(self):
        network = grid_graph(4, 12, capacity=1.0)
        lopsided = partition_multiway(network, 2, fractions=[0.8, 0.2])
        even = partition_multiway(network, 2)
        assert len(lopsided.cores[0]) > len(even.cores[0])

    def test_describe_reports_sizes(self):
        network = paper_example_graph()
        summary = partition_multiway(network, 2).describe()
        assert summary["shards"] == 2
        assert sum(summary["core_sizes"]) == network.num_vertices


class TestPartitionValidation:
    def test_too_few_shards(self):
        with pytest.raises(DecompositionError):
            partition_multiway(paper_example_graph(), 1)

    def test_more_shards_than_interior_vertices(self):
        network = paper_example_graph()
        with pytest.raises(DecompositionError):
            partition_multiway(network, network.num_vertices - 1)

    def test_tiny_networks_still_split_two_ways(self):
        from repro.graph import FlowNetwork

        path = FlowNetwork()
        path.add_edge("s", "a", 2.0)
        path.add_edge("a", "t", 1.0)
        partition = partition_multiway(path, 2)  # one interior vertex
        seen = set()
        for core in partition.cores:
            assert not (core & seen)
            seen |= core
        assert seen == set(path.vertices())
        with pytest.raises(DecompositionError):
            partition_multiway(path, 3)

    def test_unknown_method(self):
        with pytest.raises(DecompositionError):
            partition_multiway(paper_example_graph(), 2, method="metis")

    @pytest.mark.parametrize(
        "fractions", [[0.5], [0.5, 0.6], [0.0, 1.0], [-0.2, 1.2]]
    )
    def test_bad_fractions(self, fractions):
        with pytest.raises(DecompositionError):
            partition_multiway(paper_example_graph(), 2, fractions=fractions)

    def test_uncapacitated_edges_keep_infinity(self):
        network = paper_example_graph()
        network.add_edge("s", "t", math.inf)
        partition = partition_multiway(network, 2)
        shared = [
            edge
            for sub in partition.subproblems
            for edge in sub.edges()
            if edge.is_uncapacitated
        ]
        assert shared, "infinite edges must stay infinite in every subproblem"
