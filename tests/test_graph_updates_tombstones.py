"""Tombstone semantics of the streaming update log (`graph/updates.py`).

An `EdgeRemove` is applied as a capacity-0 tombstone (edge indices must stay
stable for circuit-node names and cached sparsity patterns); a subsequent
`EdgeInsert` on the *same* (u, v) pair must create a fresh edge index while
the tombstone stays dead.  These tests pin down the index / signature /
revision bookkeeping of that sequence and its incremental-vs-cold solver
agreement.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.errors import EdgeNotFoundError
from repro.flows.incremental import IncrementalMaxFlow
from repro.flows.registry import get_algorithm
from repro.graph import FlowNetwork, rmat_graph
from repro.graph.updates import (
    CapacityUpdate,
    EdgeInsert,
    EdgeRemove,
    MutableFlowNetwork,
    topology_signature,
)


def _diamond() -> FlowNetwork:
    g = FlowNetwork()
    g.add_edge("s", "a", 3.0)
    g.add_edge("s", "b", 2.0)
    g.add_edge("a", "t", 2.0)
    g.add_edge("b", "t", 3.0)
    g.add_edge("a", "b", 1.0)
    return g


class TestRemoveThenReinsertSamePair:
    def test_reinsert_gets_fresh_index_and_tombstone_stays(self):
        dynamic = MutableFlowNetwork(_diamond())
        removed_index = 2  # a -> t
        batch = dynamic.apply([EdgeRemove(removed_index)])
        assert batch.removed_edges == (removed_index,)
        assert dynamic.is_removed(removed_index)
        assert dynamic.network.edge(removed_index).capacity == 0.0

        batch = dynamic.apply([EdgeInsert("a", "t", 4.5)])
        (edge,) = batch.inserted_edges
        assert edge.index == dynamic.network.num_edges - 1
        assert edge.index != removed_index
        assert dynamic.network.edge(edge.index).capacity == 4.5
        # The tombstone is still dead: same endpoints, zero capacity, and
        # excluded from the live view.
        assert dynamic.is_removed(removed_index)
        assert not dynamic.is_removed(edge.index)
        live = {e.index for e in dynamic.live_edges()}
        assert removed_index not in live
        assert edge.index in live

    def test_tombstone_stays_unwritable_after_reinsert(self):
        dynamic = MutableFlowNetwork(_diamond())
        dynamic.apply([EdgeRemove(2), EdgeInsert("a", "t", 4.5)])
        with pytest.raises(EdgeNotFoundError):
            dynamic.apply([CapacityUpdate(2, 1.0)])
        with pytest.raises(EdgeNotFoundError):
            dynamic.apply([EdgeRemove(2)])
        # The replacement edge itself stays updatable.
        dynamic.apply([CapacityUpdate(5, 1.25)])
        assert dynamic.network.edge(5).capacity == 1.25

    def test_signature_and_revision_bookkeeping(self):
        dynamic = MutableFlowNetwork(_diamond())
        base_signature = dynamic.topology_signature()
        base_structural = dynamic.structural_revision

        # A finite-capacity removal is a pure capacity edit: the sparsity
        # pattern (and hence the compiled-circuit cache key half) is stable.
        batch = dynamic.apply([EdgeRemove(2)])
        assert not batch.structural
        assert dynamic.structural_revision == base_structural
        assert dynamic.topology_signature() == base_signature

        # Re-inserting the same (u, v) pair appends a new edge: structural.
        batch = dynamic.apply([EdgeInsert("a", "t", 4.5)])
        assert batch.structural
        assert dynamic.structural_revision == base_structural + 1
        assert dynamic.topology_signature() != base_signature

        # Two networks evolved through the same event stream agree on both
        # halves of the cache key.
        twin = MutableFlowNetwork(_diamond())
        twin.apply([EdgeRemove(2)])
        twin.apply([EdgeInsert("a", "t", 4.5)])
        assert twin.cache_key() == dynamic.cache_key()

    def test_infinite_edge_removal_is_structural(self):
        g = _diamond()
        g.add_edge("s", "t", math.inf)
        dynamic = MutableFlowNetwork(g)
        batch = dynamic.apply([EdgeRemove(5)])
        assert batch.structural  # the upper clamp disappears from the circuit

    def test_remove_insert_in_one_batch(self):
        dynamic = MutableFlowNetwork(_diamond())
        signature_before = dynamic.topology_signature()
        batch = dynamic.apply([EdgeRemove(2), EdgeInsert("a", "t", 6.0)])
        assert batch.structural
        assert batch.removed_edges == (2,)
        assert len(batch.inserted_edges) == 1
        assert batch.capacity_changes[2] == (2.0, 0.0)
        assert dynamic.topology_signature() != signature_before


class TestIncrementalVsColdThroughTombstones:
    def test_diamond_remove_reinsert_agrees_with_cold(self):
        dynamic = MutableFlowNetwork(_diamond())
        engine = IncrementalMaxFlow(dynamic, cold_ratio=1.0)
        result = engine.push([EdgeRemove(2)])
        cold = get_algorithm("dinic").solve(dynamic.snapshot())
        assert result.flow_value == pytest.approx(cold.flow_value, abs=1e-9)

        result = engine.push([EdgeInsert("a", "t", 4.5)])
        cold = get_algorithm("dinic").solve(dynamic.snapshot())
        assert result.flow_value == pytest.approx(cold.flow_value, abs=1e-9)

    def test_randomized_remove_reinsert_stream(self):
        rng = random.Random(20260730)
        network = rmat_graph(24, 70, seed=13)
        dynamic = MutableFlowNetwork(network)
        engine = IncrementalMaxFlow(dynamic, cold_ratio=1.0)
        removed: set = set()
        for _ in range(12):
            events = []
            live = [e for e in dynamic.live_edges()]
            victim = rng.choice(live)
            events.append(EdgeRemove(victim.index))
            removed.add(victim.index)
            # Re-insert an edge over a previously tombstoned pair half the
            # time, so indices interleave with tombstones.
            if removed and rng.random() < 0.5:
                back = dynamic.network.edge(rng.choice(sorted(removed)))
                events.append(
                    EdgeInsert(back.tail, back.head, rng.uniform(0.5, 5.0))
                )
            result = engine.push(events)
            cold = get_algorithm("dinic").solve(dynamic.snapshot())
            assert result.flow_value == pytest.approx(cold.flow_value, abs=1e-9)
            # Tombstones never resurface in the live view.
            live_now = {e.index for e in dynamic.live_edges()}
            assert not (removed & live_now)
