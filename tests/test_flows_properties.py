"""Property-based tests (hypothesis) for the max-flow substrate invariants."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.flows import Dinic, EdmondsKarp, PushRelabel, min_cut_from_flow
from repro.graph import FlowNetwork, rmat_graph
from repro.graph.analysis import upper_bound_flow


@st.composite
def flow_networks(draw):
    """Random small flow networks with integer capacities."""
    num_vertices = draw(st.integers(min_value=2, max_value=12))
    vertices = list(range(num_vertices))
    source, sink = 0, num_vertices - 1
    network = FlowNetwork(source=source, sink=sink)
    for vertex in vertices:
        network.add_vertex(vertex)
    max_edges = min(30, num_vertices * (num_vertices - 1))
    num_edges = draw(st.integers(min_value=1, max_value=max_edges))
    pairs = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=num_vertices - 1),
                st.integers(min_value=0, max_value=num_vertices - 1),
            ),
            min_size=num_edges,
            max_size=num_edges,
        )
    )
    capacities = draw(
        st.lists(
            st.integers(min_value=1, max_value=20),
            min_size=num_edges,
            max_size=num_edges,
        )
    )
    for (tail, head), capacity in zip(pairs, capacities):
        if tail == head:
            continue
        network.add_edge(tail, head, float(capacity))
    return network


@settings(max_examples=40, deadline=None)
@given(network=flow_networks())
def test_algorithms_agree_and_are_feasible(network):
    dinic_result = Dinic().solve(network)
    ek_result = EdmondsKarp().solve(network)
    pr_result = PushRelabel().solve(network)
    assert dinic_result.flow_value == pytest.approx(ek_result.flow_value, abs=1e-6)
    assert dinic_result.flow_value == pytest.approx(pr_result.flow_value, abs=1e-6)
    for result in (dinic_result, ek_result, pr_result):
        assert network.is_feasible_flow(result.edge_flows, 1e-6, 1e-6)
        assert result.flow_value >= -1e-9


@settings(max_examples=40, deadline=None)
@given(network=flow_networks())
def test_maxflow_equals_mincut(network):
    flow = Dinic().solve(network)
    cut = min_cut_from_flow(network, flow)
    assert cut.cut_value == pytest.approx(flow.flow_value, abs=1e-6)
    # Every s-t cut is an upper bound on the flow value.
    assert flow.flow_value <= network.cut_capacity({network.source}) + 1e-9


@settings(max_examples=40, deadline=None)
@given(network=flow_networks())
def test_flow_bounded_by_degree_cuts(network):
    flow_value = Dinic().solve(network).flow_value
    assert flow_value <= upper_bound_flow(network) + 1e-9


@settings(max_examples=25, deadline=None)
@given(network=flow_networks(), factor=st.integers(min_value=1, max_value=5))
def test_flow_scales_linearly_with_capacities(network, factor):
    from repro.graph.transforms import scale_capacities

    base = Dinic().solve(network).flow_value
    scaled = Dinic().solve(scale_capacities(network, float(factor))).flow_value
    assert scaled == pytest.approx(base * factor, abs=1e-6)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_rmat_generator_always_produces_connected_instances(seed):
    network = rmat_graph(20, 50, seed=seed)
    assert network.num_vertices == 20
    assert network.num_edges >= 50
    assert Dinic().solve(network).flow_value >= 0.0


@settings(max_examples=30, deadline=None)
@given(network=flow_networks())
def test_integral_capacities_give_integral_maxflow(network):
    value = Dinic().solve(network).flow_value
    assert value == pytest.approx(round(value), abs=1e-6)
