"""Convergence-time measurement and estimation (Section 5.1).

The paper measures the convergence time as the interval between the rising
edge of ``Vflow`` and the moment the flow value is within 0.1 % of its final
value, on a SPICE transient simulation with 20 fF of parasitic capacitance
per net and op-amps of 10-50 GHz gain-bandwidth product.

Two tools are provided:

* :func:`measure_convergence_time` — runs a full backward-Euler transient of
  the compiled circuit and applies exactly the paper's settling criterion.
  This is the ground truth, but a device-level transient of a
  1000-vertex/8000-edge substrate takes minutes in pure Python.
* :class:`ConvergenceTimeEstimator` — a settling-time model
  ``t = ln(1/tol) * depth * (a * tau_amp + b * tau_rc)`` whose coefficients
  are *calibrated against full transients of smaller instances* (the tests
  and the Fig. 10 harness do this calibration explicitly).  ``depth`` is the
  shortest-path distance from source to sink: information has to propagate
  through that many constraint widgets before the flow value can settle.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..config import NonIdealityModel, SubstrateParameters
from ..errors import SimulationError
from ..graph.network import FlowNetwork
from ..circuit.elements import Capacitor
from ..circuit.transient import TransientResult, TransientSimulator
from ..circuit.waveform import Waveform
from .compiler import CompiledMaxFlowCircuit

__all__ = [
    "ConvergenceMeasurement",
    "measure_convergence_time",
    "ConvergenceTimeEstimator",
]


@dataclass
class ConvergenceMeasurement:
    """Outcome of a transient convergence-time measurement."""

    convergence_time_s: float
    final_flow_value: float
    flow_waveform: Waveform
    transient: TransientResult
    t_stop: float
    dt: float

    @property
    def converged(self) -> bool:
        """True when the flow value settled within the simulated window."""
        return math.isfinite(self.convergence_time_s)


def _graph_depth(network: FlowNetwork) -> int:
    """Shortest-path (in edges) distance from source to sink; 1 if adjacent."""
    distances = {network.source: 0}
    frontier = deque([network.source])
    while frontier:
        vertex = frontier.popleft()
        if vertex == network.sink:
            return max(1, distances[vertex])
        for edge in network.out_edges(vertex):
            if edge.head not in distances:
                distances[edge.head] = distances[vertex] + 1
                frontier.append(edge.head)
    return max(1, distances.get(network.sink, 1))


def measure_convergence_time(
    compiled: CompiledMaxFlowCircuit,
    tolerance: float = 1e-3,
    t_stop: Optional[float] = None,
    dt: Optional[float] = None,
    num_steps: int = 1200,
    safety_factor: float = 8.0,
) -> ConvergenceMeasurement:
    """Measure the 0.1 %-settling time of the flow value by transient simulation.

    Parameters
    ----------
    compiled:
        A compiled max-flow circuit.  It must contain at least one dynamic
        element (parasitic capacitance or op-amp), otherwise the notion of a
        convergence time is meaningless and a :class:`SimulationError` is
        raised.
    tolerance:
        Relative settling band (0.001 reproduces the paper's criterion).
    t_stop, dt:
        Simulation window and step; by default the window is chosen as
        ``safety_factor`` times the analytical estimate and divided into
        ``num_steps`` steps.
    """
    circuit = compiled.circuit
    has_dynamics = bool(circuit.elements_of_type(Capacitor)) or compiled.opamp_count > 0
    if not has_dynamics:
        raise SimulationError(
            "the compiled circuit has no capacitors or op-amps; enable parasitic "
            "capacitance or the 'device' widget style before measuring convergence time"
        )

    if t_stop is None:
        estimator = ConvergenceTimeEstimator()
        estimate = estimator.estimate(
            compiled.network, compiled.parameters, compiled.nonideal
        )
        t_stop = max(estimate * safety_factor, 50 * _smallest_time_constant(compiled))
    if dt is None:
        dt = t_stop / num_steps

    record_nodes = list(compiled.edge_node.values())
    simulator = TransientSimulator()
    transient = simulator.run(
        circuit,
        t_stop=t_stop,
        dt=dt,
        record_nodes=record_nodes,
        record_currents=[compiled.vflow_source],
        initial="zero",
    )

    from .readout import FlowReadout

    readout = FlowReadout(compiled)
    flow_wave = readout.flow_waveform(transient)
    settle = flow_wave.settling_time(tolerance)
    return ConvergenceMeasurement(
        convergence_time_s=settle,
        final_flow_value=flow_wave.final_value,
        flow_waveform=flow_wave,
        transient=transient,
        t_stop=t_stop,
        dt=dt,
    )


def _smallest_time_constant(compiled: CompiledMaxFlowCircuit) -> float:
    """Smallest relevant time constant, used as a floor for the window size."""
    parameters = compiled.parameters
    nonideal = compiled.nonideal
    tau_rc = parameters.unit_resistance_ohm * max(
        nonideal.parasitic_capacitance_f, parameters.parasitic_capacitance_f, 1e-18
    )
    tau_amp = 1.0 / (2.0 * math.pi * nonideal.opamp_gbw_hz)
    return max(min(tau_rc, tau_amp), 1e-15)


@dataclass
class ConvergenceTimeEstimator:
    """Analytical settling-time model calibrated against transient runs.

    The model is

        ``t_conv = ln(1/tolerance) * depth * (a * tau_amp + b * tau_rc)``

    with ``tau_amp = 1 / (2*pi*GBW)``, ``tau_rc = r * C_parasitic`` and
    ``depth`` the source-to-sink shortest-path length.  The default
    coefficients come from calibrating against device-level transients of
    small instances (tests recalibrate explicitly); :meth:`calibrate` fits
    them to new measurements with non-negative least squares.
    """

    amp_coefficient: float = 30.0
    rc_coefficient: float = 1.6
    tolerance: float = 1e-3

    # -- model ---------------------------------------------------------------

    @staticmethod
    def time_constants(
        parameters: SubstrateParameters, nonideal: Optional[NonIdealityModel] = None
    ) -> Tuple[float, float]:
        """Return ``(tau_amp, tau_rc)`` for a parameter set."""
        gbw = nonideal.opamp_gbw_hz if nonideal is not None else parameters.opamp.gbw_hz
        cap = (
            nonideal.parasitic_capacitance_f
            if nonideal is not None and nonideal.parasitic_capacitance_f > 0
            else parameters.parasitic_capacitance_f
        )
        tau_amp = 1.0 / (2.0 * math.pi * gbw)
        tau_rc = parameters.unit_resistance_ohm * cap
        return tau_amp, tau_rc

    def stage_time(
        self, parameters: SubstrateParameters, nonideal: Optional[NonIdealityModel] = None
    ) -> float:
        """Per-constraint-stage settling time."""
        tau_amp, tau_rc = self.time_constants(parameters, nonideal)
        return self.amp_coefficient * tau_amp + self.rc_coefficient * tau_rc

    def estimate(
        self,
        network: FlowNetwork,
        parameters: SubstrateParameters,
        nonideal: Optional[NonIdealityModel] = None,
    ) -> float:
        """Estimated convergence time in seconds for ``network``."""
        depth = _graph_depth(network)
        settle = math.log(1.0 / self.tolerance)
        return settle * depth * self.stage_time(parameters, nonideal)

    def estimate_from_compiled(self, compiled: CompiledMaxFlowCircuit) -> float:
        """Estimate using the network/parameters stored in a compiled circuit."""
        return self.estimate(compiled.network, compiled.parameters, compiled.nonideal)

    # -- calibration ----------------------------------------------------------

    def calibrate(
        self,
        samples: Sequence[Tuple[FlowNetwork, SubstrateParameters, NonIdealityModel, float]],
    ) -> "ConvergenceTimeEstimator":
        """Fit the two coefficients to measured ``(network, params, nonideal, t)`` samples.

        Returns a new estimator; the original is left untouched.  The fit is
        a non-negative least squares on the two-term linear model.
        """
        if not samples:
            raise SimulationError("calibration needs at least one sample")
        rows = []
        targets = []
        for network, parameters, nonideal, measured in samples:
            depth = _graph_depth(network)
            settle = math.log(1.0 / self.tolerance)
            tau_amp, tau_rc = self.time_constants(parameters, nonideal)
            rows.append([settle * depth * tau_amp, settle * depth * tau_rc])
            targets.append(measured)
        matrix = np.asarray(rows, dtype=float)
        target = np.asarray(targets, dtype=float)
        try:
            from scipy.optimize import nnls

            coefficients, _residual = nnls(matrix, target)
        except Exception:  # pragma: no cover - nnls is always available with scipy
            coefficients, *_ = np.linalg.lstsq(matrix, target, rcond=None)
            coefficients = np.clip(coefficients, 0.0, None)
        amp_c = float(coefficients[0])
        rc_c = float(coefficients[1])
        # Degenerate calibration sets (single GBW) may zero one term; keep a
        # small floor so the model stays sensitive to both knobs.
        if amp_c == 0.0 and rc_c == 0.0:
            raise SimulationError("calibration produced a null model")
        return ConvergenceTimeEstimator(
            amp_coefficient=amp_c if amp_c > 0 else self.amp_coefficient,
            rc_coefficient=rc_c if rc_c > 0 else self.rc_coefficient,
            tolerance=self.tolerance,
        )
