"""Reading the max-flow solution out of a solved circuit.

Upon convergence the edge-node voltages encode the per-edge flows (scaled by
the quantization factor ``C / Vdd``), and the flow value can be obtained in
two ways that the paper both uses:

* summing the source-adjacent edge voltages (the definition of ``|f|``);
* measuring the current drawn from the ``Vflow`` source and applying
  Equation 7a, ``sum(V_xi) = t * Vflow - r * I_flow`` — this is how the
  physical substrate reads out the answer, because the internal nodes are
  not observable (limitation 3 in Section 6.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..circuit.dc import DCSolution
from ..circuit.transient import TransientResult
from ..errors import CircuitError
from .compiler import CompiledMaxFlowCircuit

__all__ = ["FlowReadout"]


@dataclass
class FlowReadout:
    """Decodes node voltages of a compiled circuit into flow quantities."""

    compiled: CompiledMaxFlowCircuit

    # ------------------------------------------------------------------
    # Voltage -> flow decoding
    # ------------------------------------------------------------------

    def edge_voltages(self, voltages: Mapping[str, float]) -> Dict[int, float]:
        """Per-edge node voltage for every *active* edge."""
        result: Dict[int, float] = {}
        for index, node in self.compiled.edge_node.items():
            try:
                result[index] = float(voltages[node])
            except KeyError as exc:
                raise CircuitError(f"solution does not contain node {node!r}") from exc
        return result

    def edge_flows(self, voltages: Mapping[str, float]) -> Dict[int, float]:
        """Per-edge flow (flow units) for **every** edge of the network.

        Inactive (pruned) edges are reported with zero flow.  Voltages are
        clipped at zero: a slightly negative steady-state voltage (possible
        with strong non-idealities) means "no flow".
        """
        scale = self.compiled.quantization.scale
        flows = {edge.index: 0.0 for edge in self.compiled.network.edges()}
        for index, voltage in self.edge_voltages(voltages).items():
            flows[index] = max(0.0, voltage) * scale
        return flows

    def flow_value_from_voltages(self, voltages: Mapping[str, float]) -> float:
        """Flow value ``|f|`` obtained by summing source-edge voltages."""
        scale = self.compiled.quantization.scale
        total_v = sum(
            voltages[self.compiled.edge_node[i]] for i in self.compiled.source_edge_indices
        )
        return max(0.0, total_v) * scale

    def flow_value_from_source_current(
        self, vflow_branch_current: float, vflow_v: Optional[float] = None
    ) -> float:
        """Flow value via Equation 7a, using the measured ``Vflow`` current.

        Parameters
        ----------
        vflow_branch_current:
            Branch current of the ``Vflow`` source using the SPICE sign
            convention (current flowing from the + terminal *through* the
            source); the current delivered to the circuit is its negative.
        vflow_v:
            The drive voltage; defaults to the compiled value.
        """
        vflow = self.compiled.vflow_v if vflow_v is None else float(vflow_v)
        t = len(self.compiled.source_edge_indices)
        r = self.compiled.parameters.unit_resistance_ohm
        delivered_current = -vflow_branch_current
        total_v = t * vflow - r * delivered_current
        return max(0.0, total_v) * self.compiled.quantization.scale

    # ------------------------------------------------------------------
    # Convenience wrappers for solver results
    # ------------------------------------------------------------------

    def from_dc(self, solution: DCSolution) -> Dict[str, object]:
        """Decode a DC operating point into flow quantities."""
        voltages = solution.voltages
        return {
            "edge_flows": self.edge_flows(voltages),
            "edge_voltages": self.edge_voltages(voltages),
            "flow_value": self.flow_value_from_voltages(voltages),
            "flow_value_from_current": self.flow_value_from_source_current(
                solution.branch_currents[self.compiled.vflow_source]
            ),
        }

    def from_transient(self, result: TransientResult) -> Dict[str, object]:
        """Decode the final time point of a transient simulation."""
        final_voltages = {name: values[-1] for name, values in result.node_voltages.items()}
        decoded = {
            "edge_flows": self.edge_flows(final_voltages),
            "edge_voltages": self.edge_voltages(final_voltages),
            "flow_value": self.flow_value_from_voltages(final_voltages),
        }
        if self.compiled.vflow_source in result.branch_currents:
            decoded["flow_value_from_current"] = self.flow_value_from_source_current(
                float(result.branch_currents[self.compiled.vflow_source][-1])
            )
        else:
            decoded["flow_value_from_current"] = decoded["flow_value"]
        return decoded

    def flow_waveform(self, result: TransientResult):
        """Time evolution of the flow value during a transient run.

        Returns a :class:`~repro.circuit.waveform.Waveform` of the flow value
        (in flow units), computed by summing the source-edge node voltages at
        every time point.  This is the signal whose 0.1 % settling time the
        paper reports as the convergence time.
        """
        import numpy as np

        from ..circuit.waveform import Waveform

        scale = self.compiled.quantization.scale
        total = np.zeros_like(result.times)
        for index in self.compiled.source_edge_indices:
            node = self.compiled.edge_node[index]
            total = total + result.node_voltages[node]
        return Waveform(result.times, np.maximum(total, 0.0) * scale, name="flow_value")
