"""Circuit widgets of the analog max-flow substrate (Sections 2.1-2.3).

The compiler composes three widget types:

* **capacity clamp** (Fig. 1): two diodes and a (shared) clamp voltage source
  keep an edge-node voltage inside ``[0, c_e]``;
* **negation widget + conservation widget** (Fig. 2): for every incoming edge
  a small sub-circuit produces the negated edge voltage, and a per-vertex
  node with a negative resistor ``-r/N`` to ground enforces
  ``sum(in) = sum(out)``;
* **objective widget** (Fig. 3): the ``Vflow`` source drives every
  source-adjacent edge node through a unit resistor.

Negative resistors can be realised in three styles:

* ``IDEAL`` — stamped directly as negative resistances (the paper's ideal
  analysis);
* ``FINITE_GAIN`` — the effective value includes the finite-op-amp-gain error
  of Section 4.2, ``R_eff = -(1 + (1/A) * R0/Rt) * Rt``;
* ``DEVICE`` — a full negative-impedance-converter (NIC) sub-circuit built
  from an :class:`~repro.circuit.opamp.OpAmp` with a single-pole dynamic
  model plus three resistors, needed for convergence-time (transient)
  studies where the gain-bandwidth product matters.

The :class:`WidgetBuilder` also applies the resistor-variation model
(Section 4.3.1): a *common* relative deviation shared by every resistor on
the die plus an independent per-resistor mismatch.  Because the solution
depends only on resistance ratios, the common part should cancel — the
variation/tuning ablation bench verifies exactly that.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..config import DiodeParameters, NonIdealityModel, OpAmpParameters, SubstrateParameters
from ..errors import CircuitError
from ..circuit.elements import Capacitor, Resistor, VoltageSource
from ..circuit.netlist import GROUND, Circuit
from ..circuit.nonlinear import Diode
from ..circuit.opamp import OpAmp

__all__ = ["WidgetStyle", "WidgetBuilder"]


class WidgetStyle(enum.Enum):
    """Realisation style of the negative resistors."""

    IDEAL = "ideal"
    FINITE_GAIN = "finite-gain"
    DEVICE = "device"

    @classmethod
    def parse(cls, value) -> "WidgetStyle":
        """Accept either a :class:`WidgetStyle` or its string value."""
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value))
        except ValueError as exc:
            options = ", ".join(s.value for s in cls)
            raise CircuitError(f"unknown widget style {value!r}; options: {options}") from exc


@dataclass
class WidgetBuilder:
    """Adds max-flow circuit widgets to a :class:`~repro.circuit.netlist.Circuit`.

    Parameters
    ----------
    circuit:
        Target circuit (modified in place).
    parameters:
        Substrate design parameters (unit resistance, supplies, op-amp and
        diode parameters).
    nonideal:
        Non-ideality model applied while building (resistor variation, finite
        gain, parasitics, diode drop, wire resistance).
    style:
        Negative-resistor realisation style.
    rng:
        Random generator for the variation draws (seeded for reproducibility).
    """

    circuit: Circuit
    parameters: SubstrateParameters
    nonideal: NonIdealityModel
    style: WidgetStyle = WidgetStyle.IDEAL
    rng: Optional[random.Random] = None
    #: When set, every edge clamp gets its *own* voltage source instead of
    #: sharing one source per quantized level.  Costs one extra MNA branch
    #: per edge but makes each edge's capacity independently re-programmable
    #: in place — the streaming re-solve path depends on this.
    dedicated_clamp_sources: bool = False

    negative_resistor_names: List[str] = field(default_factory=list)
    opamp_names: List[str] = field(default_factory=list)
    resistor_count: int = 0
    diode_count: int = 0
    clamp_source_of_voltage: Dict[float, str] = field(default_factory=dict)
    #: Edge index -> clamp voltage-source *element* name (dedicated mode only).
    clamp_element_of_edge: Dict[int, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.parameters.validate()
        self.nonideal.validate()
        self.style = WidgetStyle.parse(self.style)
        if self.rng is None:
            self.rng = random.Random(self.nonideal.seed)
        # The common (absolute) part of the resistor tolerance: one draw per
        # die.  With layout matching enabled, only the much smaller mismatch
        # remains per resistor.
        self._common_deviation = (
            self.rng.gauss(0.0, self.nonideal.resistor_tolerance)
            if self.nonideal.resistor_tolerance > 0
            else 0.0
        )
        self._diode_parameters = DiodeParameters(
            forward_voltage_v=self.nonideal.diode_forward_voltage_v,
            on_conductance_s=self.parameters.diode.on_conductance_s,
            off_conductance_s=self.parameters.diode.off_conductance_s,
        )
        self._opamp_parameters = OpAmpParameters(
            open_loop_gain=(
                self.nonideal.opamp_gain
                if self.nonideal.opamp_gain is not None
                else self.parameters.opamp.open_loop_gain
            ),
            gbw_hz=self.nonideal.opamp_gbw_hz,
            supply_current_a=self.parameters.opamp.supply_current_a,
            supply_voltage_v=self.parameters.opamp.supply_voltage_v,
        )

    # ------------------------------------------------------------------
    # Element-level helpers
    # ------------------------------------------------------------------

    @property
    def unit_resistance(self) -> float:
        """The nominal unit resistance ``r`` of the widgets."""
        return self.parameters.unit_resistance_ohm

    def _perturbed(self, value: float) -> float:
        """Apply the resistor-variation model to a nominal resistance."""
        mismatch_sigma = (
            self.nonideal.resistor_matching
            if self.nonideal.use_matching
            else self.nonideal.resistor_tolerance
        )
        deviation = self.rng.gauss(0.0, mismatch_sigma) if mismatch_sigma > 0 else 0.0
        common = self._common_deviation if self.nonideal.use_matching else 0.0
        return value * (1.0 + common) * (1.0 + deviation)

    def add_resistor(self, name: str, node_a: str, node_b: str, value: float) -> Resistor:
        """Add a (positive) widget resistor with variation and wire parasitics."""
        resistance = self._perturbed(value) + self.nonideal.parasitic_wire_resistance_ohm
        self.resistor_count += 1
        return self.circuit.add(Resistor(name, node_a, node_b, resistance))

    def add_unit_resistor(self, name: str, node_a: str, node_b: str) -> Resistor:
        """Add a unit resistor ``r``."""
        return self.add_resistor(name, node_a, node_b, self.unit_resistance)

    def add_bleed_resistor(self, name: str, node: str) -> None:
        """Pin the common mode of a widget-internal node with a weak resistor.

        The textbook widgets leave the negation node ``P`` and the vertex
        node with exactly cancelling KCL coefficients, so their common-mode
        voltage is undetermined; any mismatch then couples an arbitrarily
        large common mode into the constraints.  A bleed resistor of
        ``bleed_resistance_factor * r`` to ground determines the common mode
        while perturbing the constraint by only ~1/factor (0.1 % at the
        default of 1000).  Disabled when the factor is 0.
        """
        factor = self.parameters.bleed_resistance_factor
        if factor <= 0:
            return
        resistance = factor * self.unit_resistance
        self.resistor_count += 1
        self.circuit.add(Resistor(name, node, GROUND, resistance))

    def add_parasitic_capacitance(self, node: str) -> None:
        """Attach the per-net parasitic capacitance to ``node`` (if enabled)."""
        capacitance = self.nonideal.parasitic_capacitance_f
        if capacitance > 0 and node != GROUND:
            name = f"Cpar_{node}"
            if not self.circuit.has_element(name):
                self.circuit.add(Capacitor(name, node, GROUND, capacitance))

    def add_negative_resistor(self, name: str, node: str, magnitude: float) -> None:
        """Add a negative resistor of value ``-magnitude`` from ``node`` to ground.

        The realisation depends on the builder's style (see module docstring).
        """
        if magnitude <= 0:
            raise CircuitError("negative-resistor magnitude must be positive")
        self.negative_resistor_names.append(name)
        if self.style is WidgetStyle.IDEAL:
            resistance = -self._perturbed(magnitude)
            self.resistor_count += 1
            self.circuit.add(Resistor(name, node, GROUND, resistance))
            return
        if self.style is WidgetStyle.FINITE_GAIN:
            gain = self._opamp_parameters.open_loop_gain
            # Section 4.2: R_eff = -(1 + (1/A) * R0/Rt) * Rt with R0/Rt ~ 1.
            effective = -(1.0 + 1.0 / gain) * self._perturbed(magnitude)
            self.resistor_count += 1
            self.circuit.add(Resistor(name, node, GROUND, effective))
            return
        # DEVICE: negative-impedance converter around a single-pole op-amp.
        #   node --Rt-- out;  out --R0-- fb;  fb --R0-- ground;
        #   op-amp: in+ = fb (positive feedback divider), in- = node, out.
        # Ideal op-amp analysis gives Zin(node) = -Rt * (R0 / R0) = -Rt.
        # This orientation (node on the inverting input) is the
        # open-circuit-stable NIC: it is dynamically stable whenever the
        # external resistance seen at ``node`` exceeds Rt, which is the case
        # for both widget uses (-r/2 behind two unit resistors, -r/N behind
        # N unit resistors).  The opposite orientation oscillates, which is
        # why the choice matters for the convergence-time studies.
        out = self.circuit.node(f"{name}_out")
        feedback = self.circuit.node(f"{name}_fb")
        r0 = self.unit_resistance
        self.add_resistor(f"{name}_rt", out, node, magnitude)
        self.add_resistor(f"{name}_r0a", out, feedback, r0)
        self.add_resistor(f"{name}_r0b", feedback, GROUND, r0)
        opamp = OpAmp(f"{name}_amp", feedback, node, out, parameters=self._opamp_parameters)
        self.circuit.add(opamp)
        self.opamp_names.append(opamp.name)
        self.add_parasitic_capacitance(out)
        self.add_parasitic_capacitance(feedback)

    # ------------------------------------------------------------------
    # Capacity clamp (Section 2.1, Fig. 1)
    # ------------------------------------------------------------------

    def clamp_source(self, voltage: float) -> str:
        """Return the node of the shared clamp source for ``voltage`` (create once)."""
        key = round(float(voltage), 12)
        node = self.clamp_source_of_voltage.get(key)
        if node is None:
            index = len(self.clamp_source_of_voltage)
            node = self.circuit.node(f"vcap{index}")
            # Compensate the diode forward drop (paper, footnote 2).
            compensated = voltage - self.nonideal.diode_forward_voltage_v
            self.circuit.add(VoltageSource(f"Vcap{index}", node, GROUND, compensated))
            self.clamp_source_of_voltage[key] = node
        return node

    def dedicated_clamp_source(self, edge_index: int, voltage: float) -> str:
        """Create the per-edge clamp source for ``edge_index`` (dedicated mode).

        Returns the node the clamp diode's cathode attaches to and records
        the source element name in :attr:`clamp_element_of_edge` so streaming
        capacity updates can re-program it in place.
        """
        node = self.circuit.node(f"vcap_e{edge_index}")
        name = f"Vcap_e{edge_index}"
        compensated = voltage - self.nonideal.diode_forward_voltage_v
        self.circuit.add(VoltageSource(name, node, GROUND, compensated))
        self.clamp_element_of_edge[edge_index] = name
        return node

    def add_capacity_clamp(self, edge_index: int, node: str, clamp_voltage: Optional[float]) -> None:
        """Clamp the edge node to ``[0, clamp_voltage]``.

        ``clamp_voltage = None`` (an uncapacitated edge) only installs the
        lower clamp.
        """
        lower_anode = GROUND
        if self.nonideal.diode_forward_voltage_v > 0:
            # Compensate the lower clamp with a small positive source so the
            # node is still clamped at 0 V rather than -Vf.
            lower_anode = self.circuit.node("vcomp_low")
            if not self.circuit.has_element("Vcomp_low"):
                self.circuit.add(
                    VoltageSource(
                        "Vcomp_low",
                        lower_anode,
                        GROUND,
                        self.nonideal.diode_forward_voltage_v,
                    )
                )
        self.circuit.add(
            Diode(f"Dlo{edge_index}", lower_anode, node, parameters=self._diode_parameters)
        )
        self.diode_count += 1
        if clamp_voltage is not None:
            if self.dedicated_clamp_sources:
                source_node = self.dedicated_clamp_source(edge_index, clamp_voltage)
            else:
                source_node = self.clamp_source(clamp_voltage)
            self.circuit.add(
                Diode(f"Dhi{edge_index}", node, source_node, parameters=self._diode_parameters)
            )
            self.diode_count += 1

    # ------------------------------------------------------------------
    # Negation + conservation widgets (Section 2.2, Fig. 2)
    # ------------------------------------------------------------------

    def add_negation_widget(self, edge_index: int, edge_node: str) -> str:
        """Build the sub-circuit producing the negated edge voltage.

        Returns the name of the negated-voltage node ``x_i^-``.
        """
        p_node = self.circuit.node(f"p{edge_index}")
        negated = self.circuit.node(f"xm{edge_index}")
        self.add_unit_resistor(f"Rng_a{edge_index}", edge_node, p_node)
        self.add_unit_resistor(f"Rng_b{edge_index}", negated, p_node)
        self.add_negative_resistor(f"Rng_n{edge_index}", p_node, self.unit_resistance / 2.0)
        self.add_bleed_resistor(f"Rbleed_p{edge_index}", p_node)
        self.add_parasitic_capacitance(p_node)
        self.add_parasitic_capacitance(negated)
        return negated

    def add_conservation_widget(
        self,
        vertex_node: str,
        incoming_negated_nodes: List[str],
        outgoing_edge_nodes: List[str],
        name_suffix: str,
    ) -> None:
        """Connect a vertex node to its incident edges and add ``-r/N`` to ground."""
        degree = len(incoming_negated_nodes) + len(outgoing_edge_nodes)
        if degree == 0:
            raise CircuitError("conservation widget needs at least one incident edge")
        for i, node in enumerate(incoming_negated_nodes):
            self.add_unit_resistor(f"Rin{name_suffix}_{i}", node, vertex_node)
        for i, node in enumerate(outgoing_edge_nodes):
            self.add_unit_resistor(f"Rout{name_suffix}_{i}", node, vertex_node)
        self.add_negative_resistor(
            f"Rvx{name_suffix}", vertex_node, self.unit_resistance / degree
        )
        self.add_bleed_resistor(f"Rbleed_v{name_suffix}", vertex_node)
        self.add_parasitic_capacitance(vertex_node)

    # ------------------------------------------------------------------
    # Objective widget (Section 2.3, Fig. 3)
    # ------------------------------------------------------------------

    def add_objective_widget(
        self, source_edge_nodes: List[str], vflow_v: float, rise_time_s: float = 1e-12
    ) -> str:
        """Add the ``Vflow`` step source and its drive resistors.

        Returns the name of the ``Vflow`` source element.
        """
        if not source_edge_nodes:
            raise CircuitError("the source vertex has no outgoing edges to drive")
        from ..circuit.elements import StepWaveform

        vflow_node = self.circuit.node("vflow")
        source = VoltageSource(
            "Vflow", vflow_node, GROUND, StepWaveform(vflow_v, rise_time=rise_time_s)
        )
        self.circuit.add(source)
        for i, node in enumerate(source_edge_nodes):
            self.add_unit_resistor(f"Robj{i}", vflow_node, node)
        self.add_parasitic_capacitance(vflow_node)
        return source.name
