"""Quasi-static circuit dynamics (Section 6.5).

When ``Vflow`` is a slow-varying drive, the circuit tracks its steady state
at every instant (the quasi-static approximation).  Sweeping ``Vflow`` and
solving the DC operating point at each value therefore traces the trajectory
the node voltages follow through the feasible region of the max-flow LP —
the paper's Fig. 15 shows that the trajectory moves through the *interior*
of the feasible region and bends whenever a capacity constraint becomes
active, and conjectures a connection to interior-point methods.

:class:`QuasiStaticAnalyzer` reproduces that analysis for arbitrary
instances: it reports the trajectory points, the drive values at which the
active-constraint set changes (the "breakpoints"), and the final solution.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import NonIdealityModel, SubstrateParameters
from ..errors import SimulationError
from ..graph.network import FlowNetwork
from ..circuit.analysis import dc_sweep
from .compiler import MaxFlowCircuitCompiler
from .readout import FlowReadout

__all__ = ["TrajectoryPoint", "QuasiStaticTrajectory", "QuasiStaticAnalyzer"]


@dataclass(frozen=True)
class TrajectoryPoint:
    """State of the substrate at one quasi-static drive level."""

    vflow_v: float
    edge_voltages: Dict[int, float]
    edge_flows: Dict[int, float]
    flow_value: float
    saturated_edges: Tuple[int, ...]

    def flow_of(self, edge_index: int) -> float:
        """Flow on one edge at this drive level (0 for inactive edges)."""
        return self.edge_flows.get(edge_index, 0.0)


@dataclass
class QuasiStaticTrajectory:
    """The full swept trajectory plus convenience accessors."""

    points: List[TrajectoryPoint]

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    @property
    def final(self) -> TrajectoryPoint:
        """The last (highest-drive) trajectory point."""
        if not self.points:
            raise SimulationError("empty trajectory")
        return self.points[-1]

    def breakpoints(self) -> List[float]:
        """Drive voltages at which the set of saturated edges changes."""
        changes: List[float] = []
        for previous, current in zip(self.points, self.points[1:]):
            if previous.saturated_edges != current.saturated_edges:
                changes.append(current.vflow_v)
        return changes

    def flow_curve(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(vflow values, flow values)`` arrays for plotting/reporting."""
        vflow = np.array([p.vflow_v for p in self.points])
        flow = np.array([p.flow_value for p in self.points])
        return vflow, flow

    def edge_trajectory(self, edge_index: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(vflow values, flow on edge)`` arrays for one edge."""
        vflow = np.array([p.vflow_v for p in self.points])
        flow = np.array([p.flow_of(edge_index) for p in self.points])
        return vflow, flow

    def saturation_drive(self, tolerance: float = 1e-6) -> float:
        """Smallest swept drive at which the flow value reaches its final value."""
        final_value = self.final.flow_value
        for point in self.points:
            if point.flow_value >= final_value * (1.0 - tolerance):
                return point.vflow_v
        return self.final.vflow_v


class QuasiStaticAnalyzer:
    """Sweeps ``Vflow`` and records the steady-state trajectory.

    Parameters
    ----------
    parameters:
        Substrate parameters; the supply voltage is internally rescaled so
        that clamp voltages equal the raw capacities (as in the paper's
        Fig. 15 example, where node voltages are read directly in flow
        units).
    nonideal:
        Non-ideality model (ideal by default).
    num_points:
        Number of sweep points between 0 and the maximum drive.
    drive_factor:
        The maximum drive is ``drive_factor`` times the largest capacity;
        the Section 6.5 example needs ``Vflow ~ 4.75 * C``, so the default
        of 6 leaves headroom.
    """

    def __init__(
        self,
        parameters: Optional[SubstrateParameters] = None,
        nonideal: Optional[NonIdealityModel] = None,
        num_points: int = 60,
        drive_factor: float = 6.0,
        saturation_tolerance: float = 1e-9,
    ) -> None:
        self.parameters = parameters if parameters is not None else SubstrateParameters()
        self.nonideal = nonideal if nonideal is not None else NonIdealityModel()
        if num_points < 2:
            raise SimulationError("a quasi-static sweep needs at least two points")
        self.num_points = num_points
        self.drive_factor = drive_factor
        self.saturation_tolerance = saturation_tolerance

    def trace(
        self,
        network: FlowNetwork,
        vflow_values: Optional[Sequence[float]] = None,
    ) -> QuasiStaticTrajectory:
        """Sweep the drive and return the quasi-static trajectory."""
        max_capacity = network.max_capacity()
        if max_capacity <= 0:
            raise SimulationError("the network has no finite positive capacity")
        # Use the raw capacities as clamp voltages so trajectories read
        # directly in flow units (scale factor 1).
        parameters = replace(self.parameters, vdd_v=max_capacity)
        compiler = MaxFlowCircuitCompiler(
            parameters=parameters,
            nonideal=self.nonideal,
            quantize=False,
            style="ideal",
            prune=True,
        )
        if vflow_values is None:
            vmax = self.drive_factor * max_capacity
            vflow_values = np.linspace(0.0, vmax, self.num_points)
        compiled = compiler.compile(network, vflow_v=float(np.max(vflow_values)))
        readout = FlowReadout(compiled)
        solutions = dc_sweep(compiled.circuit, compiled.vflow_source, list(vflow_values))

        points: List[TrajectoryPoint] = []
        for vflow, solution in zip(vflow_values, solutions):
            edge_voltages = readout.edge_voltages(solution.voltages)
            edge_flows = readout.edge_flows(solution.voltages)
            flow_value = readout.flow_value_from_voltages(solution.voltages)
            saturated = tuple(
                sorted(
                    index
                    for index, voltage in edge_voltages.items()
                    if index in compiled.quantization.voltage_of_edge
                    and voltage
                    >= compiled.quantization.voltage_of_edge[index]
                    - max(self.saturation_tolerance, 1e-9)
                    and voltage > 0
                )
            )
            points.append(
                TrajectoryPoint(
                    vflow_v=float(vflow),
                    edge_voltages=edge_voltages,
                    edge_flows=edge_flows,
                    flow_value=flow_value,
                    saturated_edges=saturated,
                )
            )
        return QuasiStaticTrajectory(points)
