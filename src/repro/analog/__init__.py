"""The paper's core contribution: the analog max-flow substrate.

This package maps a :class:`~repro.graph.network.FlowNetwork` onto the analog
circuit of Section 2 of the paper, solves the circuit with the simulator in
:mod:`repro.circuit`, and reads the max-flow solution back out of the
steady-state node voltages:

* :mod:`~repro.analog.quantization` — voltage-level quantization of edge
  capacities (Section 4.1);
* :mod:`~repro.analog.widgets` — the edge-capacity clamp, flow-conservation
  and objective circuit widgets (Sections 2.1-2.3), in three realisation
  styles (ideal negative resistors, finite-gain corrected, and full op-amp
  NIC devices);
* :mod:`~repro.analog.compiler` — graph-to-circuit compilation;
* :mod:`~repro.analog.readout` — recovering edge flows and the flow value
  (Equation 7a) from a solved circuit;
* :mod:`~repro.analog.solver` — the high-level :class:`AnalogMaxFlowSolver`;
* :mod:`~repro.analog.convergence` — convergence-time measurement (transient
  simulation) and the calibrated analytical estimator used for large graphs;
* :mod:`~repro.analog.dynamics` — quasi-static trajectory analysis
  (Section 6.5);
* :mod:`~repro.analog.mincut_dual` — the min-cut dual analog formulation
  (Section 6.3);
* :mod:`~repro.analog.verification` — error metrics against exact solvers.
"""

from .quantization import VoltageQuantizer, QuantizationResult
from .widgets import WidgetStyle
from .compiler import CompiledMaxFlowCircuit, MaxFlowCircuitCompiler
from .readout import FlowReadout
from .solver import AnalogMaxFlowResult, AnalogMaxFlowSolver
from .convergence import (
    ConvergenceMeasurement,
    ConvergenceTimeEstimator,
    measure_convergence_time,
)
from .dynamics import QuasiStaticAnalyzer, TrajectoryPoint
from .mincut_dual import AnalogMinCutSolver, AnalogMinCutResult
from .verification import SolutionQuality, evaluate_solution

__all__ = [
    "VoltageQuantizer",
    "QuantizationResult",
    "WidgetStyle",
    "CompiledMaxFlowCircuit",
    "MaxFlowCircuitCompiler",
    "FlowReadout",
    "AnalogMaxFlowResult",
    "AnalogMaxFlowSolver",
    "ConvergenceMeasurement",
    "ConvergenceTimeEstimator",
    "measure_convergence_time",
    "QuasiStaticAnalyzer",
    "TrajectoryPoint",
    "AnalogMinCutSolver",
    "AnalogMinCutResult",
    "SolutionQuality",
    "evaluate_solution",
]
