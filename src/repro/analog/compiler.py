"""Graph-to-circuit compilation (Section 2 and Section 4 of the paper).

:class:`MaxFlowCircuitCompiler` turns a :class:`~repro.graph.network.FlowNetwork`
into the analog max-flow circuit:

1. edge capacities are quantized to shared voltage levels (Section 4.1), or
   merely scaled into ``[0, Vdd]`` when quantization is disabled;
2. every *active* edge receives a circuit node and a capacity clamp
   (Section 2.1);
3. every active internal vertex receives a negation widget per incoming edge
   and a conservation widget (Section 2.2);
4. the ``Vflow`` objective source drives every active source-adjacent edge
   through a unit resistor (Section 2.3).

An edge/vertex is *active* when it can lie on an s-t path; inactive elements
cannot carry flow, so they are omitted from the circuit (mirroring the
crossbar's power-gating of unused cells, Section 5.2 footnote 4) and reported
with zero flow by the readout.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional

from ..config import NonIdealityModel, SubstrateParameters
from ..errors import CircuitError
from ..graph.analysis import reachable_from, reaches
from ..graph.network import FlowNetwork
from ..circuit.netlist import Circuit
from .quantization import QuantizationResult, VoltageQuantizer
from .widgets import WidgetBuilder, WidgetStyle

__all__ = ["CompiledMaxFlowCircuit", "MaxFlowCircuitCompiler"]

Vertex = Hashable


@dataclass
class CompiledMaxFlowCircuit:
    """A flow network compiled into an analog circuit, plus the bookkeeping
    needed to read the solution back out.

    Attributes
    ----------
    circuit:
        The generated netlist.
    network:
        The original flow network (not modified).
    active_edges:
        Indices of the edges that received a circuit node.
    active_vertices:
        Vertices whose conservation widget was built (internal, active).
    edge_node:
        Mapping edge index -> circuit node name (``x{i}``).
    vertex_node:
        Mapping vertex -> conservation node name.
    source_edge_indices:
        Active edges leaving the source (the nodes driven by ``Vflow``).
    vflow_source:
        Element name of the objective voltage source.
    vflow_v:
        Drive voltage applied by that source.
    quantization:
        The quantization result (``mode='identity'`` when disabled).
    negative_resistor_count, opamp_count, resistor_count, diode_count:
        Circuit composition statistics (used by the power model and tests).
    style:
        Negative-resistor realisation style used.
    """

    circuit: Circuit
    network: FlowNetwork
    active_edges: List[int]
    active_vertices: List[Vertex]
    edge_node: Dict[int, str]
    vertex_node: Dict[Vertex, str]
    source_edge_indices: List[int]
    vflow_source: str
    vflow_v: float
    quantization: QuantizationResult
    parameters: SubstrateParameters
    nonideal: NonIdealityModel
    style: WidgetStyle
    negative_resistor_count: int = 0
    opamp_count: int = 0
    resistor_count: int = 0
    diode_count: int = 0
    #: Edge index -> clamp voltage-source element name.  Populated only when
    #: the circuit was compiled with ``dedicated_clamp_sources=True``; the
    #: streaming warm re-solve path re-programs these sources in place.
    clamp_element_of_edge: Dict[int, str] = field(default_factory=dict)
    #: True when every clamped edge has its own (re-programmable) source.
    dedicated_clamps: bool = False
    #: ``network.num_edges`` at compile time.  ``resolve()`` checks against
    #: this (not against the possibly-aliased live ``network`` attribute) to
    #: detect structural edits that require a recompile.
    compiled_edge_count: int = 0
    #: Lazily-built MNA system (with its compiled stamp template); use
    #: :meth:`mna` instead of touching this field.
    _mna: Optional["MNASystem"] = field(default=None, repr=False, compare=False)

    def mna(self) -> "MNASystem":
        """Memoized :class:`~repro.circuit.mna.MNASystem` of this circuit.

        Built (together with its compiled stamp template) on first use and
        cached on the compiled circuit, so repeated solves of one compiled
        instance — most prominently cache hits in the batch service — skip
        both index assignment and stamp-template construction.  The cached
        system is read-only during solves and therefore safe to share
        across worker threads.
        """
        if self._mna is None:
            from ..circuit.mna import MNASystem

            system = MNASystem(self.circuit)
            system.compiled()  # build the stamp template eagerly
            self._mna = system
        return self._mna

    @property
    def num_circuit_nodes(self) -> int:
        """Number of circuit nodes (including ground)."""
        return self.circuit.num_nodes

    @property
    def num_elements(self) -> int:
        """Number of circuit elements."""
        return self.circuit.num_elements

    def node_of_edge(self, edge_index: int) -> str:
        """Circuit node holding the voltage of ``edge_index``."""
        try:
            return self.edge_node[edge_index]
        except KeyError as exc:
            raise CircuitError(f"edge {edge_index} was not compiled (inactive)") from exc


class MaxFlowCircuitCompiler:
    """Compiles flow networks into analog max-flow circuits.

    Parameters
    ----------
    parameters:
        Substrate design parameters (Table 1 defaults).
    nonideal:
        Non-ideality model to apply while building.
    quantize:
        Quantize capacities to shared voltage levels (Section 4.1).  When
        disabled, capacities are scaled into ``[0, Vdd]`` but kept exact.
    style:
        Negative-resistor realisation style (``"ideal"``, ``"finite-gain"``
        or ``"device"``).
    prune:
        Omit edges/vertices that cannot lie on any s-t path.
    quantizer_mode:
        ``"round"`` or ``"floor"`` (see :class:`VoltageQuantizer`).
    seed:
        Seed for the variation random draws (overrides ``nonideal.seed``).
    dedicated_clamp_sources:
        Give every clamped edge its own capacity-clamp voltage source
        instead of sharing one source per quantized level.  Costs one extra
        MNA branch unknown per edge, but makes every edge capacity
        independently re-programmable in place — the prerequisite for
        :meth:`~repro.analog.solver.AnalogMaxFlowSolver.resolve` warm
        re-solves on streamed capacity updates.
    """

    def __init__(
        self,
        parameters: Optional[SubstrateParameters] = None,
        nonideal: Optional[NonIdealityModel] = None,
        quantize: bool = True,
        style: str = "ideal",
        prune: bool = True,
        quantizer_mode: str = "round",
        seed: Optional[int] = None,
        dedicated_clamp_sources: bool = False,
    ) -> None:
        self.parameters = parameters if parameters is not None else SubstrateParameters()
        self.nonideal = nonideal if nonideal is not None else NonIdealityModel()
        self.parameters.validate()
        self.nonideal.validate()
        self.quantize = quantize
        self.style = WidgetStyle.parse(style)
        self.prune = prune
        self.quantizer_mode = quantizer_mode
        self.seed = seed if seed is not None else self.nonideal.seed
        self.dedicated_clamp_sources = dedicated_clamp_sources

    # ------------------------------------------------------------------

    def compile(self, network: FlowNetwork, vflow_v: Optional[float] = None) -> CompiledMaxFlowCircuit:
        """Compile ``network``; ``vflow_v`` overrides the Table 1 drive voltage."""
        vflow = float(vflow_v) if vflow_v is not None else self.parameters.vflow_v
        active_vertices, active_edges = self._active_subgraph(network)
        source_edges = [
            i
            for i in active_edges
            if network.edge(i).tail == network.source
        ]
        if not source_edges:
            raise CircuitError(
                "the source has no usable outgoing edge; the max flow is trivially zero"
            )

        quantizer = VoltageQuantizer(
            num_levels=self.parameters.voltage_levels,
            vdd=self.parameters.vdd_v,
            mode=self.quantizer_mode,
        )
        quantization = (
            quantizer.quantize(network) if self.quantize else quantizer.identity(network)
        )

        circuit = Circuit(title=f"max-flow substrate ({network.num_vertices} vertices)")
        builder = WidgetBuilder(
            circuit=circuit,
            parameters=self.parameters,
            nonideal=self.nonideal,
            style=self.style,
            rng=random.Random(self.seed),
            dedicated_clamp_sources=self.dedicated_clamp_sources,
        )

        # Edge nodes and capacity clamps.
        edge_node: Dict[int, str] = {}
        for index in active_edges:
            edge = network.edge(index)
            node = circuit.node(f"x{index}")
            edge_node[index] = node
            builder.add_parasitic_capacitance(node)
            clamp_voltage = quantization.voltage_of_edge.get(index)
            builder.add_capacity_clamp(index, node, clamp_voltage)

        # Objective widget.
        vflow_source = builder.add_objective_widget(
            [edge_node[i] for i in source_edges], vflow
        )

        # Negation + conservation widgets for the internal active vertices.
        vertex_node: Dict[Vertex, str] = {}
        active_edge_set = set(active_edges)
        internal_vertices: List[Vertex] = []
        for vertex in active_vertices:
            if vertex in (network.source, network.sink):
                continue
            incoming = [e for e in network.in_edges(vertex) if e.index in active_edge_set]
            outgoing = [e for e in network.out_edges(vertex) if e.index in active_edge_set]
            if not incoming and not outgoing:
                continue
            internal_vertices.append(vertex)
            node = circuit.node(f"n_{vertex}")
            vertex_node[vertex] = node
            negated_nodes = [
                builder.add_negation_widget(e.index, edge_node[e.index]) for e in incoming
            ]
            builder.add_conservation_widget(
                node,
                negated_nodes,
                [edge_node[e.index] for e in outgoing],
                name_suffix=str(vertex),
            )

        return CompiledMaxFlowCircuit(
            circuit=circuit,
            network=network,
            active_edges=list(active_edges),
            active_vertices=internal_vertices,
            edge_node=edge_node,
            vertex_node=vertex_node,
            source_edge_indices=source_edges,
            vflow_source=vflow_source,
            vflow_v=vflow,
            quantization=quantization,
            parameters=self.parameters,
            nonideal=self.nonideal,
            style=self.style,
            negative_resistor_count=len(builder.negative_resistor_names),
            opamp_count=len(builder.opamp_names),
            resistor_count=builder.resistor_count,
            diode_count=builder.diode_count,
            clamp_element_of_edge=dict(builder.clamp_element_of_edge),
            dedicated_clamps=self.dedicated_clamp_sources,
            compiled_edge_count=network.num_edges,
        )

    # ------------------------------------------------------------------

    def _active_subgraph(self, network: FlowNetwork):
        """Vertices and edge indices that can participate in s-t flow."""
        if self.prune:
            forward = reachable_from(network, network.source)
            backward = reaches(network, network.sink)
            useful = forward & backward
        else:
            useful = set(network.vertices())
        useful |= {network.source, network.sink}
        active_vertices = [v for v in network.vertices() if v in useful]
        active_edges = []
        for edge in network.edges():
            if edge.tail not in useful or edge.head not in useful:
                continue
            # Edges entering the source or leaving the sink can only carry
            # circulation flow; they never contribute to |f| and are dropped.
            if edge.head == network.source or edge.tail == network.sink:
                continue
            active_edges.append(edge.index)
        return active_vertices, active_edges
