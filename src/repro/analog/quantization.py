"""Voltage-level quantization of edge capacities (Section 4.1).

Driving every edge-capacity clamp from a dedicated, exact voltage source is
impractical, so the paper maps capacities onto ``N`` uniformly spaced voltage
levels in ``[0, Vdd]`` and shares one source per level:

    ``Q(x) = floor((x / C) * N) / N * Vdd``

where ``C`` is the largest edge capacity of the instance.  The circuit
solution is mapped back to flow units by multiplying with ``C / Vdd``.  The
worst-case per-edge quantization error is one quantization step, ``C / N``.

The worked example of Fig. 8 (capacities 3, 2, 1 with N = 20 and
Vdd = 1 V mapping to 1 V, 0.65 V and 0.35 V) actually rounds to the *nearest*
level rather than flooring, so both modes are provided; ``"round"`` is the
default because it reproduces the figure and halves the expected error.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import QuantizationError
from ..graph.network import FlowNetwork

__all__ = ["VoltageQuantizer", "QuantizationResult"]


@dataclass(frozen=True)
class QuantizationResult:
    """Outcome of quantizing one max-flow instance.

    Attributes
    ----------
    num_levels:
        Number of voltage levels ``N``.
    vdd:
        Supply voltage defining the level range.
    max_capacity:
        Largest finite edge capacity ``C`` of the instance.
    level_of_edge:
        Level index (1..N) assigned to each finite-capacity edge; edges with
        infinite capacity are absent (they receive no clamp).
    voltage_of_edge:
        Clamp voltage assigned to each finite-capacity edge.
    mode:
        ``"round"`` or ``"floor"``.
    """

    num_levels: int
    vdd: float
    max_capacity: float
    level_of_edge: Dict[int, int]
    voltage_of_edge: Dict[int, float]
    mode: str = "round"

    # -- unit conversion -----------------------------------------------------

    @property
    def scale(self) -> float:
        """Multiply a circuit voltage by this factor to obtain flow units."""
        if self.max_capacity <= 0:
            return 1.0
        return self.max_capacity / self.vdd

    @property
    def step_voltage(self) -> float:
        """Voltage difference between adjacent levels."""
        return self.vdd / self.num_levels

    @property
    def worst_case_edge_error(self) -> float:
        """Worst-case per-edge capacity error in flow units (``C / N``)."""
        return self.max_capacity / self.num_levels

    def to_flow(self, voltage: float) -> float:
        """Convert a circuit voltage back to flow units."""
        return voltage * self.scale

    def to_voltage(self, capacity: float) -> float:
        """Convert a capacity in flow units to the (unquantized) voltage."""
        if self.max_capacity <= 0:
            return 0.0
        return capacity / self.max_capacity * self.vdd

    def level_voltages(self) -> List[float]:
        """The distinct clamp voltages actually used by this instance."""
        return sorted(set(self.voltage_of_edge.values()))

    def quantized_capacity(self, edge_index: int) -> float:
        """Quantized capacity of an edge, expressed in flow units."""
        return self.to_flow(self.voltage_of_edge[edge_index])


class VoltageQuantizer:
    """Maps edge capacities to shared voltage levels.

    Parameters
    ----------
    num_levels:
        Number of voltage levels ``N`` (Table 1 uses 20).
    vdd:
        Supply voltage (Table 1 uses 1 V).
    mode:
        ``"round"`` (nearest level, reproduces Fig. 8) or ``"floor"``
        (the formula as printed in Section 4.1).
    clamp_zero_to_first_level:
        When set, a nonzero capacity that would quantize to level 0 (i.e. to
        a 0 V clamp, disabling the edge entirely) is promoted to level 1.
        This keeps very small capacities usable at the cost of a one-step
        overestimate and mirrors what a practical mapper would do.
    """

    def __init__(
        self,
        num_levels: int = 20,
        vdd: float = 1.0,
        mode: str = "round",
        clamp_zero_to_first_level: bool = False,
    ) -> None:
        if num_levels < 2:
            raise QuantizationError("at least two voltage levels are required")
        if vdd <= 0:
            raise QuantizationError("Vdd must be positive")
        if mode not in ("round", "floor"):
            raise QuantizationError(f"unknown quantization mode {mode!r}")
        self.num_levels = int(num_levels)
        self.vdd = float(vdd)
        self.mode = mode
        self.clamp_zero_to_first_level = clamp_zero_to_first_level

    # ------------------------------------------------------------------

    def level_of(self, capacity: float, max_capacity: float) -> int:
        """Level index (0..N) assigned to one capacity value."""
        if capacity < 0:
            raise QuantizationError("capacities must be non-negative")
        if max_capacity <= 0:
            return 0
        ratio = min(capacity / max_capacity, 1.0) * self.num_levels
        if self.mode == "round":
            level = int(round(ratio))
        else:
            level = int(math.floor(ratio))
        level = max(0, min(level, self.num_levels))
        if level == 0 and capacity > 0 and self.clamp_zero_to_first_level:
            level = 1
        return level

    def voltage_of_level(self, level: int) -> float:
        """Clamp voltage of a level index."""
        if not 0 <= level <= self.num_levels:
            raise QuantizationError(f"level {level} outside [0, {self.num_levels}]")
        return level / self.num_levels * self.vdd

    def quantize(self, network: FlowNetwork) -> QuantizationResult:
        """Quantize every finite-capacity edge of ``network``."""
        max_capacity = network.max_capacity()
        level_of_edge: Dict[int, int] = {}
        voltage_of_edge: Dict[int, float] = {}
        for edge in network.edges():
            if edge.is_uncapacitated:
                continue
            level = self.level_of(edge.capacity, max_capacity)
            level_of_edge[edge.index] = level
            voltage_of_edge[edge.index] = self.voltage_of_level(level)
        return QuantizationResult(
            num_levels=self.num_levels,
            vdd=self.vdd,
            max_capacity=max_capacity,
            level_of_edge=level_of_edge,
            voltage_of_edge=voltage_of_edge,
            mode=self.mode,
        )

    def identity(self, network: FlowNetwork) -> QuantizationResult:
        """Return a non-quantizing result (exact capacities as voltages).

        Used by the solver's ``quantize=False`` mode: capacities are only
        *scaled* into the ``[0, Vdd]`` range (so that the circuit operates at
        realistic voltage levels) but not snapped to discrete levels.
        """
        max_capacity = network.max_capacity()
        voltage_of_edge: Dict[int, float] = {}
        level_of_edge: Dict[int, int] = {}
        for edge in network.edges():
            if edge.is_uncapacitated:
                continue
            if max_capacity > 0:
                voltage = edge.capacity / max_capacity * self.vdd
            else:
                voltage = 0.0
            voltage_of_edge[edge.index] = voltage
            level_of_edge[edge.index] = self.num_levels
        return QuantizationResult(
            num_levels=self.num_levels,
            vdd=self.vdd,
            max_capacity=max_capacity,
            level_of_edge=level_of_edge,
            voltage_of_edge=voltage_of_edge,
            mode="identity",
        )
