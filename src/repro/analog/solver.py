"""High-level analog max-flow solver.

:class:`AnalogMaxFlowSolver` packages the full pipeline of the paper:
quantize -> compile to the analog circuit -> solve the circuit (DC operating
point for the steady-state answer, or a transient simulation when the
convergence time is of interest) -> read the flow back out and convert to
flow units.  It also supports an *adaptive drive* mode that raises ``Vflow``
until the flow value stops improving, which quantifies the finite-drive
error discussed in Section 6.5 (and exercised by ablation bench A4).
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..config import NonIdealityModel, SubstrateParameters
from ..errors import CircuitError
from ..graph.analysis import is_source_sink_connected
from ..graph.network import FlowNetwork
from ..circuit.dc import DCOperatingPoint
from .compiler import CompiledMaxFlowCircuit, MaxFlowCircuitCompiler
from .readout import FlowReadout
from .verification import SolutionQuality, evaluate_solution

__all__ = ["AnalogMaxFlowSolver", "AnalogMaxFlowResult"]


@dataclass
class AnalogMaxFlowResult:
    """Result of solving a max-flow instance on the analog substrate.

    Attributes
    ----------
    flow_value:
        Flow value decoded from the source-edge voltages (flow units).
    flow_value_from_current:
        Flow value decoded from the ``Vflow`` source current via
        Equation 7a — the readout a physical substrate would use.
    edge_flows:
        Per-edge flows (flow units) for every edge of the input network.
    edge_voltages:
        Raw steady-state voltages of the active edge nodes.
    method:
        ``"dc"`` or ``"transient"``.
    vflow_v:
        Objective drive voltage used for the final solve.
    convergence_time_s:
        Settling time of the flow value (only for transient solves).
    solver_wall_time_s:
        Wall-clock time spent simulating (not a hardware estimate).
    dc_iterations:
        Diode-state iterations of the final DC solve.
    compiled:
        The compiled circuit (kept for inspection, power modelling, ...).
    dc_solution:
        The underlying :class:`~repro.circuit.dc.DCSolution` (DC solves
        only).  Carries the final diode states, which
        :meth:`AnalogMaxFlowSolver.resolve` uses to warm-start the next
        re-solve of a streamed instance.
    """

    flow_value: float
    flow_value_from_current: float
    edge_flows: Dict[int, float]
    edge_voltages: Dict[int, float]
    method: str
    vflow_v: float
    convergence_time_s: Optional[float] = None
    solver_wall_time_s: float = 0.0
    dc_iterations: int = 0
    compiled: CompiledMaxFlowCircuit = field(default=None, repr=False)
    dc_solution: object = field(default=None, repr=False)

    def quality(self, network: FlowNetwork, exact_value: Optional[float] = None) -> SolutionQuality:
        """Evaluate this result against the exact optimum of ``network``.

        Parameters
        ----------
        network:
            The instance this result was solved from.
        exact_value:
            Known exact max-flow value; computed with a classical algorithm
            when omitted.

        Returns
        -------
        SolutionQuality
            Relative error, feasibility violations and related metrics.
        """
        return evaluate_solution(network, self.flow_value, self.edge_flows, exact_value)


class AnalogMaxFlowSolver:
    """Solve max-flow instances on the simulated analog substrate.

    Parameters
    ----------
    parameters:
        Substrate design parameters (Table 1 defaults).
    nonideal:
        Non-ideality model (ideal by default).
    quantize:
        Apply the Section 4.1 voltage-level quantization.
    style:
        Negative-resistor realisation: ``"ideal"``, ``"finite-gain"`` or
        ``"device"``.  Steady-state accuracy studies use the first two;
        convergence-time studies need ``"device"``.
    prune:
        Drop edges/vertices that cannot carry s-t flow before compiling.
    adaptive_drive:
        When set, ``Vflow`` is doubled (up to ``max_drive_doublings`` times)
        until the flow value improves by less than ``drive_tolerance``
        relative; this removes the finite-drive error at the cost of extra
        solves.
    seed:
        Seed for the non-ideality random draws.
    dedicated_clamp_sources:
        Compile with one re-programmable clamp source per edge (see
        :class:`~repro.analog.compiler.MaxFlowCircuitCompiler`); required
        for :meth:`resolve` warm re-solves on streamed capacity updates.

    Examples
    --------
    Solve a two-edge bottleneck network on the (ideal, unquantized)
    substrate; the steady state recovers the exact optimum of 1:

    >>> from repro import FlowNetwork
    >>> from repro.analog import AnalogMaxFlowSolver
    >>> g = FlowNetwork()
    >>> _ = g.add_edge("s", "a", 2.0)
    >>> _ = g.add_edge("a", "t", 1.0)
    >>> result = AnalogMaxFlowSolver(quantize=False, adaptive_drive=True).solve(g)
    >>> abs(result.flow_value - 1.0) < 0.01
    True
    """

    def __init__(
        self,
        parameters: Optional[SubstrateParameters] = None,
        nonideal: Optional[NonIdealityModel] = None,
        quantize: bool = True,
        style: str = "ideal",
        prune: bool = True,
        adaptive_drive: bool = False,
        drive_tolerance: float = 1e-4,
        max_drive_doublings: int = 8,
        quantizer_mode: str = "round",
        seed: Optional[int] = None,
        dedicated_clamp_sources: bool = False,
    ) -> None:
        self.parameters = parameters if parameters is not None else SubstrateParameters()
        self.nonideal = nonideal if nonideal is not None else NonIdealityModel()
        self.quantize = quantize
        self.style = style
        self.prune = prune
        self.adaptive_drive = adaptive_drive
        self.drive_tolerance = drive_tolerance
        self.max_drive_doublings = max_drive_doublings
        self.quantizer_mode = quantizer_mode
        self.seed = seed
        self.dedicated_clamp_sources = dedicated_clamp_sources
        # Persistent DC engine for the streaming re-solve path: keeping one
        # DCOperatingPoint instance alive keeps its per-template linear
        # engine (and cached base LU factorisation) warm across resolves.
        self._streaming_dc: Optional[DCOperatingPoint] = None

    # ------------------------------------------------------------------

    def compiler(self) -> MaxFlowCircuitCompiler:
        """The compiler configured consistently with this solver.

        Returns
        -------
        MaxFlowCircuitCompiler
            A fresh compiler carrying this solver's parameters, non-ideality
            model, quantization and widget-style settings.
        """
        return MaxFlowCircuitCompiler(
            parameters=self.parameters,
            nonideal=self.nonideal,
            quantize=self.quantize,
            style=self.style,
            prune=self.prune,
            quantizer_mode=self.quantizer_mode,
            seed=self.seed,
            dedicated_clamp_sources=self.dedicated_clamp_sources,
        )

    def compile(self, network: FlowNetwork, vflow_v: Optional[float] = None) -> CompiledMaxFlowCircuit:
        """Compile ``network`` without solving it.

        Parameters
        ----------
        network:
            The instance to compile.
        vflow_v:
            Override of the objective drive voltage (Table 1 default
            otherwise).

        Returns
        -------
        CompiledMaxFlowCircuit
            The netlist plus readout bookkeeping; hand it to
            :meth:`solve_compiled` (possibly many times, e.g. via the batch
            service's compiled-circuit cache).
        """
        return self.compiler().compile(network, vflow_v=vflow_v)

    # ------------------------------------------------------------------

    def solve(
        self,
        network: FlowNetwork,
        method: str = "dc",
        vflow_v: Optional[float] = None,
        measure_convergence: bool = False,
    ) -> AnalogMaxFlowResult:
        """Solve a max-flow instance.

        Parameters
        ----------
        method:
            ``"dc"`` computes the steady state directly (fast, used for
            accuracy studies); ``"transient"`` additionally simulates the
            settling behaviour, which requires the ``"device"`` or at least a
            parasitic-capacitance-enabled configuration to be meaningful.
        vflow_v:
            Override of the objective drive voltage.
        measure_convergence:
            For ``method="transient"``: also report the 0.1 % settling time
            of the flow value.

        Returns
        -------
        AnalogMaxFlowResult
            Decoded flow value, per-edge flows and solve metadata.

        Examples
        --------
        >>> from repro import FlowNetwork
        >>> from repro.analog import AnalogMaxFlowSolver
        >>> g = FlowNetwork()
        >>> _ = g.add_edge("s", "t", 3.0)
        >>> AnalogMaxFlowSolver().solve(g).method
        'dc'
        """
        start = time.perf_counter()
        if not is_source_sink_connected(network):
            return self._zero_result(network, method, start)

        if method == "dc":
            result = self._solve_dc(network, vflow_v)
        elif method == "transient":
            result = self._solve_transient(network, vflow_v, measure_convergence)
        else:
            raise CircuitError(f"unknown solve method {method!r}")
        result.solver_wall_time_s = time.perf_counter() - start
        return result

    # ------------------------------------------------------------------

    def _zero_result(self, network: FlowNetwork, method: str, start: float) -> AnalogMaxFlowResult:
        return AnalogMaxFlowResult(
            flow_value=0.0,
            flow_value_from_current=0.0,
            edge_flows={edge.index: 0.0 for edge in network.edges()},
            edge_voltages={},
            method=method,
            vflow_v=self.parameters.vflow_v,
            solver_wall_time_s=time.perf_counter() - start,
        )

    def _solve_dc(self, network: FlowNetwork, vflow_v: Optional[float]) -> AnalogMaxFlowResult:
        vflow = float(vflow_v) if vflow_v is not None else self.parameters.vflow_v
        compiled, decoded, iterations = self._dc_at_drive(network, vflow)
        if self.adaptive_drive:
            for _ in range(self.max_drive_doublings):
                next_vflow = vflow * 2.0
                next_compiled, next_decoded, next_iterations = self._dc_at_drive(
                    network, next_vflow
                )
                previous_value = decoded["flow_value"]
                improvement = next_decoded["flow_value"] - previous_value
                relative = improvement / previous_value if previous_value > 0 else float("inf")
                compiled, decoded, iterations, vflow = (
                    next_compiled,
                    next_decoded,
                    next_iterations,
                    next_vflow,
                )
                if previous_value > 0 and relative < self.drive_tolerance:
                    break
        return AnalogMaxFlowResult(
            flow_value=decoded["flow_value"],
            flow_value_from_current=decoded["flow_value_from_current"],
            edge_flows=decoded["edge_flows"],
            edge_voltages=decoded["edge_voltages"],
            method="dc",
            vflow_v=vflow,
            dc_iterations=iterations,
            compiled=compiled,
        )

    def solve_compiled(self, compiled: CompiledMaxFlowCircuit) -> AnalogMaxFlowResult:
        """Solve an already-compiled circuit (DC) and decode the flow.

        The compile step dominates the cost of small DC solves, so callers
        that see the same topology repeatedly — most prominently the batch
        service's compiled-circuit cache — compile once with :meth:`compile`
        and hand the result here for each solve.

        Parameters
        ----------
        compiled:
            A circuit produced by :meth:`compile` (or a compatible
            :class:`~repro.analog.compiler.MaxFlowCircuitCompiler`).

        Returns
        -------
        AnalogMaxFlowResult
            Same shape of result as :meth:`solve` with ``method="dc"``.

        Examples
        --------
        >>> from repro import FlowNetwork
        >>> from repro.analog import AnalogMaxFlowSolver
        >>> g = FlowNetwork()
        >>> _ = g.add_edge("s", "t", 2.0)
        >>> solver = AnalogMaxFlowSolver(quantize=False)
        >>> compiled = solver.compile(g, vflow_v=6.0)
        >>> round(solver.solve_compiled(compiled).vflow_v, 1)
        6.0
        """
        start = time.perf_counter()
        solution = DCOperatingPoint().solve(compiled.circuit, mna=compiled.mna())
        if not solution.converged:
            # The source-stepping fallback temporarily rewrites the drive
            # source's waveform on the circuit.  ``compiled`` may be shared
            # (the batch service's cache hands one instance to many worker
            # threads), so step on a private copy and return that copy.
            compiled = copy.deepcopy(compiled)
            solution = self._source_stepped_dc(compiled, compiled.vflow_v)
        decoded = FlowReadout(compiled).from_dc(solution)
        result = AnalogMaxFlowResult(
            flow_value=decoded["flow_value"],
            flow_value_from_current=decoded["flow_value_from_current"],
            edge_flows=decoded["edge_flows"],
            edge_voltages=decoded["edge_voltages"],
            method="dc",
            vflow_v=compiled.vflow_v,
            dc_iterations=solution.iterations,
            compiled=compiled,
            dc_solution=solution,
        )
        result.solver_wall_time_s = time.perf_counter() - start
        return result

    # ------------------------------------------------------------------
    # Streaming warm re-solve
    # ------------------------------------------------------------------

    def resolve(
        self,
        compiled: CompiledMaxFlowCircuit,
        network: Optional[FlowNetwork] = None,
        previous: Optional[AnalogMaxFlowResult] = None,
    ) -> AnalogMaxFlowResult:
        """Re-solve a compiled circuit after capacity updates, warm-started.

        The fast path of the streaming subsystem.  Capacities live in the
        circuit as clamp-source voltages, which enter the MNA system only
        through the right-hand side, so when the sparsity pattern is
        unchanged this method skips *recompilation and refactorisation
        entirely*: it re-programs the per-edge clamp sources in place
        (:meth:`~repro.circuit.stamps.CompiledMNA.apply_capacity_updates`),
        warm-starts the diode-state iteration from the previous operating
        point, and lets the handful of induced diode flips flow through the
        cached base factorisation as rank-``k`` Sherman–Morrison–Woodbury
        corrections.

        Parameters
        ----------
        compiled:
            A circuit compiled with ``dedicated_clamp_sources=True`` (see
            :meth:`compile`).  It is mutated in place (clamp values,
            quantization, network reference) and must therefore be owned by
            the caller — do not share it through the batch-service cache
            while resolving.
        network:
            The updated network.  Must have the same sparsity pattern as
            ``compiled.network`` (same edges/endpoints; only capacities may
            differ, and finite capacities must stay finite).  ``None`` skips
            the capacity re-sync and just (re-)solves — the cold-start call
            of a streaming session.
        previous:
            The previous :class:`AnalogMaxFlowResult` of this circuit; its
            final diode states seed the iteration.  ``None`` starts from the
            default (all-off) pattern.

        Returns
        -------
        AnalogMaxFlowResult
            Same shape as :meth:`solve` with ``method="dc"``; its
            ``dc_solution`` feeds the next :meth:`resolve`.

        Raises
        ------
        CircuitError
            When the circuit lacks dedicated clamp sources or the update is
            structural (changed edge set, finite/infinite transition) —
            callers must recompile for those.
        """
        start = time.perf_counter()
        if network is not None:
            self._sync_clamp_sources(compiled, network)
        warm_states = None
        if previous is not None:
            solution = previous.dc_solution if hasattr(previous, "dc_solution") else previous
            if solution is not None:
                warm_states = solution.diode_states
        if self._streaming_dc is None:
            self._streaming_dc = DCOperatingPoint()
        solution = self._streaming_dc.solve(
            compiled.circuit, initial_states=warm_states, mna=compiled.mna()
        )
        if not solution.converged:
            solution = self._source_stepped_dc(compiled, compiled.vflow_v)
        decoded = FlowReadout(compiled).from_dc(solution)
        result = AnalogMaxFlowResult(
            flow_value=decoded["flow_value"],
            flow_value_from_current=decoded["flow_value_from_current"],
            edge_flows=decoded["edge_flows"],
            edge_voltages=decoded["edge_voltages"],
            method="dc",
            vflow_v=compiled.vflow_v,
            dc_iterations=solution.iterations,
            compiled=compiled,
            dc_solution=solution,
        )
        result.solver_wall_time_s = time.perf_counter() - start
        return result

    def _sync_clamp_sources(
        self, compiled: CompiledMaxFlowCircuit, network: FlowNetwork
    ) -> int:
        """Re-program the dedicated clamp sources to ``network``'s capacities.

        Returns the number of sources whose value actually changed.  Note
        that a change of the instance's *maximum* capacity rescales every
        clamp voltage (the quantizer normalises by ``C``), which this method
        handles uniformly — it is still a pure right-hand-side edit.
        """
        from .quantization import VoltageQuantizer

        if not compiled.dedicated_clamps:
            raise CircuitError(
                "resolve() needs a circuit compiled with dedicated_clamp_sources=True"
            )
        # Compare against the compile-time snapshot, not compiled.network:
        # callers may mutate and pass the very object compile() stored, in
        # which case the live attribute would always agree with itself.
        if network.num_edges != compiled.compiled_edge_count:
            raise CircuitError(
                "edge set changed (structural update); recompile instead of resolving"
            )
        quantizer = VoltageQuantizer(
            num_levels=self.parameters.voltage_levels,
            vdd=self.parameters.vdd_v,
            mode=self.quantizer_mode,
        )
        quantization = (
            quantizer.quantize(network) if self.quantize else quantizer.identity(network)
        )
        drop = self.nonideal.diode_forward_voltage_v
        template = compiled.mna().compiled()
        changed: Dict[str, float] = {}
        for edge_index, element_name in compiled.clamp_element_of_edge.items():
            voltage = quantization.voltage_of_edge.get(edge_index)
            if voltage is None:
                raise CircuitError(
                    f"edge {edge_index} became uncapacitated (structural update); "
                    "recompile instead of resolving"
                )
            compensated = voltage - drop
            if compiled.circuit.element(element_name).dc_value != compensated:
                changed[element_name] = compensated
        if changed:
            template.apply_capacity_updates(changed)
        compiled.quantization = quantization
        compiled.network = network
        return len(changed)

    def _dc_solution(self, compiled: CompiledMaxFlowCircuit):
        solution = DCOperatingPoint().solve(compiled.circuit, mna=compiled.mna())
        if not solution.converged:
            # Drive stepping (the SPICE "source stepping" continuation): ramp
            # Vflow from a benign level up to the target, warm-starting the
            # diode states at every step.  High drives activate many clamps
            # at once, which can trap the plain fixed-point iteration in a
            # cycle; following the physical turn-on sequence avoids that.
            solution = self._source_stepped_dc(compiled, compiled.vflow_v)
        return solution

    def _dc_at_drive(self, network: FlowNetwork, vflow: float):
        compiled = self.compile(network, vflow_v=vflow)
        solution = self._dc_solution(compiled)
        readout = FlowReadout(compiled)
        decoded = readout.from_dc(solution)
        return compiled, decoded, solution.iterations

    @staticmethod
    def _source_stepped_dc(compiled, vflow: float, steps: int = 10):
        from ..circuit.analysis import dc_sweep

        start = min(compiled.parameters.vdd_v, vflow)
        levels = [start + (vflow - start) * i / (steps - 1) for i in range(steps)]
        solutions = dc_sweep(
            compiled.circuit,
            compiled.vflow_source,
            levels,
            warm_start=True,
            mna=compiled.mna(),
        )
        return solutions[-1]

    def _solve_transient(
        self,
        network: FlowNetwork,
        vflow_v: Optional[float],
        measure_convergence: bool,
    ) -> AnalogMaxFlowResult:
        from .convergence import measure_convergence_time

        vflow = float(vflow_v) if vflow_v is not None else self.parameters.vflow_v
        compiled = self.compile(network, vflow_v=vflow)
        measurement = measure_convergence_time(
            compiled, tolerance=self.parameters.convergence_tolerance
        )
        readout = FlowReadout(compiled)
        decoded = readout.from_transient(measurement.transient)
        return AnalogMaxFlowResult(
            flow_value=decoded["flow_value"],
            flow_value_from_current=decoded["flow_value_from_current"],
            edge_flows=decoded["edge_flows"],
            edge_voltages=decoded["edge_voltages"],
            method="transient",
            vflow_v=vflow,
            convergence_time_s=(
                measurement.convergence_time_s if measure_convergence else None
            ),
            compiled=compiled,
        )
