"""Analog solver for the min-cut dual formulation (Section 6.3).

The min-cut LP of Fig. 12 is

    minimize    sum_{(i,j) in E} c_ij * d_ij
    subject to  d_ij - p_i + p_j >= 0      for every edge (i, j)
                p_s - p_t >= 1
                p_i >= 0, d_ij >= 0

where ``p_i`` indicates which side of the cut vertex ``i`` lies on and
``d_ij`` indicates whether edge ``(i, j)`` crosses the cut.  The paper maps
this LP onto a mesh of elementary analog cells (Fig. 13-14); here the cells
are modelled with the generic analog-LP dynamical substrate of
:mod:`repro.analoglp` (the Vichik-Borrelli model the paper builds on), which
yields the same two observables: the analog objective value and the settled
variable values.  Rounding ``p`` at 0.5 recovers a discrete cut whose
capacity is compared against the exact minimum cut (equal to the max-flow
value by strong duality).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Optional, Tuple

import numpy as np

from ..analoglp import AnalogLPResult, AnalogLPSolver, LinearProgram
from ..errors import AlgorithmError
from ..flows.mincut import MinCutResult, min_cut
from ..graph.network import FlowNetwork

__all__ = ["AnalogMinCutSolver", "AnalogMinCutResult", "build_mincut_lp"]

Vertex = Hashable


def build_mincut_lp(
    network: FlowNetwork,
    box_bounds: bool = True,
    infinite_capacity: Optional[float] = None,
) -> Tuple[LinearProgram, List[Vertex], List[int]]:
    """Build the Fig. 12 min-cut LP for ``network``.

    Returns the LP plus the vertex order (for the ``p`` block) and the edge
    index order (for the ``d`` block).

    Parameters
    ----------
    box_bounds:
        Additionally impose ``p_i <= 1`` and ``d_ij <= 1``.  The optimum of
        the min-cut LP always has such a 0/1 solution, so the bounds do not
        change the optimal value, but they keep the analog dynamics bounded —
        the physical circuit obtains the same effect from its supply rails.
    infinite_capacity:
        Cost used for uncapacitated edges; defaults to the total finite
        capacity plus one.
    """
    vertices = network.vertices()
    edges = network.edges()
    if not edges:
        raise AlgorithmError("cannot build a min-cut LP for an edgeless network")
    vertex_position = {v: i for i, v in enumerate(vertices)}
    num_p = len(vertices)
    num_d = len(edges)
    n = num_p + num_d
    big = infinite_capacity if infinite_capacity is not None else network.total_capacity() + 1.0

    objective = np.zeros(n)
    for k, edge in enumerate(edges):
        objective[num_p + k] = edge.capacity if not edge.is_uncapacitated else big

    # Inequalities in <= form:  p_i - p_j - d_ij <= 0  and  p_t - p_s <= -1.
    rows = []
    rhs = []
    for k, edge in enumerate(edges):
        row = np.zeros(n)
        row[vertex_position[edge.tail]] = 1.0
        row[vertex_position[edge.head]] = -1.0
        row[num_p + k] = -1.0
        rows.append(row)
        rhs.append(0.0)
    source_row = np.zeros(n)
    source_row[vertex_position[network.source]] = -1.0
    source_row[vertex_position[network.sink]] = 1.0
    rows.append(source_row)
    rhs.append(-1.0)

    lower = np.zeros(n)
    upper = np.ones(n) if box_bounds else np.full(n, np.inf)
    names = [f"p[{v}]" for v in vertices] + [f"d[{e.tail}->{e.head}]" for e in edges]
    problem = LinearProgram(
        objective=objective,
        inequality_matrix=np.vstack(rows),
        inequality_rhs=np.asarray(rhs),
        lower_bounds=lower,
        upper_bounds=upper,
        names=names,
    )
    return problem, vertices, [e.index for e in edges]


@dataclass
class AnalogMinCutResult:
    """Result of the analog min-cut solve.

    Attributes
    ----------
    lp_objective:
        Objective value reached by the analog dynamics (the analog estimate
        of the min-cut capacity).
    cut_value:
        Capacity of the *rounded* cut (always an upper bound on the true
        minimum cut).
    partition:
        Rounded 0/1 label per vertex (1 = source side).
    cut_edges:
        Edge indices crossing the rounded cut.
    p_values, d_values:
        Raw analog variable values.
    settling_time:
        Settling time of the analog dynamics (model seconds).
    exact_value:
        Exact min-cut capacity (for the relative-error report).
    """

    lp_objective: float
    cut_value: float
    partition: Dict[Vertex, int]
    cut_edges: Tuple[int, ...]
    p_values: Dict[Vertex, float]
    d_values: Dict[int, float]
    settling_time: float
    exact_value: Optional[float] = None
    analog: AnalogLPResult = field(default=None, repr=False)

    @property
    def relative_error(self) -> float:
        """Relative error of the analog objective against the exact min cut."""
        if self.exact_value is None or self.exact_value == 0:
            return 0.0
        return abs(self.lp_objective - self.exact_value) / self.exact_value

    @property
    def rounded_relative_error(self) -> float:
        """Relative error of the rounded cut against the exact min cut."""
        if self.exact_value is None or self.exact_value == 0:
            return 0.0
        return abs(self.cut_value - self.exact_value) / self.exact_value

    def source_side(self) -> FrozenSet[Vertex]:
        """Vertices on the source side of the rounded cut."""
        return frozenset(v for v, label in self.partition.items() if label == 1)


class AnalogMinCutSolver:
    """Solve the min-cut dual on the analog LP substrate.

    Parameters
    ----------
    gain:
        Constraint feedback gain of the analog dynamics; scaled internally by
        the largest edge capacity so the penalty strength tracks the
        objective's magnitude.
    t_final:
        Integration horizon of the dynamics.
    compare_exact:
        Also compute the exact min cut (via max-flow) for error reporting.
    """

    def __init__(
        self,
        gain: float = 300.0,
        t_final: float = 60.0,
        compare_exact: bool = True,
        rounding_threshold: float = 0.5,
    ) -> None:
        self.gain = gain
        self.t_final = t_final
        self.compare_exact = compare_exact
        self.rounding_threshold = rounding_threshold

    def solve(self, network: FlowNetwork) -> AnalogMinCutResult:
        """Solve the min-cut dual of ``network`` on the analog substrate."""
        problem, vertices, edge_order = build_mincut_lp(network)
        max_capacity = max(network.max_capacity(), 1.0)
        solver = AnalogLPSolver(
            gain=self.gain * max_capacity,
            t_final=self.t_final,
        )
        analog = solver.solve(problem)

        num_p = len(vertices)
        p_values = {v: float(analog.x[i]) for i, v in enumerate(vertices)}
        d_values = {
            edge_index: float(analog.x[num_p + k]) for k, edge_index in enumerate(edge_order)
        }
        partition = {
            v: (1 if value >= self.rounding_threshold else 0) for v, value in p_values.items()
        }
        # The source must be on the source side and the sink on the sink side
        # regardless of rounding noise.
        partition[network.source] = 1
        partition[network.sink] = 0

        source_side = {v for v, label in partition.items() if label == 1}
        cut_edges = tuple(
            edge.index
            for edge in network.edges()
            if edge.tail in source_side and edge.head not in source_side
        )
        cut_value = sum(network.edge(i).capacity for i in cut_edges)

        exact_value: Optional[float] = None
        if self.compare_exact:
            exact: MinCutResult = min_cut(network)
            exact_value = exact.cut_value

        return AnalogMinCutResult(
            lp_objective=analog.objective_value,
            cut_value=float(cut_value),
            partition=partition,
            cut_edges=cut_edges,
            p_values=p_values,
            d_values=d_values,
            settling_time=analog.settling_time,
            exact_value=exact_value,
            analog=analog,
        )
