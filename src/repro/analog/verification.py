"""Solution-quality metrics for the analog substrate.

The paper quantifies solution quality as the relative error of the circuit's
flow value against the exact optimum (Fig. 10 reports errors below 8 %, with
averages of 3.7 % for dense and 5.4 % for sparse graphs).  This module
computes that metric plus feasibility diagnostics (capacity and conservation
violations of the decoded per-edge flows), which expose *why* a particular
non-ideality hurts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..flows.dinic import Dinic
from ..graph.network import FlowNetwork

__all__ = ["SolutionQuality", "evaluate_solution"]


@dataclass(frozen=True)
class SolutionQuality:
    """Quality of an analog solution relative to the exact optimum.

    Attributes
    ----------
    analog_value:
        Flow value reported by the analog substrate.
    exact_value:
        Exact max-flow value.
    relative_error:
        ``|analog - exact| / exact`` (0 when the exact value is 0).
    signed_error:
        ``(analog - exact) / exact`` — negative means the substrate
        under-estimates the flow (typical of insufficient ``Vflow`` drive),
        positive means it over-estimates (typical of quantization rounding
        capacities upward).
    max_capacity_violation:
        Largest per-edge excess of decoded flow over capacity (flow units).
    max_conservation_violation:
        Largest per-vertex conservation residual of the decoded flows.
    """

    analog_value: float
    exact_value: float
    relative_error: float
    signed_error: float
    max_capacity_violation: float
    max_conservation_violation: float

    @property
    def within(self) -> float:
        """Alias of :attr:`relative_error` kept for readable assertions."""
        return self.relative_error


def evaluate_solution(
    network: FlowNetwork,
    analog_value: float,
    edge_flows: Optional[Mapping[int, float]] = None,
    exact_value: Optional[float] = None,
) -> SolutionQuality:
    """Compare an analog solution against the exact optimum.

    Parameters
    ----------
    network:
        The original flow network.
    analog_value:
        Flow value reported by the analog solver.
    edge_flows:
        Optional decoded per-edge flows for feasibility diagnostics.
    exact_value:
        Exact max-flow value; computed with Dinic's algorithm when omitted.
    """
    if exact_value is None:
        exact_value = Dinic().solve(network).flow_value

    if exact_value != 0:
        signed = (analog_value - exact_value) / exact_value
    else:
        signed = 0.0 if analog_value == 0 else float("inf")
    relative = abs(signed)

    max_capacity_violation = 0.0
    max_conservation_violation = 0.0
    if edge_flows is not None:
        for edge in network.edges():
            flow = edge_flows.get(edge.index, 0.0)
            if not edge.is_uncapacitated:
                max_capacity_violation = max(max_capacity_violation, flow - edge.capacity)
            max_capacity_violation = max(max_capacity_violation, -flow)
        for vertex in network.internal_vertices():
            residual = network.excess(dict(edge_flows), vertex)
            max_conservation_violation = max(max_conservation_violation, abs(residual))

    return SolutionQuality(
        analog_value=float(analog_value),
        exact_value=float(exact_value),
        relative_error=float(relative),
        signed_error=float(signed),
        max_capacity_violation=float(max_capacity_violation),
        max_conservation_violation=float(max_conservation_violation),
    )
