"""Problem→flow reductions: new workloads for every max-flow backend.

The paper's engine solves s-t max-flow; this package multiplies the
workloads it can serve by reducing classic combinatorial problems to flow
and decoding the answer back — with an optimality certificate in the
problem's own language:

* :class:`BipartiteMatching` — maximum matching, certified by a König
  vertex cover of equal size;
* :class:`DisjointPaths` — edge-/vertex-disjoint s-t paths, certified by a
  Menger separator of equal size;
* :class:`ImageSegmentation` — globally optimal binary labeling, certified
  by the energy identity against the min-cut value;
* :class:`ProjectSelection` — maximum-weight closure, certified by the
  profit identity against the min-cut value.

:func:`solve_problem` runs the self-contained classical pipeline;
:class:`~repro.service.problems.ProblemSolveService` routes the same
reductions through any production backend (classical, analog, sharded).
"""

from .base import (
    CertificateReport,
    Problem,
    Reduction,
    Solution,
    solve_problem,
)
from .closure import ClosureSolution, ProjectSelection
from .matching import BipartiteMatching, MatchingSolution
from .paths import DisjointPaths, DisjointPathsSolution
from .segmentation import ImageSegmentation, SegmentationSolution

__all__ = [
    "CertificateReport",
    "Problem",
    "Reduction",
    "Solution",
    "solve_problem",
    "BipartiteMatching",
    "MatchingSolution",
    "DisjointPaths",
    "DisjointPathsSolution",
    "ImageSegmentation",
    "SegmentationSolution",
    "ProjectSelection",
    "ClosureSolution",
]
