"""Project selection (maximum-weight closure) as a min-cut reduction.

The classic open-pit-mining / project-selection reduction: pick a subset of
projects maximising total profit, subject to prerequisite constraints
(selecting a project requires selecting everything it depends on — a
*closed* set of the prerequisite digraph).  Profitable projects hang off the
source with their profit as capacity, costly projects feed the sink with
their cost, and each prerequisite arc gets a finite big-M capacity (one more
than the total positive profit) so it is never cut.  Then::

    max closure profit = total positive profit - min cut

and the **profit identity** is the certificate: the decoded source-side set
is closed, its profit equals ``total_positive - cut``, and the cut equals
the max-flow lower bound, so no closed set can do better (every closed set
induces a cut of capacity ``total_positive - profit``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Set, Tuple

from ..errors import ProblemError
from ..flows.base import MaxFlowResult
from ..flows.mincut import MinCutResult
from ..graph.network import FlowNetwork
from ..graph.transforms import attach_super_terminals
from .base import CertificateReport, Problem, Reduction, Solution

__all__ = ["ProjectSelection", "ClosureSolution"]

Project = Hashable


def _proj(label: Project) -> Tuple[str, Project]:
    return ("proj", label)


@dataclass
class ClosureSolution(Solution):
    """A maximum-weight closed set of projects.

    Attributes
    ----------
    selected:
        The chosen projects (a closed set under the prerequisite relation).
    profit:
        Total profit of the selection (equals :attr:`Solution.value`).
    """

    selected: List[Project] = field(default_factory=list)
    profit: float = 0.0


class ProjectSelection(Problem):
    """Maximum-weight closure of a prerequisite digraph.

    Parameters
    ----------
    profits:
        Mapping from project label to profit (negative = cost).
    prerequisites:
        ``(project, dependency)`` pairs: selecting ``project`` requires
        selecting ``dependency``.  Unknown labels are rejected.

    Examples
    --------
    >>> from repro.problems import ProjectSelection, solve_problem
    >>> problem = ProjectSelection(
    ...     profits={"mine": 10.0, "road": -4.0, "survey": -2.0},
    ...     prerequisites=[("mine", "road"), ("road", "survey")],
    ... )
    >>> solution, _ = solve_problem(problem)
    >>> round(solution.value, 2), sorted(solution.selected)
    (4.0, ['mine', 'road', 'survey'])
    """

    kind = "project-selection"
    decode_from = "cut"

    def __init__(
        self,
        profits: Mapping[Project, float],
        prerequisites: Iterable[Tuple[Project, Project]] = (),
    ) -> None:
        if not profits:
            raise ProblemError("project selection needs at least one project")
        self.profits: Dict[Project, float] = {p: float(v) for p, v in profits.items()}
        self.prerequisites: List[Tuple[Project, Project]] = []
        seen: Set[Tuple[Project, Project]] = set()
        for a, b in prerequisites:
            if a not in self.profits or b not in self.profits:
                raise ProblemError(f"prerequisite ({a!r}, {b!r}) references unknown project")
            if a == b:
                continue
            if (a, b) not in seen:
                seen.add((a, b))
                self.prerequisites.append((a, b))

    # ------------------------------------------------------------------

    @property
    def total_positive_profit(self) -> float:
        """Sum of the positive profits (the reduction's objective offset)."""
        return sum(v for v in self.profits.values() if v > 0)

    def profit_of(self, selected: Iterable[Project]) -> float:
        """Total profit of an arbitrary project subset."""
        return sum(self.profits[p] for p in selected)

    def reduce(self) -> Reduction:
        """Source feeds profits, costs feed the sink, prerequisites get big-M."""
        big_m = self.total_positive_profit + 1.0
        core = FlowNetwork(source="select*", sink="drop*")
        for project in self.profits:
            core.add_vertex(_proj(project))
        for a, b in self.prerequisites:
            core.add_edge(_proj(a), _proj(b), big_m)
        network = attach_super_terminals(
            core,
            {_proj(p): v for p, v in self.profits.items() if v > 0},
            {_proj(p): -v for p, v in self.profits.items() if v < 0},
        )
        return Reduction(
            problem=self,
            network=network,
            meta={"big_m": big_m},
            objective_offset=self.total_positive_profit,
            objective_sign=-1.0,
        )

    def decode(
        self,
        reduction: Reduction,
        flow: Optional[MaxFlowResult] = None,
        cut: Optional[MinCutResult] = None,
    ) -> ClosureSolution:
        """Source-side projects are the selected closure."""
        cut = self._require_cut(cut)
        selected = [p for p in self.profits if _proj(p) in cut.source_side]
        profit = self.profit_of(selected)
        return ClosureSolution(
            kind=self.kind,
            value=profit,
            flow_value=flow.flow_value if flow is not None else cut.cut_value,
            selected=selected,
            profit=profit,
        )

    def verify(
        self,
        reduction: Reduction,
        solution: Solution,
        flow: Optional[MaxFlowResult] = None,
        cut: Optional[MinCutResult] = None,
        tolerance: float = 1e-9,
    ) -> CertificateReport:
        """Profit identity: closed set attaining total_positive - cut value."""
        if not isinstance(solution, ClosureSolution):
            raise ProblemError("expected a ClosureSolution")
        report = CertificateReport(tolerance=tolerance)
        selected = set(solution.selected)
        open_pairs = [
            (a, b) for a, b in self.prerequisites if a in selected and b not in selected
        ]
        report.require(
            "selection-closed",
            not open_pairs,
            f"{len(open_pairs)} unmet prerequisite(s), e.g. {open_pairs[:1]}",
        )
        profit = self.profit_of(selected)
        cut_value = cut.cut_value if cut is not None else solution.flow_value
        implied = self.total_positive_profit - cut_value
        report.require(
            "profit-identity",
            self._values_close(profit, implied, tolerance),
            f"profit {profit} vs total_positive - cut = {implied}",
        )
        report.require(
            "cut-equals-flow",
            self._values_close(cut_value, solution.flow_value, tolerance),
            f"cut value {cut_value} vs flow lower bound {solution.flow_value}",
        )
        report.require(
            "big-m-uncut",
            cut_value < reduction.meta["big_m"] - 0.5,
            "the minimum cut severed a prerequisite edge (big-M too small)",
        )
        return report
