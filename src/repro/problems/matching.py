"""Maximum bipartite matching as a unit-capacity max-flow reduction.

The classic reduction: a super source feeds every left vertex, every right
vertex drains into a super sink, and each allowed pair becomes a
unit-capacity edge.  Integral max-flow selects a maximum matching; the
minimum cut yields a **König vertex cover** of the same size, which is the
optimality certificate (every cover bounds every matching from above, so
equality proves both optimal — König's theorem says equality is always
attainable in bipartite graphs, and the reduction constructs the witness).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import ProblemError
from ..flows.base import MaxFlowResult
from ..flows.mincut import MinCutResult
from ..graph.network import FlowNetwork
from ..graph.transforms import attach_super_terminals
from .base import CertificateReport, Problem, Reduction, Solution

__all__ = ["BipartiteMatching", "MatchingSolution"]

Label = Hashable


def _left(label: Label) -> Tuple[str, Label]:
    return ("L", label)


def _right(label: Label) -> Tuple[str, Label]:
    return ("R", label)


@dataclass
class MatchingSolution(Solution):
    """A maximum matching plus its König-cover certificate.

    Attributes
    ----------
    pairs:
        The matched ``(left, right)`` pairs.
    cover:
        The minimum vertex cover witnessing optimality: ``("L", l)`` /
        ``("R", r)`` tagged labels, one entry per cover vertex.
    """

    pairs: List[Tuple[Label, Label]] = field(default_factory=list)
    cover: List[Tuple[str, Label]] = field(default_factory=list)


class BipartiteMatching(Problem):
    """Maximum-cardinality matching in a bipartite graph.

    Parameters
    ----------
    left, right:
        The two vertex sets (any hashable labels; the two sides may reuse
        labels — they are namespaced internally).
    pairs:
        The allowed ``(left, right)`` pairs.  Unknown labels are rejected;
        duplicate pairs are collapsed.

    Examples
    --------
    >>> from repro.problems import BipartiteMatching, solve_problem
    >>> problem = BipartiteMatching(
    ...     left=["a", "b"], right=["x", "y"],
    ...     pairs=[("a", "x"), ("b", "x"), ("b", "y")],
    ... )
    >>> solution, _ = solve_problem(problem)
    >>> int(solution.value), solution.certified
    (2, True)
    """

    kind = "bipartite-matching"
    decode_from = "flow"

    def __init__(
        self,
        left: Sequence[Label],
        right: Sequence[Label],
        pairs: Iterable[Tuple[Label, Label]],
    ) -> None:
        self.left = list(dict.fromkeys(left))
        self.right = list(dict.fromkeys(right))
        if not self.left or not self.right:
            raise ProblemError("bipartite matching needs vertices on both sides")
        left_set, right_set = set(self.left), set(self.right)
        self.pairs: List[Tuple[Label, Label]] = []
        seen: Set[Tuple[Label, Label]] = set()
        for l, r in pairs:
            if l not in left_set:
                raise ProblemError(f"pair references unknown left vertex {l!r}")
            if r not in right_set:
                raise ProblemError(f"pair references unknown right vertex {r!r}")
            if (l, r) not in seen:
                seen.add((l, r))
                self.pairs.append((l, r))

    # ------------------------------------------------------------------

    def reduce(self) -> Reduction:
        """Build the unit-capacity matching network (s → L → R → t)."""
        core = FlowNetwork(source="s", sink="t")
        for l in self.left:
            core.add_vertex(_left(l))
        for r in self.right:
            core.add_vertex(_right(r))
        pair_edges = {}
        for l, r in self.pairs:
            pair_edges[core.add_edge(_left(l), _right(r), 1.0).index] = (l, r)
        network = attach_super_terminals(
            core,
            {_left(l): 1.0 for l in self.left},
            {_right(r): 1.0 for r in self.right},
        )
        return Reduction(
            problem=self,
            network=network,
            meta={"pair_edges": pair_edges},
        )

    def decode(
        self,
        reduction: Reduction,
        flow: Optional[MaxFlowResult] = None,
        cut: Optional[MinCutResult] = None,
    ) -> MatchingSolution:
        """Read the matching off the integral pair-edge flows.

        The cover comes from the cut when one is supplied (König's
        construction: left vertices on the sink side plus right vertices on
        the source side); without a cut the cover is left empty and
        :meth:`verify` will reject the solution as uncertified.
        """
        flow = self._require_flow(flow)
        pairs = [
            pair
            for index, pair in reduction.meta["pair_edges"].items()
            if flow.edge_flows.get(index, 0.0) > 0.5
        ]
        cover: List[Tuple[str, Label]] = []
        if cut is not None:
            cover = [
                _left(l) for l in self.left if _left(l) not in cut.source_side
            ] + [_right(r) for r in self.right if _right(r) in cut.source_side]
        return MatchingSolution(
            kind=self.kind,
            value=float(len(pairs)),
            flow_value=flow.flow_value,
            pairs=pairs,
            cover=cover,
        )

    def verify(
        self,
        reduction: Reduction,
        solution: Solution,
        flow: Optional[MaxFlowResult] = None,
        cut: Optional[MinCutResult] = None,
        tolerance: float = 1e-9,
    ) -> CertificateReport:
        """König certificate: valid matching + valid cover of equal size."""
        if not isinstance(solution, MatchingSolution):
            raise ProblemError("expected a MatchingSolution")
        report = CertificateReport(tolerance=tolerance)
        allowed = set(self.pairs)
        used_left: Set[Label] = set()
        used_right: Set[Label] = set()
        valid = True
        for l, r in solution.pairs:
            if (l, r) not in allowed or l in used_left or r in used_right:
                valid = False
                break
            used_left.add(l)
            used_right.add(r)
        report.require(
            "matching-valid",
            valid,
            "decoded pairs are not a matching over the allowed pairs",
        )
        cover = set(solution.cover)
        uncovered = [
            (l, r)
            for l, r in self.pairs
            if _left(l) not in cover and _right(r) not in cover
        ]
        report.require(
            "cover-valid",
            not uncovered,
            f"vertex set leaves {len(uncovered)} pair(s) uncovered, e.g. {uncovered[:1]}",
        )
        report.require(
            "koenig-equality",
            len(solution.pairs) == len(cover),
            f"|matching| = {len(solution.pairs)} but |cover| = {len(cover)}",
        )
        report.require(
            "flow-matches-matching",
            self._values_close(solution.flow_value, len(solution.pairs), tolerance),
            f"flow value {solution.flow_value} vs matching size {len(solution.pairs)}",
        )
        return report
