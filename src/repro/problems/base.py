"""Problem/Reduction/Solution protocol of the reduction subsystem.

The analog engine (and every classical/sharded/streaming backend layered on
top of it) solves exactly one problem shape: s-t maximum flow.  This module
defines the contract that lets *other* combinatorial problems ride on that
engine:

* a :class:`Problem` knows how to **reduce** itself to a
  :class:`~repro.graph.network.FlowNetwork` (returning a :class:`Reduction`
  that records the network plus whatever bookkeeping the decoder needs);
* given a max-flow/min-cut answer on the reduced network, the problem
  **decodes** it back into a domain :class:`Solution` (a matching, a set of
  paths, a pixel labeling, a project selection);
* every decoded solution is **certified**: max-flow/min-cut duality yields a
  matching optimality certificate in each domain (König cover for matchings,
  Menger separator for disjoint paths, the energy identity for
  segmentations, the profit identity for closures), and
  :meth:`Problem.verify` checks it, returning a :class:`CertificateReport`.

The certificates are the load-bearing part of the design: a backend may be
approximate (the analog substrate) or may return only a cut (the sharded
service), so the decoded answer is never trusted on the backend's word — it
is re-derived from exact structures and proven optimal by exhibiting the
dual witness.  :class:`~repro.service.problems.ProblemSolveService` wires
this protocol to the production backends; :func:`solve_problem` is the
self-contained classical path used by tests and examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ProblemError
from ..flows.base import MaxFlowResult
from ..flows.mincut import MinCutResult, min_cut_from_flow
from ..flows.registry import solve_max_flow
from ..graph.network import FlowNetwork

__all__ = [
    "CertificateReport",
    "Reduction",
    "Solution",
    "Problem",
    "solve_problem",
]


@dataclass
class CertificateReport:
    """Outcome of one optimality-certificate check.

    Attributes
    ----------
    checks:
        Names of the individual certificate checks that were evaluated.
    violations:
        Human-readable descriptions of every failed check (empty when the
        solution is certified).
    tolerance:
        Relative tolerance the value identities were checked against
        (``0`` for purely combinatorial certificates).

    Examples
    --------
    >>> report = CertificateReport(checks=["matching-valid"], violations=[])
    >>> report.ok, report.status
    (True, 'certified')
    """

    checks: List[str] = field(default_factory=list)
    violations: List[str] = field(default_factory=list)
    tolerance: float = 0.0

    @property
    def ok(self) -> bool:
        """True when every certificate check passed."""
        return not self.violations

    @property
    def status(self) -> str:
        """``"certified"`` or ``"FAILED: <first violation>"``."""
        if self.ok:
            return "certified"
        return f"FAILED: {self.violations[0]}"

    def require(self, name: str, passed: bool, detail: str) -> None:
        """Record check ``name``; file ``detail`` as a violation unless ``passed``."""
        self.checks.append(name)
        if not passed:
            self.violations.append(f"{name}: {detail}")


@dataclass
class Reduction:
    """A problem compiled down to one max-flow instance.

    Attributes
    ----------
    problem:
        The originating :class:`Problem`.
    network:
        The reduced flow network every backend can solve.
    meta:
        Reduction-specific bookkeeping the decoder needs (label maps,
        big-M values, ...).
    objective_offset, objective_sign:
        The domain objective is an affine function of the max-flow value:
        ``objective = objective_offset + objective_sign * flow_value``.
        Matchings/paths/segmentations use the identity (offset 0, sign 1);
        max-closure uses ``total positive profit - min cut``.
    """

    problem: "Problem"
    network: FlowNetwork
    meta: Dict[str, Any] = field(default_factory=dict)
    objective_offset: float = 0.0
    objective_sign: float = 1.0

    @property
    def kind(self) -> str:
        """Problem kind this network reduces (``"bipartite-matching"``, ...)."""
        return self.problem.kind

    @property
    def num_vertices(self) -> int:
        """Vertex count of the reduced network."""
        return self.network.num_vertices

    @property
    def num_edges(self) -> int:
        """Edge count of the reduced network."""
        return self.network.num_edges

    def objective_from_flow(self, flow_value: float) -> float:
        """Map a max-flow value on the reduced network to the domain objective."""
        return self.objective_offset + self.objective_sign * flow_value


@dataclass
class Solution:
    """A decoded domain answer plus its certificate.

    Subclasses add the domain payload (``pairs``, ``paths``, ``labels``,
    ``selected``); the base carries what every consumer needs.

    Attributes
    ----------
    kind:
        Problem kind that produced this solution.
    value:
        Domain objective value (matching size, path count, cut energy,
        closure profit).
    flow_value:
        Max-flow value of the reduced network the decode was based on.
    certificate:
        The duality-certificate report (``None`` until verified).
    """

    kind: str
    value: float
    flow_value: float
    certificate: Optional[CertificateReport] = None

    @property
    def certified(self) -> bool:
        """True when the certificate was checked and passed."""
        return self.certificate is not None and self.certificate.ok


class Problem:
    """Base class of the problem→flow reductions.

    Subclasses set :attr:`kind` and :attr:`decode_from` and implement
    :meth:`reduce`, :meth:`decode` and :meth:`verify`.

    ``decode_from`` declares which half of the max-flow/min-cut answer the
    decoder consumes: ``"flow"`` (matchings and disjoint paths read the
    integral edge flows) or ``"cut"`` (segmentation and closure read the
    source-side partition).  The service uses it to route backend outputs —
    e.g. the sharded backend natively produces a cut but no edge flows.
    """

    #: Problem-kind identifier echoed through solutions and reports.
    kind: str = "abstract"

    #: ``"flow"`` or ``"cut"`` — which decoded structure the problem needs.
    decode_from: str = "flow"

    def reduce(self) -> Reduction:
        """Build the reduced flow network (a fresh :class:`Reduction`)."""
        raise NotImplementedError

    def decode(
        self,
        reduction: Reduction,
        flow: Optional[MaxFlowResult] = None,
        cut: Optional[MinCutResult] = None,
    ) -> Solution:
        """Turn a max-flow/min-cut answer on the reduced network into a domain answer.

        Parameters
        ----------
        reduction:
            The reduction the answer belongs to (must come from
            :meth:`reduce` on this problem).
        flow:
            Exact max-flow result on ``reduction.network`` (required when
            :attr:`decode_from` is ``"flow"``).
        cut:
            Minimum cut of ``reduction.network`` (required when
            :attr:`decode_from` is ``"cut"``).
        """
        raise NotImplementedError

    def verify(
        self,
        reduction: Reduction,
        solution: Solution,
        flow: Optional[MaxFlowResult] = None,
        cut: Optional[MinCutResult] = None,
        tolerance: float = 1e-9,
    ) -> CertificateReport:
        """Check the duality certificate of ``solution`` and attach the report.

        Implementations must prove *optimality*, not just feasibility: they
        exhibit the dual witness (cover/separator/cut) and check the primal
        and dual values coincide to ``tolerance``.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared decode/verify plumbing
    # ------------------------------------------------------------------

    def _require_flow(self, flow: Optional[MaxFlowResult]) -> MaxFlowResult:
        """Fail fast when a flow-decoding problem is handed no flow."""
        if flow is None:
            raise ProblemError(f"{self.kind}: decoding requires a max-flow result")
        return flow

    def _require_cut(self, cut: Optional[MinCutResult]) -> MinCutResult:
        """Fail fast when a cut-decoding problem is handed no cut."""
        if cut is None:
            raise ProblemError(f"{self.kind}: decoding requires a min-cut result")
        return cut

    @staticmethod
    def _values_close(a: float, b: float, tolerance: float) -> bool:
        """Relative closeness under the service conventions (scale >= 1)."""
        scale = max(1.0, abs(a), abs(b))
        return abs(a - b) <= tolerance * scale


def solve_problem(
    problem: Problem,
    algorithm: str = "dinic",
    tolerance: float = 1e-9,
) -> Tuple[Solution, Reduction]:
    """Reduce, solve classically, decode and certify — the reference path.

    This is the self-contained pipeline (no service, no worker pools): the
    reduced network is solved exactly with the named classical algorithm,
    the minimum cut is extracted from the maximum flow, and the decoded
    solution is verified against its duality certificate.  Production
    traffic goes through
    :class:`~repro.service.problems.ProblemSolveService` instead, which
    routes the same reductions through any registered backend.

    Returns the certified :class:`Solution` and the :class:`Reduction`.

    Examples
    --------
    >>> from repro.problems import BipartiteMatching
    >>> problem = BipartiteMatching(["a"], ["x"], [("a", "x")])
    >>> solution, reduction = solve_problem(problem)
    >>> solution.value, solution.certified
    (1.0, True)
    """
    reduction = problem.reduce()
    flow = solve_max_flow(reduction.network, algorithm=algorithm)
    cut = min_cut_from_flow(reduction.network, flow)
    solution = problem.decode(reduction, flow=flow, cut=cut)
    solution.certificate = problem.verify(
        reduction, solution, flow=flow, cut=cut, tolerance=tolerance
    )
    return solution, reduction
