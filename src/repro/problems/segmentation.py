"""Binary image segmentation as a minimum s-t cut (graph-cut energy).

The Boykov–Kolmogorov reduction the paper cites as a motivating workload:
pixels are grid vertices, per-pixel terminal weights encode the cost of each
label, and neighbour weights penalise label discontinuities.  A labeling
``x : pixels -> {fg, bg}`` has energy::

    E(x) = sum_{p: x_p = fg} fg_cost(p) + sum_{p: x_p = bg} bg_cost(p)
         + sum_{p ~ q, x_p != x_q} smoothness(p, q)

Every labeling corresponds to an s-t cut of the reduced network with
capacity exactly ``E(x)``, so the minimum cut is the global MAP labeling and
the **energy identity** ``E(decoded) == cut value == max-flow value`` is the
optimality certificate (any labeling is a cut, so none can beat the minimum
cut; exhibiting a labeling *attaining* the max-flow lower bound proves it
optimal).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ProblemError
from ..flows.base import MaxFlowResult
from ..flows.mincut import MinCutResult
from ..graph.network import FlowNetwork
from ..graph.transforms import attach_super_terminals
from .base import CertificateReport, Problem, Reduction, Solution

__all__ = ["ImageSegmentation", "SegmentationSolution"]

Pixel = Tuple[int, int]


def _pixel(x: int, y: int) -> Tuple[str, int, int]:
    return ("px", x, y)


@dataclass
class SegmentationSolution(Solution):
    """A globally optimal binary labeling plus the attained energy.

    Attributes
    ----------
    labels:
        ``labels[y][x]`` is ``"fg"`` or ``"bg"`` for the pixel at column
        ``x``, row ``y``.
    energy:
        The energy of the decoded labeling, recomputed directly from the
        problem data (the certificate checks it equals the cut value).
    """

    labels: List[List[str]] = field(default_factory=list)
    energy: float = 0.0

    def foreground(self) -> List[Pixel]:
        """The ``(x, y)`` coordinates labeled foreground."""
        return [
            (x, y)
            for y, row in enumerate(self.labels)
            for x, label in enumerate(row)
            if label == "fg"
        ]


class ImageSegmentation(Problem):
    """Globally optimal binary segmentation with terminal weights.

    Parameters
    ----------
    fg_cost, bg_cost:
        Row-major grids (``cost[y][x] >= 0``) of the per-pixel cost of
        labeling the pixel foreground / background.
    smoothness:
        Non-negative penalty per 4-neighbour label discontinuity — a scalar,
        or a callable ``(pixel_a, pixel_b) -> float`` over ``(x, y)`` pairs
        for contrast-sensitive weights (evaluated once per unordered pair).

    Examples
    --------
    >>> from repro.problems import ImageSegmentation, solve_problem
    >>> problem = ImageSegmentation(
    ...     fg_cost=[[0.1, 0.9]], bg_cost=[[0.9, 0.1]], smoothness=0.05,
    ... )
    >>> solution, _ = solve_problem(problem)
    >>> solution.labels[0], solution.certified
    (['fg', 'bg'], True)
    """

    kind = "image-segmentation"
    decode_from = "cut"

    def __init__(
        self,
        fg_cost: Sequence[Sequence[float]],
        bg_cost: Sequence[Sequence[float]],
        smoothness=0.0,
    ) -> None:
        self.fg_cost = [list(map(float, row)) for row in fg_cost]
        self.bg_cost = [list(map(float, row)) for row in bg_cost]
        if not self.fg_cost or not self.fg_cost[0]:
            raise ProblemError("segmentation needs at least one pixel")
        widths = {len(row) for row in self.fg_cost} | {len(row) for row in self.bg_cost}
        if len(widths) != 1 or len(self.fg_cost) != len(self.bg_cost):
            raise ProblemError("fg_cost and bg_cost must be equal-shape grids")
        self.height = len(self.fg_cost)
        self.width = len(self.fg_cost[0])
        for grid, name in ((self.fg_cost, "fg_cost"), (self.bg_cost, "bg_cost")):
            for row in grid:
                if any(c < 0 for c in row):
                    raise ProblemError(f"{name} entries must be non-negative")
        # Evaluate the smoothness weights exactly once, here: reduce(),
        # decode() and verify() all consume the same frozen pair list, so a
        # stateful callable can never make the reduced network and the
        # recomputed energy disagree.
        if callable(smoothness):
            weight_of = smoothness
        else:
            constant = float(smoothness)

            def weight_of(a: Pixel, b: Pixel) -> float:
                return constant

        self._pairs: List[Tuple[Pixel, Pixel, float]] = []
        for y in range(self.height):
            for x in range(self.width):
                for dx, dy in ((1, 0), (0, 1)):
                    nx, ny = x + dx, y + dy
                    if nx < self.width and ny < self.height:
                        weight = float(weight_of((x, y), (nx, ny)))
                        if weight < 0:
                            raise ProblemError("smoothness weights must be non-negative")
                        self._pairs.append(((x, y), (nx, ny), weight))

    # ------------------------------------------------------------------

    def neighbour_pairs(self) -> List[Tuple[Pixel, Pixel, float]]:
        """Unordered 4-neighbour pixel pairs with their (frozen) weights."""
        return list(self._pairs)

    def energy_of(self, labels: Sequence[Sequence[str]]) -> float:
        """Energy of an arbitrary labeling, straight from the problem data."""
        total = 0.0
        for y in range(self.height):
            for x in range(self.width):
                label = labels[y][x]
                if label not in ("fg", "bg"):
                    raise ProblemError(f"label at ({x}, {y}) must be 'fg' or 'bg'")
                total += self.fg_cost[y][x] if label == "fg" else self.bg_cost[y][x]
        for (ax, ay), (bx, by), weight in self._pairs:
            if labels[ay][ax] != labels[by][bx]:
                total += weight
        return total

    def reduce(self) -> Reduction:
        """Terminal edges carry the label costs; neighbour edges the smoothness.

        Cut semantics (source = foreground): a foreground pixel cuts its
        pixel→sink edge (capacity ``fg_cost``), a background pixel cuts its
        source→pixel edge (capacity ``bg_cost``), and a label discontinuity
        cuts exactly one direction of the neighbour pair.
        """
        core = FlowNetwork(source="fg*", sink="bg*")
        for y in range(self.height):
            for x in range(self.width):
                core.add_vertex(_pixel(x, y))
        for (ax, ay), (bx, by), weight in self._pairs:
            if weight > 0.0:
                core.add_edge(_pixel(ax, ay), _pixel(bx, by), weight)
                core.add_edge(_pixel(bx, by), _pixel(ax, ay), weight)
        network = attach_super_terminals(
            core,
            {
                _pixel(x, y): self.bg_cost[y][x]
                for y in range(self.height)
                for x in range(self.width)
            },
            {
                _pixel(x, y): self.fg_cost[y][x]
                for y in range(self.height)
                for x in range(self.width)
            },
        )
        return Reduction(problem=self, network=network)

    def decode(
        self,
        reduction: Reduction,
        flow: Optional[MaxFlowResult] = None,
        cut: Optional[MinCutResult] = None,
    ) -> SegmentationSolution:
        """Source-side pixels are foreground; energy recomputed from the data."""
        cut = self._require_cut(cut)
        labels = [
            [
                "fg" if _pixel(x, y) in cut.source_side else "bg"
                for x in range(self.width)
            ]
            for y in range(self.height)
        ]
        energy = self.energy_of(labels)
        return SegmentationSolution(
            kind=self.kind,
            value=energy,
            flow_value=flow.flow_value if flow is not None else cut.cut_value,
            labels=labels,
            energy=energy,
        )

    def verify(
        self,
        reduction: Reduction,
        solution: Solution,
        flow: Optional[MaxFlowResult] = None,
        cut: Optional[MinCutResult] = None,
        tolerance: float = 1e-9,
    ) -> CertificateReport:
        """Energy identity: E(labels) == cut capacity == max-flow lower bound."""
        if not isinstance(solution, SegmentationSolution):
            raise ProblemError("expected a SegmentationSolution")
        report = CertificateReport(tolerance=tolerance)
        energy = self.energy_of(solution.labels)
        report.require(
            "labeling-complete",
            len(solution.labels) == self.height
            and all(len(row) == self.width for row in solution.labels),
            "labeling shape does not match the pixel grid",
        )
        cut_value = cut.cut_value if cut is not None else solution.flow_value
        report.require(
            "energy-equals-cut",
            self._values_close(energy, cut_value, tolerance),
            f"labeling energy {energy} vs cut value {cut_value}",
        )
        report.require(
            "cut-equals-flow",
            self._values_close(cut_value, solution.flow_value, tolerance),
            f"cut value {cut_value} vs flow lower bound {solution.flow_value}",
        )
        return report
