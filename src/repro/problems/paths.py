"""Vertex- and edge-disjoint s-t paths as a unit-capacity max-flow reduction.

Menger's theorem is max-flow/min-cut duality specialised to unit capacities:
the maximum number of edge-disjoint s-t paths equals the minimum number of
edges whose removal disconnects s from t, and the vertex-disjoint variant
follows after the classic node-splitting transform
(:func:`~repro.graph.transforms.split_vertex_capacities` with capacity 1 on
every internal vertex).  The decoder performs an exact flow decomposition
(cycles are discarded, as flow decomposition allows) and the certificate
exhibits the **separator** read off the minimum cut: disjoint paths and a
separator of equal size prove each other optimal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from ..errors import ProblemError
from ..flows.base import MaxFlowResult
from ..flows.mincut import MinCutResult
from ..graph.network import FlowNetwork
from ..graph.transforms import split_vertex_capacities, unsplit_label
from .base import CertificateReport, Problem, Reduction, Solution

__all__ = ["DisjointPaths", "DisjointPathsSolution"]

Vertex = Hashable


@dataclass
class DisjointPathsSolution(Solution):
    """A maximum family of disjoint s-t paths plus its Menger separator.

    Attributes
    ----------
    paths:
        Vertex sequences ``[s, ..., t]`` in the *original* digraph, one per
        path.
    separator_vertices:
        Internal vertices of the certifying separator (vertex-disjoint mode;
        empty in edge-disjoint mode).
    separator_edges:
        Edges ``(u, v)`` of the certifying separator.  Removing the
        separator (vertices and edges together) disconnects s from t, and
        its size equals the number of paths — the Menger certificate.
    """

    paths: List[List[Vertex]] = field(default_factory=list)
    separator_vertices: List[Vertex] = field(default_factory=list)
    separator_edges: List[Tuple[Vertex, Vertex]] = field(default_factory=list)


class DisjointPaths(Problem):
    """Maximum number of edge- or vertex-disjoint s-t paths in a digraph.

    Parameters
    ----------
    edges:
        Directed ``(tail, head)`` pairs (duplicates collapse; self-loops are
        rejected).
    source, sink:
        The two terminals.
    vertex_disjoint:
        When set, paths must not share *internal vertices* (they may still
        share the terminals); otherwise paths must not share edges.

    Examples
    --------
    >>> from repro.problems import DisjointPaths, solve_problem
    >>> problem = DisjointPaths(
    ...     [("s", "a"), ("a", "t"), ("s", "b"), ("b", "t"), ("a", "b")],
    ...     source="s", sink="t", vertex_disjoint=True,
    ... )
    >>> solution, _ = solve_problem(problem)
    >>> int(solution.value), solution.certified
    (2, True)
    """

    kind = "disjoint-paths"
    decode_from = "flow"

    def __init__(
        self,
        edges: Iterable[Tuple[Vertex, Vertex]],
        source: Vertex = "s",
        sink: Vertex = "t",
        vertex_disjoint: bool = False,
    ) -> None:
        if source == sink:
            raise ProblemError("source and sink must be distinct")
        self.source = source
        self.sink = sink
        self.vertex_disjoint = bool(vertex_disjoint)
        self.edges: List[Tuple[Vertex, Vertex]] = []
        seen: Set[Tuple[Vertex, Vertex]] = set()
        for u, v in edges:
            if u == v:
                raise ProblemError(f"self-loop on {u!r} is not allowed")
            for vertex in (u, v):
                # The split-half label shape is reserved by the node-splitting
                # transform; aliasing it would corrupt decode's label collapse.
                if unsplit_label(vertex) != vertex:
                    raise ProblemError(
                        f"vertex label {vertex!r} uses the reserved "
                        "split-half shape (v, '#in')/(v, '#out')"
                    )
            if (u, v) not in seen:
                seen.add((u, v))
                self.edges.append((u, v))

    # ------------------------------------------------------------------

    def reduce(self) -> Reduction:
        """Unit-capacity network; internal vertices split in vertex mode."""
        base = FlowNetwork(source=self.source, sink=self.sink)
        for u, v in self.edges:
            base.add_edge(u, v, 1.0)
        if self.vertex_disjoint:
            internal = {
                v: 1.0 for v in base.vertices() if v not in (self.source, self.sink)
            }
            network = split_vertex_capacities(base, internal)
        else:
            network = base
        # Reduced edge index -> original edge (split edges map to their
        # vertex); rebuilt here because split_vertex_capacities re-indexes.
        edge_roles: Dict[int, Tuple[str, object]] = {}
        for edge in network.edges():
            tail, head = unsplit_label(edge.tail), unsplit_label(edge.head)
            if tail == head:
                edge_roles[edge.index] = ("vertex", tail)
            else:
                edge_roles[edge.index] = ("edge", (tail, head))
        return Reduction(problem=self, network=network, meta={"edge_roles": edge_roles})

    def decode(
        self,
        reduction: Reduction,
        flow: Optional[MaxFlowResult] = None,
        cut: Optional[MinCutResult] = None,
    ) -> DisjointPathsSolution:
        """Exact flow decomposition into disjoint paths (cycles discarded)."""
        flow = self._require_flow(flow)
        network = reduction.network
        outgoing: Dict[Vertex, List[Vertex]] = {}
        for edge in network.edges():
            if flow.edge_flows.get(edge.index, 0.0) > 0.5:
                outgoing.setdefault(edge.tail, []).append(edge.head)
        count = int(round(flow.flow_value))
        paths: List[List[Vertex]] = []
        for _ in range(count):
            walk = [network.source]
            position = {network.source: 0}
            while walk[-1] != network.sink:
                candidates = outgoing.get(walk[-1])
                if not candidates:
                    raise ProblemError(
                        f"{self.kind}: flow decomposition stuck at {walk[-1]!r} "
                        "(edge flows are not an integral max flow)"
                    )
                head = candidates.pop()
                if head in position:
                    # Loop back onto the current walk: drop the cycle (its
                    # flow does not contribute to any s-t path).
                    del walk[position[head] + 1 :]
                    position = {v: i for i, v in enumerate(walk)}
                else:
                    walk.append(head)
                    position[head] = len(walk) - 1
            collapsed: List[Vertex] = []
            for vertex in map(unsplit_label, walk):
                if not collapsed or collapsed[-1] != vertex:
                    collapsed.append(vertex)
            paths.append(collapsed)
        separator_vertices: List[Vertex] = []
        separator_edges: List[Tuple[Vertex, Vertex]] = []
        if cut is not None:
            roles = reduction.meta["edge_roles"]
            for index in cut.cut_edges:
                role, payload = roles[index]
                if role == "vertex":
                    separator_vertices.append(payload)
                else:
                    separator_edges.append(payload)
        return DisjointPathsSolution(
            kind=self.kind,
            value=float(count),
            flow_value=flow.flow_value,
            paths=paths,
            separator_vertices=separator_vertices,
            separator_edges=separator_edges,
        )

    def verify(
        self,
        reduction: Reduction,
        solution: Solution,
        flow: Optional[MaxFlowResult] = None,
        cut: Optional[MinCutResult] = None,
        tolerance: float = 1e-9,
    ) -> CertificateReport:
        """Menger certificate: disjoint valid paths + equal-size separator."""
        if not isinstance(solution, DisjointPathsSolution):
            raise ProblemError("expected a DisjointPathsSolution")
        report = CertificateReport(tolerance=tolerance)
        allowed = set(self.edges)
        used_edges: Set[Tuple[Vertex, Vertex]] = set()
        used_internal: Set[Vertex] = set()
        valid = True
        disjoint = True
        for path in solution.paths:
            if len(path) < 2 or path[0] != self.source or path[-1] != self.sink:
                valid = False
                break
            for u, v in zip(path, path[1:]):
                if (u, v) not in allowed:
                    valid = False
                if (u, v) in used_edges:
                    disjoint = False
                used_edges.add((u, v))
            for v in path[1:-1]:
                if self.vertex_disjoint and v in used_internal:
                    disjoint = False
                used_internal.add(v)
        report.require(
            "paths-valid", valid, "a decoded path is not an s-t walk over allowed edges"
        )
        report.require(
            "paths-disjoint",
            disjoint,
            "decoded paths share an edge"
            + (" or internal vertex" if self.vertex_disjoint else ""),
        )
        separator_size = len(solution.separator_vertices) + len(solution.separator_edges)
        report.require(
            "menger-equality",
            separator_size == len(solution.paths),
            f"|separator| = {separator_size} but {len(solution.paths)} paths",
        )
        report.require(
            "separator-disconnects",
            not self._reachable_without(
                set(solution.separator_vertices), set(solution.separator_edges)
            ),
            "removing the separator leaves s and t connected",
        )
        report.require(
            "flow-matches-count",
            self._values_close(solution.flow_value, len(solution.paths), tolerance),
            f"flow value {solution.flow_value} vs path count {len(solution.paths)}",
        )
        return report

    def _reachable_without(
        self, removed_vertices: Set[Vertex], removed_edges: Set[Tuple[Vertex, Vertex]]
    ) -> bool:
        """BFS on the original digraph minus the separator: can s still reach t?"""
        adjacency: Dict[Vertex, List[Vertex]] = {}
        for u, v in self.edges:
            if (u, v) in removed_edges or u in removed_vertices or v in removed_vertices:
                continue
            adjacency.setdefault(u, []).append(v)
        frontier = [self.source]
        visited = {self.source}
        while frontier:
            vertex = frontier.pop()
            if vertex == self.sink:
                return True
            for head in adjacency.get(vertex, ()):
                if head not in visited:
                    visited.add(head)
                    frontier.append(head)
        return False
