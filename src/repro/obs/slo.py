"""Per-backend SLOs: windowed burn rates into actionable health verdicts.

ROADMAP open item 3's last observability piece: the registry records
what happened, the windows turn it into rates — this module decides
what the rates *mean* for routing.  Each backend gets an
:class:`SloObjective` (availability target plus an optional latency
objective); :class:`SloPolicy` evaluates both over two windows — a fast
one (5-minute analogue) that reacts to incidents and a slow one
(1-hour analogue) that filters blips — using the standard burn-rate
formulation:

    ``burn = observed error rate / budgeted error rate``

where the budgeted rate is ``1 - availability`` (and, for latency,
``1 - latency_quantile`` of requests allowed past the objective).  A
burn of 1.0 consumes the budget exactly as fast as the objective
allows; the default thresholds (fast >= 14.4 *and* slow >= 1.0, the
classic multi-window page rule) declare the budget **exhausted** only
when both windows agree, so one bad request cannot open the gate and a
recovered backend closes it as soon as the fast window cools.

The verdict is a :class:`BackendHealth`, and the consumer is the
failover layer: :func:`repro.resilience.failover.solve_with_failover`
asks the active policy before trying each chain stage and *skips*
backends whose budget is exhausted (unless it is the chain's last
resort — degraded service beats no service), emitting an
``slo.backend_skips`` probe event.  Install a policy process-wide with
:func:`set_slo_policy` (mirroring the registry's process-global
pattern) or per :class:`~repro.resilience.failover.FailoverPolicy` via
its ``slo`` field.  Every report's ``telemetry()`` surfaces
:meth:`SloPolicy.report` under the document's ``slo`` section.

Both windows and the clock are injectable, so tests drive a backend's
budget to exhaustion deterministically with a seeded fault plan and a
stepped clock — no sleeping, no wall-clock flakiness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from .metrics import MetricsRegistry
from .windows import WindowDelta, WindowedAggregator

__all__ = [
    "BackendHealth",
    "SloObjective",
    "SloPolicy",
    "get_slo_policy",
    "set_slo_policy",
]

#: Counter names the availability verdict is computed from (emitted by
#: :mod:`repro.obs.probes` at the service-backend boundary).
SOLVES = "service.solves"
SOLVE_ERRORS = "service.solve_errors"

#: Histogram the latency verdict is computed from (one observation per
#: service-backend solve, labelled by backend).
SOLVE_SECONDS = "service.solve.seconds"


@dataclass(frozen=True)
class SloObjective:
    """One backend's objectives: availability and (optional) latency.

    ``availability`` is the target fraction of solves that must succeed
    (0.999 → a 0.1 % error budget).  ``latency_s`` (when set) requires
    the ``latency_quantile`` of solves to finish within it; solves past
    the objective consume the latency budget exactly like errors
    consume the availability budget.
    """

    availability: float = 0.999
    latency_s: Optional[float] = None
    latency_quantile: float = 0.99

    def __post_init__(self) -> None:
        if not 0.0 < self.availability < 1.0:
            raise ValueError("availability target must lie in (0, 1)")
        if not 0.0 < self.latency_quantile < 1.0:
            raise ValueError("latency quantile must lie in (0, 1)")
        if self.latency_s is not None and self.latency_s <= 0.0:
            raise ValueError("latency objective must be positive")

    @property
    def error_budget(self) -> float:
        """Budgeted failure fraction (``1 - availability``)."""
        return 1.0 - self.availability

    @property
    def latency_budget(self) -> float:
        """Budgeted slow fraction (``1 - latency_quantile``)."""
        return 1.0 - self.latency_quantile


@dataclass(frozen=True)
class BackendHealth:
    """One backend's SLO verdict at one instant.

    ``verdict`` is one of ``"healthy"`` (budget intact), ``"degraded"``
    (the slow window is burning faster than sustainable — keep serving,
    start worrying) or ``"exhausted"`` (both windows past their burn
    thresholds: the budget is gone and the failover layer should route
    around this backend).  ``should_skip`` is the routing reading of the
    verdict.
    """

    backend: str
    verdict: str
    fast_burn: float
    slow_burn: float
    error_rate: float
    budget_remaining: float
    requests: int
    latency_burn: float = 0.0
    reason: str = ""

    @property
    def healthy(self) -> bool:
        return self.verdict == "healthy"

    @property
    def should_skip(self) -> bool:
        """Whether a chain walk should route around this backend."""
        return self.verdict == "exhausted"

    def to_dict(self) -> Dict[str, object]:
        """JSON-clean row for the telemetry document's ``slo`` section."""
        return {
            "backend": self.backend,
            "verdict": self.verdict,
            "fast_burn": round(self.fast_burn, 4),
            "slow_burn": round(self.slow_burn, 4),
            "latency_burn": round(self.latency_burn, 4),
            "error_rate": round(self.error_rate, 6),
            "budget_remaining": round(self.budget_remaining, 6),
            "requests": self.requests,
            "reason": self.reason,
        }


class SloPolicy:
    """Availability/latency objectives per backend, tracked over windows.

    Parameters
    ----------
    objective:
        Default :class:`SloObjective` for backends without an override.
    per_backend:
        Per-backend objective overrides (``{"analog": SloObjective(...)}``).
    fast_window_s, slow_window_s:
        The two burn windows (5-minute / 1-hour analogues by default).
    fast_burn_threshold, slow_burn_threshold:
        The multi-window exhaustion rule: the budget is exhausted when
        the fast burn is at least ``fast_burn_threshold`` *and* the slow
        burn at least ``slow_burn_threshold``.
    min_requests:
        Below this many window requests a backend is "unproven", never
        exhausted — tiny samples must not open the gate.
    registry, clock:
        Injectables, both defaulting to process-global/monotonic; the
        aggregator ring is built on them.

    Call :meth:`observe` on a scrape/solve cadence so the ring has
    baselines to difference against; :meth:`health` always reads the
    live registry as the window head, so verdicts are current even
    between samples.
    """

    def __init__(
        self,
        objective: Optional[SloObjective] = None,
        per_backend: Optional[Dict[str, SloObjective]] = None,
        fast_window_s: float = 300.0,
        slow_window_s: float = 3600.0,
        fast_burn_threshold: float = 14.4,
        slow_burn_threshold: float = 1.0,
        min_requests: int = 1,
        registry: Optional[MetricsRegistry] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if fast_window_s <= 0.0 or slow_window_s < fast_window_s:
            raise ValueError("windows must satisfy 0 < fast <= slow")
        if min_requests < 1:
            raise ValueError("min_requests must be >= 1")
        self.objective = objective if objective is not None else SloObjective()
        self.per_backend = dict(per_backend or {})
        self.fast_window_s = float(fast_window_s)
        self.slow_window_s = float(slow_window_s)
        self.fast_burn_threshold = float(fast_burn_threshold)
        self.slow_burn_threshold = float(slow_burn_threshold)
        self.min_requests = int(min_requests)
        self.aggregator = WindowedAggregator(registry=registry, clock=clock)

    # -- data intake ----------------------------------------------------

    def observe(self) -> None:
        """Record one timestamped registry sample into the window ring."""
        self.aggregator.sample()

    def objective_for(self, backend: str) -> SloObjective:
        return self.per_backend.get(backend, self.objective)

    # -- verdicts -------------------------------------------------------

    def _window_burns(self, window: WindowDelta, backend: str, objective: SloObjective):
        ok = window.counter_delta(SOLVES, backend=backend)
        errors = window.counter_delta(SOLVE_ERRORS, backend=backend)
        total = ok + errors
        error_rate = errors / total if total > 0 else 0.0
        avail_burn = error_rate / objective.error_budget
        latency_burn = 0.0
        if objective.latency_s is not None:
            slow_fraction = window.fraction_above(
                SOLVE_SECONDS, objective.latency_s, backend=backend
            )
            latency_burn = slow_fraction / objective.latency_budget
        return total, error_rate, avail_burn, latency_burn

    def health(self, backend: str) -> BackendHealth:
        """The multi-window SLO verdict for ``backend``, right now."""
        objective = self.objective_for(backend)
        fast = self.aggregator.window(self.fast_window_s)
        slow = self.aggregator.window(self.slow_window_s)
        f_total, f_rate, f_avail, f_lat = self._window_burns(fast, backend, objective)
        s_total, s_rate, s_avail, s_lat = self._window_burns(slow, backend, objective)
        fast_burn = max(f_avail, f_lat)
        slow_burn = max(s_avail, s_lat)
        requests = int(s_total)
        budget_remaining = max(0.0, 1.0 - s_avail)

        if requests < self.min_requests:
            verdict, reason = "healthy", f"unproven ({requests} requests in window)"
        elif (
            fast_burn >= self.fast_burn_threshold
            and slow_burn >= self.slow_burn_threshold
        ):
            what = "latency" if max(f_lat, s_lat) > max(f_avail, s_avail) else "availability"
            verdict = "exhausted"
            reason = (
                f"{what} budget exhausted: fast burn {fast_burn:.1f} >= "
                f"{self.fast_burn_threshold:g} and slow burn {slow_burn:.1f} >= "
                f"{self.slow_burn_threshold:g}"
            )
        elif slow_burn >= self.slow_burn_threshold:
            verdict = "degraded"
            reason = f"burning budget at {slow_burn:.1f}x the sustainable rate"
        else:
            verdict, reason = "healthy", ""
        return BackendHealth(
            backend=backend,
            verdict=verdict,
            fast_burn=fast_burn,
            slow_burn=slow_burn,
            latency_burn=max(f_lat, s_lat),
            error_rate=s_rate,
            budget_remaining=budget_remaining,
            requests=requests,
            reason=reason,
        )

    def should_skip(self, backend: str) -> bool:
        """Routing shorthand: is this backend's budget exhausted?"""
        return self.health(backend).should_skip

    def known_backends(self) -> List[str]:
        """Backends with any solve/error traffic in the slow window."""
        window = self.aggregator.window(self.slow_window_s)
        names = set(window.label_values(SOLVES, "backend"))
        names.update(window.label_values(SOLVE_ERRORS, "backend"))
        return sorted(names)

    def report(self) -> Dict[str, object]:
        """The telemetry document's ``slo`` section: policy + verdicts."""
        return {
            "objective": {
                "availability": self.objective.availability,
                "latency_s": self.objective.latency_s,
                "latency_quantile": self.objective.latency_quantile,
            },
            "windows": {
                "fast_s": self.fast_window_s,
                "slow_s": self.slow_window_s,
                "fast_burn_threshold": self.fast_burn_threshold,
                "slow_burn_threshold": self.slow_burn_threshold,
            },
            "backends": {
                name: self.health(name).to_dict() for name in self.known_backends()
            },
        }


#: The process-global policy the failover layer and telemetry consult;
#: ``None`` (the default) keeps every chain walk SLO-blind.
_ACTIVE_POLICY: Optional[SloPolicy] = None


def set_slo_policy(policy: Optional[SloPolicy]) -> Optional[SloPolicy]:
    """Install ``policy`` process-wide; returns the previous policy.

    Mirrors :func:`repro.obs.trace.set_obs_enabled`: tests and services
    install, run, and restore.  ``None`` uninstalls.
    """
    global _ACTIVE_POLICY
    previous = _ACTIVE_POLICY
    _ACTIVE_POLICY = policy
    return previous


def get_slo_policy() -> Optional[SloPolicy]:
    """The process-global policy, or ``None`` when SLO routing is off."""
    return _ACTIVE_POLICY
