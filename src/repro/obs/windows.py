"""Sliding-window aggregation: turning cumulative metrics into rates.

The registry is cumulative by design — counters only grow, histograms
only fill.  Health questions are about *windows*: how many solves failed
in the last five minutes, what was the p99 solve latency over the last
hour.  :class:`WindowedAggregator` answers them by keeping a bounded
ring of timestamped ``snapshot()`` samples and differencing the live
snapshot against the newest sample **at or before** the window start:

* counters become per-window deltas and rates,
* histograms become per-window bucket deltas, from which
  :meth:`WindowDelta.quantile` interpolates quantile estimates the
  same way ``histogram_quantile`` does over Prometheus buckets.

The clock is injectable (the same discipline as
:func:`repro.obs.trace.set_trace_clock`), so the SLO tests step through
five-minute and one-hour windows deterministically without sleeping.
Samples are cheap (one ``snapshot()`` each) and the ring is bounded, so
a long-lived service can :meth:`~WindowedAggregator.sample` on every
scrape without growing.

Label matching sums across label sets: a query for
``counter_delta("service.solve_errors", backend="analog")`` adds up
every key whose name matches and whose labels *contain* the given
pairs, whatever other labels (``error_type``, ...) ride along — the
grouping the per-backend SLO verdicts need.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from .metrics import MetricsRegistry, get_registry, parse_metric_key

__all__ = ["WindowDelta", "WindowedAggregator"]


def _matches(key: str, name: str, match: Dict[str, object]) -> bool:
    key_name, labels = parse_metric_key(key)
    if key_name != name:
        return False
    return all(labels.get(k) == str(v) for k, v in match.items())


class WindowDelta:
    """The change in a registry between two snapshots, ``elapsed_s`` apart."""

    def __init__(
        self,
        start: Dict[str, object],
        end: Dict[str, object],
        elapsed_s: float,
    ) -> None:
        self.start = start
        self.end = end
        self.elapsed_s = max(float(elapsed_s), 0.0)

    def counter_delta(self, name: str, **match: object) -> float:
        """Summed counter growth over the window, across matching label sets."""
        start = self.start.get("counters", {})
        total = 0.0
        for key, value in self.end.get("counters", {}).items():
            if _matches(key, name, match):
                total += value - start.get(key, 0.0)
        return max(total, 0.0)

    def rate(self, name: str, **match: object) -> float:
        """Counter growth per second over the window (0 for an empty window)."""
        if self.elapsed_s <= 0.0:
            return 0.0
        return self.counter_delta(name, **match) / self.elapsed_s

    def label_values(self, name: str, label: str) -> List[str]:
        """Sorted distinct values of ``label`` seen on ``name`` at window end."""
        values = set()
        for key in self.end.get("counters", {}):
            key_name, labels = parse_metric_key(key)
            if key_name == name and label in labels:
                values.add(labels[label])
        return sorted(values)

    def histogram_delta(self, name: str, **match: object) -> Optional[Dict[str, object]]:
        """Merged histogram growth over the window, across matching label sets.

        Returns ``None`` when no matching histogram exists; otherwise a
        snapshot-shaped dict whose counts are the per-window increments.
        Merging requires identical bucket boundaries, which the registry
        guarantees per metric name.
        """
        start = self.start.get("histograms", {})
        merged: Optional[Dict[str, object]] = None
        for key, hist in self.end.get("histograms", {}).items():
            if not _matches(key, name, match):
                continue
            base = start.get(key)
            counts = list(hist["counts"])
            total, count = float(hist["sum"]), int(hist["count"])
            if base is not None and list(base["buckets"]) == list(hist["buckets"]):
                counts = [max(c - b, 0) for c, b in zip(counts, base["counts"])]
                total -= float(base["sum"])
                count -= int(base["count"])
            if merged is None:
                merged = {
                    "buckets": list(hist["buckets"]),
                    "counts": counts,
                    "sum": total,
                    "count": max(count, 0),
                }
            elif list(merged["buckets"]) == list(hist["buckets"]):
                merged["counts"] = [a + b for a, b in zip(merged["counts"], counts)]
                merged["sum"] += total
                merged["count"] += max(count, 0)
        return merged

    def quantile(self, name: str, q: float, **match: object) -> Optional[float]:
        """Estimated ``q``-quantile of the per-window histogram growth.

        Linear interpolation within the winning bucket (Prometheus
        ``histogram_quantile`` semantics); observations in the overflow
        bucket report the top finite boundary, the most conservative
        claim the data supports.  ``None`` when the window saw nothing.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must lie in [0, 1]")
        hist = self.histogram_delta(name, **match)
        if hist is None or hist["count"] <= 0:
            return None
        bounds = list(hist["buckets"])
        counts = list(hist["counts"])
        rank = q * hist["count"]
        cumulative = 0
        for i, count in enumerate(counts):
            previous = cumulative
            cumulative += count
            if cumulative >= rank and count > 0:
                if i >= len(bounds):  # overflow bucket
                    return bounds[-1] if bounds else float("inf")
                lower = bounds[i - 1] if i > 0 else 0.0
                fraction = (rank - previous) / count
                return lower + (bounds[i] - lower) * min(max(fraction, 0.0), 1.0)
        return bounds[-1] if bounds else float("inf")

    def fraction_above(self, name: str, threshold_s: float, **match: object) -> float:
        """Fraction of window observations above ``threshold_s``.

        Buckets straddling the threshold count as *above* (conservative:
        a latency objective is only declared met when the bucket proves
        it).  Returns 0.0 when the window saw nothing.
        """
        hist = self.histogram_delta(name, **match)
        if hist is None or hist["count"] <= 0:
            return 0.0
        within = 0
        for bound, count in zip(hist["buckets"], hist["counts"]):
            if bound <= threshold_s:
                within += count
        return max(hist["count"] - within, 0) / hist["count"]


class WindowedAggregator:
    """Bounded ring of timestamped registry snapshots, queried by window.

    Parameters
    ----------
    registry:
        Source registry (the process-global one by default).
    clock:
        Injectable monotonic clock (``time.monotonic`` by default).
    maxlen:
        Ring capacity; old samples fall off the far end.
    min_interval_s:
        :meth:`sample` calls closer together than this are coalesced
        (the newest sample wins), so scrape-per-request callers do not
        flood the ring.

    >>> reg = MetricsRegistry()
    >>> ticks = iter(range(0, 1000, 10))
    >>> agg = WindowedAggregator(registry=reg, clock=lambda: float(next(ticks)))
    >>> agg.sample()                        # t=0, empty registry
    >>> _ = reg.counter("service.solves", 5, backend="dinic")
    >>> window = agg.window(60.0)           # t=10, live head
    >>> window.counter_delta("service.solves", backend="dinic")
    5.0
    >>> round(window.rate("service.solves"), 2)
    0.5
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        clock: Callable[[], float] = time.monotonic,
        maxlen: int = 256,
        min_interval_s: float = 0.0,
    ) -> None:
        if maxlen < 1:
            raise ValueError("maxlen must be positive")
        self.registry = registry if registry is not None else get_registry()
        self._clock = clock
        self.min_interval_s = float(min_interval_s)
        self._samples: Deque[Tuple[float, Dict[str, object]]] = deque(maxlen=maxlen)

    def __len__(self) -> int:
        return len(self._samples)

    def sample(self) -> None:
        """Record ``(now, registry.snapshot())`` into the ring."""
        now = self._clock()
        if (
            self._samples
            and self.min_interval_s > 0.0
            and now - self._samples[-1][0] < self.min_interval_s
        ):
            self._samples[-1] = (now, self.registry.snapshot())
            return
        self._samples.append((now, self.registry.snapshot()))

    def clear(self) -> None:
        """Drop every recorded sample (test isolation)."""
        self._samples.clear()

    def window(self, window_s: float, now: Optional[float] = None) -> WindowDelta:
        """The registry's change over the trailing ``window_s`` seconds.

        The head of the delta is a *live* snapshot taken now, so a
        health check always sees the latest counts; the baseline is the
        newest ring sample at or before ``now - window_s`` (or the
        oldest available sample when the ring is younger than the
        window).  With an empty ring the delta degrades to "everything
        since process start", with the window length as the elapsed
        time — the conservative reading for a process younger than its
        own SLO window.
        """
        if window_s <= 0.0:
            raise ValueError("window_s must be positive")
        if now is None:
            now = self._clock()
        head = self.registry.snapshot()
        cutoff = now - window_s
        baseline: Optional[Tuple[float, Dict[str, object]]] = None
        for ts, snap in self._samples:
            if ts <= cutoff:
                baseline = (ts, snap)
            else:
                break
        if baseline is None and self._samples:
            baseline = self._samples[0]
        if baseline is None:
            return WindowDelta({}, head, window_s)
        ts, snap = baseline
        return WindowDelta(snap, head, min(now - ts, window_s) or window_s)
