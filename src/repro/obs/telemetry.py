"""The unified ``telemetry()`` document shared by every solving service.

``BatchReport``, ``ShardReport``, ``ProblemReport`` and
``StreamingSession`` each keep a service-specific ``summary()`` dict;
:func:`build_telemetry` wraps any of them in one fixed JSON schema so a
single document shape describes any solve:

``{"schema", "service", "enabled", "summary", "cache", "metrics",
"slo", "trace"}``

* ``summary`` is the service's own flat summary, unchanged — existing
  consumers keep their fields;
* ``cache`` carries ``CompiledCircuitCache.stats()`` where the service
  has one (batch, streaming) and ``{}`` elsewhere, and the same numbers
  are mirrored into the registry as ``cache.*`` gauges when obs is on;
* ``metrics`` is the process registry snapshot — probe counters and span
  latency histograms — so the one document also holds the solver-loop
  tallies that used to be private to report objects;
* ``slo`` is :meth:`repro.obs.slo.SloPolicy.report` for the active
  process-global policy (``{}`` when none is installed) — per-backend
  burn rates and verdicts ride along with every report;
* ``trace`` is the embedded ``repro.trace/v1`` span document, so one
  telemetry dump is enough for ``tools/trace_dump.py`` to render the
  run's span tree.

The schema is pinned by ``tests/test_obs_telemetry.py``: all four
services must produce the same top-level key set and the document must
survive a JSON round trip unchanged.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from .metrics import get_registry
from .trace import obs_enabled, trace_document

__all__ = ["TELEMETRY_KEYS", "TELEMETRY_SCHEMA", "build_telemetry"]

#: Version tag of the unified document; bump on breaking shape changes.
TELEMETRY_SCHEMA = "repro.telemetry/v1"

#: The fixed top-level key set every service's ``telemetry()`` shares.
TELEMETRY_KEYS = (
    "schema", "service", "enabled", "summary", "cache", "metrics", "slo", "trace"
)


def build_telemetry(
    service: str,
    summary: Mapping[str, object],
    cache: Optional[Mapping[str, object]] = None,
) -> Dict[str, object]:
    """Assemble the unified telemetry document for one service.

    When obs is enabled, cache statistics are also exported as
    ``cache.<stat>{service=...}`` gauges so they appear in *every*
    registry snapshot, not only in this service's document.
    """
    from .slo import get_slo_policy  # late import: slo -> windows -> metrics

    cache_stats = dict(cache) if cache else {}
    if cache_stats and obs_enabled():
        registry = get_registry()
        for stat, value in cache_stats.items():
            if isinstance(value, (int, float)):
                registry.gauge(f"cache.{stat}", value, service=service)
    policy = get_slo_policy()
    return {
        "schema": TELEMETRY_SCHEMA,
        "service": service,
        "enabled": obs_enabled(),
        "summary": dict(summary),
        "cache": cache_stats,
        "metrics": get_registry().snapshot(),
        "slo": policy.report() if policy is not None else {},
        "trace": trace_document(),
    }
