"""Exporters: how a registry snapshot leaves the process.

PR 8 made every solving path record into one in-process
:class:`~repro.obs.metrics.MetricsRegistry`; nothing could get *out*.
This module renders a ``snapshot()`` into the two wire formats a
production front door actually scrapes or ships, plus a bounded event
sink for the probe stream:

* :func:`prometheus_text` — the Prometheus text exposition format:
  ``# HELP``/``# TYPE`` headers per family, sorted label sets,
  histograms as cumulative ``_bucket{le=...}`` series ending in
  ``le="+Inf"`` plus ``_sum``/``_count``.  Registry names are dotted
  (``service.solves``); Prometheus names must match
  ``[a-zA-Z_:][a-zA-Z0-9_:]*``, so names are mangled (``.`` → ``_``,
  ``repro_`` prefix) and the **original name rides in the HELP line**,
  which is what makes the export reversible: :func:`parse_prometheus_text`
  reconstructs a snapshot equal to the one rendered (the round-trip gate
  in ``tests/test_obs_export.py``).
* :func:`metrics_document` — an OTLP-flavoured JSON document
  (``repro.metrics/v1``): one entry per metric family with typed data
  points (``sum`` / ``gauge`` / ``histogram``), attributes recovered
  from the flattened keys via
  :func:`~repro.obs.metrics.parse_metric_key`, deterministically
  ordered.
* :class:`JsonlEventSink` — an append-only JSONL file for probe events
  with size-capped rotation and an injectable clock, the same
  determinism discipline as :mod:`repro.obs.trace`.  Attach one with
  :func:`repro.obs.probes.add_event_sink` and every probe emission is
  mirrored as one JSON line.

Everything here is a pure function of the snapshot: exporters never
touch live registry state beyond taking a snapshot, so rendering is
safe from any thread and deterministic given the counts.
"""

from __future__ import annotations

import json
import os
import time
from typing import Callable, Dict, List, Optional, Tuple

from .metrics import MetricsRegistry, get_registry, metric_key, parse_metric_key

__all__ = [
    "METRICS_SCHEMA",
    "JsonlEventSink",
    "metrics_document",
    "parse_prometheus_text",
    "prometheus_text",
]

#: Schema tag of the OTLP-flavoured JSON metrics document.
METRICS_SCHEMA = "repro.metrics/v1"


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

def _prom_name(name: str) -> str:
    """Mangle a dotted registry name into a legal Prometheus name."""
    safe = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    if not safe or not (safe[0].isalpha() or safe[0] == "_"):
        safe = "_" + safe
    return f"repro_{safe}"


def _prom_escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')


def _prom_unescape(value: str) -> str:
    out, i = [], 0
    while i < len(value):
        if value[i] == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"n": "\n", '"': '"', "\\": "\\"}.get(nxt, "\\" + nxt))
            i += 2
        else:
            out.append(value[i])
            i += 1
    return "".join(out)


def _prom_labels(labels: Dict[str, str], extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    pairs = sorted(labels.items()) + list(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_prom_escape(str(v))}"' for k, v in pairs)
    return "{" + inner + "}"


def _prom_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    return repr(float(value))


def _families(entries: Dict[str, object]) -> Dict[str, List[Tuple[Dict[str, str], object]]]:
    """Group flattened ``name{labels}`` keys into per-name families."""
    families: Dict[str, List[Tuple[Dict[str, str], object]]] = {}
    for key in sorted(entries):
        name, labels = parse_metric_key(key)
        families.setdefault(name, []).append((labels, entries[key]))
    return families


def prometheus_text(
    snapshot: Optional[Dict[str, object]] = None,
    registry: Optional[MetricsRegistry] = None,
) -> str:
    """Render a registry snapshot as Prometheus text exposition.

    Families are sorted by name, label sets within a family by their
    flattened key, and every histogram emits the full cumulative bucket
    ladder including ``le="+Inf"`` (taken directly from the registry's
    explicit overflow slot) plus ``_sum`` and ``_count``.

    >>> reg = MetricsRegistry(latency_buckets_s=(0.1,))
    >>> _ = reg.counter("service.solves", 3, backend="dinic")
    >>> print(prometheus_text(registry=reg))
    # HELP repro_service_solves service.solves
    # TYPE repro_service_solves counter
    repro_service_solves{backend="dinic"} 3.0
    <BLANKLINE>
    """
    if snapshot is None:
        snapshot = (registry if registry is not None else get_registry()).snapshot()
    lines: List[str] = []
    for kind, prom_type in (("counters", "counter"), ("gauges", "gauge")):
        for name, points in _families(snapshot.get(kind, {})).items():
            prom = _prom_name(name)
            lines.append(f"# HELP {prom} {_prom_escape(name)}")
            lines.append(f"# TYPE {prom} {prom_type}")
            for labels, value in points:
                lines.append(f"{prom}{_prom_labels(labels)} {_prom_value(value)}")
    for name, points in _families(snapshot.get("histograms", {})).items():
        prom = _prom_name(name)
        lines.append(f"# HELP {prom} {_prom_escape(name)}")
        lines.append(f"# TYPE {prom} histogram")
        for labels, hist in points:
            bounds = list(hist["buckets"]) + [float("inf")]
            cumulative = 0
            for bound, count in zip(bounds, hist["counts"]):
                cumulative += count
                le = (("le", _prom_value(bound)),)
                lines.append(
                    f"{prom}_bucket{_prom_labels(labels, le)} {cumulative}"
                )
            lines.append(f"{prom}_sum{_prom_labels(labels)} {_prom_value(hist['sum'])}")
            lines.append(f"{prom}_count{_prom_labels(labels)} {hist['count']}")
    return "\n".join(lines) + "\n"


def _parse_prom_line(line: str) -> Tuple[str, Dict[str, str], str]:
    """Split one sample line into ``(prom_name, labels, value)``."""
    brace = line.find("{")
    if brace < 0:
        name, _, value = line.partition(" ")
        return name, {}, value.strip()
    name = line[:brace]
    close = line.rindex("}")
    value = line[close + 1 :].strip()
    labels: Dict[str, str] = {}
    body = line[brace + 1 : close]
    i = 0
    while i < len(body):
        eq = body.index("=", i)
        key = body[i:eq].strip()
        start = body.index('"', eq) + 1
        # Scan to the closing quote with explicit escape-state tracking: a
        # backslash always consumes the next character, so a value ending in
        # an escaped backslash (rendered ``...\\"``) terminates correctly —
        # the lookbehind ``body[j-1] == "\\"`` this replaced misread that
        # closing quote as escaped and overran the line.
        j = start
        while j < len(body):
            if body[j] == "\\":
                j += 2
                continue
            if body[j] == '"':
                break
            j += 1
        if j >= len(body):
            raise ValueError(f"unterminated label value in sample line {line!r}")
        labels[key] = _prom_unescape(body[start:j])
        i = j + 1
        while i < len(body) and body[i] in ", ":
            i += 1
    return name, labels, value


def parse_prometheus_text(text: str) -> Dict[str, object]:
    """Parse :func:`prometheus_text` output back into a snapshot dict.

    Original dotted names are recovered from the ``# HELP`` lines, label
    sets re-flattened with :func:`~repro.obs.metrics.metric_key`, and
    cumulative ``_bucket`` ladders de-cumulated back into the registry's
    per-bucket counts (the ``+Inf`` series becomes the overflow slot).
    The result compares equal to the snapshot that was rendered — the
    exporter round-trip gate.
    """
    help_names: Dict[str, str] = {}
    types: Dict[str, str] = {}
    samples: List[Tuple[str, Dict[str, str], str]] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            prom, _, original = rest.partition(" ")
            help_names[prom] = _prom_unescape(original)
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            prom, _, kind = rest.partition(" ")
            types[prom] = kind.strip()
            continue
        if line.startswith("#"):
            continue
        samples.append(_parse_prom_line(line))

    def original_name(prom: str) -> str:
        return help_names.get(prom, prom)

    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    partial: Dict[str, Dict[str, object]] = {}
    for prom, labels, raw in samples:
        for family, suffix in ((prom, ""),) if prom in types else (
            (prom[: -len(s)], s)
            for s in ("_bucket", "_sum", "_count")
            if prom.endswith(s) and prom[: -len(s)] in types
        ):
            kind = types.get(family)
            break
        else:  # pragma: no cover - malformed input
            raise ValueError(f"sample {prom!r} has no TYPE header")
        if kind == "counter":
            counters[metric_key(original_name(family), labels)] = float(raw)
        elif kind == "gauge":
            gauges[metric_key(original_name(family), labels)] = float(raw)
        elif kind == "histogram":
            plain = {k: v for k, v in labels.items() if k != "le"}
            key = metric_key(original_name(family), plain)
            hist = partial.setdefault(
                key, {"le": [], "cumulative": [], "sum": 0.0, "count": 0}
            )
            if suffix == "_bucket":
                le = labels["le"]
                hist["le"].append(float("inf") if le == "+Inf" else float(le))
                hist["cumulative"].append(int(float(raw)))
            elif suffix == "_sum":
                hist["sum"] = float(raw)
            elif suffix == "_count":
                hist["count"] = int(float(raw))
        else:  # pragma: no cover - malformed input
            raise ValueError(f"unsupported TYPE {kind!r} for {family!r}")

    histograms: Dict[str, object] = {}
    for key, hist in partial.items():
        ladder = sorted(zip(hist["le"], hist["cumulative"]))
        counts, previous = [], 0
        for _, cumulative in ladder:
            counts.append(cumulative - previous)
            previous = cumulative
        histograms[key] = {
            "buckets": [b for b, _ in ladder if b != float("inf")],
            "counts": counts,
            "sum": hist["sum"],
            "count": hist["count"],
        }
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": dict(sorted(histograms.items())),
    }


# ----------------------------------------------------------------------
# OTLP-flavoured JSON document
# ----------------------------------------------------------------------

def metrics_document(
    snapshot: Optional[Dict[str, object]] = None,
    registry: Optional[MetricsRegistry] = None,
    resource: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Render a snapshot as the ``repro.metrics/v1`` JSON document.

    OTLP-flavoured: one entry per metric family carrying typed data
    points — monotonic ``sum`` for counters, ``gauge`` for gauges, and
    ``histogram`` with ``explicit_bounds``/``bucket_counts`` (the last
    count is the ``+Inf`` overflow).  Families and data points are
    deterministically ordered, and the document is JSON-clean, so two
    identical snapshots render byte-identical documents.
    """
    if snapshot is None:
        snapshot = (registry if registry is not None else get_registry()).snapshot()
    metrics: List[Dict[str, object]] = []
    for key in sorted(snapshot.get("counters", {})):
        name, labels = parse_metric_key(key)
        _append_point(
            metrics, name, "sum",
            {"attributes": labels, "value": snapshot["counters"][key]},
            extra={"is_monotonic": True},
        )
    for key in sorted(snapshot.get("gauges", {})):
        name, labels = parse_metric_key(key)
        _append_point(
            metrics, name, "gauge",
            {"attributes": labels, "value": snapshot["gauges"][key]},
        )
    for key in sorted(snapshot.get("histograms", {})):
        name, labels = parse_metric_key(key)
        hist = snapshot["histograms"][key]
        _append_point(
            metrics, name, "histogram",
            {
                "attributes": labels,
                "explicit_bounds": list(hist["buckets"]),
                "bucket_counts": list(hist["counts"]),
                "sum": hist["sum"],
                "count": hist["count"],
            },
        )
    return {
        "schema": METRICS_SCHEMA,
        "resource": {"service.name": "repro", **(resource or {})},
        "metrics": metrics,
    }


def _append_point(metrics, name, kind, point, extra=None) -> None:
    if metrics and metrics[-1]["name"] == name and metrics[-1]["type"] == kind:
        metrics[-1]["data_points"].append(point)
        return
    entry: Dict[str, object] = {"name": name, "type": kind}
    entry.update(extra or {})
    entry["data_points"] = [point]
    metrics.append(entry)


# ----------------------------------------------------------------------
# Bounded JSONL event sink
# ----------------------------------------------------------------------

class JsonlEventSink:
    """Append-only JSONL file for probe events, with size-capped rotation.

    Each :meth:`write` appends one ``json.dumps(..., sort_keys=True)``
    line stamped with the injectable ``clock`` (``time.time`` by
    default).  When appending would push the file past ``max_bytes``,
    the file rotates: the current file moves to ``<path>.1`` (replacing
    any previous generation) and writing restarts on an empty file — so
    on-disk usage is bounded by roughly ``2 * max_bytes`` however long
    the process lives, the same bounded-ring discipline as the trace
    module's recent-roots deque.

    The sink is *not* the metrics path: counters stay in the registry.
    It captures the event *stream* (which probe fired, with which
    labels, when) for post-hoc debugging — attach it with
    :func:`repro.obs.probes.add_event_sink` and detach with
    :func:`repro.obs.probes.remove_event_sink`.
    """

    def __init__(
        self,
        path,
        max_bytes: int = 1_000_000,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if max_bytes < 1:
            raise ValueError("max_bytes must be positive")
        self.path = os.fspath(path)
        self.max_bytes = int(max_bytes)
        self._clock = clock if clock is not None else time.time
        self._size = os.path.getsize(self.path) if os.path.exists(self.path) else 0
        self.rotations = 0
        self.events_written = 0

    @property
    def rotated_path(self) -> str:
        """Where the previous generation lands on rotation."""
        return self.path + ".1"

    def write(self, record: Dict[str, object]) -> None:
        """Append one event record (a ``ts`` stamp is added) as a JSON line."""
        payload = {"ts": self._clock(), **record}
        line = json.dumps(payload, sort_keys=True) + "\n"
        data = line.encode("utf-8")
        if self._size > 0 and self._size + len(data) > self.max_bytes:
            os.replace(self.path, self.rotated_path)
            self._size = 0
            self.rotations += 1
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line)
        self._size += len(data)
        self.events_written += 1

    def emit(self, event: str, amount: float = 1.0, **labels: object) -> None:
        """Probe-shaped entry point (the signature probes fan out with)."""
        self.write({"event": event, "amount": amount, **{k: str(v) for k, v in labels.items()}})
