"""Process-local metrics registry: counters, gauges, fixed-bucket histograms.

One :class:`MetricsRegistry` per process collects everything the solving
paths emit — probe counters from the solver inner loops, latency
histograms recorded by finished spans, and gauges mirrored from existing
report counters (compiled-circuit cache hits, shard warm-solve tallies).
The registry is the storage half of the observability layer; the ambient
span machinery lives in :mod:`repro.obs.trace` and the typed emission
sites in :mod:`repro.obs.probes`.

Design constraints, in the order they shaped the code:

* **Deterministic export.**  ``snapshot()`` sorts every key, histogram
  buckets are fixed at registry construction (never derived from the
  data), and values are plain JSON scalars/lists — so two runs of the
  same workload produce byte-identical ``to_json()`` documents modulo
  the timings themselves.  The telemetry round-trip tests depend on it.
* **Cheap under the probe fast path.**  Counters are a dict upsert under
  one lock; label sets are flattened into the key string once per call
  (``name{k=v,...}`` with sorted label names) so there is no nested
  structure to merge at export time.
* **Process-local by contract.**  Pool workers get a fresh registry in
  their own interpreter; cross-process aggregation is the dispatcher's
  job (see ``record_span`` in :mod:`repro.obs.trace` and the process
  branch of ``BatchSolveService.solve_batch``), exactly like PR 7 ships
  deadlines to process workers as plain data instead of contextvars.

>>> reg = MetricsRegistry()
>>> reg.counter("service.solves", backend="dinic")
1.0
>>> reg.counter("service.solves", 2, backend="dinic")
3.0
>>> reg.gauge("cache.hits", 5)
>>> reg.observe("span.batch.solve.seconds", 0.004)
>>> snap = reg.snapshot()
>>> snap["counters"]
{'service.solves{backend=dinic}': 3.0}
>>> snap["gauges"]
{'cache.hits': 5.0}
>>> snap["histograms"]["span.batch.solve.seconds"]["count"]
1
"""

from __future__ import annotations

import json
import threading
from typing import Dict, Iterable, List, Optional, Tuple

from ..config import env_floats

__all__ = [
    "BUCKETS_ENV_VAR",
    "DEFAULT_LATENCY_BUCKETS_S",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "metric_key",
    "parse_metric_key",
    "reset_metrics",
]

#: Environment override for the default latency bucket boundaries: a
#: comma-separated list of seconds (``REPRO_OBS_BUCKETS=0.001,0.01,0.1``),
#: parsed once at import through :func:`repro.config.env_floats`.
BUCKETS_ENV_VAR = "REPRO_OBS_BUCKETS"

#: Fixed latency buckets (seconds), chosen once for the whole project so
#: histograms from different runs are comparable.  The range spans the
#: workloads we actually time: sub-millisecond kernel sweeps up to the
#: tens-of-seconds deadline ceilings of the resilience layer.  Deployments
#: with different latency regimes override via :data:`BUCKETS_ENV_VAR`.
DEFAULT_LATENCY_BUCKETS_S: Tuple[float, ...] = env_floats(
    BUCKETS_ENV_VAR,
    (
        0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
        0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
    ),
)


def metric_key(name: str, labels: Dict[str, object]) -> str:
    """Flatten ``name`` + labels into one deterministic registry key.

    Label names are sorted so emission order never leaks into the key:
    ``metric_key("x", {"b": 1, "a": 2}) == metric_key("x", {"a": 2, "b": 1})``.
    """
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def parse_metric_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Split a flattened registry key back into ``(name, labels)``.

    The exact inverse of :func:`metric_key` for the label values this
    project emits (scalars stringified by the f-string flattening) —
    the exporters in :mod:`repro.obs.export` and the window/SLO layer
    use it to group one metric family across its label sets.

    >>> parse_metric_key("service.solves{backend=dinic,tag=x}")
    ('service.solves', {'backend': 'dinic', 'tag': 'x'})
    >>> parse_metric_key("cache.hits")
    ('cache.hits', {})
    """
    brace = key.find("{")
    if brace < 0:
        return key, {}
    name = key[:brace]
    inner = key[brace + 1 : key.rindex("}")]
    labels: Dict[str, str] = {}
    for pair in inner.split(","):
        if not pair:
            continue
        k, _, v = pair.partition("=")
        labels[k] = v
    return name, labels


class Histogram:
    """Fixed-bucket histogram: per-bucket counts plus sum and count.

    ``counts[i]`` tallies observations ``<= bounds[i]``; the final slot
    is the explicit overflow (``+Inf``) bucket, so ``len(counts) ==
    len(bounds) + 1`` and ``sum(counts) == count`` hold for every
    observation stream — observations above the top boundary land in the
    overflow slot instead of being dropped, and the Prometheus exporter
    renders ``le="+Inf"`` straight from the last slot with no special
    casing.  Bounds are frozen at construction — the export is therefore
    mergeable across runs without re-binning.
    """

    __slots__ = ("bounds", "counts", "total", "count")

    def __init__(self, bounds: Iterable[float]) -> None:
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bounds must be sorted ascending")
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        idx = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                idx = i
                break
        self.counts[idx] += 1
        self.total += value
        self.count += 1

    def snapshot(self) -> Dict[str, object]:
        return {
            "buckets": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.count,
        }


class MetricsRegistry:
    """Thread-safe store of counters, gauges, and fixed-bucket histograms.

    All three families share the flattened-label key scheme of
    :func:`metric_key`.  Counters accumulate, gauges overwrite, and
    histograms bin into :data:`DEFAULT_LATENCY_BUCKETS_S` unless the
    first ``observe`` for a key passes explicit ``buckets``.
    """

    def __init__(
        self, latency_buckets_s: Iterable[float] = DEFAULT_LATENCY_BUCKETS_S
    ) -> None:
        self._lock = threading.Lock()
        self._buckets = tuple(float(b) for b in latency_buckets_s)
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- emission ------------------------------------------------------

    def counter(self, name: str, amount: float = 1.0, **labels: object) -> float:
        """Add ``amount`` to a counter; returns the new value."""
        key = metric_key(name, labels)
        with self._lock:
            value = self._counters.get(key, 0.0) + amount
            self._counters[key] = value
        return value

    def gauge(self, name: str, value: float, **labels: object) -> None:
        """Set a gauge to ``value`` (last write wins)."""
        key = metric_key(name, labels)
        with self._lock:
            self._gauges[key] = float(value)

    def observe(
        self,
        name: str,
        value: float,
        buckets: Optional[Iterable[float]] = None,
        **labels: object,
    ) -> None:
        """Record ``value`` into the histogram for ``name``/labels."""
        key = metric_key(name, labels)
        with self._lock:
            hist = self._histograms.get(key)
            if hist is None:
                hist = Histogram(self._buckets if buckets is None else buckets)
                self._histograms[key] = hist
            hist.observe(float(value))

    # -- inspection ----------------------------------------------------

    def get_counter(self, name: str, **labels: object) -> float:
        with self._lock:
            return self._counters.get(metric_key(name, labels), 0.0)

    def get_gauge(self, name: str, **labels: object) -> Optional[float]:
        with self._lock:
            return self._gauges.get(metric_key(name, labels))

    def snapshot(self) -> Dict[str, object]:
        """Deterministically ordered, JSON-clean dump of every metric."""
        with self._lock:
            return {
                "counters": {k: self._counters[k] for k in sorted(self._counters)},
                "gauges": {k: self._gauges[k] for k in sorted(self._gauges)},
                "histograms": {
                    k: self._histograms[k].snapshot()
                    for k in sorted(self._histograms)
                },
            }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: The process-global registry every probe and span writes into.  Tests
#: and benchmarks call :func:`reset_metrics` between measurements.
_GLOBAL_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """Return the process-global registry."""
    return _GLOBAL_REGISTRY


def reset_metrics() -> None:
    """Clear the process-global registry (test/bench isolation)."""
    _GLOBAL_REGISTRY.reset()
