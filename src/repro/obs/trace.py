"""Ambient hierarchical spans, mirroring the resilience deadline scope.

A span is a named timing interval with attributes and children.  The
*active* span is ambient state carried by a :class:`~contextvars.ContextVar`
— the same mechanism (and the same token set/reset discipline) as
``deadline_scope`` in :mod:`repro.resilience.policy`, so the two layers
nest and propagate identically: ambient within a thread, explicit at
every pool boundary.

The three propagation regimes, matching PR 7's deadline plumbing:

* **Same thread** — ``with span("batch.solve"):`` makes the new span the
  ambient parent; nested ``span(...)`` calls attach as children and the
  contextvar token restores the previous parent on exit, even when
  scopes unwind out of order across ``await`` points.
* **Thread pools** — contextvars do not cross ``ThreadPoolExecutor``
  submission, so dispatch sites capture ``parent = current_span()`` and
  the worker closure re-enters it with ``with span_scope(parent):``.
  Child spans append to ``parent.children`` from worker threads; list
  appends are atomic under the GIL, and the parent only *reads* the list
  after joining the pool.
* **Process pools** — nothing ambient crosses an ``os.fork``/pickle
  boundary in either direction.  The dispatcher records what the worker
  measured *post hoc* with :func:`record_span`, turning returned timings
  (``SolveResult.wall_time_s``) into completed child spans — the tracing
  analog of shipping ``deadline_s`` to workers as plain request data.

Tracing is **off by default** (``REPRO_OBS=1`` enables it, or
:func:`set_obs_enabled` at runtime).  The disabled path is engineered to
stay out of inner loops' way: ``span(...)`` returns a shared no-op
context manager without allocating a :class:`Span`, and every probe in
:mod:`repro.obs.probes` checks the enabled flag before touching the
registry.  The clock is injectable (:func:`set_trace_clock`) so tests
can pin span durations deterministically.

>>> prev = set_obs_enabled(True)
>>> clear_traces()
>>> ticks = iter(range(100))
>>> restore = set_trace_clock(lambda: float(next(ticks)))
>>> with span("batch.solve", executor="serial") as root:
...     with span("backend.solve", backend="dinic") as child:
...         _ = child.set(ok=True)
>>> _ = set_trace_clock(restore)
>>> _ = set_obs_enabled(prev)
>>> root.children[0].name
'backend.solve'
>>> root.children[0].duration_s
1.0
>>> root.to_dict()["attributes"]["executor"]
'serial'
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Callable, Deque, Dict, List, Optional

from ..config import env_flag
from .metrics import get_registry

__all__ = [
    "OBS_ENV_VAR",
    "Span",
    "annotate_span",
    "clear_traces",
    "current_span",
    "obs_enabled",
    "recent_traces",
    "record_span",
    "set_obs_enabled",
    "set_trace_clock",
    "span",
    "span_scope",
    "trace_document",
]

#: Environment switch: ``REPRO_OBS=1`` turns tracing + probes on.
OBS_ENV_VAR = "REPRO_OBS"

#: Schema tag stamped on exported trace documents (see tools/trace_dump.py).
TRACE_SCHEMA = "repro.trace/v1"

_ENABLED: bool = env_flag(OBS_ENV_VAR, default=False)
_CLOCK: Callable[[], float] = time.perf_counter

#: The ambient parent span for the current execution context; ``None``
#: when no scope is open (mirrors ``_ACTIVE_DEADLINE`` in resilience).
_ACTIVE_SPAN: ContextVar[Optional["Span"]] = ContextVar(
    "repro_active_span", default=None
)

#: Finished *root* spans (no ambient parent at close time), most recent
#: last.  Bounded so long-lived services cannot leak trace trees.
_RECENT_ROOTS: Deque["Span"] = deque(maxlen=64)


def obs_enabled() -> bool:
    """True when tracing and probes are live for this process."""
    return _ENABLED


def set_obs_enabled(enabled: bool) -> bool:
    """Flip the process-wide enable flag; returns the previous value.

    Benchmarks and tests use this instead of the environment variable so
    they can interleave enabled/disabled arms within one process.
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


def set_trace_clock(clock: Optional[Callable[[], float]] = None):
    """Swap the span clock; ``None`` restores ``time.perf_counter``.

    Returns the previous clock so callers can restore it:
    ``restore = set_trace_clock(fake); ...; set_trace_clock(restore)``.
    """
    global _CLOCK
    previous = _CLOCK
    _CLOCK = time.perf_counter if clock is None else clock
    return previous


class Span:
    """One named timing interval in a trace tree.

    Slotted and deliberately small: name, start/end stamps from the
    injectable clock, a flat attribute dict, and child spans in closing
    order.  ``end_s`` is ``None`` while the span is open.
    """

    __slots__ = ("name", "start_s", "end_s", "attributes", "children")

    def __init__(
        self, name: str, start_s: float, attributes: Optional[Dict[str, object]] = None
    ) -> None:
        self.name = name
        self.start_s = start_s
        self.end_s: Optional[float] = None
        self.attributes: Dict[str, object] = dict(attributes) if attributes else {}
        self.children: List["Span"] = []

    def set(self, **attributes: object) -> "Span":
        """Attach attributes (e.g. solver counters) to this span."""
        self.attributes.update(attributes)
        return self

    @property
    def duration_s(self) -> float:
        end = self.end_s if self.end_s is not None else _CLOCK()
        return end - self.start_s

    @property
    def self_time_s(self) -> float:
        """Cumulative time minus the time attributed to child spans.

        Clamped at zero: children running concurrently (thread-pool
        batches) can sum past the parent's wall clock.
        """
        return max(0.0, self.duration_s - sum(c.duration_s for c in self.children))

    def to_dict(self) -> Dict[str, object]:
        """JSON-clean tree export consumed by ``tools/trace_dump.py``."""
        return {
            "name": self.name,
            "duration_s": self.duration_s,
            "self_time_s": self.self_time_s,
            "attributes": dict(self.attributes),
            "children": [c.to_dict() for c in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, duration_s={self.duration_s:.6f}, "
            f"children={len(self.children)})"
        )


class _NoopSpan:
    """The span handed out when tracing is disabled: absorbs everything."""

    __slots__ = ()

    def set(self, **attributes: object) -> "_NoopSpan":
        return self

    name = "noop"
    attributes: Dict[str, object] = {}
    children: List[Span] = []
    duration_s = 0.0
    self_time_s = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": "noop",
            "duration_s": 0.0,
            "self_time_s": 0.0,
            "attributes": {},
            "children": [],
        }


NOOP_SPAN = _NoopSpan()


class _NoopContext:
    """Shared, allocation-free context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> _NoopSpan:
        return NOOP_SPAN

    def __exit__(self, *exc: object) -> bool:
        return False


_NOOP_CONTEXT = _NoopContext()


class _SpanContext:
    """Hand-rolled context manager: one allocation per *enabled* span."""

    __slots__ = ("_name", "_attributes", "_span", "_token", "_parent")

    def __init__(self, name: str, attributes: Dict[str, object]) -> None:
        self._name = name
        self._attributes = attributes

    def __enter__(self) -> Span:
        self._parent = _ACTIVE_SPAN.get()
        self._span = Span(self._name, _CLOCK(), self._attributes)
        self._token = _ACTIVE_SPAN.set(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        node = self._span
        node.end_s = _CLOCK()
        _ACTIVE_SPAN.reset(self._token)
        if exc_type is not None:
            node.attributes.setdefault("error_type", exc_type.__name__)
        _finish_span(node, self._parent)
        return False


def span(name: str, **attributes: object):
    """Open a named span as the ambient parent for the enclosed block.

    Disabled (the default): returns a shared no-op context manager —
    no :class:`Span` is allocated and nothing is recorded.  Enabled:
    yields a live :class:`Span`; on exit its duration feeds the
    ``span.<name>.seconds`` latency histogram and the tree attaches to
    the ambient parent (or the recent-roots ring when there is none).
    """
    if not _ENABLED:
        return _NOOP_CONTEXT
    return _SpanContext(name, attributes)


def _finish_span(node: Span, parent: Optional[Span]) -> None:
    if parent is not None:
        parent.children.append(node)  # GIL-atomic; parent reads after join
    else:
        _RECENT_ROOTS.append(node)
    get_registry().observe(f"span.{node.name}.seconds", node.duration_s)


def current_span() -> Optional[Span]:
    """The ambient span, or ``None`` — capture this at pool dispatch."""
    return _ACTIVE_SPAN.get()


@contextmanager
def span_scope(parent: Optional[Span]):
    """Re-enter a span captured in another thread as the ambient parent.

    The cross-thread half of the propagation contract: contextvars do
    not follow work into ``ThreadPoolExecutor``, so dispatch sites pass
    ``current_span()`` into the worker closure and the worker opens
    ``with span_scope(parent):`` before solving — exactly how the same
    closures already re-enter ``deadline_scope``.  A ``None`` or no-op
    parent (tracing disabled at capture time) makes this a pass-through.
    """
    if parent is None or isinstance(parent, _NoopSpan) or not _ENABLED:
        yield parent
        return
    token = _ACTIVE_SPAN.set(parent)
    try:
        yield parent
    finally:
        _ACTIVE_SPAN.reset(token)


def annotate_span(**attributes: object) -> None:
    """Attach attributes to the ambient span; no-op when disabled.

    This is how solver-private counters (DC iteration tallies, kernel
    sweep/relabel counts) surface without the solver knowing about trace
    trees: one call at the end of the solve, swallowed when tracing is
    off or no span is open.
    """
    if not _ENABLED:
        return
    node = _ACTIVE_SPAN.get()
    if node is not None:
        node.attributes.update(attributes)


def record_span(
    name: str, duration_s: float, **attributes: object
) -> Optional[Span]:
    """Record an already-measured interval as a completed child span.

    The process-pool half of the propagation contract: a worker process
    cannot attach to the parent's trace tree, but it *returns* its
    timings (``SolveResult.wall_time_s``), so the dispatcher synthesises
    the child span after the fact.  The start stamp is back-dated from
    the current clock, which places the span correctly in duration but
    only approximately in wall-clock position — fine for attribution,
    which is what the trace tree is for.
    """
    if not _ENABLED:
        return None
    now = _CLOCK()
    node = Span(name, now - duration_s, attributes)
    node.end_s = now
    _finish_span(node, _ACTIVE_SPAN.get())
    return node


def recent_traces() -> List[Span]:
    """Finished root spans, oldest first (bounded ring)."""
    return list(_RECENT_ROOTS)


def clear_traces() -> None:
    """Drop recorded root spans (test/bench isolation)."""
    _RECENT_ROOTS.clear()


def trace_document(spans: Optional[List[Span]] = None) -> Dict[str, object]:
    """Export root spans as the JSON document ``tools/trace_dump.py`` reads."""
    roots = recent_traces() if spans is None else list(spans)
    return {
        "schema": TRACE_SCHEMA,
        "spans": [s.to_dict() for s in roots],
    }
