"""repro.obs — tracing, metrics, and probes for every solving path.

Three small pieces share one enable flag (``REPRO_OBS``, default off):

* :mod:`repro.obs.trace` — ambient hierarchical spans on a contextvar,
  with explicit re-scoping across thread pools (``span_scope``) and
  post-hoc recording across process pools (``record_span``), mirroring
  the resilience layer's deadline propagation exactly;
* :mod:`repro.obs.metrics` — the process-local registry of counters,
  gauges and fixed-bucket histograms with deterministic ``snapshot()``;
* :mod:`repro.obs.probes` — typed one-line emission sites wired into the
  solver inner loops and resilience transitions.

:mod:`repro.obs.telemetry` folds a service summary, cache stats and the
registry snapshot into the one JSON document (``repro.telemetry/v1``)
returned by every report's ``telemetry()`` method.
"""

from . import probes
from .metrics import (
    DEFAULT_LATENCY_BUCKETS_S,
    Histogram,
    MetricsRegistry,
    get_registry,
    metric_key,
    reset_metrics,
)
from .telemetry import TELEMETRY_KEYS, TELEMETRY_SCHEMA, build_telemetry
from .trace import (
    OBS_ENV_VAR,
    Span,
    annotate_span,
    clear_traces,
    current_span,
    obs_enabled,
    recent_traces,
    record_span,
    set_obs_enabled,
    set_trace_clock,
    span,
    span_scope,
    trace_document,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_S",
    "Histogram",
    "MetricsRegistry",
    "OBS_ENV_VAR",
    "Span",
    "TELEMETRY_KEYS",
    "TELEMETRY_SCHEMA",
    "annotate_span",
    "build_telemetry",
    "clear_traces",
    "current_span",
    "get_registry",
    "metric_key",
    "obs_enabled",
    "probes",
    "recent_traces",
    "record_span",
    "reset_metrics",
    "set_obs_enabled",
    "set_trace_clock",
    "span",
    "span_scope",
    "trace_document",
]
