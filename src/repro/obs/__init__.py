"""repro.obs — tracing, metrics, probes, exporters, and SLO verdicts.

Three small pieces share one enable flag (``REPRO_OBS``, default off):

* :mod:`repro.obs.trace` — ambient hierarchical spans on a contextvar,
  with explicit re-scoping across thread pools (``span_scope``) and
  post-hoc recording across process pools (``record_span``), mirroring
  the resilience layer's deadline propagation exactly;
* :mod:`repro.obs.metrics` — the process-local registry of counters,
  gauges and fixed-bucket histograms with deterministic ``snapshot()``;
* :mod:`repro.obs.probes` — typed one-line emission sites wired into the
  solver inner loops and resilience transitions.

On top of the registry sit the export and judgment layers:

* :mod:`repro.obs.export` — Prometheus text exposition (round-trippable
  via :func:`~repro.obs.export.parse_prometheus_text`), the
  OTLP-flavoured ``repro.metrics/v1`` JSON document, and a bounded JSONL
  event sink;
* :mod:`repro.obs.windows` — sliding-window deltas over snapshots:
  rates, per-window histogram quantiles;
* :mod:`repro.obs.slo` — per-backend availability/latency objectives
  tracked as multi-window burn rates into :class:`BackendHealth`
  verdicts, which the failover chain consults to route around backends
  whose error budget is exhausted.

:mod:`repro.obs.telemetry` folds a service summary, cache stats, the
registry snapshot, the active SLO report and the span tree into the one
JSON document (``repro.telemetry/v1``) returned by every report's
``telemetry()`` method.
"""

from . import probes
from .export import (
    METRICS_SCHEMA,
    JsonlEventSink,
    metrics_document,
    parse_prometheus_text,
    prometheus_text,
)
from .metrics import (
    BUCKETS_ENV_VAR,
    DEFAULT_LATENCY_BUCKETS_S,
    Histogram,
    MetricsRegistry,
    get_registry,
    metric_key,
    parse_metric_key,
    reset_metrics,
)
from .slo import (
    BackendHealth,
    SloObjective,
    SloPolicy,
    get_slo_policy,
    set_slo_policy,
)
from .telemetry import TELEMETRY_KEYS, TELEMETRY_SCHEMA, build_telemetry
from .trace import (
    OBS_ENV_VAR,
    Span,
    annotate_span,
    clear_traces,
    current_span,
    obs_enabled,
    recent_traces,
    record_span,
    set_obs_enabled,
    set_trace_clock,
    span,
    span_scope,
    trace_document,
)
from .windows import WindowDelta, WindowedAggregator

__all__ = [
    "BUCKETS_ENV_VAR",
    "BackendHealth",
    "DEFAULT_LATENCY_BUCKETS_S",
    "Histogram",
    "JsonlEventSink",
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "OBS_ENV_VAR",
    "SloObjective",
    "SloPolicy",
    "Span",
    "TELEMETRY_KEYS",
    "TELEMETRY_SCHEMA",
    "WindowDelta",
    "WindowedAggregator",
    "annotate_span",
    "build_telemetry",
    "clear_traces",
    "current_span",
    "get_registry",
    "get_slo_policy",
    "metric_key",
    "metrics_document",
    "obs_enabled",
    "parse_metric_key",
    "parse_prometheus_text",
    "probes",
    "prometheus_text",
    "recent_traces",
    "record_span",
    "reset_metrics",
    "set_obs_enabled",
    "set_slo_policy",
    "set_trace_clock",
    "span",
    "span_scope",
    "trace_document",
]
