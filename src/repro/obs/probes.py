"""Typed event probes at the sites that already count things.

Each probe is a named function with a fixed event name, called from the
one place in the codebase where that event happens — solver inner loops
(kernel discharge sweeps, Dinic phases, incremental repairs, DC diode
iterations, shard subgradient iterations) and resilience transitions
(retry attempts, breaker state changes, failover hops, fault
injections).  A probe is a *counter emission*, nothing more: span
attribution is handled separately via ``annotate_span`` so the two can
be enabled/inspected independently of call order.

Every probe funnels through :func:`emit`, whose first action is reading
the tracing enable flag — the disabled fast path is one module-attribute
read and a return, cheap enough for the kernel's per-sweep loop (the
``obs`` perf suite gates this at <2 % total service overhead).

Beyond the registry, :func:`emit` fans events out to any sinks attached
via :func:`add_event_sink` — in practice
:class:`repro.obs.export.JsonlEventSink`, giving long-lived services a
bounded on-disk event stream without a second instrumentation pass.
Sinks only see events while obs is enabled, and sink failures never
propagate into solver paths.
"""

from __future__ import annotations

from typing import Callable, List

from . import trace
from .metrics import get_registry

__all__ = [
    "EVENT_BREAKER_TRANSITION",
    "EVENT_CACHE_HIT",
    "EVENT_COALESCE_HIT",
    "EVENT_DC_ITERATION",
    "EVENT_DINIC_PHASE",
    "EVENT_FAILOVER_HOP",
    "EVENT_FAULT_INJECTED",
    "EVENT_INCREMENTAL_COLD",
    "EVENT_INCREMENTAL_REPAIR",
    "EVENT_KERNEL_SWEEP",
    "EVENT_REQUEST",
    "EVENT_REQUEST_SHED",
    "EVENT_RETRY_ATTEMPT",
    "EVENT_SHARD_ITERATION",
    "EVENT_SHARD_SOLVE",
    "EVENT_SLO_SKIP",
    "EVENT_SOLVE",
    "EVENT_SOLVE_ERROR",
    "EVENT_STREAMING_PUSH",
    "METRIC_QUEUE_DEPTH",
    "METRIC_REQUEST_SECONDS",
    "METRIC_SOLVE_SECONDS",
    "add_event_sink",
    "emit",
    "remove_event_sink",
]

# Solver inner loops -------------------------------------------------------
EVENT_KERNEL_SWEEP = "solver.kernel.sweeps"
EVENT_DINIC_PHASE = "solver.dinic.phases"
EVENT_INCREMENTAL_REPAIR = "solver.incremental.repairs"
EVENT_INCREMENTAL_COLD = "solver.incremental.cold_solves"
EVENT_DC_ITERATION = "solver.dc.iterations"
EVENT_SHARD_ITERATION = "solver.shard.iterations"

# Service layer ------------------------------------------------------------
EVENT_SOLVE = "service.solves"
EVENT_SOLVE_ERROR = "service.solve_errors"
EVENT_CACHE_HIT = "service.cache_hits"
EVENT_SHARD_SOLVE = "service.shard_solves"
EVENT_STREAMING_PUSH = "service.streaming_pushes"

# Resilience transitions ---------------------------------------------------
EVENT_RETRY_ATTEMPT = "resilience.retry_attempts"
EVENT_BREAKER_TRANSITION = "resilience.breaker_transitions"
EVENT_FAILOVER_HOP = "resilience.failover_hops"
EVENT_FAULT_INJECTED = "resilience.faults_injected"

# SLO routing --------------------------------------------------------------
EVENT_SLO_SKIP = "slo.backend_skips"

# Serving front door (repro.service.server) --------------------------------
EVENT_REQUEST = "service.requests"
EVENT_REQUEST_SHED = "service.request_sheds"
EVENT_COALESCE_HIT = "service.coalesce_hits"

#: Per-backend solve-latency histogram the SLO latency objectives read.
#: (A histogram name, not an event — observed via :func:`solve_timed`.)
METRIC_SOLVE_SECONDS = "service.solve.seconds"

#: End-to-end request latency histogram of the async front door (admission
#: through response, queueing included) — observed via :func:`request_timed`.
METRIC_REQUEST_SECONDS = "service.request.seconds"

#: Pending-request gauge of the async front door: the unlabelled key is the
#: global queue depth, per-tenant keys carry a ``tenant`` label.
METRIC_QUEUE_DEPTH = "service.queue.depth"

#: Attached event sinks (see :func:`add_event_sink`).  A plain list read
#: without a lock: attachment happens at service setup, not in hot loops,
#: and the disabled fast path never touches it.
_SINKS: List[Callable[..., None]] = []


def add_event_sink(sink: Callable[..., None]) -> None:
    """Mirror every enabled :func:`emit` into ``sink(event, amount, **labels)``.

    Typically a :class:`repro.obs.export.JsonlEventSink` ``emit`` bound
    method.  Sinks fire only while obs is enabled; exceptions raised by a
    sink are swallowed so a full disk never fails a solve.
    """
    if sink not in _SINKS:
        _SINKS.append(sink)


def remove_event_sink(sink: Callable[..., None]) -> None:
    """Detach a sink added with :func:`add_event_sink` (missing is fine)."""
    try:
        _SINKS.remove(sink)
    except ValueError:
        pass


def emit(event: str, amount: float = 1.0, **labels: object) -> None:
    """Count ``event`` in the process registry; no-op when obs is off.

    The enabled check comes first so disabled call sites pay only the
    flag read — label dicts built by ``**labels`` at the *call site* are
    still constructed, which is why hot-loop probes below take no labels.
    """
    if not trace._ENABLED:
        return
    get_registry().counter(event, amount, **labels)
    if _SINKS:
        for sink in _SINKS:
            try:
                sink(event, amount, **labels)
            except Exception:
                pass


# -- solver inner loops (label-free: these sit inside hot loops) -----------

def kernel_sweep() -> None:
    """One discharge sweep of the flat-array kernel."""
    emit(EVENT_KERNEL_SWEEP)


def dinic_phase() -> None:
    """One blocking-flow phase of the reference Dinic."""
    emit(EVENT_DINIC_PHASE)


def dc_iteration() -> None:
    """One diode-linearisation iteration of the DC operating point."""
    emit(EVENT_DC_ITERATION)


def shard_iteration() -> None:
    """One subgradient iteration of the shard coordinator."""
    emit(EVENT_SHARD_ITERATION)


# -- per-solve events (labels are fine at solve granularity) ---------------

def incremental_repair(algorithm: str) -> None:
    """A warm incremental repair reused the previous flow."""
    emit(EVENT_INCREMENTAL_REPAIR, algorithm=algorithm)


def incremental_cold(algorithm: str) -> None:
    """An incremental apply fell back to a cold from-scratch solve."""
    emit(EVENT_INCREMENTAL_COLD, algorithm=algorithm)


def solve_finished(backend: str, cache_hit: bool) -> None:
    """A service backend completed a solve (typed-failure-free)."""
    emit(EVENT_SOLVE, backend=backend)
    if cache_hit:
        emit(EVENT_CACHE_HIT, backend=backend)


def solve_error(backend: str, error_type: str) -> None:
    """A service backend converted an exception to a typed failure."""
    emit(EVENT_SOLVE_ERROR, backend=backend, error_type=error_type)


def solve_timed(backend: str, seconds: float) -> None:
    """Record one solve's wall time into the per-backend latency histogram.

    This is the data source for :class:`repro.obs.slo.SloPolicy` latency
    objectives — the span histogram keys on span name only, so latency
    SLOs need this backend-labelled series.  Process-pool dispatchers
    call it post-hoc on the parent side, same as ``record_span``.
    """
    if not trace._ENABLED:
        return
    get_registry().observe(METRIC_SOLVE_SECONDS, seconds, backend=backend)


def shard_solve(backend: str, warm: bool) -> None:
    """One per-shard subproblem solve (warm = reused incremental state)."""
    emit(EVENT_SHARD_SOLVE, backend=backend, warm=warm)


def streaming_push(backend: str, warm: bool) -> None:
    """One streaming revision applied (warm = incremental repair path)."""
    emit(EVENT_STREAMING_PUSH, backend=backend, warm=warm)


# -- serving front door -----------------------------------------------------

def request_admitted(tenant: str, backend: str) -> None:
    """The async front door admitted one request into its queue."""
    emit(EVENT_REQUEST, tenant=tenant, backend=backend)


def request_shed(tenant: str, reason: str) -> None:
    """Admission control rejected or evicted one request (503-style)."""
    emit(EVENT_REQUEST_SHED, tenant=tenant, reason=reason)


def coalesce_hit(backend: str) -> None:
    """A request joined an identical in-flight solve instead of running."""
    emit(EVENT_COALESCE_HIT, backend=backend)


def request_timed(backend: str, status: int, seconds: float) -> None:
    """Record one front-door request's end-to-end latency (queueing included).

    The serving counterpart of :func:`solve_timed`: ``service.request.seconds``
    is what the serving SLOs and ``BENCH_serving.json`` percentiles read,
    while ``service.solve.seconds`` keeps measuring backend time alone.
    """
    if not trace._ENABLED:
        return
    get_registry().observe(
        METRIC_REQUEST_SECONDS, seconds, backend=backend, status=status
    )


def queue_depth(depth: int, tenant: str = "") -> None:
    """Set the front door's pending-request gauge (global or per-tenant)."""
    if not trace._ENABLED:
        return
    if tenant:
        get_registry().gauge(METRIC_QUEUE_DEPTH, depth, tenant=tenant)
    else:
        get_registry().gauge(METRIC_QUEUE_DEPTH, depth)


# -- resilience transitions ------------------------------------------------

def retry_attempt(target: str, attempt: int) -> None:
    """A retry policy is re-running ``target`` (attempt >= 1 failed)."""
    emit(EVENT_RETRY_ATTEMPT, target=target or "anonymous")
    trace.annotate_span(retry_attempts=attempt)


def breaker_transition(name: str, state: str) -> None:
    """A circuit breaker changed state (open / half-open / closed)."""
    emit(EVENT_BREAKER_TRANSITION, breaker=name or "anonymous", state=state)


def failover_hop(backend: str, outcome: str) -> None:
    """The failover chain moved past ``backend`` (``outcome`` = why)."""
    emit(EVENT_FAILOVER_HOP, backend=backend, outcome=outcome)


def fault_injected(site: str, backend: str, kind: str) -> None:
    """An injected fault actually fired at a hook site."""
    emit(EVENT_FAULT_INJECTED, site=site, backend=backend, kind=kind)


# -- SLO routing -----------------------------------------------------------

def slo_skip(backend: str, reason: str) -> None:
    """The failover chain routed around ``backend`` on an SLO verdict."""
    emit(EVENT_SLO_SKIP, backend=backend, reason=reason or "exhausted")
