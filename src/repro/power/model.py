"""Analytical power model of the substrate (Section 5.2).

The paper's model: resistor power can be made negligible by scaling all
resistances up (only ratios matter), so the op-amps dominate.  One op-amp is
needed per *present* edge (its negation widget) and one per vertex (its
conservation widget); absent edges are power-gated.  Hence

    ``P = (|E| + |V|) * P_amp``

with ``P_amp = 500 uA * 1 V = 500 uW`` at the 32 nm node.  Given a power
budget ``P_tot`` the substrate can host about ``P_tot / P_amp`` active edges:
10^4 edges at a 5 W embedded budget, 3 * 10^5 at a 150 W server budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

from ..config import OpAmpParameters, SubstrateParameters
from ..errors import PowerBudgetError
from ..graph.network import FlowNetwork
from ..analog.compiler import CompiledMaxFlowCircuit

__all__ = ["PowerModel", "PowerEstimate"]


@dataclass(frozen=True)
class PowerEstimate:
    """Power breakdown for one mapped instance."""

    num_edges: int
    num_vertices: int
    opamp_count: int
    opamp_power_w: float
    total_power_w: float

    @property
    def power_per_edge_w(self) -> float:
        """Average power per active edge."""
        return self.total_power_w / self.num_edges if self.num_edges else 0.0


@dataclass(frozen=True)
class PowerModel:
    """The Section 5.2 analytical power model.

    Parameters
    ----------
    opamp:
        Op-amp parameters; the default reproduces the paper's 500 uW figure
        (500 uA at a 1 V supply, 32 nm node).
    include_vertices:
        Count one op-amp per vertex in addition to one per edge (the paper's
        formula ``(|E| + |V|) * P_amp``); the simplified budget estimates in
        the paper assume ``|V| << |E|`` and drop the vertex term.
    """

    opamp: OpAmpParameters = OpAmpParameters()
    include_vertices: bool = True

    @property
    def opamp_power_w(self) -> float:
        """Static power of one op-amp."""
        return self.opamp.power_w

    # ------------------------------------------------------------------

    def estimate(
        self, target: Union[FlowNetwork, CompiledMaxFlowCircuit, Dict[str, int]]
    ) -> PowerEstimate:
        """Estimate the substrate power for a network, compiled circuit or counts.

        ``target`` may be a :class:`FlowNetwork` (uses |E| and |V|), a
        :class:`CompiledMaxFlowCircuit` (uses the actual number of negative
        resistors, i.e. op-amps, that were instantiated) or a mapping with
        ``{"edges": ..., "vertices": ...}``.
        """
        if isinstance(target, FlowNetwork):
            edges, vertices = target.num_edges, target.num_vertices
            opamps = edges + (vertices if self.include_vertices else 0)
        elif isinstance(target, CompiledMaxFlowCircuit):
            edges = len(target.active_edges)
            vertices = len(target.active_vertices)
            opamps = target.negative_resistor_count or (
                edges + (vertices if self.include_vertices else 0)
            )
        elif isinstance(target, dict):
            edges = int(target["edges"])
            vertices = int(target.get("vertices", 0))
            opamps = edges + (vertices if self.include_vertices else 0)
        else:
            raise PowerBudgetError(f"cannot estimate power for {type(target).__name__}")
        return PowerEstimate(
            num_edges=edges,
            num_vertices=vertices,
            opamp_count=opamps,
            opamp_power_w=self.opamp_power_w,
            total_power_w=opamps * self.opamp_power_w,
        )

    # ------------------------------------------------------------------

    def max_edges_for_budget(self, budget_w: float, num_vertices: int = 0) -> int:
        """Largest number of active edges a power budget supports.

        With ``num_vertices = 0`` this reproduces the paper's simplified
        estimate (``|V| << |E|``): 1e4 edges at 5 W and 3e5 at 150 W.
        """
        if budget_w <= 0:
            raise PowerBudgetError("the power budget must be positive")
        vertex_power = num_vertices * self.opamp_power_w if self.include_vertices else 0.0
        remaining = budget_w - vertex_power
        if remaining <= 0:
            raise PowerBudgetError(
                f"the {num_vertices} conservation op-amps alone exceed the budget"
            )
        return int(remaining // self.opamp_power_w)

    def check_budget(
        self, target: Union[FlowNetwork, CompiledMaxFlowCircuit, Dict[str, int]], budget_w: float
    ) -> PowerEstimate:
        """Estimate power and raise :class:`PowerBudgetError` if it exceeds the budget."""
        estimate = self.estimate(target)
        if estimate.total_power_w > budget_w:
            raise PowerBudgetError(
                f"instance needs {estimate.total_power_w:.2f} W but the budget is "
                f"{budget_w:.2f} W"
            )
        return estimate

    def budget_table(self, budgets_w) -> Dict[float, int]:
        """Supported edge counts for a list of power budgets (Section 5.2 table)."""
        return {float(b): self.max_edges_for_budget(float(b)) for b in budgets_w}
