"""Energy-per-solve comparison between the analog substrate and the CPU.

Section 5.2 argues that although the substrate's power draw is comparable to
a CPU's, its energy per solve is two to three orders of magnitude lower
because it converges 150x-1500x faster.  :func:`compare_energy` packages that
comparison for one instance: substrate power x convergence time versus CPU
power x (estimated) execution time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigurationError
from ..flows.cost_model import CpuCostModel, CpuEstimate
from .model import PowerEstimate, PowerModel

__all__ = ["EnergyComparison", "compare_energy"]


@dataclass(frozen=True)
class EnergyComparison:
    """Energy and speed comparison for one solved instance.

    Attributes
    ----------
    analog_power_w / analog_time_s / analog_energy_j:
        Substrate power, convergence time and energy per solve.
    cpu_power_w / cpu_time_s / cpu_energy_j:
        CPU package power, estimated execution time and energy per solve.
    speedup:
        ``cpu_time_s / analog_time_s``.
    energy_efficiency:
        ``cpu_energy_j / analog_energy_j``.
    """

    analog_power_w: float
    analog_time_s: float
    analog_energy_j: float
    cpu_power_w: float
    cpu_time_s: float
    cpu_energy_j: float

    @property
    def speedup(self) -> float:
        """How much faster the substrate converges than the CPU executes."""
        return self.cpu_time_s / self.analog_time_s if self.analog_time_s > 0 else float("inf")

    @property
    def energy_efficiency(self) -> float:
        """How much less energy the substrate uses per solve."""
        return (
            self.cpu_energy_j / self.analog_energy_j
            if self.analog_energy_j > 0
            else float("inf")
        )


def compare_energy(
    power_estimate: PowerEstimate,
    convergence_time_s: float,
    cpu_estimate: CpuEstimate,
    cpu_power_w: Optional[float] = None,
) -> EnergyComparison:
    """Build an :class:`EnergyComparison` from the three ingredient estimates.

    Parameters
    ----------
    power_estimate:
        Substrate power (from :class:`~repro.power.model.PowerModel`).
    convergence_time_s:
        Substrate convergence time (measured or estimated).
    cpu_estimate:
        CPU execution estimate (from :class:`~repro.flows.cost_model.CpuCostModel`).
    cpu_power_w:
        CPU package power; defaults to the cost model's standard 95 W.
    """
    if convergence_time_s <= 0:
        raise ConfigurationError("convergence time must be positive")
    cpu_power = cpu_power_w if cpu_power_w is not None else CpuCostModel().package_power_w
    analog_energy = power_estimate.total_power_w * convergence_time_s
    cpu_energy = cpu_power * cpu_estimate.seconds
    return EnergyComparison(
        analog_power_w=power_estimate.total_power_w,
        analog_time_s=convergence_time_s,
        analog_energy_j=analog_energy,
        cpu_power_w=cpu_power,
        cpu_time_s=cpu_estimate.seconds,
        cpu_energy_j=cpu_energy,
    )
