"""Analytical power and energy models (Section 5.2)."""

from .model import PowerModel, PowerEstimate
from .energy import EnergyComparison, compare_energy

__all__ = ["PowerModel", "PowerEstimate", "EnergyComparison", "compare_energy"]
