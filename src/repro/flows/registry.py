"""Registry of classical max-flow solvers.

Allows benchmarks and examples to select a baseline by name:

>>> from repro.flows import solve_max_flow
>>> result = solve_max_flow(network, algorithm="push-relabel")
"""

from __future__ import annotations

from typing import Callable, Dict

from ..errors import AlgorithmError
from ..graph.network import FlowNetwork
from .base import MaxFlowResult
from .dinic import Dinic
from .edmonds_karp import EdmondsKarp
from .ford_fulkerson import FordFulkerson
from .linprog import LinearProgrammingSolver
from .push_relabel import PushRelabel

__all__ = ["ALGORITHMS", "get_algorithm", "solve_max_flow"]


ALGORITHMS: Dict[str, Callable[[], object]] = {
    "ford-fulkerson": FordFulkerson,
    "edmonds-karp": EdmondsKarp,
    "dinic": Dinic,
    "push-relabel": PushRelabel,
    "push-relabel-fifo": lambda: PushRelabel(selection="fifo"),
    "lp-reference": LinearProgrammingSolver,
}


def get_algorithm(name: str):
    """Instantiate the solver registered under ``name``."""
    try:
        factory = ALGORITHMS[name]
    except KeyError as exc:
        known = ", ".join(sorted(ALGORITHMS))
        raise AlgorithmError(f"unknown algorithm {name!r}; known: {known}") from exc
    return factory()


def solve_max_flow(
    network: FlowNetwork, algorithm: str = "dinic", validate: bool = False
) -> MaxFlowResult:
    """Solve ``network`` with the named classical algorithm."""
    solver = get_algorithm(algorithm)
    return solver.solve(network, validate=validate)
