"""Registry of classical max-flow solvers.

Benchmarks, examples and the batch service select a CPU baseline by name;
the registry maps those names to solver factories so call sites never import
algorithm classes directly.  The same names are valid backend names for
:class:`repro.service.batch.BatchSolveService`.

>>> from repro import FlowNetwork
>>> from repro.flows.registry import solve_max_flow
>>> g = FlowNetwork()
>>> _ = g.add_edge("s", "a", 3.0)
>>> _ = g.add_edge("a", "t", 2.0)
>>> solve_max_flow(g, algorithm="push-relabel").flow_value
2.0
"""

from __future__ import annotations

from typing import Callable, Dict

from ..errors import AlgorithmError
from ..graph.network import FlowNetwork
from .base import MaxFlowResult
from .dinic import Dinic
from .edmonds_karp import EdmondsKarp
from .ford_fulkerson import FordFulkerson
from .kernel import KernelDinic
from .linprog import LinearProgrammingSolver
from .push_relabel import PushRelabel

__all__ = ["ALGORITHMS", "get_algorithm", "solve_max_flow"]


#: Solver factories by public algorithm name.  Every entry is a zero-argument
#: callable returning a fresh solver instance, so concurrent callers (the
#: batch service's worker pool) never share mutable solver state.
ALGORITHMS: Dict[str, Callable[[], object]] = {
    "ford-fulkerson": FordFulkerson,
    "edmonds-karp": EdmondsKarp,
    "dinic": Dinic,
    "push-relabel": PushRelabel,
    "push-relabel-fifo": lambda: PushRelabel(selection="fifo"),
    "lp-reference": LinearProgrammingSolver,
    "kernel-dinic": KernelDinic,
}


def get_algorithm(name: str):
    """Instantiate the solver registered under ``name``.

    Parameters
    ----------
    name:
        Key in :data:`ALGORITHMS` (``"dinic"``, ``"push-relabel"``, ...).

    Returns
    -------
    FlowAlgorithm
        A fresh solver instance.

    Raises
    ------
    AlgorithmError
        For unknown names; the message lists the known ones.

    Examples
    --------
    >>> from repro.flows.registry import get_algorithm
    >>> get_algorithm("dinic").name
    'dinic'
    >>> get_algorithm("simplex")
    Traceback (most recent call last):
        ...
    repro.errors.AlgorithmError: unknown algorithm 'simplex'; known: dinic, \
edmonds-karp, ford-fulkerson, kernel-dinic, lp-reference, push-relabel, \
push-relabel-fifo
    """
    try:
        factory = ALGORITHMS[name]
    except KeyError as exc:
        known = ", ".join(sorted(ALGORITHMS))
        raise AlgorithmError(f"unknown algorithm {name!r}; known: {known}") from exc
    return factory()


def solve_max_flow(
    network: FlowNetwork, algorithm: str = "dinic", validate: bool = False
) -> MaxFlowResult:
    """Solve ``network`` with the named classical algorithm.

    Parameters
    ----------
    network:
        The flow network to solve.
    algorithm:
        Key in :data:`ALGORITHMS`.
    validate:
        When set, the returned flow is checked for feasibility and an
        :class:`~repro.errors.InfeasibleFlowError` is raised on violation.

    Returns
    -------
    MaxFlowResult
        Flow value, per-edge flows and operation counters.

    Examples
    --------
    >>> from repro import FlowNetwork
    >>> from repro.flows.registry import solve_max_flow
    >>> g = FlowNetwork()
    >>> _ = g.add_edge("s", "t", 4.5)
    >>> result = solve_max_flow(g, algorithm="edmonds-karp", validate=True)
    >>> result.flow_value, result.algorithm
    (4.5, 'edmonds-karp')
    """
    solver = get_algorithm(algorithm)
    return solver.solve(network, validate=validate)
