"""Goldberg–Tarjan push-relabel maximum-flow algorithm.

This is the CPU baseline of the paper's evaluation (Section 5.1): "the widely
used push-relabel algorithm ... compiled using GCC 4.4.7 with -O3".  The
implementation here supports the two classical active-vertex selection rules
(FIFO and highest-label) and the two standard heuristics that make
push-relabel fast in practice:

* the **gap heuristic** — when no vertex has height ``h`` any vertex with a
  height between ``h`` and ``|V|`` can be lifted straight above ``|V|``;
* **global relabelling** — periodically recompute exact distance labels with
  a reverse BFS from the sink.

Operation counters (pushes, relabels, arc scans) are recorded so the CPU cost
model can translate the run into an estimated time on a conventional core.
"""

from __future__ import annotations

from collections import deque
from typing import List, Tuple

from ..errors import AlgorithmError
from ..graph.network import FlowNetwork
from ..resilience.policy import check_deadline
from .base import FlowAlgorithm, MaxFlowResult, ResidualNetwork, INFINITY

__all__ = ["PushRelabel", "push_relabel"]


class PushRelabel(FlowAlgorithm):
    """Push-relabel max-flow solver with gap and global-relabel heuristics.

    Parameters
    ----------
    selection:
        ``"fifo"`` (queue of active vertices) or ``"highest"`` (highest-label
        first, bucketed by height).
    use_gap_heuristic:
        Enable the gap heuristic.
    global_relabel_frequency:
        Run a global relabelling after this many relabel operations
        (``0`` disables periodic global relabelling; the initial one is
        always performed).
    """

    name = "push-relabel"

    def __init__(
        self,
        selection: str = "highest",
        use_gap_heuristic: bool = True,
        global_relabel_frequency: int = 0,
    ) -> None:
        if selection not in ("fifo", "highest"):
            raise AlgorithmError(f"unknown selection rule {selection!r}")
        if global_relabel_frequency < 0:
            raise AlgorithmError("global_relabel_frequency must be non-negative")
        self.selection = selection
        self.use_gap_heuristic = use_gap_heuristic
        self.global_relabel_frequency = global_relabel_frequency

    # ------------------------------------------------------------------

    def _run(self, network: FlowNetwork) -> Tuple[ResidualNetwork, int]:
        residual = ResidualNetwork(network)
        n = residual.num_vertices
        source, sink = residual.source, residual.sink

        height = [0] * n
        excess = [0.0] * n
        current_arc = [0] * n
        height_count = [0] * (2 * n + 3)

        # Initial exact distance labels via reverse BFS from the sink.
        self._global_relabel(residual, height)
        height[source] = n
        for h in height:
            height_count[h] += 1

        # Saturate every arc out of the source.
        for arc in residual.adjacency[source]:
            capacity = residual.residual[arc]
            if capacity > 0:
                amount = capacity if capacity != INFINITY else network.total_capacity() + 1.0
                residual.push(arc, amount)
                excess[residual.arc_to[arc]] += amount
                excess[source] -= amount

        active = _ActiveSet(self.selection, n)
        for vertex in range(n):
            if vertex not in (source, sink) and excess[vertex] > 0:
                active.add(vertex, height[vertex])
                residual.counter.queue_operations += 1

        relabel_count = 0
        work = 0
        discharges = 0
        while active:
            # Cooperative budget check every few hundred discharges keeps
            # the overhead off the per-push hot path.
            discharges += 1
            if discharges & 0xFF == 0:
                check_deadline("push-relabel discharge loop")
            vertex = active.pop(height)
            residual.counter.queue_operations += 1
            if excess[vertex] <= 0:
                continue
            # Discharge the vertex: push until excess is gone or a relabel
            # is required.
            while excess[vertex] > 0:
                if current_arc[vertex] >= len(residual.adjacency[vertex]):
                    # Relabel.  A vertex with excess always has at least one
                    # residual arc (the reverse of the arc that delivered the
                    # excess), so the new height is finite; capping it would
                    # strand excess and corrupt the final flow value.
                    old_height = height[vertex]
                    new_height = self._relabel(residual, vertex, height)
                    residual.counter.relabels += 1
                    relabel_count += 1
                    if old_height < len(height_count):
                        height_count[old_height] -= 1
                    height[vertex] = new_height
                    if new_height < len(height_count):
                        height_count[new_height] += 1
                    current_arc[vertex] = 0
                    if (
                        self.use_gap_heuristic
                        and old_height < n
                        and height_count[old_height] == 0
                    ):
                        self._apply_gap(height, height_count, old_height, n)
                    if (
                        self.global_relabel_frequency
                        and relabel_count % self.global_relabel_frequency == 0
                    ):
                        self._global_relabel(residual, height, keep_source=True)
                        residual.counter.global_relabels += 1
                    continue
                arc = residual.adjacency[vertex][current_arc[vertex]]
                residual.counter.arc_scans += 1
                head = residual.arc_to[arc]
                if residual.residual[arc] > 0 and height[vertex] == height[head] + 1:
                    amount = min(excess[vertex], residual.residual[arc])
                    residual.push(arc, amount)
                    excess[vertex] -= amount
                    excess[head] += amount
                    if head not in (source, sink) and excess[head] > 0:
                        # add() de-duplicates, so activating unconditionally is
                        # safe and avoids missing a vertex whose excess was a
                        # small floating-point residue rather than exactly 0.
                        active.add(head, height[head])
                        residual.counter.queue_operations += 1
                else:
                    current_arc[vertex] += 1
            work += 1
            if work > 100 * n * n + 10_000_000:
                raise AlgorithmError("push-relabel exceeded its work budget")

        return residual, relabel_count

    # ------------------------------------------------------------------

    @staticmethod
    def _relabel(residual: ResidualNetwork, vertex: int, height: List[int]) -> int:
        """Return the new (minimum admissible) height for ``vertex``."""
        best = INFINITY
        for arc in residual.adjacency[vertex]:
            residual.counter.arc_scans += 1
            if residual.residual[arc] > 0:
                best = min(best, height[residual.arc_to[arc]] + 1)
        if best == INFINITY:
            return 2 * residual.num_vertices
        return int(best)

    @staticmethod
    def _apply_gap(
        height: List[int], height_count: List[int], gap: int, n: int
    ) -> None:
        """Lift every vertex above the gap straight over ``n``."""
        for vertex in range(len(height)):
            if gap < height[vertex] < n:
                if height[vertex] < len(height_count):
                    height_count[height[vertex]] -= 1
                height[vertex] = n + 1
                if height[vertex] < len(height_count):
                    height_count[height[vertex]] += 1

    @staticmethod
    def _global_relabel(
        residual: ResidualNetwork, height: List[int], keep_source: bool = False
    ) -> None:
        """Recompute exact distance-to-sink labels with a reverse BFS."""
        n = residual.num_vertices
        distance = [2 * n] * n
        distance[residual.sink] = 0
        queue = deque([residual.sink])
        while queue:
            vertex = queue.popleft()
            for arc in residual.adjacency[vertex]:
                residual.counter.arc_scans += 1
                # Arc vertex->head has a partner head->vertex; the partner
                # must have residual capacity for flow to move towards the
                # sink through ``vertex``.
                partner = residual.partner(arc)
                head = residual.arc_to[arc]
                if residual.residual[partner] > 0 and distance[head] == 2 * n:
                    distance[head] = distance[vertex] + 1
                    queue.append(head)
        for vertex in range(n):
            if keep_source and vertex == residual.source:
                continue
            if vertex == residual.source and not keep_source:
                continue
            height[vertex] = distance[vertex] if distance[vertex] < 2 * n else 2 * n


class _ActiveSet:
    """Active-vertex container supporting FIFO and highest-label selection."""

    def __init__(self, selection: str, num_vertices: int) -> None:
        self.selection = selection
        self._queue: deque = deque()
        self._buckets: List[List[int]] = [[] for _ in range(2 * num_vertices + 2)]
        self._highest = 0
        self._members = set()

    def add(self, vertex: int, height: int) -> None:
        if vertex in self._members:
            return
        self._members.add(vertex)
        if self.selection == "fifo":
            self._queue.append(vertex)
        else:
            while height >= len(self._buckets):
                self._buckets.append([])
            self._buckets[height].append(vertex)
            self._highest = max(self._highest, height)

    def pop(self, height: List[int]) -> int:
        if self.selection == "fifo":
            vertex = self._queue.popleft()
            self._members.discard(vertex)
            return vertex
        while self._highest > 0 and not self._buckets[self._highest]:
            self._highest -= 1
        bucket = self._buckets[self._highest] or self._buckets[0]
        vertex = bucket.pop()
        self._members.discard(vertex)
        return vertex

    def __bool__(self) -> bool:
        return bool(self._members)

    def __len__(self) -> int:
        return len(self._members)


def push_relabel(network: FlowNetwork, **kwargs) -> MaxFlowResult:
    """Solve ``network`` with :class:`PushRelabel` (highest-label by default)."""
    return PushRelabel(**kwargs).solve(network)
