"""Shared infrastructure for the classical max-flow algorithms.

All algorithms operate on a :class:`ResidualNetwork`, an arc-based residual
graph built from a :class:`~repro.graph.network.FlowNetwork`.  Each original
edge contributes a forward arc (residual capacity = capacity) and a backward
arc (residual capacity = 0); pushing flow on one arc frees capacity on its
partner.  The residual network also counts elementary operations so that the
CPU cost model (Section 5.1 baseline) can translate algorithmic work into an
estimated execution time on a conventional processor.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from ..errors import AlgorithmError, InfeasibleFlowError
from ..graph.network import FlowNetwork

__all__ = [
    "Arc",
    "ResidualNetwork",
    "OperationCounter",
    "MaxFlowResult",
    "FlowAlgorithm",
    "validate_max_flow",
]

Vertex = Hashable
INFINITY = float("inf")


@dataclass
class OperationCounter:
    """Counts of elementary operations performed by an algorithm run.

    The counters deliberately track the operations a C implementation would
    perform on its residual-network data structure (arc scans, pushes,
    relabels, queue operations); the CPU cost model converts them to time.
    """

    arc_scans: int = 0
    pushes: int = 0
    relabels: int = 0
    augmentations: int = 0
    queue_operations: int = 0
    global_relabels: int = 0

    def total(self) -> int:
        """Total number of counted elementary operations."""
        return (
            self.arc_scans
            + self.pushes
            + self.relabels
            + self.augmentations
            + self.queue_operations
            + self.global_relabels
        )

    def merged_with(self, other: "OperationCounter") -> "OperationCounter":
        """Return the element-wise sum of two counters."""
        return OperationCounter(
            arc_scans=self.arc_scans + other.arc_scans,
            pushes=self.pushes + other.pushes,
            relabels=self.relabels + other.relabels,
            augmentations=self.augmentations + other.augmentations,
            queue_operations=self.queue_operations + other.queue_operations,
            global_relabels=self.global_relabels + other.global_relabels,
        )


class ResidualNetwork:
    """Arc-based residual graph with operation counting.

    Arcs are stored in pairs: arc ``2k`` is the forward arc of original edge
    ``k``'s residual capacity and arc ``2k + 1`` is its reverse.  Additional
    arc pairs may be appended (used by algorithms that add auxiliary edges).
    """

    def __init__(self, network: FlowNetwork) -> None:
        self.network = network
        self.vertex_of: List[Vertex] = network.vertices()
        self.index_of: Dict[Vertex, int] = {v: i for i, v in enumerate(self.vertex_of)}
        self.source = self.index_of[network.source]
        self.sink = self.index_of[network.sink]
        self.num_vertices = len(self.vertex_of)

        self.arc_to: List[int] = []
        self.arc_from: List[int] = []
        self.residual: List[float] = []
        self.adjacency: List[List[int]] = [[] for _ in range(self.num_vertices)]
        self.edge_of_arc: List[Optional[int]] = []
        self.counter = OperationCounter()

        for edge in network.edges():
            tail = self.index_of[edge.tail]
            head = self.index_of[edge.head]
            self._add_arc_pair(tail, head, edge.capacity, edge.index)

    # ------------------------------------------------------------------

    def _add_arc_pair(
        self, tail: int, head: int, capacity: float, edge_index: Optional[int]
    ) -> int:
        forward = len(self.arc_to)
        self.arc_from.extend((tail, head))
        self.arc_to.extend((head, tail))
        self.residual.extend((capacity, 0.0))
        self.edge_of_arc.extend((edge_index, None))
        self.adjacency[tail].append(forward)
        self.adjacency[head].append(forward + 1)
        return forward

    @staticmethod
    def partner(arc: int) -> int:
        """Index of the reverse arc of ``arc``."""
        return arc ^ 1

    def ensure_vertex(self, vertex: Vertex) -> int:
        """Index of ``vertex``, appending it to the residual graph if new.

        Used by the incremental solver when an :class:`EdgeInsert` references
        a vertex the original network did not have.
        """
        index = self.index_of.get(vertex)
        if index is None:
            index = self.num_vertices
            self.index_of[vertex] = index
            self.vertex_of.append(vertex)
            self.adjacency.append([])
            self.num_vertices += 1
        return index

    def add_edge_arcs(self, tail: Vertex, head: Vertex, capacity: float,
                      edge_index: Optional[int] = None) -> int:
        """Append a forward/reverse arc pair for a newly inserted edge.

        Returns the forward arc index.  Note that after out-of-band arcs have
        been appended the ``arc == 2 * edge_index`` invariant no longer holds
        for later edges, so incremental callers must track their own
        edge-to-arc mapping instead of relying on :meth:`flow_on_edges`.
        """
        return self._add_arc_pair(
            self.ensure_vertex(tail), self.ensure_vertex(head), capacity, edge_index
        )

    def push(self, arc: int, amount: float) -> None:
        """Push ``amount`` units along ``arc`` (and pull them from its partner)."""
        if amount < 0:
            raise AlgorithmError("cannot push a negative amount")
        if self.residual[arc] != INFINITY:
            self.residual[arc] -= amount
        rev = self.partner(arc)
        if self.residual[rev] != INFINITY:
            self.residual[rev] += amount
        self.counter.pushes += 1

    def flow_on_edges(self) -> Dict[int, float]:
        """Recover per-original-edge flow from the residual capacities.

        The flow on edge ``k`` equals the residual capacity accumulated on
        its reverse arc ``2k + 1`` (for finite-capacity edges) or the pushed
        amount tracked the same way for uncapacitated edges.
        """
        flow: Dict[int, float] = {}
        for edge in self.network.edges():
            reverse_arc = 2 * edge.index + 1
            flow[edge.index] = self.residual[reverse_arc]
        return flow

    def flow_value(self) -> float:
        """Net flow out of the source implied by the residual capacities."""
        return self.network.flow_value(self.flow_on_edges())


@dataclass(frozen=True)
class MaxFlowResult:
    """Outcome of a max-flow computation.

    Attributes
    ----------
    flow_value:
        The value ``|f|`` of the computed flow (net flow out of the source).
    edge_flows:
        Mapping from edge index to flow on that edge.
    algorithm:
        Human-readable name of the algorithm that produced the result.
    operations:
        Elementary-operation counters (empty counter for solvers that do not
        track them, e.g. the LP reference).
    wall_time_s:
        Wall-clock time spent inside the solver.
    iterations:
        Algorithm-specific iteration count (augmentations, phases, ...).
    """

    flow_value: float
    edge_flows: Dict[int, float]
    algorithm: str
    operations: OperationCounter = field(default_factory=OperationCounter)
    wall_time_s: float = 0.0
    iterations: int = 0

    def flow_by_edge(self, network: FlowNetwork) -> Dict[Tuple[Vertex, Vertex], float]:
        """Flow keyed by ``(tail, head)`` pairs (parallel edges are summed)."""
        keyed: Dict[Tuple[Vertex, Vertex], float] = {}
        for edge in network.edges():
            key = (edge.tail, edge.head)
            keyed[key] = keyed.get(key, 0.0) + self.edge_flows.get(edge.index, 0.0)
        return keyed


class FlowAlgorithm:
    """Base class for max-flow solvers.

    Subclasses implement :meth:`_run` returning a :class:`ResidualNetwork`
    with the final residual capacities; the base class handles timing,
    flow extraction and validation.
    """

    name = "abstract"

    def solve(self, network: FlowNetwork, validate: bool = False) -> MaxFlowResult:
        """Compute a maximum s-t flow on ``network``.

        Parameters
        ----------
        network:
            The flow network to solve.
        validate:
            When set, the returned flow is checked for feasibility (capacity
            and conservation constraints); an :class:`InfeasibleFlowError` is
            raised if the check fails.  Intended for tests and debugging.
        """
        start = time.perf_counter()
        residual, iterations = self._run(network)
        elapsed = time.perf_counter() - start
        edge_flows = residual.flow_on_edges()
        value = network.flow_value(edge_flows)
        result = MaxFlowResult(
            flow_value=value,
            edge_flows=edge_flows,
            algorithm=self.name,
            operations=residual.counter,
            wall_time_s=elapsed,
            iterations=iterations,
        )
        if validate:
            validate_max_flow(network, result)
        return result

    # -- to be provided by subclasses ---------------------------------------

    def _run(self, network: FlowNetwork) -> Tuple[ResidualNetwork, int]:
        raise NotImplementedError


def validate_max_flow(
    network: FlowNetwork,
    result: MaxFlowResult,
    capacity_tol: float = 1e-6,
    conservation_tol: float = 1e-6,
) -> None:
    """Raise :class:`InfeasibleFlowError` when ``result`` is not a feasible flow.

    Note that this validates *feasibility*, not optimality; optimality is
    asserted in tests by cross-checking independent algorithms and the
    max-flow/min-cut duality.
    """
    problems = network.check_flow(result.edge_flows, capacity_tol, conservation_tol)
    value = network.flow_value(result.edge_flows)
    if abs(value - result.flow_value) > max(capacity_tol, 1e-9 * max(1.0, abs(value))):
        problems.append(
            f"reported flow value {result.flow_value} does not match edge flows ({value})"
        )
    if problems:
        raise InfeasibleFlowError(
            f"{result.algorithm}: infeasible flow: " + "; ".join(problems)
        )
