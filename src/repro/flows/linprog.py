"""Linear-programming reference solver for max-flow.

The max-flow problem is the restricted linear program the paper specialises
its circuit for (Section 2.3, Equation 7):

    maximize   sum of flow on source-adjacent edges
    subject to flow conservation at every internal vertex
               0 <= f_e <= c_e

This module builds exactly that LP and solves it with
:func:`scipy.optimize.linprog` (HiGHS).  It serves as an independent
reference implementation used by the tests to validate the combinatorial
algorithms and the analog substrate, and it doubles as the software model of
the generic analog LP substrate of Vichik & Borrelli [42] that the paper's
circuits are derived from.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

import numpy as np
from scipy.optimize import linprog

from ..errors import AlgorithmError
from ..graph.network import FlowNetwork
from .base import MaxFlowResult, OperationCounter

__all__ = ["LinearProgrammingSolver", "solve_lp_maxflow"]


class LinearProgrammingSolver:
    """Max-flow solver based on :func:`scipy.optimize.linprog`.

    Parameters
    ----------
    infinite_capacity:
        Value substituted for infinite edge capacities; defaults to the sum
        of all finite capacities plus one (a valid upper bound on any flow).
    method:
        scipy ``linprog`` method; HiGHS is both fast and accurate.
    """

    name = "lp-reference"

    def __init__(self, infinite_capacity: Optional[float] = None, method: str = "highs") -> None:
        self.infinite_capacity = infinite_capacity
        self.method = method

    def solve(self, network: FlowNetwork, validate: bool = False) -> MaxFlowResult:
        """Solve the max-flow LP for ``network``."""
        start = time.perf_counter()
        edges = network.edges()
        num_edges = len(edges)
        if num_edges == 0:
            return MaxFlowResult(0.0, {}, self.name, OperationCounter(), 0.0, 0)

        cap_bound = self.infinite_capacity
        if cap_bound is None:
            cap_bound = network.total_capacity() + 1.0

        # Objective: maximize net flow out of the source == minimize -sum.
        objective = np.zeros(num_edges)
        for edge in network.out_edges(network.source):
            objective[edge.index] -= 1.0
        for edge in network.in_edges(network.source):
            objective[edge.index] += 1.0

        internal = network.internal_vertices()
        conservation = np.zeros((len(internal), num_edges))
        for row, vertex in enumerate(internal):
            for edge in network.in_edges(vertex):
                conservation[row, edge.index] += 1.0
            for edge in network.out_edges(vertex):
                conservation[row, edge.index] -= 1.0
        rhs = np.zeros(len(internal))

        bounds = [
            (0.0, edge.capacity if not edge.is_uncapacitated else cap_bound)
            for edge in edges
        ]

        outcome = linprog(
            c=objective,
            A_eq=conservation if len(internal) else None,
            b_eq=rhs if len(internal) else None,
            bounds=bounds,
            method=self.method,
        )
        if not outcome.success:
            raise AlgorithmError(f"LP max-flow solve failed: {outcome.message}")

        flows: Dict[int, float] = {edge.index: float(outcome.x[edge.index]) for edge in edges}
        elapsed = time.perf_counter() - start
        result = MaxFlowResult(
            flow_value=float(-outcome.fun),
            edge_flows=flows,
            algorithm=self.name,
            operations=OperationCounter(),
            wall_time_s=elapsed,
            iterations=int(getattr(outcome, "nit", 0) or 0),
        )
        if validate:
            from .base import validate_max_flow

            validate_max_flow(network, result, capacity_tol=1e-6, conservation_tol=1e-6)
        return result


def solve_lp_maxflow(network: FlowNetwork, **kwargs) -> MaxFlowResult:
    """Solve ``network`` with :class:`LinearProgrammingSolver`."""
    return LinearProgrammingSolver(**kwargs).solve(network)
