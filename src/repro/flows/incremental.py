"""Incremental maximum-flow repair for dynamic networks.

A streaming workload edits a few edges and asks for the new max flow.  A cold
solver pays the full ``O(V^2 E)``-ish cost again; :class:`IncrementalMaxFlow`
instead keeps the residual network of the previous solution alive and pays
only for the delta:

* **capacity increase / edge insert** — the previous flow stays feasible, so
  augmentation simply *resumes* from it (warm-started Dinic blocking-flow
  phases on the existing residual);
* **capacity decrease / edge removal** — the previous flow may overflow the
  edited edge.  The overflow is drained by residual-graph repair: clip the
  edge's flow to the new capacity (leaving an excess at its tail ``u`` and a
  deficit at its head ``v``), then (1) *reroute* as much of the overflow as
  possible along augmenting ``u -> v`` paths of the residual graph, and
  (2) *cancel* the remainder by pushing it back along reverse arcs ``u -> s``
  and ``t -> v`` — both guaranteed to succeed by flow decomposition, reducing
  the flow value by exactly the uncancellable amount.  A final warm
  augmentation pass restores maximality.

The repair is exact: after every :meth:`~IncrementalMaxFlow.apply` the stored
flow is a maximum flow of the edited network (the equivalence tests assert
agreement with a from-scratch solve to 1e-9).  When a batch touches more
than ``cold_ratio`` of the edges, the warm path is unlikely to beat a fresh
solve, so the engine cuts over to a cold rebuild (the heuristic the
streaming benchmark sweeps).
"""

from __future__ import annotations

import time
from collections import deque
from typing import Dict, List, Optional

from ..errors import AlgorithmError, ReproError, SolveTimeoutError
from ..graph.network import FlowNetwork
from ..graph.updates import MutableFlowNetwork, UpdateBatch, UpdateEvent
from ..obs import probes
from ..resilience.faults import fault_point
from ..resilience.policy import check_deadline
from .base import INFINITY, MaxFlowResult, OperationCounter, ResidualNetwork
from .dinic import Dinic
from .kernel import KernelDinic
from .registry import get_algorithm

__all__ = ["IncrementalMaxFlow"]

#: Absolute slack used when comparing repaired amounts against targets.
_REPAIR_TOL = 1e-9


class IncrementalMaxFlow:
    """Maintain a maximum flow across batched edits of one network.

    Parameters
    ----------
    network:
        The network to track.  The instance is *shared*: the caller (usually
        a :class:`~repro.graph.updates.MutableFlowNetwork`) mutates it and
        hands the resulting :class:`~repro.graph.updates.UpdateBatch` to
        :meth:`apply`.  Alternatively pass a
        :class:`~repro.graph.updates.MutableFlowNetwork` directly and use
        :meth:`push`.
    algorithm:
        Algorithm (a :data:`repro.flows.registry.ALGORITHMS` name) used for
        *cold* solves — the initial one and ``cold_ratio`` cutovers.  Warm
        repairs always run the Dinic machinery on the maintained residual
        (the flat-array kernel when ``"kernel-dinic"`` is named explicitly,
        the pure-Python engine otherwise).
    cold_ratio:
        Cutover heuristic: when one batch touches more than this fraction of
        the network's edges, rebuild from scratch instead of repairing.
    validate:
        Check feasibility of the flow after every apply (tests/debugging).

    Examples
    --------
    >>> from repro.graph import FlowNetwork
    >>> from repro.graph.updates import CapacityUpdate, MutableFlowNetwork
    >>> from repro.flows.incremental import IncrementalMaxFlow
    >>> g = FlowNetwork()
    >>> _ = g.add_edge("s", "a", 3.0)
    >>> _ = g.add_edge("a", "t", 2.0)
    >>> dynamic = MutableFlowNetwork(g)
    >>> engine = IncrementalMaxFlow(dynamic, cold_ratio=1.0)
    >>> engine.result.flow_value
    2.0
    >>> engine.push([CapacityUpdate(1, 0.5)]).flow_value
    0.5
    >>> engine.warm_solves, engine.cold_solves
    (1, 1)
    """

    def __init__(
        self,
        network,
        algorithm: str = "dinic",
        cold_ratio: float = 0.25,
        validate: bool = False,
    ) -> None:
        if not 0.0 <= cold_ratio <= 1.0:
            raise AlgorithmError("cold_ratio must be within [0, 1]")
        get_algorithm(algorithm)  # fail fast on unknown names
        if isinstance(network, MutableFlowNetwork):
            self._mutable: Optional[MutableFlowNetwork] = network
            self.network: FlowNetwork = network.network
        elif isinstance(network, FlowNetwork):
            self._mutable = None
            self.network = network
        else:
            raise AlgorithmError(
                "network must be a FlowNetwork or MutableFlowNetwork, got "
                f"{type(network).__name__}"
            )
        self.algorithm = algorithm
        self.cold_ratio = cold_ratio
        self.validate = validate
        # Warm repairs resume on the maintained residual.  The flat-array
        # kernel round-trips that state, so explicit "kernel-dinic" streams
        # run it as the augmentation engine; the "dinic" default keeps the
        # pure-Python repair, whose per-push cost scales with the delta
        # rather than the kernel's O(E) flat-array setup (at streaming
        # delta sizes the setup would dominate the repair itself).
        self._dinic = KernelDinic() if algorithm == "kernel-dinic" else Dinic()
        self.cold_solves = 0
        self.warm_solves = 0
        self.repair_failures = 0
        self.rerouted_flow = 0.0
        self.cancelled_flow = 0.0
        self._stale = False
        self._result = self._cold_solve()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    @property
    def result(self) -> MaxFlowResult:
        """The current maximum flow (of the network's latest applied state)."""
        return self._result

    def push(self, events) -> MaxFlowResult:
        """Apply raw update events through the attached mutable network.

        Only available when the engine was constructed from a
        :class:`~repro.graph.updates.MutableFlowNetwork`; otherwise mutate
        the network externally and call :meth:`apply` with the batch.
        """
        if self._mutable is None:
            raise AlgorithmError(
                "push() needs a MutableFlowNetwork; use apply(batch) instead"
            )
        return self.apply(self._mutable.apply(events))

    def apply(self, batch: UpdateBatch) -> MaxFlowResult:
        """Repair the maximum flow after ``batch`` was applied to the network.

        Parameters
        ----------
        batch:
            The :class:`~repro.graph.updates.UpdateBatch` describing edits
            already applied to the shared network.

        Returns
        -------
        MaxFlowResult
            The repaired (or rebuilt) maximum flow; ``algorithm`` is
            ``"incremental-dinic"`` for warm repairs and the configured cold
            algorithm name for cold cutovers.
        """
        if self._stale:
            # A previous apply died mid-repair (deadline): the maintained
            # residual is unusable, so rebuild cold.  The network already
            # carries every applied batch, including this one.
            self._result = self._cold_solve()
            self._stale = False
            return self._result
        changed = batch.num_changed_edges
        if changed == 0:
            return self._result
        if changed > self.cold_ratio * max(1, self.network.num_edges):
            self._result = self._cold_solve()
            return self._result
        try:
            self._result = self._warm_apply(batch)
        except SolveTimeoutError:
            # The budget that killed the repair would kill a rebuild too;
            # mark the warm state unusable and let the next apply (or
            # refresh()) re-solve cold from the already-mutated network.
            self._stale = True
            raise
        except ReproError:
            # Warm repair failed (numerically degenerate residual, injected
            # fault, ...): degrade to a cold rebuild from the network, which
            # does not depend on any maintained warm state.
            self.repair_failures += 1
            self._result = self._cold_solve()
        return self._result

    def refresh(self) -> MaxFlowResult:
        """Force a cold re-solve of the network's current state."""
        self._result = self._cold_solve()
        self._stale = False
        return self._result

    # ------------------------------------------------------------------
    # Cold path
    # ------------------------------------------------------------------

    def _cold_solve(self) -> MaxFlowResult:
        start = time.perf_counter()
        before = OperationCounter()  # fresh residual, counters start at zero
        self._residual = ResidualNetwork(self.network)
        self._arc_of_edge: Dict[int, int] = {
            edge.index: 2 * edge.index for edge in self.network.edges()
        }
        if self.algorithm in ("dinic", "kernel-dinic"):
            phases = self._dinic.augment_residual(self._residual)
        else:
            # Solve with the configured algorithm, then seed the maintained
            # residual from its flow so warm repairs can resume from it.
            result = get_algorithm(self.algorithm).solve(self.network)
            residual = self._residual
            for edge in self.network.edges():
                flow = result.edge_flows.get(edge.index, 0.0)
                arc = self._arc_of_edge[edge.index]
                if residual.residual[arc] != INFINITY:
                    # max() guards against an LP-reference flow overshooting
                    # a capacity by round-off.
                    residual.residual[arc] = max(0.0, edge.capacity - flow)
                residual.residual[residual.partner(arc)] = flow
            phases = result.iterations
        self.cold_solves += 1
        probes.incremental_cold(self.algorithm)
        return self._build_result(self.algorithm, phases, start, before)

    # ------------------------------------------------------------------
    # Warm path
    # ------------------------------------------------------------------

    def _warm_apply(self, batch: UpdateBatch) -> MaxFlowResult:
        fault_point("warm-repair", self.algorithm)
        probes.incremental_repair(self.algorithm)
        start = time.perf_counter()
        before = self._counter_snapshot()
        residual = self._residual

        for edge in batch.inserted_edges:
            arc = residual.add_edge_arcs(
                edge.tail, edge.head, edge.capacity, edge.index
            )
            self._arc_of_edge[edge.index] = arc

        repairs: List = []
        for index, (_, new) in batch.capacity_changes.items():
            if index not in self._arc_of_edge:
                # Edge inserted and re-weighted within the same batch.
                continue
            arc = self._arc_of_edge[index]
            rev = residual.partner(arc)
            flow = residual.residual[rev]
            if new == INFINITY:
                residual.residual[arc] = INFINITY
                continue
            if flow <= new:
                residual.residual[arc] = new - flow
                continue
            # Overflow: clip the edge's flow and schedule a repair.
            overflow = flow - new
            residual.residual[arc] = 0.0
            residual.residual[rev] = new
            edge = self.network.edge(index)
            repairs.append(
                (residual.index_of[edge.tail], residual.index_of[edge.head], overflow)
            )

        for tail, head, overflow in repairs:
            if not self._repair(tail, head, overflow):
                # Defensive: theory guarantees the repair succeeds, but a
                # numerically degenerate residual falls back to a rebuild.
                self._result = self._cold_solve()
                return self._result

        phases = self._dinic.augment_residual(residual)
        self.warm_solves += 1
        result = self._build_result("incremental-dinic", phases, start, before)
        if self.validate:
            from .base import validate_max_flow

            validate_max_flow(self.network, result)
        return result

    def _repair(self, tail: int, head: int, overflow: float) -> bool:
        """Drain ``overflow`` units of excess at ``tail`` / deficit at ``head``.

        Returns False when the residual could not absorb the imbalance (never
        expected; triggers a cold rebuild).
        """
        residual = self._residual
        rerouted = 0.0
        if tail != head:
            rerouted = self._bounded_max_flow(tail, head, overflow)
            self.rerouted_flow += rerouted
        remaining = overflow - rerouted
        if remaining <= _REPAIR_TOL:
            return True
        # Cancellation: the unreroutable remainder came from the source and
        # went to the sink (flow decomposition), so the reverse arcs admit
        # exactly this much from tail back to s and from t back to head.
        self.cancelled_flow += remaining
        if tail != residual.source:
            pushed = self._bounded_max_flow(tail, residual.source, remaining)
            if pushed < remaining - _REPAIR_TOL:
                return False
        if head != residual.sink:
            pulled = self._bounded_max_flow(residual.sink, head, remaining)
            if pulled < remaining - _REPAIR_TOL:
                return False
        return True

    def _bounded_max_flow(self, source: int, target: int, limit: float) -> float:
        """Push up to ``limit`` units from ``source`` to ``target`` (BFS paths)."""
        residual = self._residual
        pushed_total = 0.0
        parent_arc: List[int] = [-1] * residual.num_vertices
        while limit - pushed_total > _REPAIR_TOL:
            check_deadline("incremental repair path search")
            for i in range(residual.num_vertices):
                parent_arc[i] = -1
            parent_arc[source] = -2
            queue = deque([source])
            found = False
            while queue and not found:
                vertex = queue.popleft()
                residual.counter.queue_operations += 1
                for arc in residual.adjacency[vertex]:
                    residual.counter.arc_scans += 1
                    head = residual.arc_to[arc]
                    if parent_arc[head] == -1 and residual.residual[arc] > _REPAIR_TOL:
                        parent_arc[head] = arc
                        if head == target:
                            found = True
                            break
                        queue.append(head)
            if not found:
                break
            bottleneck = limit - pushed_total
            vertex = target
            while vertex != source:
                arc = parent_arc[vertex]
                bottleneck = min(bottleneck, residual.residual[arc])
                vertex = residual.arc_from[arc]
            vertex = target
            while vertex != source:
                arc = parent_arc[vertex]
                residual.push(arc, bottleneck)
                vertex = residual.arc_from[arc]
            residual.counter.augmentations += 1
            pushed_total += bottleneck
        return pushed_total

    # ------------------------------------------------------------------
    # Result assembly
    # ------------------------------------------------------------------

    def edge_flows(self) -> Dict[int, float]:
        """Per-edge flow recovered from the maintained residual network."""
        residual = self._residual
        return {
            index: residual.residual[residual.partner(arc)]
            for index, arc in self._arc_of_edge.items()
        }

    def _counter_snapshot(self) -> OperationCounter:
        counter = self._residual.counter if hasattr(self, "_residual") else OperationCounter()
        return OperationCounter(
            arc_scans=counter.arc_scans,
            pushes=counter.pushes,
            relabels=counter.relabels,
            augmentations=counter.augmentations,
            queue_operations=counter.queue_operations,
            global_relabels=counter.global_relabels,
        )

    def _build_result(
        self,
        algorithm: str,
        phases: int,
        start: float,
        before: OperationCounter,
    ) -> MaxFlowResult:
        flows = self.edge_flows()
        after = self._residual.counter
        delta = OperationCounter(
            arc_scans=after.arc_scans - before.arc_scans,
            pushes=after.pushes - before.pushes,
            relabels=after.relabels - before.relabels,
            augmentations=after.augmentations - before.augmentations,
            queue_operations=after.queue_operations - before.queue_operations,
            global_relabels=after.global_relabels - before.global_relabels,
        )
        return MaxFlowResult(
            flow_value=self.network.flow_value(flows),
            edge_flows=flows,
            algorithm=algorithm,
            operations=delta,
            wall_time_s=time.perf_counter() - start,
            iterations=phases,
        )
