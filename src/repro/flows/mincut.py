"""Minimum s-t cut extraction (the dual of max-flow).

Given a maximum flow, the minimum cut is obtained from the set of vertices
reachable from the source in the residual network.  The paper's Section 6.3
studies the min-cut linear program directly; this module provides the exact
combinatorial reference used to validate both the classical algorithms (via
max-flow = min-cut duality) and the analog dual solver.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Optional, Tuple

from ..graph.network import FlowNetwork
from .base import MaxFlowResult
from .dinic import Dinic
from .kernel import KernelDinic, kernel_enabled

__all__ = ["MinCutResult", "min_cut_from_flow", "min_cut"]

Vertex = Hashable


@dataclass(frozen=True)
class MinCutResult:
    """A minimum s-t cut.

    Attributes
    ----------
    cut_value:
        Total capacity of the edges crossing the cut from the source side to
        the sink side.  Equals the max-flow value by strong duality.
    source_side, sink_side:
        The two vertex sets of the partition.
    cut_edges:
        Indices of the edges crossing from the source side to the sink side.
    """

    cut_value: float
    source_side: FrozenSet[Vertex]
    sink_side: FrozenSet[Vertex]
    cut_edges: Tuple[int, ...]

    def indicator(self, network: FlowNetwork) -> Dict[Vertex, int]:
        """Return the 0/1 partition labels ``p_i`` of the min-cut LP (Fig. 12).

        Source-side vertices get ``1`` and sink-side vertices ``0`` so that
        ``p_s - p_t >= 1`` holds, matching the paper's formulation.
        """
        return {v: (1 if v in self.source_side else 0) for v in network.vertices()}


def min_cut_from_flow(network: FlowNetwork, result: MaxFlowResult) -> MinCutResult:
    """Extract a minimum cut from a *maximum* flow.

    The source side is the set of vertices reachable from ``s`` in the
    residual graph induced by ``result.edge_flows``.  If the supplied flow is
    not maximum the returned partition may not separate s from t; callers can
    detect that because the sink would then appear on the source side.
    """
    residual_adjacency: Dict[Vertex, List[Tuple[Vertex, float]]] = {
        v: [] for v in network.vertices()
    }
    for edge in network.edges():
        flow = result.edge_flows.get(edge.index, 0.0)
        forward_slack = edge.capacity - flow
        if forward_slack > 1e-12:
            residual_adjacency[edge.tail].append((edge.head, forward_slack))
        if flow > 1e-12:
            residual_adjacency[edge.head].append((edge.tail, flow))

    reachable = {network.source}
    queue = deque([network.source])
    while queue:
        vertex = queue.popleft()
        for head, _slack in residual_adjacency[vertex]:
            if head not in reachable:
                reachable.add(head)
                queue.append(head)

    source_side = frozenset(reachable)
    sink_side = frozenset(v for v in network.vertices() if v not in reachable)
    cut_edges = tuple(
        edge.index
        for edge in network.edges()
        if edge.tail in source_side and edge.head in sink_side
    )
    cut_value = sum(network.edge(i).capacity for i in cut_edges)
    return MinCutResult(
        cut_value=cut_value,
        source_side=source_side,
        sink_side=sink_side,
        cut_edges=cut_edges,
    )


def min_cut(network: FlowNetwork, flow_result: Optional[MaxFlowResult] = None) -> MinCutResult:
    """Compute a minimum s-t cut (solving max-flow with Dinic if needed).

    The implicit solve uses the flat-array kernel unless
    ``REPRO_FLOW_KERNEL`` disables it; pass ``flow_result`` to pin the
    solver.
    """
    if flow_result is None:
        solver = KernelDinic() if kernel_enabled() else Dinic()
        flow_result = solver.solve(network)
    return min_cut_from_flow(network, flow_result)
