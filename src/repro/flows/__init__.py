"""Classical (digital) maximum-flow algorithms and the CPU baseline model.

This package provides from-scratch implementations of the standard max-flow
algorithms the paper discusses in its related-work section and uses as the
CPU baseline in its evaluation:

* :mod:`~repro.flows.ford_fulkerson` — DFS augmenting paths (Ford–Fulkerson)
* :mod:`~repro.flows.edmonds_karp` — BFS augmenting paths
* :mod:`~repro.flows.dinic` — Dinitz blocking-flow algorithm
* :mod:`~repro.flows.push_relabel` — Goldberg–Tarjan push-relabel (FIFO and
  highest-label selection, gap and global-relabel heuristics); this is the
  algorithm the paper benchmarks against on a 3 GHz Xeon.
* :mod:`~repro.flows.linprog` — reference LP formulation solved with
  :func:`scipy.optimize.linprog`.
* :mod:`~repro.flows.mincut` — minimum-cut extraction from a maximum flow.
* :mod:`~repro.flows.incremental` — warm-started max-flow repair for
  streaming edit batches (the classical half of ``repro.service.streaming``).
* :mod:`~repro.flows.cost_model` — operation-count based CPU time/energy model
  used to approximate the paper's compiled-C baseline from Python.
"""

from .base import FlowAlgorithm, MaxFlowResult, ResidualNetwork, validate_max_flow
from .ford_fulkerson import FordFulkerson, ford_fulkerson
from .kernel import FlatResidual, KernelDinic, kernel_enabled, resolve_default_algorithm
from .edmonds_karp import EdmondsKarp, edmonds_karp
from .dinic import Dinic, dinic
from .push_relabel import PushRelabel, push_relabel
from .linprog import LinearProgrammingSolver, solve_lp_maxflow
from .mincut import MinCutResult, min_cut_from_flow, min_cut
from .cost_model import CpuCostModel, CpuEstimate
from .incremental import IncrementalMaxFlow
from .registry import ALGORITHMS, get_algorithm, solve_max_flow

__all__ = [
    "FlowAlgorithm",
    "MaxFlowResult",
    "ResidualNetwork",
    "validate_max_flow",
    "FordFulkerson",
    "ford_fulkerson",
    "EdmondsKarp",
    "edmonds_karp",
    "Dinic",
    "dinic",
    "PushRelabel",
    "push_relabel",
    "LinearProgrammingSolver",
    "solve_lp_maxflow",
    "MinCutResult",
    "min_cut_from_flow",
    "min_cut",
    "CpuCostModel",
    "CpuEstimate",
    "IncrementalMaxFlow",
    "FlatResidual",
    "KernelDinic",
    "kernel_enabled",
    "resolve_default_algorithm",
    "ALGORITHMS",
    "get_algorithm",
    "solve_max_flow",
]
