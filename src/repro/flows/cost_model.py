"""CPU cost model for the push-relabel baseline.

The paper compares the substrate's convergence time against push-relabel
compiled with ``gcc -O3`` on a 3 GHz Intel Xeon.  A pure-Python
implementation is one to three orders of magnitude slower than compiled C,
so quoting raw Python wall-clock would artificially inflate the analog
speedups.  To keep the comparison honest, this module converts the
elementary-operation counters recorded by the algorithms into an estimated
execution time of an optimised C implementation:

    time = (weighted operation count) * cycles_per_operation / clock_hz

The default constants (a 3 GHz scalar core spending a handful of cycles per
residual-arc operation, dominated by memory traffic) land compiled
push-relabel for the paper's graph sizes (hundreds of vertices, thousands of
edges) in the 0.1 ms .. 10 ms range, the same order as Fig. 10's CPU curve.
Energy is modelled with a constant package power.
"""

from __future__ import annotations

from dataclasses import dataclass

from .base import MaxFlowResult, OperationCounter

__all__ = ["CpuCostModel", "CpuEstimate"]


@dataclass(frozen=True)
class CpuEstimate:
    """Estimated execution characteristics of the CPU baseline."""

    seconds: float
    operations: int
    cycles: float
    energy_j: float
    python_wall_time_s: float

    @property
    def microseconds(self) -> float:
        return self.seconds * 1e6


@dataclass(frozen=True)
class CpuCostModel:
    """Operation-count based model of an optimised CPU implementation.

    Parameters
    ----------
    clock_hz:
        CPU clock frequency (the paper's baseline is a 3 GHz Xeon).
    cycles_per_arc_scan, cycles_per_push, cycles_per_relabel,
    cycles_per_queue_op, cycles_per_augmentation, cycles_per_global_relabel:
        Cycle weights of the respective elementary operations.  The defaults
        reflect pointer-chasing data structures whose per-operation cost is
        dominated by cache/memory latency rather than arithmetic.
    package_power_w:
        Active power draw used to convert time into energy (a busy Xeon core
        plus its share of uncore).
    """

    clock_hz: float = 3.0e9
    cycles_per_arc_scan: float = 6.0
    cycles_per_push: float = 12.0
    cycles_per_relabel: float = 20.0
    cycles_per_queue_op: float = 8.0
    cycles_per_augmentation: float = 10.0
    cycles_per_global_relabel: float = 25.0
    package_power_w: float = 95.0

    def cycles(self, operations: OperationCounter) -> float:
        """Weighted cycle count of an operation counter."""
        return (
            operations.arc_scans * self.cycles_per_arc_scan
            + operations.pushes * self.cycles_per_push
            + operations.relabels * self.cycles_per_relabel
            + operations.queue_operations * self.cycles_per_queue_op
            + operations.augmentations * self.cycles_per_augmentation
            + operations.global_relabels * self.cycles_per_global_relabel
        )

    def estimate(self, result: MaxFlowResult) -> CpuEstimate:
        """Estimate C-implementation time/energy for an algorithm result."""
        cycles = self.cycles(result.operations)
        seconds = cycles / self.clock_hz
        return CpuEstimate(
            seconds=seconds,
            operations=result.operations.total(),
            cycles=cycles,
            energy_j=seconds * self.package_power_w,
            python_wall_time_s=result.wall_time_s,
        )

    def estimate_seconds(self, result: MaxFlowResult) -> float:
        """Shortcut returning only the estimated seconds."""
        return self.estimate(result).seconds
