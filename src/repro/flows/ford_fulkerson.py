"""Ford–Fulkerson maximum-flow algorithm (DFS augmenting paths).

The original augmenting-path method [16].  A depth-first search locates any
source-to-sink path with positive residual capacity and saturates it; the
process repeats until no augmenting path exists.  With integral capacities
the algorithm terminates with the exact maximum flow; with irrational
capacities it may not terminate, so a maximum-iteration safeguard is
provided.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import AlgorithmError
from ..graph.network import FlowNetwork
from .base import FlowAlgorithm, MaxFlowResult, ResidualNetwork

__all__ = ["FordFulkerson", "ford_fulkerson"]


class FordFulkerson(FlowAlgorithm):
    """Depth-first-search augmenting-path max-flow solver."""

    name = "ford-fulkerson"

    def __init__(self, max_augmentations: int = 1_000_000) -> None:
        if max_augmentations <= 0:
            raise AlgorithmError("max_augmentations must be positive")
        self.max_augmentations = max_augmentations

    def _run(self, network: FlowNetwork) -> Tuple[ResidualNetwork, int]:
        residual = ResidualNetwork(network)
        augmentations = 0
        while augmentations < self.max_augmentations:
            path = self._find_path_dfs(residual)
            if path is None:
                break
            bottleneck = min(residual.residual[arc] for arc in path)
            if bottleneck <= 0:
                break
            for arc in path:
                residual.push(arc, bottleneck)
            residual.counter.augmentations += 1
            augmentations += 1
        else:
            raise AlgorithmError(
                f"Ford-Fulkerson exceeded {self.max_augmentations} augmentations; "
                "capacities may be pathological"
            )
        return residual, augmentations

    @staticmethod
    def _find_path_dfs(residual: ResidualNetwork) -> Optional[List[int]]:
        """Iterative DFS returning the arc list of an augmenting path."""
        parent_arc: List[int] = [-1] * residual.num_vertices
        visited = [False] * residual.num_vertices
        stack = [residual.source]
        visited[residual.source] = True
        while stack:
            vertex = stack.pop()
            residual.counter.queue_operations += 1
            if vertex == residual.sink:
                break
            for arc in residual.adjacency[vertex]:
                residual.counter.arc_scans += 1
                head = residual.arc_to[arc]
                if not visited[head] and residual.residual[arc] > 0:
                    visited[head] = True
                    parent_arc[head] = arc
                    stack.append(head)
        if not visited[residual.sink]:
            return None
        path: List[int] = []
        vertex = residual.sink
        while vertex != residual.source:
            arc = parent_arc[vertex]
            path.append(arc)
            vertex = residual.arc_from[arc]
        path.reverse()
        return path


def ford_fulkerson(network: FlowNetwork, **kwargs) -> MaxFlowResult:
    """Solve ``network`` with :class:`FordFulkerson` using default settings."""
    return FordFulkerson(**kwargs).solve(network)
