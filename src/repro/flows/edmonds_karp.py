"""Edmonds–Karp maximum-flow algorithm (BFS augmenting paths).

A specialisation of Ford–Fulkerson that always augments along a *shortest*
residual path (found by breadth-first search), which bounds the number of
augmentations by ``O(|V| * |E|)`` independently of the capacities.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Tuple

from ..graph.network import FlowNetwork
from .base import FlowAlgorithm, MaxFlowResult, ResidualNetwork

__all__ = ["EdmondsKarp", "edmonds_karp"]


class EdmondsKarp(FlowAlgorithm):
    """Breadth-first-search augmenting-path max-flow solver."""

    name = "edmonds-karp"

    def _run(self, network: FlowNetwork) -> Tuple[ResidualNetwork, int]:
        residual = ResidualNetwork(network)
        augmentations = 0
        while True:
            path = self._find_path_bfs(residual)
            if path is None:
                break
            bottleneck = min(residual.residual[arc] for arc in path)
            if bottleneck <= 0:
                break
            for arc in path:
                residual.push(arc, bottleneck)
            residual.counter.augmentations += 1
            augmentations += 1
        return residual, augmentations

    @staticmethod
    def _find_path_bfs(residual: ResidualNetwork) -> Optional[List[int]]:
        """BFS returning the arc list of a shortest augmenting path."""
        parent_arc: List[int] = [-1] * residual.num_vertices
        visited = [False] * residual.num_vertices
        queue = deque([residual.source])
        visited[residual.source] = True
        while queue:
            vertex = queue.popleft()
            residual.counter.queue_operations += 1
            if vertex == residual.sink:
                break
            for arc in residual.adjacency[vertex]:
                residual.counter.arc_scans += 1
                head = residual.arc_to[arc]
                if not visited[head] and residual.residual[arc] > 0:
                    visited[head] = True
                    parent_arc[head] = arc
                    queue.append(head)
        if not visited[residual.sink]:
            return None
        path: List[int] = []
        vertex = residual.sink
        while vertex != residual.source:
            arc = parent_arc[vertex]
            path.append(arc)
            vertex = residual.arc_from[arc]
        path.reverse()
        return path


def edmonds_karp(network: FlowNetwork) -> MaxFlowResult:
    """Solve ``network`` with :class:`EdmondsKarp`."""
    return EdmondsKarp().solve(network)
