"""Flat-array (CSR) max-flow kernel.

The object-based solvers in this package spend nearly all of their time in
the Python interpreter: one attribute lookup and one list index per arc
scan.  This module re-implements max-flow on a *flat* residual
representation — contiguous NumPy arrays built once per solve — so the hot
loops become whole-array operations:

* ``arc_tail`` / ``arc_head`` (int64) and ``residual`` (float64) store the
  arc-pair layout of :class:`~repro.flows.base.ResidualNetwork` unchanged:
  edge ``k`` owns forward arc ``2k`` and reverse arc ``2k + 1``, and the
  partner of ``arc`` is ``arc ^ 1``;
* ``indptr`` / ``arcs_by_tail`` form a CSR adjacency (arcs grouped by tail
  vertex) used to expand whole BFS frontiers in one gather;
* the solve is a *two-phase lockstep preflow-push* (the structure GPU
  max-flow kernels use): distance labels come from a vectorised reverse
  BFS, and every sweep discharges **all** active vertices at once with a
  segmented prefix-sum fill, then relabels every vertex whose own excess
  was left over.  Phase 1 drives excess towards the sink (with a gap
  heuristic and periodic exact relabels); phase 2 re-labels by
  distance-to-source and returns the stranded excess.  Interpreter cost
  scales with the number of sweeps, not the number of arcs.

The kernel produces the same flow values as the reference implementations
to 1e-9 relative (see ``tests/test_kernel_differential.py``);
uncapacitated arcs keep their ``INFINITY`` residual because
``inf - x == inf`` matches the reference's explicit skip in
:meth:`ResidualNetwork.push`.

Selection
---------
:class:`KernelDinic` registers as ``"kernel-dinic"`` in
:mod:`repro.flows.registry`.  The service and shard layers route their
``"dinic"`` default through :func:`resolve_default_algorithm`, so the
kernel is used automatically; set ``REPRO_FLOW_KERNEL=0`` (or
``reference``/``off``) to fall back to the pure-Python reference
everywhere.
"""

from __future__ import annotations

import time
from itertools import chain
from typing import Dict, Optional, Tuple

import numpy as np

from ..config import env_flag
from ..errors import AlgorithmError
from ..obs import probes
from ..obs.trace import annotate_span
from ..resilience.policy import check_deadline
from ..graph.network import FlowNetwork
from .base import (
    FlowAlgorithm,
    MaxFlowResult,
    OperationCounter,
    ResidualNetwork,
    validate_max_flow,
)

__all__ = [
    "KERNEL_ENV_VAR",
    "FlatResidual",
    "KernelDinic",
    "kernel_enabled",
    "resolve_default_algorithm",
]

#: Environment escape hatch: set to 0/off/false/no/reference to disable the
#: kernel default and run the pure-Python reference everywhere.
KERNEL_ENV_VAR = "REPRO_FLOW_KERNEL"

#: ``"reference"`` disables the kernel on top of the shared false spellings
#: understood by :func:`repro.config.env_flag`.
_EXTRA_DISABLED_VALUES = ("reference",)


def kernel_enabled() -> bool:
    """True unless ``REPRO_FLOW_KERNEL`` disables the flat-array kernel."""
    return env_flag(KERNEL_ENV_VAR, default=True, extra_false=_EXTRA_DISABLED_VALUES)


def resolve_default_algorithm(name: str) -> str:
    """Map the ``"dinic"`` default onto the kernel unless it is disabled.

    Explicit algorithm names other than ``"dinic"`` are returned unchanged,
    so requesting e.g. ``"push-relabel"`` or ``"kernel-dinic"`` always means
    exactly that implementation.
    """
    if name == "dinic" and kernel_enabled():
        return "kernel-dinic"
    return name


class FlatResidual:
    """Residual graph as contiguous NumPy arrays (same arc-pair layout).

    Build one with :meth:`from_network` (cold solves) or
    :meth:`from_residual` (export of an object residual for warm starts);
    :meth:`store_into` writes the final residual capacities back into the
    object representation, round-tripping all state the reference solvers
    maintain.
    """

    def __init__(
        self,
        num_vertices: int,
        source: int,
        sink: int,
        arc_tail: np.ndarray,
        arc_head: np.ndarray,
        residual: np.ndarray,
        arcs_by_tail: Optional[np.ndarray] = None,
        indptr: Optional[np.ndarray] = None,
    ) -> None:
        self.num_vertices = int(num_vertices)
        self.source = int(source)
        self.sink = int(sink)
        self.arc_tail = arc_tail
        self.arc_head = arc_head
        # float64 unconditionally: int or mixed int/float capacity inputs
        # must not truncate (the dtype-promotion guard of the fuzz suite).
        self.residual = np.asarray(residual, dtype=np.float64)
        if arcs_by_tail is None:
            arcs_by_tail = np.argsort(arc_tail, kind="stable").astype(np.int64)
            indptr = np.zeros(self.num_vertices + 1, dtype=np.int64)
            counts = np.bincount(arc_tail, minlength=self.num_vertices)
            np.cumsum(counts, out=indptr[1:])
        self.arcs_by_tail = arcs_by_tail
        self.indptr = indptr
        finite = self.residual[np.isfinite(self.residual)]
        scale = float(finite.max()) if finite.size else 1.0
        #: Finite surrogate for an unbounded source excess; also the fill
        #: limit that keeps INFINITY capacities out of the prefix sums.
        self.flow_cap = float(finite.sum()) + 1.0
        #: Arcs with residual below this are treated as saturated.
        self.eps = 1e-12 * max(1.0, scale)
        #: Excess below this is considered drained (float round-off from
        #: the segmented prefix sums; a few ULP of ``flow_cap``).
        self.tol = 64.0 * np.finfo(np.float64).eps * max(1.0, self.flow_cap)
        self.counter = OperationCounter()

    # ------------------------------------------------------------------
    # Construction / adapter boundary
    # ------------------------------------------------------------------

    @classmethod
    def from_network(cls, network: FlowNetwork) -> "FlatResidual":
        """Flat residual of ``network`` (forward arcs at capacity)."""
        vertices = network.vertices()
        index = {vertex: i for i, vertex in enumerate(vertices)}
        edges = network.edges()
        count = len(edges)
        tails = np.fromiter((index[e.tail] for e in edges), dtype=np.int64, count=count)
        heads = np.fromiter((index[e.head] for e in edges), dtype=np.int64, count=count)
        caps = np.fromiter((e.capacity for e in edges), dtype=np.float64, count=count)
        arc_tail = np.empty(2 * count, dtype=np.int64)
        arc_tail[0::2] = tails
        arc_tail[1::2] = heads
        arc_head = np.empty(2 * count, dtype=np.int64)
        arc_head[0::2] = heads
        arc_head[1::2] = tails
        residual = np.zeros(2 * count, dtype=np.float64)
        residual[0::2] = caps
        return cls(
            len(vertices),
            index[network.source],
            index[network.sink],
            arc_tail,
            arc_head,
            residual,
        )

    @classmethod
    def from_residual(cls, residual: ResidualNetwork) -> "FlatResidual":
        """Export an object residual (possibly carrying flow) to flat arrays.

        The conversion is a handful of C-level bulk copies — no per-arc
        Python loop — and preserves each vertex's adjacency order, so the
        flat arrays are a faithful snapshot of the warm residual state.
        """
        arc_tail = np.asarray(residual.arc_from, dtype=np.int64)
        arc_head = np.asarray(residual.arc_to, dtype=np.int64)
        values = np.asarray(residual.residual, dtype=np.float64)
        num_vertices = residual.num_vertices
        counts = np.fromiter(
            (len(arcs) for arcs in residual.adjacency), dtype=np.int64, count=num_vertices
        )
        arcs_by_tail = np.fromiter(
            chain.from_iterable(residual.adjacency),
            dtype=np.int64,
            count=int(counts.sum()),
        )
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(
            num_vertices,
            residual.source,
            residual.sink,
            arc_tail,
            arc_head,
            values,
            arcs_by_tail=arcs_by_tail,
            indptr=indptr,
        )

    def store_into(self, residual: ResidualNetwork) -> None:
        """Write the flat residual capacities back into an object residual."""
        if len(residual.residual) != self.residual.shape[0]:
            raise AlgorithmError(
                "flat residual no longer matches the object residual "
                f"({self.residual.shape[0]} vs {len(residual.residual)} arcs)"
            )
        residual.residual[:] = self.residual.tolist()

    def edge_flows(self) -> Dict[int, float]:
        """Per-edge flow for a :meth:`from_network` flat residual.

        Valid only when every arc pair belongs to an original edge (the
        ``arc == 2k`` invariant); warm residuals with appended arc pairs go
        through :meth:`store_into` and the object-side accounting instead.
        """
        reverse = self.residual[1::2]
        return {k: float(reverse[k]) for k in range(reverse.shape[0])}

    # ------------------------------------------------------------------
    # Two-phase lockstep preflow-push
    # ------------------------------------------------------------------

    #: Phase-1 sweeps between exact distance relabels.  The reverse BFS
    #: costs O(depth) vectorised steps, so on deep graphs it is the single
    #: most expensive primitive; 24 balances staircase relabels against it.
    RELABEL_EVERY = 24
    #: Phase 2 usually drains in few sweeps; cheap frequent relabels keep
    #: the return cascade on exact distance-to-source labels.
    RELABEL_EVERY_RETURN = 8

    def max_flow(self) -> int:
        """Drive the residual to a maximum flow; returns the sweep count.

        Two-phase preflow-push in lockstep sweeps.  Phase 1 saturates the
        source arcs and discharges all active vertices below height ``V``
        simultaneously each sweep until the sink inflow is maximal; phase 2
        re-labels everything by distance to the source and returns the
        stranded excess.  The count of sweeps is the ``iterations`` figure
        reported by :class:`KernelDinic` (the vectorised analogue of the
        reference solvers' phase counts).
        """
        if self.source == self.sink:
            return 0
        num_vertices = self.num_vertices
        source, sink = self.source, self.sink
        residual = self.residual
        indptr = self.indptr
        eps, tol, limit = self.eps, self.tol, self.flow_cap

        height = np.zeros(num_vertices, dtype=np.int64)
        excess = np.zeros(num_vertices, dtype=np.float64)
        interior = np.ones(num_vertices, dtype=bool)
        interior[[source, sink]] = False

        def relabel_towards_sink() -> None:
            dist = self._reverse_bfs(sink)
            np.minimum(dist, num_vertices + 1, out=dist)
            dist[source] = num_vertices
            np.maximum(height, dist, out=height)
            self.counter.global_relabels += 1

        def relabel_towards_source() -> None:
            dist = self._reverse_bfs(source)
            reachable = dist <= num_vertices
            fresh = np.where(reachable, num_vertices + dist, 2 * num_vertices)
            fresh[source] = num_vertices
            fresh[sink] = height[sink]
            np.maximum(height, fresh, out=height)
            self.counter.global_relabels += 1

        # Initial exact labels, then saturate every usable source arc
        # (INFINITY arcs push the finite flow_cap surrogate, like the
        # reference push-relabel's total-capacity stand-in).
        relabel_towards_sink()
        source_arcs = self.arcs_by_tail[indptr[source] : indptr[source + 1]]
        source_arcs = source_arcs[residual[source_arcs] > eps]
        amount = np.minimum(residual[source_arcs], limit)
        residual[source_arcs] -= amount
        residual[source_arcs ^ 1] += amount
        np.add.at(excess, self.arc_head[source_arcs], amount)
        self.counter.pushes += int(source_arcs.size)

        sweeps = self._discharge_loop(
            height,
            excess,
            interior,
            phase_one=True,
            relabel=relabel_towards_sink,
            relabel_every=self.RELABEL_EVERY,
        )
        if bool(((excess > tol) & interior).any()):
            # Fresh exact return labels: height becomes V + dist-to-source
            # (2V when unreachable), a valid labeling because phase 1 left
            # stranded excess only at sink-unreachable vertices.
            dist = self._reverse_bfs(source)
            reachable = dist <= num_vertices
            fresh = np.where(reachable, num_vertices + dist, 2 * num_vertices)
            height[interior] = fresh[interior]
            height[source] = num_vertices
            sweeps += self._discharge_loop(
                height,
                excess,
                interior,
                phase_one=False,
                relabel=relabel_towards_source,
                relabel_every=self.RELABEL_EVERY_RETURN,
            )
        return sweeps

    def _reverse_bfs(self, root: int) -> np.ndarray:
        """Distance from every vertex *to* ``root`` along residual arcs.

        Vectorised frontier BFS: for each frontier vertex the partner of
        every out-arc is the arc pointing at it, so predecessors are read
        with one gather.  Unreached vertices get ``4 * num_vertices``.
        """
        num_vertices = self.num_vertices
        indptr = self.indptr
        arcs_by_tail = self.arcs_by_tail
        arc_head = self.arc_head
        residual = self.residual
        eps = self.eps
        counter = self.counter
        big = 4 * num_vertices
        dist = np.full(num_vertices, big, dtype=np.int64)
        dist[root] = 0
        frontier = np.array([root], dtype=np.int64)
        depth = 0
        while frontier.size:
            depth += 1
            counter.queue_operations += int(frontier.size)
            starts = indptr[frontier]
            cnt = indptr[frontier + 1] - starts
            pos, _ = _expand(starts, cnt)
            if pos.size == 0:
                break
            arcs = arcs_by_tail[pos]
            heads = arc_head[arcs]
            counter.arc_scans += int(pos.size)
            preds = heads[(residual[arcs ^ 1] > eps) & (dist[heads] == big)]
            if preds.size == 0:
                break
            dist[preds] = depth
            frontier = np.unique(preds)
        return dist

    def _discharge_loop(
        self,
        height: np.ndarray,
        excess: np.ndarray,
        interior: np.ndarray,
        phase_one: bool,
        relabel,
        relabel_every: int,
    ) -> int:
        """Lockstep discharge sweeps until no vertex is active.

        Every sweep gathers the CSR arc segments of *all* active vertices,
        pushes with one segmented greedy fill, and relabels each vertex
        whose **own** pre-sweep excess was not fully placed (excess that
        arrived during the sweep waits a sweep; relabelling on arrivals
        would jump past still-admissible arcs).  Phase 1 additionally
        applies the gap heuristic: when some height below ``V`` has no
        vertex, everything between it and ``V`` can never reach the sink
        again and is lifted out of the phase in O(V).
        """
        num_vertices = self.num_vertices
        residual = self.residual
        indptr = self.indptr
        arcs_by_tail = self.arcs_by_tail
        arc_head = self.arc_head
        eps, tol, limit = self.eps, self.tol, self.flow_cap
        big = 4 * num_vertices
        counter = self.counter
        sweeps = 0
        cap = 30 * num_vertices + 10000
        while True:
            check_deadline("kernel discharge sweep")
            probes.kernel_sweep()
            mask = (excess > tol) & interior
            if phase_one:
                mask &= height < num_vertices
            active = np.nonzero(mask)[0]
            if active.size == 0:
                return sweeps
            sweeps += 1
            if sweeps % relabel_every == 0:
                relabel()
            starts = indptr[active]
            cnt = indptr[active + 1] - starts
            pos, first = _expand(starts, cnt)
            arcs = arcs_by_tail[pos]
            heads = arc_head[arcs]
            counter.arc_scans += int(pos.size)
            gathered = residual[arcs]
            admissible = gathered > eps
            admissible &= np.repeat(height[active], cnt) == height[heads] + 1
            avail = np.where(admissible, gathered, 0.0)
            push = _segmented_fill(excess[active], avail, cnt, first, limit)
            pushed_out = np.add.reduceat(push, first)
            leftover = (excess[active] - pushed_out) > tol
            residual[arcs] -= push
            residual[arcs ^ 1] += push
            np.add(
                excess,
                np.bincount(heads, weights=push, minlength=num_vertices),
                out=excess,
            )
            excess[active] -= pushed_out
            counter.pushes += int(np.count_nonzero(push))
            if leftover.any():
                # Standard relabel: 1 + min height over residual arcs.  The
                # lockstep jump is monotone (np.maximum) and valid because
                # a leftover vertex saturated every admissible arc.
                candidates = np.where(
                    residual[arcs] > eps, height[heads] + 1, big
                )
                lifted = active[leftover]
                height[lifted] = np.maximum(
                    height[lifted],
                    np.minimum.reduceat(candidates, first)[leftover],
                )
                counter.relabels += int(lifted.size)
                if phase_one:
                    self._gap_heuristic(height, interior)
            if sweeps > cap:
                raise AlgorithmError(
                    "kernel discharge failed to settle "
                    f"({sweeps} sweeps on {num_vertices} vertices)"
                )

    def _gap_heuristic(self, height: np.ndarray, interior: np.ndarray) -> None:
        """Lift every vertex above an empty height level out of phase 1.

        If no interior vertex sits at some height ``0 < g < V`` then no
        residual path from above ``g`` can descend to the sink (heights
        drop by at most one per residual arc), so everything in
        ``(g, V)`` is lifted to ``V + 1`` at once.
        """
        num_vertices = self.num_vertices
        below = height[interior]
        below = below[below < num_vertices]
        if below.size == 0:
            return
        histogram = np.bincount(below, minlength=num_vertices)
        top = int(below.max())
        empty = np.nonzero(histogram[1 : top + 1] == 0)[0]
        if empty.size == 0:
            return
        gap = int(empty[0]) + 1
        lifted = interior & (height > gap) & (height < num_vertices)
        if lifted.any():
            height[lifted] = num_vertices + 1
            self.counter.relabels += int(np.count_nonzero(lifted))


def _expand(starts: np.ndarray, cnt: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """CSR range expansion: flat positions of each segment plus segment firsts."""
    total = int(cnt.sum())
    first = np.zeros(cnt.size, dtype=np.int64)
    np.cumsum(cnt[:-1], out=first[1:])
    pos = np.repeat(starts - first, cnt) + np.arange(total)
    return pos, first


def _segmented_fill(
    amounts: np.ndarray,
    avail: np.ndarray,
    cnt: np.ndarray,
    first: np.ndarray,
    limit: float,
) -> np.ndarray:
    """Greedy in-order fill of each segment's arcs with its vertex amount.

    Vectorised equivalent of "walk the arcs, push min(remaining, avail)":
    clip the remaining amount (amount minus the exclusive prefix sum of
    availability within the segment) to each arc's availability.  ``limit``
    (a finite bound on any possible amount) stands in for INFINITY
    capacities inside the prefix sums so they stay NaN-free.
    """
    capped = np.minimum(avail, limit)
    prefix = np.cumsum(capped)
    prefix -= capped
    want = np.repeat(amounts + prefix[first], cnt) - prefix
    return np.clip(want, 0.0, avail)


class KernelDinic(FlowAlgorithm):
    """The flat-array kernel in the registry slot the Dinic default routes to.

    Behaviourally a drop-in for :class:`~repro.flows.dinic.Dinic`: the same
    arc-pair residual semantics, the same warm-start contract via
    :meth:`augment_residual`, the same exact flow values.  The engine,
    however, is the two-phase lockstep preflow of :class:`FlatResidual` —
    Dinic-style exact BFS distance labels drive a vectorised discharge
    instead of blocking-flow DFS, because a per-sweep whole-array discharge
    is what NumPy executes fast.  ``iterations`` therefore counts discharge
    sweeps, not Dinic phases.
    """

    name = "kernel-dinic"

    def solve(self, network: FlowNetwork, validate: bool = False) -> MaxFlowResult:
        """Solve on flat arrays end to end (no object residual is built)."""
        start = time.perf_counter()
        flat = FlatResidual.from_network(network)
        phases = flat.max_flow()
        edge_flows = flat.edge_flows()
        elapsed = time.perf_counter() - start
        result = MaxFlowResult(
            flow_value=network.flow_value(edge_flows),
            edge_flows=edge_flows,
            algorithm=self.name,
            operations=flat.counter,
            wall_time_s=elapsed,
            iterations=phases,
        )
        annotate_span(
            kernel_sweeps=phases,
            kernel_pushes=flat.counter.pushes,
            kernel_relabels=flat.counter.relabels,
        )
        if validate:
            validate_max_flow(network, result)
        return result

    def _run(self, network: FlowNetwork) -> Tuple[ResidualNetwork, int]:
        residual = ResidualNetwork(network)
        return residual, self.augment_residual(residual)

    def augment_residual(self, residual: ResidualNetwork) -> int:
        """Warm-start phases on an object residual via the flat round-trip.

        Exports the residual (including any flow it already carries and any
        arc pairs appended by the incremental solver), augments on the flat
        arrays, and stores the final capacities back — the same resume
        semantics as :meth:`Dinic.augment_residual`.  Returns the number of
        phases run.
        """
        flat = FlatResidual.from_residual(residual)
        phases = flat.max_flow()
        flat.store_into(residual)
        residual.counter = residual.counter.merged_with(flat.counter)
        return phases
