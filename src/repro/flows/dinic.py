"""Dinitz (Dinic) blocking-flow maximum-flow algorithm.

Each *phase* builds a BFS level graph of the residual network and then finds
a blocking flow in it with iterative DFS using the current-arc optimisation.
The number of phases is at most ``|V|``, giving an ``O(|V|^2 |E|)`` bound
(``O(E * sqrt(V))`` on unit-capacity networks), which makes it the strongest
classical augmenting-path baseline in this package.
"""

from __future__ import annotations

from collections import deque
from typing import List, Tuple

from ..graph.network import FlowNetwork
from ..obs import probes
from ..resilience.policy import check_deadline
from .base import FlowAlgorithm, MaxFlowResult, ResidualNetwork, INFINITY

__all__ = ["Dinic", "dinic"]


class Dinic(FlowAlgorithm):
    """Blocking-flow max-flow solver (Dinitz's algorithm)."""

    name = "dinic"

    def _run(self, network: FlowNetwork) -> Tuple[ResidualNetwork, int]:
        residual = ResidualNetwork(network)
        return residual, self.augment_residual(residual)

    def augment_residual(self, residual: ResidualNetwork) -> int:
        """Run blocking-flow phases on an existing residual network.

        The residual may already carry flow (reverse-arc capacities), in
        which case the phases *resume* augmentation from that flow instead
        of starting cold — the warm-start primitive of the incremental
        solver (:class:`~repro.flows.incremental.IncrementalMaxFlow`).
        Returns the number of phases run.
        """
        phases = 0
        level = [0] * residual.num_vertices
        while self._build_levels(residual, level):
            check_deadline("dinic blocking-flow phase")
            probes.dinic_phase()
            phases += 1
            current_arc = [0] * residual.num_vertices
            while True:
                pushed = self._send_blocking_flow(
                    residual, residual.source, INFINITY, level, current_arc
                )
                if pushed <= 0:
                    break
                residual.counter.augmentations += 1
        return phases

    @staticmethod
    def _build_levels(residual: ResidualNetwork, level: List[int]) -> bool:
        """BFS level assignment; returns True when the sink is reachable."""
        for i in range(residual.num_vertices):
            level[i] = -1
        level[residual.source] = 0
        queue = deque([residual.source])
        while queue:
            vertex = queue.popleft()
            residual.counter.queue_operations += 1
            for arc in residual.adjacency[vertex]:
                residual.counter.arc_scans += 1
                head = residual.arc_to[arc]
                if level[head] < 0 and residual.residual[arc] > 0:
                    level[head] = level[vertex] + 1
                    queue.append(head)
        return level[residual.sink] >= 0

    def _send_blocking_flow(
        self,
        residual: ResidualNetwork,
        vertex: int,
        limit: float,
        level: List[int],
        current_arc: List[int],
    ) -> float:
        """Iterative DFS pushing one augmenting path of the level graph."""
        if vertex == residual.sink:
            return limit
        # Explicit stack of (vertex, pushed-so-far limit) to avoid recursion
        # limits on deep graphs.
        path_arcs: List[int] = []
        path_vertices: List[int] = [vertex]
        while True:
            node = path_vertices[-1]
            if node == residual.sink:
                bottleneck = min(
                    [limit] + [residual.residual[a] for a in path_arcs]
                )
                for arc in path_arcs:
                    residual.push(arc, bottleneck)
                return bottleneck
            advanced = False
            while current_arc[node] < len(residual.adjacency[node]):
                arc = residual.adjacency[node][current_arc[node]]
                residual.counter.arc_scans += 1
                head = residual.arc_to[arc]
                if residual.residual[arc] > 0 and level[head] == level[node] + 1:
                    path_arcs.append(arc)
                    path_vertices.append(head)
                    advanced = True
                    break
                current_arc[node] += 1
            if not advanced:
                if node == vertex:
                    return 0.0
                # Dead end: retreat and disable the arc we came through.
                path_vertices.pop()
                dead_arc = path_arcs.pop()
                current_arc[residual.arc_from[dead_arc]] += 1


def dinic(network: FlowNetwork) -> MaxFlowResult:
    """Solve ``network`` with :class:`Dinic`."""
    return Dinic().solve(network)
