"""repro — reproduction of "A Reconfigurable Analog Substrate for Highly
Efficient Maximum Flow Computation" (Liu & Zhang, DAC 2015).

The package is organised by subsystem:

* :mod:`repro.graph` — flow networks, generators (R-MAT, grids, ...), I/O;
* :mod:`repro.flows` — classical max-flow algorithms (push-relabel, Dinic,
  Edmonds-Karp, Ford-Fulkerson, LP reference) and the CPU cost model;
* :mod:`repro.circuit` — the analog circuit simulator (MNA, DC, transient);
* :mod:`repro.analoglp` — the generic analog LP substrate of [42];
* :mod:`repro.analog` — the paper's contribution: the analog max-flow
  compiler/solver, quantization, convergence analysis, min-cut dual and the
  quasi-static dynamics;
* :mod:`repro.crossbar` — the reconfigurable memristor crossbar, programming
  protocol, variation/tuning and the clustered island architectures;
* :mod:`repro.decomposition` — the paper-facing two-way dual decomposition;
* :mod:`repro.shard` — N-way partitioned solving: multi-way overlapping
  partitioner, parallel shard executor (classical or analog, warm
  re-solves) and the subgradient dual coordinator;
* :mod:`repro.power` — the analytical power/energy model;
* :mod:`repro.problems` — problem→flow reductions (bipartite matching,
  disjoint paths, image segmentation, project selection) with certified
  decoding via max-flow/min-cut duality;
* :mod:`repro.bench` — workload suites and experiment runners used by the
  ``benchmarks/`` directory;
* :mod:`repro.service` — the batched solving service: backend registry
  (analog + classical), worker pools, compiled-circuit memoization and
  aggregate batch reports;
* :mod:`repro.obs` — observability: ambient hierarchical spans, the
  process metrics registry, typed solver/resilience probes and the
  unified ``telemetry()`` document (off by default; ``REPRO_OBS=1``).

Quick start::

    from repro import FlowNetwork, AnalogMaxFlowSolver, push_relabel

    g = FlowNetwork(source="s", sink="t")
    g.add_edge("s", "a", 3.0)
    g.add_edge("a", "t", 2.0)

    exact = push_relabel(g).flow_value
    analog = AnalogMaxFlowSolver(adaptive_drive=True).solve(g).flow_value
"""

from .config import (
    NonIdealityModel,
    OpAmpParameters,
    MemristorParameters,
    DiodeParameters,
    SubstrateParameters,
    TABLE1,
    default_parameters,
    ideal_nonidealities,
)
from .errors import ReproError
from .graph import (
    Edge,
    FlowNetwork,
    RMATGenerator,
    rmat_graph,
    dense_random_graph,
    sparse_random_graph,
    grid_graph,
    layered_graph,
    bipartite_graph,
    path_graph,
    parallel_paths_graph,
    paper_example_graph,
    quasistatic_example_graph,
    read_dimacs,
    write_dimacs,
)
from .flows import (
    MaxFlowResult,
    dinic,
    edmonds_karp,
    ford_fulkerson,
    push_relabel,
    solve_lp_maxflow,
    solve_max_flow,
    min_cut,
    CpuCostModel,
)
from .analog import (
    AnalogMaxFlowResult,
    AnalogMaxFlowSolver,
    AnalogMinCutSolver,
    ConvergenceTimeEstimator,
    MaxFlowCircuitCompiler,
    QuasiStaticAnalyzer,
    VoltageQuantizer,
    measure_convergence_time,
)
from .crossbar import (
    ClusteredArchitecture,
    CrossbarMaxFlowEngine,
    CrossbarSubstrate,
    ProgrammingProtocol,
)
from .decomposition import DualDecompositionSolver
from .power import PowerModel, compare_energy
from .problems import (
    BipartiteMatching,
    CertificateReport,
    DisjointPaths,
    ImageSegmentation,
    ProjectSelection,
    solve_problem,
)
from .obs import (
    BackendHealth,
    MetricsRegistry,
    SloObjective,
    SloPolicy,
    Span,
    WindowedAggregator,
    annotate_span,
    current_span,
    get_registry,
    get_slo_policy,
    metrics_document,
    obs_enabled,
    parse_prometheus_text,
    prometheus_text,
    reset_metrics,
    set_obs_enabled,
    set_slo_policy,
    span,
    span_scope,
)
from .resilience import (
    CircuitBreaker,
    Deadline,
    FailoverPolicy,
    RetryPolicy,
    deadline_scope,
    inject_faults,
    solve_with_failover,
)
from .service import (
    BatchReport,
    BatchSolveService,
    ProblemSolveService,
    ShardedSolveService,
    SolveRequest,
    SolveResult,
)
from .shard import ShardCoordinator, partition_multiway

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # configuration
    "NonIdealityModel",
    "OpAmpParameters",
    "MemristorParameters",
    "DiodeParameters",
    "SubstrateParameters",
    "TABLE1",
    "default_parameters",
    "ideal_nonidealities",
    "ReproError",
    # graphs
    "Edge",
    "FlowNetwork",
    "RMATGenerator",
    "rmat_graph",
    "dense_random_graph",
    "sparse_random_graph",
    "grid_graph",
    "layered_graph",
    "bipartite_graph",
    "path_graph",
    "parallel_paths_graph",
    "paper_example_graph",
    "quasistatic_example_graph",
    "read_dimacs",
    "write_dimacs",
    # classical algorithms
    "MaxFlowResult",
    "dinic",
    "edmonds_karp",
    "ford_fulkerson",
    "push_relabel",
    "solve_lp_maxflow",
    "solve_max_flow",
    "min_cut",
    "CpuCostModel",
    # analog substrate
    "AnalogMaxFlowResult",
    "AnalogMaxFlowSolver",
    "AnalogMinCutSolver",
    "ConvergenceTimeEstimator",
    "MaxFlowCircuitCompiler",
    "QuasiStaticAnalyzer",
    "VoltageQuantizer",
    "measure_convergence_time",
    # crossbar
    "ClusteredArchitecture",
    "CrossbarMaxFlowEngine",
    "CrossbarSubstrate",
    "ProgrammingProtocol",
    # extensions
    "DualDecompositionSolver",
    "PowerModel",
    "compare_energy",
    # N-way sharding
    "ShardCoordinator",
    "ShardedSolveService",
    "partition_multiway",
    # problem reductions
    "BipartiteMatching",
    "CertificateReport",
    "DisjointPaths",
    "ImageSegmentation",
    "ProjectSelection",
    "ProblemSolveService",
    "solve_problem",
    # batched solving service
    "BatchReport",
    "BatchSolveService",
    "SolveRequest",
    "SolveResult",
    # resilience
    "CircuitBreaker",
    "Deadline",
    "FailoverPolicy",
    "RetryPolicy",
    "deadline_scope",
    "inject_faults",
    "solve_with_failover",
    # observability
    "BackendHealth",
    "MetricsRegistry",
    "SloObjective",
    "SloPolicy",
    "Span",
    "WindowedAggregator",
    "annotate_span",
    "current_span",
    "get_registry",
    "get_slo_policy",
    "metrics_document",
    "obs_enabled",
    "parse_prometheus_text",
    "prometheus_text",
    "reset_metrics",
    "set_obs_enabled",
    "set_slo_policy",
    "span",
    "span_scope",
]
