"""Dual decomposition of the min-cut problem (Section 6.4).

Very large instances do not fit on one substrate.  The paper proposes to
split the *dual* (min-cut) problem into overlapping subproblems, solve the
subproblems repeatedly on the (reconfigured) substrate, and coordinate them
with Lagrange multipliers on the overlapping variables until they agree —
at which point strong duality guarantees the combination is a global
optimum.

This module keeps the paper-facing two-subproblem API
(:class:`DualDecompositionSolver`), but the subgradient machinery itself
lives in the N-way sharding subsystem: the solve delegates to
:class:`repro.shard.ShardCoordinator` with ``num_shards=2``, which runs the
same scheme of Strandmark & Kahl [39] — multiplier-dependent terminal
capacities per overlap vertex, projected subgradient steps on the
disagreement, stitched feasible cuts for upper bounds and the sum of
subproblem values (sign-corrected) for lower bounds.  See
:mod:`repro.shard.coordinator` for the general N-way formulation and
:class:`repro.service.sharded.ShardedSolveService` for the parallel
service-level entry point.

Subproblems are solved with the exact combinatorial solver by default, or
with the analog pipeline (warm re-solves across iterations, since
multiplier updates are pure capacity edits) to emulate the full
"reconfigure the substrate per subproblem" flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Set, Tuple

from ..errors import DecompositionError
from ..graph.network import FlowNetwork

__all__ = ["DualDecompositionSolver", "DualDecompositionResult"]

Vertex = Hashable


@dataclass
class DualDecompositionResult:
    """Outcome of the dual-decomposition min-cut solve.

    Attributes
    ----------
    cut_value:
        Best feasible (stitched) cut value found — an upper bound on the
        global minimum, equal to it when ``converged`` is True.
    dual_value:
        Final dual lower bound (sum of subproblem cut values minus the
        multiplier correction).
    iterations:
        Subgradient iterations performed.
    converged:
        True when the two subproblems agreed on every overlap vertex (or the
        duality gap closed).
    disagreements:
        Number of overlap vertices still in disagreement at termination.
    partition:
        The stitched source-side vertex set.
    history:
        Per-iteration ``(dual value, feasible value, disagreements)`` rows.
    """

    cut_value: float
    dual_value: float
    iterations: int
    converged: bool
    disagreements: int
    partition: Set[Vertex]
    history: List[Tuple[float, float, int]] = field(default_factory=list)

    @property
    def duality_gap(self) -> float:
        """Gap between the feasible cut and the dual bound."""
        return self.cut_value - self.dual_value


class DualDecompositionSolver:
    """Min-cut by dual decomposition over two overlapping subproblems.

    The two-way special case of the N-way shard coordinator
    (:class:`repro.shard.ShardCoordinator`); kept as the paper-facing
    Section 6.4 API.

    Parameters
    ----------
    max_iterations:
        Maximum subgradient iterations.
    initial_step:
        Initial subgradient step size, scaled by the largest edge capacity.
    subproblem_solver:
        ``"exact"`` uses Dinic + residual-reachability min-cut (default);
        ``"analog"`` solves each subproblem on the analog substrate with
        warm re-solves across iterations (slower, demonstrates the full
        hardware flow).
    balance:
        Vertex balance of the two halves (fraction assigned to side A).
    """

    def __init__(
        self,
        max_iterations: int = 60,
        initial_step: float = 0.25,
        subproblem_solver: str = "exact",
        balance: float = 0.5,
    ) -> None:
        if subproblem_solver not in ("exact", "analog"):
            raise DecompositionError(f"unknown subproblem solver {subproblem_solver!r}")
        if not 0.1 <= balance <= 0.9:
            raise DecompositionError("balance must lie in [0.1, 0.9]")
        self.max_iterations = max_iterations
        self.initial_step = initial_step
        self.subproblem_solver = subproblem_solver
        self.balance = balance

    # ------------------------------------------------------------------

    def solve(self, network: FlowNetwork) -> DualDecompositionResult:
        """Run the dual-decomposition min-cut solve on ``network``.

        Delegates to the N-way coordinator with ``num_shards=2`` and a
        serial executor (the paper's flow reconfigures one substrate per
        subproblem, sequentially).
        """
        from ..shard.coordinator import ShardCoordinator

        backend = "dinic" if self.subproblem_solver == "exact" else "analog"
        coordinator = ShardCoordinator(
            num_shards=2,
            max_iterations=self.max_iterations,
            initial_step=self.initial_step,
            fractions=[self.balance, 1.0 - self.balance],
        )
        outcome = coordinator.solve(network, backend=backend, executor="serial")
        return DualDecompositionResult(
            cut_value=outcome.cut_value,
            dual_value=outcome.dual_value,
            iterations=outcome.iterations,
            converged=outcome.converged,
            disagreements=outcome.disagreements,
            partition=outcome.partition,
            history=outcome.history,
        )
