"""Dual decomposition of the min-cut problem (Section 6.4).

Very large instances do not fit on one substrate.  The paper proposes to
split the *dual* (min-cut) problem into overlapping subproblems, solve the
subproblems repeatedly on the (reconfigured) substrate, and coordinate them
with Lagrange multipliers on the overlapping variables until they agree —
at which point strong duality guarantees the combination is a global
optimum.

The implementation follows the cited approach of Strandmark & Kahl [39]:

* the graph is split into two overlapping halves
  (:func:`~repro.decomposition.partition.partition_with_overlap`);
* each iteration solves a min-cut on both subproblems; the Lagrange
  multiplier ``lambda_i`` of every overlap vertex is realised as an
  adjustment of that vertex's terminal capacities (a positive multiplier
  makes the source side cheaper in one subproblem and dearer in the other);
* the multipliers are updated by projected subgradient steps on the
  disagreement between the two subproblems' cut sides;
* the dual value (sum of subproblem cuts) is a lower bound on the global
  min cut, and stitching the two partitions together gives a feasible cut
  (an upper bound); the solver stops when the bounds meet or the
  disagreement vanishes.

Subproblems are solved with the exact combinatorial solver by default, or
with the analog min-cut substrate (Section 6.3) to emulate the full
"reconfigure the substrate per subproblem" flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Set, Tuple

from ..errors import DecompositionError
from ..flows.dinic import Dinic
from ..flows.mincut import min_cut_from_flow
from ..graph.network import FlowNetwork
from .partition import OverlappingPartition, partition_with_overlap

__all__ = ["DualDecompositionSolver", "DualDecompositionResult"]

Vertex = Hashable


@dataclass
class DualDecompositionResult:
    """Outcome of the dual-decomposition min-cut solve.

    Attributes
    ----------
    cut_value:
        Best feasible (stitched) cut value found — an upper bound on the
        global minimum, equal to it when ``converged`` is True.
    dual_value:
        Final dual lower bound (sum of subproblem cut values minus the
        multiplier correction).
    iterations:
        Subgradient iterations performed.
    converged:
        True when the two subproblems agreed on every overlap vertex (or the
        duality gap closed).
    disagreements:
        Number of overlap vertices still in disagreement at termination.
    partition:
        The stitched source-side vertex set.
    history:
        Per-iteration ``(dual value, feasible value, disagreements)`` rows.
    """

    cut_value: float
    dual_value: float
    iterations: int
    converged: bool
    disagreements: int
    partition: Set[Vertex]
    history: List[Tuple[float, float, int]] = field(default_factory=list)

    @property
    def duality_gap(self) -> float:
        """Gap between the feasible cut and the dual bound."""
        return self.cut_value - self.dual_value


class DualDecompositionSolver:
    """Min-cut by dual decomposition over two overlapping subproblems.

    Parameters
    ----------
    max_iterations:
        Maximum subgradient iterations.
    initial_step:
        Initial subgradient step size, scaled by the largest edge capacity.
    subproblem_solver:
        ``"exact"`` uses Dinic + residual-reachability min-cut (default);
        ``"analog"`` solves each subproblem on the analog min-cut substrate
        of Section 6.3 (slower, demonstrates the full hardware flow).
    balance:
        Vertex balance of the two halves.
    """

    def __init__(
        self,
        max_iterations: int = 60,
        initial_step: float = 0.25,
        subproblem_solver: str = "exact",
        balance: float = 0.5,
    ) -> None:
        if subproblem_solver not in ("exact", "analog"):
            raise DecompositionError(f"unknown subproblem solver {subproblem_solver!r}")
        self.max_iterations = max_iterations
        self.initial_step = initial_step
        self.subproblem_solver = subproblem_solver
        self.balance = balance

    # ------------------------------------------------------------------

    def _solve_subproblem(self, network: FlowNetwork) -> Tuple[float, Set[Vertex]]:
        """Min-cut value and source-side set of one subproblem."""
        if self.subproblem_solver == "analog":
            from ..analog.mincut_dual import AnalogMinCutSolver

            result = AnalogMinCutSolver(compare_exact=False).solve(network)
            return result.cut_value, set(result.source_side())
        flow = Dinic().solve(network)
        cut = min_cut_from_flow(network, flow)
        return cut.cut_value, set(cut.source_side)

    @staticmethod
    def _with_terminal_adjustments(
        base: FlowNetwork, multipliers: Dict[Vertex, float], sign: float
    ) -> FlowNetwork:
        """Copy ``base`` adding multiplier-dependent terminal edges.

        A multiplier ``lam`` on overlap vertex ``v`` adds ``sign * lam`` to the
        cost of putting ``v`` on the sink side in this subproblem, realised as
        a source->v edge of capacity ``sign * lam`` when positive or a
        v->sink edge of capacity ``-sign * lam`` when negative.
        """
        adjusted = base.copy()
        for vertex, lam in multipliers.items():
            weight = sign * lam
            if abs(weight) < 1e-12 or not adjusted.has_vertex(vertex):
                continue
            if weight > 0:
                adjusted.add_edge(adjusted.source, vertex, weight)
            else:
                adjusted.add_edge(vertex, adjusted.sink, -weight)
        return adjusted

    def _stitched_cut(
        self,
        network: FlowNetwork,
        partition: OverlappingPartition,
        side_a: Set[Vertex],
        side_b: Set[Vertex],
    ) -> Tuple[float, Set[Vertex]]:
        """Combine the two subproblem partitions into one feasible cut.

        Exclusive vertices take the label of their own subproblem; overlap
        vertices are ambiguous until the multipliers force agreement, so both
        votes (A's and B's) are stitched and the cheaper feasible cut is kept.
        """
        best_value = float("inf")
        best_side: Set[Vertex] = {network.source}
        for overlap_vote in (side_a, side_b):
            source_side: Set[Vertex] = {network.source}
            for vertex in network.vertices():
                if vertex in (network.source, network.sink):
                    continue
                exclusive_a = vertex in partition.side_a and vertex not in partition.overlap
                exclusive_b = vertex in partition.side_b and vertex not in partition.overlap
                if exclusive_a:
                    on_source_side = vertex in side_a
                elif exclusive_b:
                    on_source_side = vertex in side_b
                else:
                    on_source_side = vertex in overlap_vote
                if on_source_side:
                    source_side.add(vertex)
            value = network.cut_capacity(source_side)
            if value < best_value:
                best_value = value
                best_side = source_side
        return best_value, best_side

    # ------------------------------------------------------------------

    def solve(self, network: FlowNetwork) -> DualDecompositionResult:
        """Run the dual-decomposition min-cut solve on ``network``."""
        partition = partition_with_overlap(network, balance=self.balance)
        overlap = sorted(partition.overlap, key=str)
        multipliers: Dict[Vertex, float] = {v: 0.0 for v in overlap}
        capacity_scale = max(network.max_capacity(), 1.0)

        best_feasible = float("inf")
        best_partition: Set[Vertex] = {network.source}
        best_dual = -float("inf")
        history: List[Tuple[float, float, int]] = []
        disagreements = len(overlap)
        converged = False

        for iteration in range(1, self.max_iterations + 1):
            sub_a = self._with_terminal_adjustments(partition.subproblem_a, multipliers, +1.0)
            sub_b = self._with_terminal_adjustments(partition.subproblem_b, multipliers, -1.0)
            value_a, side_a = self._solve_subproblem(sub_a)
            value_b, side_b = self._solve_subproblem(sub_b)

            # Dual value: subproblem objectives minus the constant multiplier
            # offset (the added terminal edges contribute |lam| when the
            # corresponding vertex lands on the "expensive" side; subtracting
            # the total keeps the bound valid).
            dual_value = value_a + value_b - sum(abs(l) for l in multipliers.values())
            best_dual = max(best_dual, dual_value)

            feasible_value, stitched = self._stitched_cut(network, partition, side_a, side_b)
            if feasible_value < best_feasible:
                best_feasible = feasible_value
                best_partition = stitched

            disagreements = sum(
                1 for v in overlap if (v in side_a) != (v in side_b)
            )
            history.append((dual_value, feasible_value, disagreements))
            if disagreements == 0:
                converged = True
                break

            step = self.initial_step * capacity_scale / iteration
            for vertex in overlap:
                in_a = vertex in side_a
                in_b = vertex in side_b
                if in_a != in_b:
                    # Subgradient of the disagreement: push the multiplier so
                    # that the subproblem currently putting the vertex on the
                    # source side finds that choice more expensive next time.
                    direction = 1.0 if in_a and not in_b else -1.0
                    multipliers[vertex] += step * direction

        return DualDecompositionResult(
            cut_value=best_feasible,
            dual_value=best_dual,
            iterations=len(history),
            converged=converged,
            disagreements=disagreements,
            partition=best_partition,
            history=history,
        )
