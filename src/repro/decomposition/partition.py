"""Overlapping graph partitioning for dual decomposition (Section 6.4).

The decomposition of [39] (Strandmark & Kahl) splits the graph into two
overlapping subgraphs: each half keeps its own vertices plus the *overlap
band* (vertices with edges into the other half), edges inside the overlap are
shared between both subproblems with half capacity, and the dual method then
forces the two subproblems to agree on the cut side of every overlap vertex.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Set, Tuple

from ..errors import DecompositionError
from ..graph.network import FlowNetwork

__all__ = ["OverlappingPartition", "partition_with_overlap"]

Vertex = Hashable


@dataclass
class OverlappingPartition:
    """Two overlapping vertex sets covering the whole graph.

    Attributes
    ----------
    side_a, side_b:
        The two (overlapping) vertex sets; both contain the overlap.
    overlap:
        Vertices shared by both sides (they are duplicated in both
        subproblems and must agree at the optimum).
    subproblem_a, subproblem_b:
        The two sub-networks: the induced subgraphs on the sides, with edges
        that lie entirely inside the overlap carrying half their capacity in
        each subproblem (so that the sum of the two objectives equals the
        original one, per the paper's ``E_M``/``E_N`` definition).
    """

    network: FlowNetwork
    side_a: Set[Vertex]
    side_b: Set[Vertex]
    overlap: Set[Vertex]
    subproblem_a: FlowNetwork
    subproblem_b: FlowNetwork

    def describe(self) -> Dict[str, int]:
        """Size summary used by reports and tests."""
        return {
            "vertices": self.network.num_vertices,
            "side_a": len(self.side_a),
            "side_b": len(self.side_b),
            "overlap": len(self.overlap),
            "edges_a": self.subproblem_a.num_edges,
            "edges_b": self.subproblem_b.num_edges,
        }


def _induced_subproblem(
    network: FlowNetwork, keep: Set[Vertex], overlap: Set[Vertex]
) -> FlowNetwork:
    """Induced subgraph on ``keep``; overlap-internal edges get half capacity."""
    sub = FlowNetwork(network.source, network.sink)
    for vertex in network.vertices():
        if vertex in keep:
            sub.add_vertex(vertex)
    for edge in network.edges():
        if edge.tail in keep and edge.head in keep:
            capacity = edge.capacity
            if edge.tail in overlap and edge.head in overlap:
                capacity = capacity / 2.0 if capacity != float("inf") else capacity
            sub.add_edge(edge.tail, edge.head, capacity)
    return sub


def partition_with_overlap(
    network: FlowNetwork, balance: float = 0.5
) -> OverlappingPartition:
    """Split ``network`` into two overlapping halves by BFS distance from the source.

    Vertices closer to the source (by BFS level) form side A, the rest side
    B; the overlap is the set of vertices incident to an edge crossing
    between the halves.  The source always belongs to side A and the sink to
    side B; both terminals are kept in both subproblems (every subproblem
    must remain an s-t instance).

    Parameters
    ----------
    balance:
        Fraction of the vertices assigned to side A (0.5 splits evenly).
    """
    if not 0.1 <= balance <= 0.9:
        raise DecompositionError("balance must lie in [0.1, 0.9]")
    from collections import deque

    order: List[Vertex] = []
    seen = {network.source}
    queue = deque([network.source])
    while queue:
        vertex = queue.popleft()
        order.append(vertex)
        for edge in network.out_edges(vertex):
            if edge.head not in seen:
                seen.add(edge.head)
                queue.append(edge.head)
    for vertex in network.vertices():
        if vertex not in seen:
            order.append(vertex)

    split = max(1, int(round(balance * len(order))))
    core_a = set(order[:split]) | {network.source}
    core_b = (set(order) - core_a) | {network.sink}
    core_a.discard(network.sink)
    core_b.discard(network.source)

    overlap: Set[Vertex] = set()
    for edge in network.edges():
        tail_in_a = edge.tail in core_a
        head_in_a = edge.head in core_a
        if tail_in_a != head_in_a:
            overlap.add(edge.tail)
            overlap.add(edge.head)
    overlap.discard(network.source)
    overlap.discard(network.sink)

    side_a = core_a | overlap | {network.source, network.sink}
    side_b = core_b | overlap | {network.source, network.sink}

    subproblem_a = _induced_subproblem(network, side_a, overlap)
    subproblem_b = _induced_subproblem(network, side_b, overlap)
    return OverlappingPartition(
        network=network,
        side_a=side_a,
        side_b=side_b,
        overlap=overlap,
        subproblem_a=subproblem_a,
        subproblem_b=subproblem_b,
    )
