"""Graph decomposition for very large instances (Section 6.4)."""

from .partition import OverlappingPartition, partition_with_overlap
from .dual_decomposition import DualDecompositionSolver, DualDecompositionResult

__all__ = [
    "OverlappingPartition",
    "partition_with_overlap",
    "DualDecompositionSolver",
    "DualDecompositionResult",
]
