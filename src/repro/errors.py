"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to discriminate between graph-level, algorithmic, circuit-level and
hardware-substrate failures.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "InvalidGraphError",
    "VertexNotFoundError",
    "EdgeNotFoundError",
    "FlowError",
    "InfeasibleFlowError",
    "AlgorithmError",
    "CircuitError",
    "NetlistError",
    "SingularCircuitError",
    "ConvergenceError",
    "SimulationError",
    "SubstrateError",
    "CrossbarCapacityError",
    "ProgrammingError",
    "MappingError",
    "QuantizationError",
    "DecompositionError",
    "PowerBudgetError",
    "ConfigurationError",
    "ProblemError",
    "CertificateError",
    "ResilienceError",
    "SolveTimeoutError",
    "BackendUnavailableError",
    "FaultInjectedError",
]


class ReproError(Exception):
    """Base class for every exception raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A configuration object (parameters, non-ideality model) is invalid."""


# ---------------------------------------------------------------------------
# Graph-level errors
# ---------------------------------------------------------------------------


class GraphError(ReproError):
    """Base class for flow-network construction/query errors."""


class InvalidGraphError(GraphError):
    """The graph violates a structural requirement (e.g. negative capacity)."""


class VertexNotFoundError(GraphError, KeyError):
    """A vertex referenced by the caller does not exist in the network."""


class EdgeNotFoundError(GraphError, KeyError):
    """An edge referenced by the caller does not exist in the network."""


# ---------------------------------------------------------------------------
# Flow-algorithm errors
# ---------------------------------------------------------------------------


class FlowError(ReproError):
    """Base class for errors raised by max-flow algorithms."""


class InfeasibleFlowError(FlowError):
    """A flow assignment violates capacity or conservation constraints."""


class AlgorithmError(FlowError):
    """An algorithm reached an internal inconsistency (should not happen)."""


# ---------------------------------------------------------------------------
# Circuit-simulator errors
# ---------------------------------------------------------------------------


class CircuitError(ReproError):
    """Base class for analog circuit construction and simulation errors."""


class NetlistError(CircuitError):
    """The netlist is malformed (dangling node, duplicate element name, ...)."""


class SingularCircuitError(CircuitError):
    """The MNA system is singular and cannot be solved."""


class ConvergenceError(CircuitError):
    """A nonlinear or transient solve failed to converge."""


class SimulationError(CircuitError):
    """A simulation was configured inconsistently (bad time step, etc.)."""


# ---------------------------------------------------------------------------
# Substrate / crossbar errors
# ---------------------------------------------------------------------------


class SubstrateError(ReproError):
    """Base class for reconfigurable-substrate errors."""


class CrossbarCapacityError(SubstrateError):
    """The graph does not fit onto the crossbar (too many vertices/edges)."""


class ProgrammingError(SubstrateError):
    """The crossbar programming protocol failed (device did not switch)."""


class MappingError(SubstrateError):
    """A graph could not be mapped / placed / routed onto the architecture."""


class QuantizationError(SubstrateError):
    """Voltage-level quantization was configured or applied incorrectly."""


class DecompositionError(SubstrateError):
    """Graph decomposition / dual decomposition failed to converge."""


class PowerBudgetError(SubstrateError):
    """The requested problem exceeds the configured power budget."""


# ---------------------------------------------------------------------------
# Problem-reduction errors
# ---------------------------------------------------------------------------


class ProblemError(ReproError):
    """A problem→flow reduction is malformed or cannot be decoded."""


class CertificateError(ProblemError):
    """A decoded solution failed its optimality-certificate check."""


# ---------------------------------------------------------------------------
# Resilience / fault-tolerance errors
# ---------------------------------------------------------------------------


class ResilienceError(ReproError):
    """Base class for fault-tolerance errors (deadlines, failover, faults)."""


class SolveTimeoutError(ResilienceError):
    """A cooperative wall-clock deadline expired inside a solver loop."""


class BackendUnavailableError(ResilienceError):
    """Every backend in a degradation chain failed or is circuit-broken."""


class FaultInjectedError(ResilienceError):
    """A generic failure raised on purpose by the fault injector."""
