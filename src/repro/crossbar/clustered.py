"""Clustered island-style architectures (Section 6.2, Fig. 11).

A monolithic n x n crossbar wastes most of its cells on sparse graphs (its
utilisation is |E| / n^2).  The paper proposes FPGA-like clustered
architectures: a collection of small mesh *processing islands* connected by a
routing network — a one-dimensional bus of connection boxes, or a
two-dimensional fabric with switch boxes.  Highly connected subgraphs map to
individual islands; the few edges that cross between subgraphs use the
routing network.

This module defines the architecture model (island size, island count,
channel capacities, 1-D vs 2-D style); the CAD flow lives in
:mod:`~repro.crossbar.placement` (partitioning/placement) and
:mod:`~repro.crossbar.routing` (channel routing and routability analysis).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigurationError

__all__ = ["ArchitectureStyle", "Island", "ClusteredArchitecture"]


class ArchitectureStyle(enum.Enum):
    """Routing-network organisation of the clustered architecture."""

    ONE_DIMENSIONAL = "1d"
    TWO_DIMENSIONAL = "2d"

    @classmethod
    def parse(cls, value) -> "ArchitectureStyle":
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value))
        except ValueError as exc:
            raise ConfigurationError(f"unknown architecture style {value!r}") from exc


@dataclass(frozen=True)
class Island:
    """One mesh-based processing island.

    Attributes
    ----------
    index:
        Island identifier (0-based).
    position:
        Grid position of the island: ``(0, index)`` for 1-D architectures and
        ``(row, column)`` for 2-D architectures.
    size:
        Local mesh dimension; the island can host up to ``size`` vertices and
        ``size * size`` edges between them.
    """

    index: int
    position: Tuple[int, int]
    size: int

    @property
    def vertex_capacity(self) -> int:
        """Largest number of vertices this island can host."""
        return self.size

    @property
    def edge_capacity(self) -> int:
        """Largest number of intra-island edges this island can host."""
        return self.size * self.size


@dataclass
class ClusteredArchitecture:
    """A clustered island-style analog substrate.

    Parameters
    ----------
    num_islands:
        Number of processing islands.
    island_size:
        Local mesh dimension of every island (homogeneous islands; the paper
        lists heterogeneous islands as a further extension).
    style:
        1-D (connection boxes along a bus) or 2-D (switch boxes in a grid).
    channel_width:
        Number of routing tracks per channel: for the 1-D style, the number
        of inter-island wires on the single bus segment between adjacent
        islands; for the 2-D style, the tracks per switch-box-to-switch-box
        channel.
    """

    num_islands: int
    island_size: int
    style: ArchitectureStyle = ArchitectureStyle.ONE_DIMENSIONAL
    channel_width: int = 16

    def __post_init__(self) -> None:
        if self.num_islands < 1:
            raise ConfigurationError("a clustered architecture needs at least one island")
        if self.island_size < 2:
            raise ConfigurationError("islands must host at least two vertices")
        if self.channel_width < 1:
            raise ConfigurationError("channel width must be at least one track")
        self.style = ArchitectureStyle.parse(self.style)

    # ------------------------------------------------------------------

    def islands(self) -> List[Island]:
        """The island list with their grid positions."""
        result: List[Island] = []
        if self.style is ArchitectureStyle.ONE_DIMENSIONAL:
            for index in range(self.num_islands):
                result.append(Island(index=index, position=(0, index), size=self.island_size))
        else:
            side = self.grid_side
            for index in range(self.num_islands):
                result.append(
                    Island(
                        index=index,
                        position=(index // side, index % side),
                        size=self.island_size,
                    )
                )
        return result

    @property
    def grid_side(self) -> int:
        """Side length of the 2-D island grid (1 for 1-D architectures)."""
        if self.style is ArchitectureStyle.ONE_DIMENSIONAL:
            return 1
        return int(math.ceil(math.sqrt(self.num_islands)))

    @property
    def total_vertex_capacity(self) -> int:
        """Total number of vertices the architecture can host."""
        return self.num_islands * self.island_size

    @property
    def total_cell_count(self) -> int:
        """Total number of crossbar cells across all islands."""
        return self.num_islands * self.island_size * self.island_size

    def monolithic_cell_count(self) -> int:
        """Cells a single monolithic crossbar of the same vertex capacity needs."""
        n = self.total_vertex_capacity
        return n * n

    def cell_savings(self) -> float:
        """Cell-count reduction factor versus the monolithic crossbar."""
        return self.monolithic_cell_count() / max(self.total_cell_count, 1)

    # ------------------------------------------------------------------

    def island_distance(self, a: int, b: int) -> int:
        """Routing distance (in channel hops) between two islands."""
        islands = self.islands()
        ra, ca = islands[a].position
        rb, cb = islands[b].position
        return abs(ra - rb) + abs(ca - cb)

    def channel_segments(self) -> List[Tuple[int, int]]:
        """Adjacent island pairs connected by a routing channel."""
        segments: List[Tuple[int, int]] = []
        islands = self.islands()
        position_of = {island.position: island.index for island in islands}
        for island in islands:
            row, column = island.position
            for neighbour in ((row, column + 1), (row + 1, column)):
                if neighbour in position_of:
                    segments.append((island.index, position_of[neighbour]))
        return segments

    def describe(self) -> Dict[str, float]:
        """Summary used by reports and the Section 6.2 bench."""
        return {
            "style": 1.0 if self.style is ArchitectureStyle.ONE_DIMENSIONAL else 2.0,
            "num_islands": float(self.num_islands),
            "island_size": float(self.island_size),
            "channel_width": float(self.channel_width),
            "total_vertex_capacity": float(self.total_vertex_capacity),
            "total_cells": float(self.total_cell_count),
            "monolithic_cells": float(self.monolithic_cell_count()),
            "cell_savings": self.cell_savings(),
        }
