"""Row-by-row crossbar programming protocol (Section 3.1).

Programming takes ``n`` cycles, one per row:

* the selected row wire is driven to ``V_low``;
* every column whose cell must be set to LRS is driven to ``V_high``;
* all other rows and columns stay at 0 V.

A cell switches only when the voltage across it exceeds the memristor
threshold for long enough, so with ``V_high - V_low > V_threshold`` but
``V_high < V_threshold`` and ``|V_low| < V_threshold`` only the selected
cells switch, while half-selected cells (selected row *or* selected column,
but not both) see a sub-threshold disturb.  :class:`ProgrammingProtocol`
simulates the pulse sequence cell by cell and verifies the outcome, and the
report records the disturb margins, which is the analysis a designer needs to
choose the programming voltages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import ProgrammingError
from .crossbar import CrossbarSubstrate

__all__ = ["ProgrammingProtocol", "ProgrammingReport"]


@dataclass(frozen=True)
class ProgrammingReport:
    """Outcome of programming one crossbar configuration.

    Attributes
    ----------
    cycles:
        Number of row cycles applied (one per row that contains a target cell,
        or the full row count when ``program_all_rows`` is set).
    set_pulses:
        Number of full-select set pulses applied.
    reset_pulses:
        Number of reset pulses applied (when ``erase_first`` is set).
    half_selected_cells:
        Number of cell-pulse events in which a cell was half-selected.
    disturbed_cells:
        Coordinates of cells that changed state although they were not
        selected (must be empty for a correct set of programming voltages).
    incorrect_cells:
        Coordinates of cells whose final state does not match the target.
    programming_time_s:
        Total programming time (cycles times the set pulse width).
    set_margin_v / disturb_margin_v:
        Voltage margins of the full-select and half-select cases against the
        memristor threshold (positive margins mean correct operation).
    """

    cycles: int
    set_pulses: int
    reset_pulses: int
    half_selected_cells: int
    disturbed_cells: Tuple[Tuple[int, int], ...]
    incorrect_cells: Tuple[Tuple[int, int], ...]
    programming_time_s: float
    set_margin_v: float
    disturb_margin_v: float

    @property
    def success(self) -> bool:
        """True when every cell ended in its target state with no disturbs."""
        return not self.disturbed_cells and not self.incorrect_cells


class ProgrammingProtocol:
    """Simulates the Section 3.1 row-by-row programming scheme.

    Parameters
    ----------
    v_high:
        Column select voltage.
    v_low:
        Row select voltage (negative, so the full-select cell sees
        ``v_high - v_low``).
    erase_first:
        Apply a bulk reset (all cells to HRS) before programming; mirrors how
        the substrate is reused across problem instances.
    program_all_rows:
        Apply a cycle to every row even if it has no target cells (the
        paper's description programs all ``n`` rows).
    """

    def __init__(
        self,
        v_high: float = 0.9,
        v_low: float = -0.9,
        erase_first: bool = True,
        program_all_rows: bool = False,
    ) -> None:
        if v_high <= 0 or v_low >= 0:
            raise ProgrammingError("programming requires v_high > 0 and v_low < 0")
        self.v_high = v_high
        self.v_low = v_low
        self.erase_first = erase_first
        self.program_all_rows = program_all_rows

    # ------------------------------------------------------------------

    def validate_voltages(self, substrate: CrossbarSubstrate) -> Tuple[float, float]:
        """Return (set margin, disturb margin) for the memristor threshold.

        The full-select voltage must exceed the threshold (positive set
        margin) and the half-select voltages must stay below it (positive
        disturb margin); otherwise programming cannot work and a
        :class:`ProgrammingError` is raised.
        """
        threshold = substrate.parameters.memristor.threshold_voltage_v
        full_select = self.v_high - self.v_low
        half_select = max(abs(self.v_high), abs(self.v_low))
        set_margin = full_select - threshold
        disturb_margin = threshold - half_select
        if set_margin <= 0:
            raise ProgrammingError(
                f"full-select voltage {full_select} V does not exceed the memristor "
                f"threshold {threshold} V"
            )
        if disturb_margin <= 0:
            raise ProgrammingError(
                f"half-select voltage {half_select} V reaches the memristor threshold "
                f"{threshold} V; unselected cells would be disturbed"
            )
        return set_margin, disturb_margin

    def program(
        self,
        substrate: CrossbarSubstrate,
        targets: Dict[Tuple[int, int], bool],
    ) -> ProgrammingReport:
        """Program ``substrate`` so that exactly the cells in ``targets`` marked
        True end up in LRS.

        ``targets`` maps ``(row, column)`` to the desired on/off state; cells
        not mentioned keep their previous state (HRS after an erase).
        """
        set_margin, disturb_margin = self.validate_voltages(substrate)
        pulse_width = substrate.parameters.memristor.set_pulse_width_s

        reset_pulses = 0
        if self.erase_first:
            for (row, column), _state in targets.items():
                cell = substrate.cell(row, column)
                if cell.switch.is_on:
                    cell.switch.apply_pulse(-(self.v_high - self.v_low), pulse_width)
                    reset_pulses += 1
            # Also erase any previously programmed cell not in the new target.
            for cell in substrate.programmed_cells():
                if not targets.get((cell.row, cell.column), False):
                    cell.switch.apply_pulse(-(self.v_high - self.v_low), pulse_width)
                    reset_pulses += 1

        rows_with_targets = sorted({row for (row, _col), on in targets.items() if on})
        rows_to_program = (
            list(range(substrate.rows)) if self.program_all_rows else rows_with_targets
        )
        on_columns_per_row: Dict[int, List[int]] = {}
        for (row, column), on in targets.items():
            if on:
                on_columns_per_row.setdefault(row, []).append(column)

        set_pulses = 0
        half_selected = 0
        disturbed: List[Tuple[int, int]] = []

        for row in rows_to_program:
            selected_columns = sorted(on_columns_per_row.get(row, []))
            if not selected_columns and not self.program_all_rows:
                continue
            # Full-select pulses on the (row, column) targets.
            for column in selected_columns:
                cell = substrate.cell(row, column)
                cell.switch.apply_pulse(self.v_high - self.v_low, pulse_width)
                set_pulses += 1
            # Half-selected cells: same row, unselected columns see |v_low|;
            # other rows under the selected columns see v_high.  They are only
            # tracked for cells that are already materialised (i.e. cells the
            # mapping cares about) to keep the accounting linear in the number
            # of used cells.
            for cell in substrate.materialised_cells():
                if cell.row == row and cell.column not in selected_columns:
                    before = cell.switch.state
                    cell.switch.apply_pulse(self.v_low, pulse_width)
                    half_selected += 1
                    if cell.switch.state is not before:
                        disturbed.append((cell.row, cell.column))
                elif cell.row != row and cell.column in selected_columns:
                    before = cell.switch.state
                    cell.switch.apply_pulse(self.v_high, pulse_width)
                    half_selected += 1
                    if cell.switch.state is not before:
                        disturbed.append((cell.row, cell.column))

        incorrect = tuple(
            (row, column)
            for (row, column), on in targets.items()
            if not substrate.cell(row, column).matches_target(on)
        )
        cycles = len(rows_to_program)
        return ProgrammingReport(
            cycles=cycles,
            set_pulses=set_pulses,
            reset_pulses=reset_pulses,
            half_selected_cells=half_selected,
            disturbed_cells=tuple(disturbed),
            incorrect_cells=incorrect,
            programming_time_s=cycles * pulse_width,
            set_margin_v=set_margin,
            disturb_margin_v=disturb_margin,
        )
