"""The n x n memristor crossbar substrate (Section 3, Fig. 6).

The crossbar is the physical, reconfigurable incarnation of the max-flow
circuit: row ``0`` carries the ``Vflow`` objective drive, every other row
``i`` corresponds to graph vertex ``i``, every column ``j`` corresponds to
vertex ``j``, and the cell at ``(i, j)`` contains the circuit widget of the
potential edge ``i -> j`` behind a memristor switch.  Programming the
switches (Section 3.1) selects which widgets participate, i.e. encodes the
adjacency matrix of the instance.

This class manages the cell array, occupancy accounting and leakage
estimation; the electrical solve itself is delegated to the compiler/solver
of :mod:`repro.analog` by :class:`~repro.crossbar.engine.CrossbarMaxFlowEngine`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..config import SubstrateParameters
from ..errors import CrossbarCapacityError
from ..circuit.memristor import MemristorState
from .cell import CrossbarCell

__all__ = ["CrossbarSubstrate"]


class CrossbarSubstrate:
    """An ``rows x columns`` crossbar of memristor-switched circuit widgets.

    Parameters
    ----------
    parameters:
        Substrate parameters; ``parameters.rows`` / ``parameters.columns``
        give the physical dimensions (Table 1 uses 1000 x 1000).
    lazy:
        When set (default), cells are materialised on first access, so a
        1000 x 1000 substrate does not allocate a million cell objects when
        only a few thousand are used.  Iteration only visits materialised
        cells.
    seed:
        Seed for the per-cell memristor variation generators.
    """

    def __init__(
        self,
        parameters: Optional[SubstrateParameters] = None,
        lazy: bool = True,
        seed: Optional[int] = None,
    ) -> None:
        self.parameters = parameters if parameters is not None else SubstrateParameters()
        self.parameters.validate()
        self.rows = self.parameters.rows
        self.columns = self.parameters.columns
        self.lazy = lazy
        self._rng = random.Random(seed)
        self._cells: Dict[Tuple[int, int], CrossbarCell] = {}
        if not lazy:
            for row in range(self.rows):
                for column in range(self.columns):
                    self._materialise(row, column)

    # ------------------------------------------------------------------
    # Cell access
    # ------------------------------------------------------------------

    def _check_coordinates(self, row: int, column: int) -> None:
        if not (0 <= row < self.rows and 0 <= column < self.columns):
            raise CrossbarCapacityError(
                f"cell ({row}, {column}) is outside the {self.rows}x{self.columns} crossbar"
            )

    def _materialise(self, row: int, column: int) -> CrossbarCell:
        cell = CrossbarCell.create(
            row,
            column,
            parameters=self.parameters.memristor,
            rng=random.Random(self._rng.getrandbits(32)),
        )
        self._cells[(row, column)] = cell
        return cell

    def cell(self, row: int, column: int) -> CrossbarCell:
        """Return (materialising if needed) the cell at ``(row, column)``."""
        self._check_coordinates(row, column)
        existing = self._cells.get((row, column))
        if existing is not None:
            return existing
        return self._materialise(row, column)

    def materialised_cells(self) -> List[CrossbarCell]:
        """All cells that have been touched so far."""
        return list(self._cells.values())

    def programmed_cells(self) -> List[CrossbarCell]:
        """All cells whose switch is currently in LRS."""
        return [c for c in self._cells.values() if c.is_programmed]

    def __iter__(self) -> Iterator[CrossbarCell]:
        return iter(self._cells.values())

    # ------------------------------------------------------------------
    # State management
    # ------------------------------------------------------------------

    def reset(self) -> None:
        """Force every materialised cell back to HRS and clear assignments."""
        for cell in self._cells.values():
            cell.switch.force_state(MemristorState.HRS)
            cell.clear()

    def desired_pattern(self) -> Dict[Tuple[int, int], bool]:
        """Mapping cell coordinates -> desired on/off state (from assignments)."""
        return {
            (cell.row, cell.column): cell.is_used for cell in self._cells.values()
        }

    # ------------------------------------------------------------------
    # Occupancy and leakage accounting
    # ------------------------------------------------------------------

    @property
    def capacity_vertices(self) -> int:
        """Largest number of graph vertices a mapping can use (rows minus the objective row)."""
        return min(self.rows - 1, self.columns)

    def utilisation(self) -> float:
        """Fraction of the full crossbar occupied by programmed cells."""
        total = self.rows * self.columns
        return len(self.programmed_cells()) / total if total else 0.0

    def occupancy_report(self) -> Dict[str, float]:
        """Summary statistics used by reports and tests."""
        programmed = self.programmed_cells()
        used = [c for c in self._cells.values() if c.is_used]
        return {
            "rows": float(self.rows),
            "columns": float(self.columns),
            "materialised_cells": float(len(self._cells)),
            "programmed_cells": float(len(programmed)),
            "assigned_edges": float(len(used)),
            "utilisation": self.utilisation(),
        }

    def hrs_leakage_conductance(self, active_vertices: int) -> float:
        """Aggregate leakage conductance of the *off* cells of the active subgrid.

        Every off cell inside the ``active_vertices x active_vertices``
        subgrid still connects its row and column wires through the HRS
        memristance.  For solution-quality purposes the aggregate effect is
        modelled as an equivalent conductance to ground per active column
        (the exact per-cell netlist is used only for small substrates, see
        :class:`~repro.crossbar.engine.CrossbarMaxFlowEngine`).
        """
        if active_vertices <= 0:
            return 0.0
        cells_in_subgrid = active_vertices * active_vertices
        on_cells = sum(
            1
            for cell in self._cells.values()
            if cell.is_programmed
            and cell.row <= active_vertices
            and cell.column <= active_vertices
        )
        off_cells = max(cells_in_subgrid - on_cells, 0)
        per_cell = 1.0 / self.parameters.memristor.hrs_resistance_ohm
        return off_cells * per_cell / max(active_vertices, 1)
