"""Post-fabrication resistance tuning (Section 4.3.2).

Because every resistor on the substrate is a memristor in LRS, their
resistance can be trimmed after fabrication.  The paper outlines a two-step
procedure built around the tuning circuit of Fig. 9b (a configured negation
widget whose output should satisfy ``Vx- = -Vx``):

1. with ``Vx = 0``, modulate the negative resistor ``R3`` until ``Vx- = 0``;
2. with ``Vx = 1 V``, jointly trim ``r1`` and ``r2`` until ``Vx- = -1 V``;
3. iterate the two steps a couple of times for better precision.

This module simulates that procedure directly on the widget resistances of a
compiled circuit (or on raw resistor triples): given perturbed values it
computes the trim each step would apply, quantised by the memristor tuning
resolution, and reports the residual negation error before and after.  The
variation/tuning ablation bench uses it to show how much of the mismatch
error tuning recovers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..config import MemristorParameters
from ..errors import SubstrateError
from ..circuit.elements import Resistor
from ..circuit.netlist import Circuit

__all__ = ["ResistanceTuner", "TuningReport", "negation_error"]


def negation_error(r1: float, r2: float, r3_magnitude: float) -> float:
    """Relative error of the negation widget with resistances ``r1, r2, |R3|``.

    For the tuning circuit of Fig. 9b the ideal condition is
    ``1/R3 = 1/r1 + 1/r2`` together with ``r2/r1 = 1``; the widget then
    produces ``Vx- = -(r2/r1) Vx``.  The returned value is the relative gain
    error ``|r2/r1 - 1|`` plus the offset contribution of an ill-tuned R3
    (expressed as the relative deviation of ``1/R3`` from ``1/r1 + 1/r2``).
    """
    if min(r1, r2, r3_magnitude) <= 0:
        raise SubstrateError("resistances must be positive")
    gain_error = abs(r2 / r1 - 1.0)
    conductance_target = 1.0 / r1 + 1.0 / r2
    offset_error = abs(1.0 / r3_magnitude - conductance_target) / conductance_target
    return gain_error + offset_error


@dataclass(frozen=True)
class TuningReport:
    """Before/after summary of one tuning pass over a set of widgets.

    Attributes
    ----------
    widgets_tuned:
        Number of negation widgets processed.
    error_before / error_after:
        Mean relative negation error before and after tuning.
    worst_before / worst_after:
        Worst-case relative negation error before and after tuning.
    iterations:
        Tuning iterations applied per widget.
    adjustments:
        Per-widget resistance adjustments applied (name -> new value), for
        inspection and for applying to a circuit.
    """

    widgets_tuned: int
    error_before: float
    error_after: float
    worst_before: float
    worst_after: float
    iterations: int
    adjustments: Dict[str, float] = field(default_factory=dict)

    @property
    def improvement(self) -> float:
        """Ratio of mean error before to after (>1 means tuning helped)."""
        if self.error_after <= 0:
            return float("inf") if self.error_before > 0 else 1.0
        return self.error_before / self.error_after


class ResistanceTuner:
    """Simulates the two-step memristance trimming of Section 4.3.2.

    Parameters
    ----------
    memristor:
        Device parameters; the tuning resolution bounds how precisely the
        target resistance can be hit.
    iterations:
        Number of times the two-step procedure is repeated per widget.
    """

    def __init__(
        self,
        memristor: Optional[MemristorParameters] = None,
        iterations: int = 2,
    ) -> None:
        self.memristor = memristor if memristor is not None else MemristorParameters()
        if iterations < 1:
            raise SubstrateError("at least one tuning iteration is required")
        self.iterations = iterations

    # ------------------------------------------------------------------

    def _quantise(self, value: float) -> float:
        resolution = self.memristor.tuning_resolution_ohm
        if resolution <= 0:
            return value
        return max(resolution, round(value / resolution) * resolution)

    def tune_triple(self, r1: float, r2: float, r3_magnitude: float) -> Tuple[float, float, float]:
        """Tune one widget's ``(r1, r2, |R3|)`` and return the trimmed values.

        Step 1 sets ``1/R3 = 1/r1 + 1/r2`` (offset nulling); step 2 trims
        ``r2`` towards ``r1`` (gain nulling).  Both trims are quantised by
        the memristor tuning resolution, and the procedure is iterated.
        """
        for _ in range(self.iterations):
            r3_magnitude = self._quantise(1.0 / (1.0 / r1 + 1.0 / r2))
            r2 = self._quantise(r1)
        return r1, r2, r3_magnitude

    def tune_widgets(
        self, widgets: Dict[str, Tuple[float, float, float]]
    ) -> TuningReport:
        """Tune a set of widgets given their perturbed ``(r1, r2, |R3|)`` values."""
        if not widgets:
            raise SubstrateError("no widgets to tune")
        errors_before = []
        errors_after = []
        adjustments: Dict[str, float] = {}
        for name, (r1, r2, r3) in widgets.items():
            errors_before.append(negation_error(r1, r2, r3))
            t1, t2, t3 = self.tune_triple(r1, r2, r3)
            errors_after.append(negation_error(t1, t2, t3))
            adjustments[f"{name}:r2"] = t2
            adjustments[f"{name}:r3"] = t3
        return TuningReport(
            widgets_tuned=len(widgets),
            error_before=sum(errors_before) / len(errors_before),
            error_after=sum(errors_after) / len(errors_after),
            worst_before=max(errors_before),
            worst_after=max(errors_after),
            iterations=self.iterations,
            adjustments=adjustments,
        )

    # ------------------------------------------------------------------

    def tune_circuit(self, circuit: Circuit) -> TuningReport:
        """Tune every negation widget of a compiled max-flow circuit in place.

        The widget resistors are identified by the compiler's naming scheme
        (``Rng_a{i}``, ``Rng_b{i}`` and ``Rng_n{i}``); after tuning, the
        trimmed values are written back into the circuit's resistor elements,
        so a subsequent DC solve sees the tuned substrate.
        """
        widgets: Dict[str, Tuple[float, float, float]] = {}
        for element in circuit.elements_of_type(Resistor):
            name = element.name
            if name.startswith("Rng_a"):
                index = name[len("Rng_a"):]
                try:
                    r1 = element.resistance
                    r2 = circuit.element(f"Rng_b{index}").resistance
                    r3 = circuit.element(f"Rng_n{index}").resistance
                except Exception:
                    continue
                if r3 >= 0:
                    # Device-style widgets realise -R with a sub-circuit whose
                    # Rt resistor is named differently; skip those here.
                    continue
                widgets[index] = (r1, r2, abs(r3))
        if not widgets:
            raise SubstrateError(
                "the circuit contains no ideal-style negation widgets to tune"
            )
        report = self.tune_widgets(widgets)
        for index, (r1, r2, r3) in (
            (k, self.tune_triple(*v)) for k, v in widgets.items()
        ):
            circuit.element(f"Rng_b{index}").resistance = r2
            circuit.element(f"Rng_n{index}").resistance = -r3
        return report
