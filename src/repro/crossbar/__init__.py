"""Reconfigurable memristor-crossbar substrate (Section 3) and its extensions.

* :mod:`~repro.crossbar.cell` / :mod:`~repro.crossbar.crossbar` — the n x n
  crossbar of memristor switches plus per-intersection circuit widgets;
* :mod:`~repro.crossbar.programming` — the row-by-row programming protocol of
  Section 3.1, including half-select disturb analysis;
* :mod:`~repro.crossbar.mapping` — placing a flow network onto the crossbar;
* :mod:`~repro.crossbar.engine` — the end-to-end
  :class:`~repro.crossbar.engine.CrossbarMaxFlowEngine` (configure, compute,
  read out);
* :mod:`~repro.crossbar.variation` — process-variation models (Section 4.3.1);
* :mod:`~repro.crossbar.tuning` — post-fabrication memristance tuning
  (Section 4.3.2);
* :mod:`~repro.crossbar.clustered` / ``placement`` / ``routing`` — the
  clustered island-style architectures of Section 6.2 with their CAD flow;
* :mod:`~repro.crossbar.area` — area comparison of memristor vs SRAM switches.
"""

from .cell import CrossbarCell
from .crossbar import CrossbarSubstrate
from .programming import ProgrammingProtocol, ProgrammingReport
from .mapping import CrossbarMapping, map_network_to_crossbar
from .engine import CrossbarMaxFlowEngine, CrossbarSolveResult
from .variation import ProcessVariationModel, VariationSample
from .tuning import ResistanceTuner, TuningReport
from .clustered import ClusteredArchitecture, Island, ArchitectureStyle
from .placement import IslandPlacement, place_network
from .routing import RoutingResult, route_placement
from .area import AreaModel

__all__ = [
    "CrossbarCell",
    "CrossbarSubstrate",
    "ProgrammingProtocol",
    "ProgrammingReport",
    "CrossbarMapping",
    "map_network_to_crossbar",
    "CrossbarMaxFlowEngine",
    "CrossbarSolveResult",
    "ProcessVariationModel",
    "VariationSample",
    "ResistanceTuner",
    "TuningReport",
    "ClusteredArchitecture",
    "Island",
    "ArchitectureStyle",
    "IslandPlacement",
    "place_network",
    "RoutingResult",
    "route_placement",
    "AreaModel",
]
