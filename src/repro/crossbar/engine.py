"""End-to-end crossbar max-flow engine.

:class:`CrossbarMaxFlowEngine` strings together the full hardware flow of
Section 3:

1. **map** — place the instance onto the crossbar (vertex ordering, capacity
   levels, cell assignment);
2. **configure** — run the row-by-row programming protocol of Section 3.1 and
   verify every switch reached its target state;
3. **compute** — apply the ``Vflow`` step and solve the resulting circuit
   (steady state, optionally with a transient convergence-time measurement);
4. **read out** — measure the ``Vflow`` current, apply Equation 7a and
   de-quantize the answer.

The electrical model optionally includes per-cell programmed-LRS variation
and the aggregate HRS leakage of the unused cells in the active subgrid,
which are the two crossbar-specific non-idealities the direct compiler does
not see.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from ..analog.compiler import CompiledMaxFlowCircuit, MaxFlowCircuitCompiler
from ..analog.convergence import measure_convergence_time
from ..analog.readout import FlowReadout
from ..analog.verification import SolutionQuality, evaluate_solution
from ..config import NonIdealityModel, SubstrateParameters
from ..errors import ProgrammingError
from ..graph.network import FlowNetwork
from ..circuit.dc import DCOperatingPoint
from ..circuit.elements import Resistor
from ..circuit.netlist import GROUND
from .crossbar import CrossbarSubstrate
from .mapping import CrossbarMapping, map_network_to_crossbar
from .programming import ProgrammingProtocol, ProgrammingReport

__all__ = ["CrossbarMaxFlowEngine", "CrossbarSolveResult"]


@dataclass
class CrossbarSolveResult:
    """Result of solving one instance on the crossbar substrate.

    Attributes
    ----------
    flow_value:
        De-quantized flow value read from the source-edge voltages.
    flow_value_from_current:
        Flow value obtained through the Equation 7a current readout (what the
        physical substrate actually measures).
    edge_flows:
        Per-edge flows of the *mapped* (parallel-edge-merged) network.
    mapping:
        The crossbar mapping used.
    programming:
        Report of the configuration stage.
    convergence_time_s:
        0.1 %-settling time when a transient measurement was requested.
    programming_time_s / solve_wall_time_s:
        Configuration time (hardware estimate) and simulation wall time.
    compiled:
        The compiled electrical model (for power estimation etc.).
    """

    flow_value: float
    flow_value_from_current: float
    edge_flows: Dict[int, float]
    mapping: CrossbarMapping
    programming: ProgrammingReport
    convergence_time_s: Optional[float] = None
    programming_time_s: float = 0.0
    solve_wall_time_s: float = 0.0
    compiled: CompiledMaxFlowCircuit = field(default=None, repr=False)

    def quality(self, exact_value: Optional[float] = None) -> SolutionQuality:
        """Evaluate the result against the exact optimum of the mapped network."""
        return evaluate_solution(
            self.mapping.network, self.flow_value, self.edge_flows, exact_value
        )


class CrossbarMaxFlowEngine:
    """Configure-and-compute engine for the memristor crossbar.

    Parameters
    ----------
    substrate:
        The crossbar substrate (a fresh Table 1 substrate by default).
    protocol:
        Programming protocol; defaults to +/-0.9 V half-select voltages.
    nonideal:
        Electrical non-idealities passed to the circuit compiler.
    include_cell_variation:
        Use each programmed cell's *actual* (cycle-to-cycle varied, tuned or
        drifted) memristance as that edge widget's unit resistance.
    include_hrs_leakage:
        Add the aggregate HRS leakage of unused cells in the active subgrid
        as a per-edge-node conductance to ground.
    vertex_ordering:
        Vertex ordering used by the mapper (``"insertion"`` or ``"bfs"``).
    """

    def __init__(
        self,
        substrate: Optional[CrossbarSubstrate] = None,
        protocol: Optional[ProgrammingProtocol] = None,
        nonideal: Optional[NonIdealityModel] = None,
        include_cell_variation: bool = True,
        include_hrs_leakage: bool = True,
        vertex_ordering: str = "insertion",
        seed: Optional[int] = None,
    ) -> None:
        self.substrate = substrate if substrate is not None else CrossbarSubstrate()
        self.protocol = protocol if protocol is not None else ProgrammingProtocol()
        self.nonideal = nonideal if nonideal is not None else NonIdealityModel()
        self.include_cell_variation = include_cell_variation
        self.include_hrs_leakage = include_hrs_leakage
        self.vertex_ordering = vertex_ordering
        self.seed = seed

    # ------------------------------------------------------------------

    @property
    def parameters(self) -> SubstrateParameters:
        """The substrate's design parameters."""
        return self.substrate.parameters

    def configure(self, network: FlowNetwork) -> tuple:
        """Map and program one instance; returns ``(mapping, programming report)``."""
        self.substrate.reset()
        mapping = map_network_to_crossbar(
            network, self.substrate, ordering=self.vertex_ordering
        )
        report = self.protocol.program(self.substrate, mapping.target_pattern())
        if not report.success:
            raise ProgrammingError(
                f"programming failed: {len(report.incorrect_cells)} incorrect cells, "
                f"{len(report.disturbed_cells)} disturbed cells"
            )
        return mapping, report

    def solve(
        self,
        network: FlowNetwork,
        vflow_v: Optional[float] = None,
        measure_convergence: bool = False,
    ) -> CrossbarSolveResult:
        """Run the full configure-compute-readout flow for ``network``."""
        start = time.perf_counter()
        mapping, programming = self.configure(network)
        compiled = self._compile_electrical_model(mapping, vflow_v)
        solution = DCOperatingPoint().solve(compiled.circuit)
        readout = FlowReadout(compiled)
        decoded = readout.from_dc(solution)

        convergence_time = None
        if measure_convergence:
            measurement = measure_convergence_time(
                compiled, tolerance=self.parameters.convergence_tolerance
            )
            convergence_time = measurement.convergence_time_s

        return CrossbarSolveResult(
            flow_value=decoded["flow_value"],
            flow_value_from_current=decoded["flow_value_from_current"],
            edge_flows=decoded["edge_flows"],
            mapping=mapping,
            programming=programming,
            convergence_time_s=convergence_time,
            programming_time_s=programming.programming_time_s,
            solve_wall_time_s=time.perf_counter() - start,
            compiled=compiled,
        )

    # ------------------------------------------------------------------

    def _compile_electrical_model(
        self, mapping: CrossbarMapping, vflow_v: Optional[float]
    ) -> CompiledMaxFlowCircuit:
        """Build the circuit of the programmed crossbar (with cell effects).

        The crossbar model always pins the widget common mode with the bleed
        resistors (see :class:`~repro.config.SubstrateParameters`): a physical
        substrate with per-cell memristance variation needs its internal
        common mode defined, otherwise cell mismatch is amplified without
        bound (reproduction finding documented in EXPERIMENTS.md).
        """
        parameters = self.parameters
        compiler = MaxFlowCircuitCompiler(
            parameters=parameters,
            nonideal=self.nonideal,
            quantize=True,
            style="ideal",
            prune=True,
            seed=self.seed,
        )
        compiled = compiler.compile(mapping.network, vflow_v=vflow_v)

        if self.include_cell_variation:
            self._apply_cell_memristances(compiled, mapping)
        if self.include_hrs_leakage:
            self._apply_hrs_leakage(compiled, mapping)
        return compiled

    def _apply_cell_memristances(
        self, compiled: CompiledMaxFlowCircuit, mapping: CrossbarMapping
    ) -> None:
        """Use each programmed cell's actual memristance as its widget resistance.

        The crossbar realises the unit resistor that connects an edge widget
        into its head-vertex column with the cell's own LRS memristor, so
        programming variation and drift show up exactly there.
        """
        nominal = self.parameters.unit_resistance_ohm
        for edge_index, (row, column) in mapping.cell_of_edge.items():
            cell = self.substrate.cell(row, column)
            if not cell.is_programmed:
                continue
            scale = cell.resistance / self.parameters.memristor.lrs_resistance_ohm
            for prefix in (f"Rng_a{edge_index}",):
                if compiled.circuit.has_element(prefix):
                    element = compiled.circuit.element(prefix)
                    if isinstance(element, Resistor):
                        element.resistance = nominal * scale

    def _apply_hrs_leakage(
        self, compiled: CompiledMaxFlowCircuit, mapping: CrossbarMapping
    ) -> None:
        """Attach the aggregate HRS leakage of unused subgrid cells."""
        active = mapping.network.num_vertices
        leak = self.substrate.hrs_leakage_conductance(active)
        if leak <= 0:
            return
        resistance = 1.0 / leak
        for edge_index, node in compiled.edge_node.items():
            name = f"Rleak{edge_index}"
            if not compiled.circuit.has_element(name):
                compiled.circuit.add(Resistor(name, node, GROUND, resistance))
