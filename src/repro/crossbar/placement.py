"""Partitioning and placement of a flow network onto island architectures.

The clustered architectures of Section 6.2 need a CAD flow: the graph must be
partitioned into vertex clusters that fit the islands while minimising the
number of edges that cross between clusters (those consume routing-channel
tracks).  This module implements a greedy BFS-based initial clustering
followed by a Kernighan-Lin style refinement pass, and then assigns clusters
to physical islands so that strongly connected clusters sit close together
(which minimises channel hops in the 1-D/2-D routing fabrics).
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from ..errors import MappingError
from ..graph.network import FlowNetwork
from .clustered import ClusteredArchitecture

__all__ = ["IslandPlacement", "place_network"]

Vertex = Hashable


@dataclass
class IslandPlacement:
    """Result of placing a network onto a clustered architecture.

    Attributes
    ----------
    architecture:
        The target architecture.
    island_of_vertex:
        Island index assigned to each vertex.
    vertices_of_island:
        Inverse mapping.
    cut_edges:
        Indices of edges whose endpoints lie in different islands (they must
        be routed through the channel network).
    internal_edges:
        Indices of edges fully inside one island.
    """

    architecture: ClusteredArchitecture
    island_of_vertex: Dict[Vertex, int]
    vertices_of_island: Dict[int, List[Vertex]]
    cut_edges: List[int]
    internal_edges: List[int]

    @property
    def num_cut_edges(self) -> int:
        """Number of inter-island edges."""
        return len(self.cut_edges)

    @property
    def cut_fraction(self) -> float:
        """Fraction of edges that cross island boundaries."""
        total = len(self.cut_edges) + len(self.internal_edges)
        return self.num_cut_edges / total if total else 0.0

    def island_utilisation(self) -> Dict[int, float]:
        """Vertex utilisation of every island."""
        capacity = self.architecture.island_size
        return {
            island: len(vertices) / capacity
            for island, vertices in self.vertices_of_island.items()
        }

    def max_utilisation(self) -> float:
        """Utilisation of the fullest island."""
        utilisation = self.island_utilisation()
        return max(utilisation.values()) if utilisation else 0.0


def _initial_clusters(
    network: FlowNetwork, cluster_size: int, rng: random.Random
) -> List[List[Vertex]]:
    """Greedy BFS clustering: grow clusters from unvisited seeds."""
    unassigned = set(network.vertices())
    clusters: List[List[Vertex]] = []
    order = network.vertices()
    for seed in order:
        if seed not in unassigned:
            continue
        cluster: List[Vertex] = []
        queue = deque([seed])
        while queue and len(cluster) < cluster_size:
            vertex = queue.popleft()
            if vertex not in unassigned:
                continue
            unassigned.discard(vertex)
            cluster.append(vertex)
            neighbours = [e.head for e in network.out_edges(vertex)] + [
                e.tail for e in network.in_edges(vertex)
            ]
            rng.shuffle(neighbours)
            for neighbour in neighbours:
                if neighbour in unassigned:
                    queue.append(neighbour)
        clusters.append(cluster)
    return clusters


def _cut_size(network: FlowNetwork, island_of_vertex: Dict[Vertex, int]) -> int:
    return sum(
        1
        for edge in network.edges()
        if island_of_vertex[edge.tail] != island_of_vertex[edge.head]
    )


def _refine(
    network: FlowNetwork,
    island_of_vertex: Dict[Vertex, int],
    capacity: int,
    passes: int,
    rng: random.Random,
) -> None:
    """Kernighan-Lin style refinement: greedily move vertices between islands."""
    counts: Dict[int, int] = {}
    for island in island_of_vertex.values():
        counts[island] = counts.get(island, 0) + 1

    def gain_of_move(vertex: Vertex, target: int) -> int:
        current = island_of_vertex[vertex]
        gain = 0
        for edge in network.out_edges(vertex) + network.in_edges(vertex):
            other = edge.head if edge.tail == vertex else edge.tail
            other_island = island_of_vertex[other]
            if other_island == current:
                gain -= 1
            if other_island == target:
                gain += 1
        return gain

    vertices = [v for v in network.vertices()]
    for _ in range(passes):
        improved = False
        rng.shuffle(vertices)
        for vertex in vertices:
            current = island_of_vertex[vertex]
            # Candidate targets: islands of the vertex's neighbours.
            candidates = {
                island_of_vertex[e.head] for e in network.out_edges(vertex)
            } | {island_of_vertex[e.tail] for e in network.in_edges(vertex)}
            candidates.discard(current)
            best_target, best_gain = None, 0
            for target in candidates:
                if counts.get(target, 0) >= capacity:
                    continue
                gain = gain_of_move(vertex, target)
                if gain > best_gain:
                    best_gain, best_target = gain, target
            if best_target is not None:
                island_of_vertex[vertex] = best_target
                counts[current] -= 1
                counts[best_target] = counts.get(best_target, 0) + 1
                improved = True
        if not improved:
            break


def place_network(
    network: FlowNetwork,
    architecture: ClusteredArchitecture,
    refinement_passes: int = 4,
    seed: Optional[int] = None,
) -> IslandPlacement:
    """Partition ``network`` and place the clusters onto the islands.

    Raises
    ------
    MappingError
        When the network has more vertices than the architecture can host.
    """
    if network.num_vertices > architecture.total_vertex_capacity:
        raise MappingError(
            f"network has {network.num_vertices} vertices but the architecture hosts "
            f"only {architecture.total_vertex_capacity}"
        )
    rng = random.Random(seed)
    clusters = _initial_clusters(network, architecture.island_size, rng)
    if len(clusters) > architecture.num_islands:
        # Merge the smallest clusters until they fit the island count.
        clusters.sort(key=len)
        while len(clusters) > architecture.num_islands:
            smallest = clusters.pop(0)
            # Append to the cluster with the most spare room.
            clusters.sort(key=len)
            for target in clusters:
                if len(target) + len(smallest) <= architecture.island_size:
                    target.extend(smallest)
                    break
            else:
                raise MappingError(
                    "network cannot be packed into the islands (cluster overflow); "
                    "increase the island size or count"
                )
            clusters.sort(key=len)

    island_of_vertex: Dict[Vertex, int] = {}
    for island_index, cluster in enumerate(clusters):
        for vertex in cluster:
            island_of_vertex[vertex] = island_index

    _refine(network, island_of_vertex, architecture.island_size, refinement_passes, rng)

    vertices_of_island: Dict[int, List[Vertex]] = {}
    for vertex, island in island_of_vertex.items():
        vertices_of_island.setdefault(island, []).append(vertex)

    cut_edges = [
        edge.index
        for edge in network.edges()
        if island_of_vertex[edge.tail] != island_of_vertex[edge.head]
    ]
    internal_edges = [
        edge.index
        for edge in network.edges()
        if island_of_vertex[edge.tail] == island_of_vertex[edge.head]
    ]
    return IslandPlacement(
        architecture=architecture,
        island_of_vertex=island_of_vertex,
        vertices_of_island=vertices_of_island,
        cut_edges=cut_edges,
        internal_edges=internal_edges,
    )
