"""Mapping a flow network onto the crossbar.

The crossbar is a physical adjacency matrix: vertex ``v`` is assigned a
row/column index, the cell at ``(index(u), index(v))`` implements edge
``u -> v`` and row 0 implements the objective (``Vflow``) connections to the
source-adjacent edges.  Mapping therefore consists of

1. merging parallel edges (one cell per ordered vertex pair),
2. choosing a vertex ordering (the paper does not constrain it; we order by
   insertion or, optionally, by a BFS from the source which keeps logically
   close vertices in nearby rows — useful for the clustered architectures),
3. assigning each edge a quantized capacity level, and
4. checking the instance fits the physical dimensions.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from ..analog.quantization import QuantizationResult, VoltageQuantizer
from ..errors import CrossbarCapacityError, MappingError
from ..graph.network import FlowNetwork
from ..graph.transforms import merge_parallel_edges
from .crossbar import CrossbarSubstrate

__all__ = ["CrossbarMapping", "map_network_to_crossbar"]

Vertex = Hashable


@dataclass
class CrossbarMapping:
    """Outcome of mapping one instance onto a crossbar.

    Attributes
    ----------
    network:
        The network actually mapped (parallel edges merged).
    original_network:
        The caller's network.
    vertex_of_index / index_of_vertex:
        The vertex ordering used (index 1..n; index 0 is the objective row).
    cell_of_edge:
        Edge index (of ``network``) -> (row, column) crossbar coordinates.
    quantization:
        Capacity quantization used for the clamp levels.
    occupied_cells:
        Number of programmed cells (edges).
    """

    network: FlowNetwork
    original_network: FlowNetwork
    vertex_of_index: Dict[int, Vertex]
    index_of_vertex: Dict[Vertex, int]
    cell_of_edge: Dict[int, Tuple[int, int]]
    quantization: QuantizationResult
    occupied_cells: int

    def target_pattern(self) -> Dict[Tuple[int, int], bool]:
        """Desired on/off pattern for the programming protocol."""
        return {coordinates: True for coordinates in self.cell_of_edge.values()}

    def edge_at(self, row: int, column: int) -> Optional[int]:
        """Edge index mapped to a cell (None when the cell is unused)."""
        for edge_index, coordinates in self.cell_of_edge.items():
            if coordinates == (row, column):
                return edge_index
        return None


def _bfs_order(network: FlowNetwork) -> List[Vertex]:
    """Vertices ordered by BFS distance from the source (unreached ones last)."""
    order: List[Vertex] = []
    seen = set()
    queue = deque([network.source])
    seen.add(network.source)
    while queue:
        vertex = queue.popleft()
        order.append(vertex)
        for edge in network.out_edges(vertex):
            if edge.head not in seen:
                seen.add(edge.head)
                queue.append(edge.head)
    for vertex in network.vertices():
        if vertex not in seen:
            order.append(vertex)
    return order


def map_network_to_crossbar(
    network: FlowNetwork,
    substrate: CrossbarSubstrate,
    ordering: str = "insertion",
    quantizer: Optional[VoltageQuantizer] = None,
) -> CrossbarMapping:
    """Map ``network`` onto ``substrate`` and assign its cells.

    Parameters
    ----------
    ordering:
        ``"insertion"`` keeps the network's vertex order, ``"bfs"`` orders
        vertices by distance from the source.
    quantizer:
        Capacity quantizer; defaults to the substrate's Table 1 settings.

    Raises
    ------
    CrossbarCapacityError
        When the instance has more vertices than the crossbar supports.
    """
    merged = merge_parallel_edges(network)
    if merged.num_vertices > substrate.capacity_vertices:
        raise CrossbarCapacityError(
            f"instance has {merged.num_vertices} vertices but the crossbar supports "
            f"only {substrate.capacity_vertices}"
        )

    if ordering == "insertion":
        vertex_order = merged.vertices()
    elif ordering == "bfs":
        vertex_order = _bfs_order(merged)
    else:
        raise MappingError(f"unknown vertex ordering {ordering!r}")

    # Row/column 0 is reserved for the objective row; vertices start at 1.
    index_of_vertex = {v: i + 1 for i, v in enumerate(vertex_order)}
    vertex_of_index = {i: v for v, i in index_of_vertex.items()}

    if quantizer is None:
        quantizer = VoltageQuantizer(
            num_levels=substrate.parameters.voltage_levels,
            vdd=substrate.parameters.vdd_v,
        )
    quantization = quantizer.quantize(merged)

    cell_of_edge: Dict[int, Tuple[int, int]] = {}
    for edge in merged.edges():
        if edge.tail == merged.source:
            # Source-adjacent edges live on the objective row (row 0) as in
            # Fig. 6 ("the memristor switch at position (s, ni) is turned on
            # iff edge (s, i) is present").
            row = 0
        else:
            row = index_of_vertex[edge.tail]
        column = index_of_vertex[edge.head]
        coordinates = (row, column)
        cell = substrate.cell(*coordinates)
        level = quantization.level_of_edge.get(edge.index, substrate.parameters.voltage_levels)
        cell.assign(edge.index, level)
        cell_of_edge[edge.index] = coordinates

    return CrossbarMapping(
        network=merged,
        original_network=network,
        vertex_of_index=vertex_of_index,
        index_of_vertex=index_of_vertex,
        cell_of_edge=cell_of_edge,
        quantization=quantization,
        occupied_cells=len(cell_of_edge),
    )
