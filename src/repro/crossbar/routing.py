"""Channel routing and routability analysis for clustered architectures.

After placement, every inter-island edge must be routed through the
architecture's channel network.  For the 1-D architecture the route between
islands ``a`` and ``b`` occupies one track on every bus segment between them;
for the 2-D architecture the route is an L-shaped (row-then-column) path
through the switch boxes.  A placement is *routable* when no channel segment
needs more tracks than the architecture provides.

The paper hypothesises that the 1-D organisation maps faster but runs out of
routing capacity sooner than the 2-D organisation (Section 6.2); the
Section 6.2 bench quantifies exactly that trade-off with this router.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..graph.network import FlowNetwork
from .clustered import ArchitectureStyle, ClusteredArchitecture
from .placement import IslandPlacement

__all__ = ["RoutingResult", "route_placement"]

Position = Tuple[int, int]
Segment = Tuple[Position, Position]


@dataclass
class RoutingResult:
    """Outcome of routing the inter-island edges of a placement.

    Attributes
    ----------
    channel_occupancy:
        Tracks used per channel segment, keyed by the (ordered) island index
        pair of the segment's endpoints.
    max_occupancy:
        Tracks used on the most congested segment.
    overflowed_segments:
        Segments whose demand exceeds the channel width.
    total_wirelength:
        Sum of channel hops over all routed edges.
    routed_edges:
        Number of inter-island edges routed.
    """

    architecture: ClusteredArchitecture
    channel_occupancy: Dict[Tuple[int, int], int]
    max_occupancy: int
    overflowed_segments: List[Tuple[int, int]]
    total_wirelength: int
    routed_edges: int

    @property
    def routable(self) -> bool:
        """True when every channel segment fits within the channel width."""
        return not self.overflowed_segments

    @property
    def channel_utilisation(self) -> float:
        """Peak channel utilisation (used tracks / channel width)."""
        return self.max_occupancy / self.architecture.channel_width

    def required_channel_width(self) -> int:
        """Smallest channel width that would make this placement routable."""
        return self.max_occupancy

    def summary(self) -> Dict[str, float]:
        """Flat summary for reports and the Section 6.2 bench."""
        return {
            "routed_edges": float(self.routed_edges),
            "max_occupancy": float(self.max_occupancy),
            "channel_width": float(self.architecture.channel_width),
            "channel_utilisation": self.channel_utilisation,
            "overflowed_segments": float(len(self.overflowed_segments)),
            "total_wirelength": float(self.total_wirelength),
            "routable": 1.0 if self.routable else 0.0,
        }


def _segment_key(a: Position, b: Position) -> Segment:
    return (a, b) if a <= b else (b, a)


def route_placement(network: FlowNetwork, placement: IslandPlacement) -> RoutingResult:
    """Route every inter-island edge of ``placement`` and report congestion.

    Parameters
    ----------
    network:
        The flow network that was placed (provides the edge endpoints).
    placement:
        The island placement produced by
        :func:`~repro.crossbar.placement.place_network`.
    """
    architecture = placement.architecture
    islands = architecture.islands()
    position_of = {island.index: island.position for island in islands}
    index_of_position = {island.position: island.index for island in islands}

    def route_between(a: int, b: int) -> List[Segment]:
        """Channel segments used by a route from island ``a`` to island ``b``."""
        (ra, ca), (rb, cb) = position_of[a], position_of[b]
        segments: List[Segment] = []
        if architecture.style is ArchitectureStyle.ONE_DIMENSIONAL:
            lo, hi = sorted((ca, cb))
            for column in range(lo, hi):
                segments.append(_segment_key((0, column), (0, column + 1)))
            return segments
        # 2-D: route along the row first, then along the column (L-shape).
        row, column = ra, ca
        step = 1 if cb > ca else -1
        while column != cb:
            segments.append(_segment_key((row, column), (row, column + step)))
            column += step
        step = 1 if rb > ra else -1
        while row != rb:
            segments.append(_segment_key((row, column), (row + step, column)))
            row += step
        return segments

    occupancy: Dict[Segment, int] = {}
    total_wirelength = 0
    routed = 0
    for edge_index in placement.cut_edges:
        edge = network.edge(edge_index)
        island_a = placement.island_of_vertex[edge.tail]
        island_b = placement.island_of_vertex[edge.head]
        if island_a == island_b:
            continue
        segments = route_between(island_a, island_b)
        total_wirelength += len(segments)
        for segment in segments:
            occupancy[segment] = occupancy.get(segment, 0) + 1
        routed += 1

    max_occupancy = max(occupancy.values()) if occupancy else 0
    occupancy_by_index: Dict[Tuple[int, int], int] = {}
    overflowed: List[Tuple[int, int]] = []
    for (pa, pb), used in occupancy.items():
        key = (index_of_position.get(pa, -1), index_of_position.get(pb, -1))
        occupancy_by_index[key] = used
        if used > architecture.channel_width:
            overflowed.append(key)

    return RoutingResult(
        architecture=architecture,
        channel_occupancy=occupancy_by_index,
        max_occupancy=max_occupancy,
        overflowed_segments=overflowed,
        total_wirelength=total_wirelength,
        routed_edges=routed,
    )
