"""A single crossbar cell (intersection).

Every intersection ``(row i, column j)`` of the crossbar holds a memristor
switch and the circuit widget of the (potential) edge ``i -> j`` (Fig. 6):
when the switch is in LRS, the widget is connected into the crossbar and the
edge exists; in HRS the cell is disconnected (up to HRS leakage).  The cell
also remembers which capacity voltage level the edge was assigned, because the
clamp source of that level is wired to the cell's widget.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from ..config import MemristorParameters
from ..circuit.memristor import Memristor, MemristorState

__all__ = ["CrossbarCell"]


@dataclass
class CrossbarCell:
    """State of one crossbar intersection.

    Attributes
    ----------
    row, column:
        Crossbar coordinates; row ``0`` is the objective (``Vflow``) row.
    switch:
        The memristor switch of the cell.  Its LRS/HRS state encodes the
        presence of the edge; its LRS memristance doubles as the widget's
        unit resistance and can be fine-tuned (Section 4.3.2).
    capacity_level:
        Quantized capacity level assigned to the edge (``None`` when the
        cell is unused).
    edge_index:
        Index of the graph edge mapped onto this cell (``None`` when unused).
    """

    row: int
    column: int
    switch: Memristor
    capacity_level: Optional[int] = None
    edge_index: Optional[int] = None

    @classmethod
    def create(
        cls,
        row: int,
        column: int,
        parameters: Optional[MemristorParameters] = None,
        rng: Optional[random.Random] = None,
    ) -> "CrossbarCell":
        """Build a fresh (HRS, unused) cell."""
        switch = Memristor(
            name=f"mem_r{row}_c{column}",
            top=f"row{row}",
            bottom=f"col{column}",
            parameters=parameters,
            state=MemristorState.HRS,
            rng=rng,
        )
        return cls(row=row, column=column, switch=switch)

    # ------------------------------------------------------------------

    @property
    def is_programmed(self) -> bool:
        """True when the cell's switch is in LRS (edge present)."""
        return self.switch.is_on

    @property
    def is_used(self) -> bool:
        """True when a graph edge has been assigned to this cell."""
        return self.edge_index is not None

    @property
    def resistance(self) -> float:
        """Current switch memristance (ohms)."""
        return self.switch.resistance

    def assign(self, edge_index: int, capacity_level: int) -> None:
        """Record which edge and capacity level this cell implements."""
        self.edge_index = edge_index
        self.capacity_level = capacity_level

    def clear(self) -> None:
        """Return the cell to the unused state (switch state is not touched)."""
        self.edge_index = None
        self.capacity_level = None

    def matches_target(self, should_be_on: bool) -> bool:
        """True when the switch state equals the desired programmed state."""
        return self.switch.is_on == should_be_on
