"""Area model: memristor switches versus SRAM switches, mesh versus clustered.

One of the paper's two reasons for choosing memristor switches is area
efficiency (Section 3): a crosspoint memristor occupies roughly ``4F^2``
(F = technology feature size) and can sit above the logic layers, whereas an
SRAM-controlled pass-gate switch needs a six-transistor cell plus the pass
device, i.e. well over ``100F^2`` of active silicon.  This module provides a
simple but explicit area model used by the Section 6.2 bench to compare

* a monolithic n x n crossbar with memristor switches,
* the same crossbar with SRAM switches,
* clustered island architectures (cells + routing overhead).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..errors import ConfigurationError
from .clustered import ClusteredArchitecture

__all__ = ["AreaModel"]


@dataclass(frozen=True)
class AreaModel:
    """Area parameters, all expressed in units of ``F^2`` per device.

    Attributes
    ----------
    feature_size_nm:
        Technology feature size F (32 nm in the paper's power analysis).
    memristor_switch_f2:
        Crosspoint memristor footprint (stacked above logic).
    sram_switch_f2:
        SRAM cell (6T) plus pass transistor footprint.
    widget_f2:
        Area of one intersection's analog widget (two diodes and the shared
        wiring; the op-amps are accounted separately).
    opamp_f2:
        Area of one op-amp.
    routing_track_f2_per_island:
        Routing-channel area per track per island span (clustered
        architectures only).
    """

    feature_size_nm: float = 32.0
    memristor_switch_f2: float = 4.0
    sram_switch_f2: float = 140.0
    widget_f2: float = 260.0
    opamp_f2: float = 2200.0
    routing_track_f2_per_island: float = 800.0

    def __post_init__(self) -> None:
        if min(
            self.feature_size_nm,
            self.memristor_switch_f2,
            self.sram_switch_f2,
            self.widget_f2,
            self.opamp_f2,
            self.routing_track_f2_per_island,
        ) <= 0:
            raise ConfigurationError("area parameters must be positive")

    # ------------------------------------------------------------------

    @property
    def f2_to_um2(self) -> float:
        """Conversion factor from F^2 to square micrometres."""
        feature_um = self.feature_size_nm * 1e-3
        return feature_um * feature_um

    def cell_area_f2(self, switch: str = "memristor") -> float:
        """Area of one crossbar intersection for the given switch type."""
        if switch == "memristor":
            return self.memristor_switch_f2 + self.widget_f2
        if switch == "sram":
            return self.sram_switch_f2 + self.widget_f2
        raise ConfigurationError(f"unknown switch type {switch!r}")

    def crossbar_area_um2(self, rows: int, columns: int, switch: str = "memristor") -> float:
        """Total area of a monolithic crossbar (cells + per-column op-amps)."""
        if rows <= 0 or columns <= 0:
            raise ConfigurationError("crossbar dimensions must be positive")
        cells = rows * columns * self.cell_area_f2(switch)
        # One op-amp per column (conservation widget) plus one per cell for
        # the negation widgets is pessimistic; the paper's power model uses
        # one per edge plus one per vertex, which maps to one per *used*
        # cell.  For the area of the full substrate we budget one per cell.
        opamps = rows * columns * self.opamp_f2
        return (cells + opamps) * self.f2_to_um2

    def clustered_area_um2(
        self, architecture: ClusteredArchitecture, switch: str = "memristor"
    ) -> float:
        """Total area of a clustered architecture (islands + routing)."""
        island_cells = architecture.total_cell_count * (
            self.cell_area_f2(switch) + self.opamp_f2
        )
        routing = (
            len(architecture.channel_segments())
            * architecture.channel_width
            * self.routing_track_f2_per_island
        )
        return (island_cells + routing) * self.f2_to_um2

    def memristor_vs_sram_ratio(self) -> float:
        """Cell-area advantage of memristor switches over SRAM switches."""
        return self.cell_area_f2("sram") / self.cell_area_f2("memristor")

    def comparison(self, rows: int, columns: int) -> Dict[str, float]:
        """Monolithic-crossbar area summary used by reports/tests."""
        return {
            "memristor_crossbar_mm2": self.crossbar_area_um2(rows, columns, "memristor") / 1e6,
            "sram_crossbar_mm2": self.crossbar_area_um2(rows, columns, "sram") / 1e6,
            "cell_ratio_sram_over_memristor": self.memristor_vs_sram_ratio(),
        }
