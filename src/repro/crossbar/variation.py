"""Process-variation models for the crossbar (Section 4.3.1).

Integrated resistors show absolute tolerances of +/-20..30 %, but the *ratio*
between two matched resistors can be held to better than +/-1 % (often
+/-0.1 %).  Because the substrate's solution depends only on resistance
ratios, layout matching makes it largely insensitive to the absolute
spread — this module provides the Monte-Carlo machinery to quantify exactly
that, and to generate per-cell memristance values for the crossbar engine.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..config import NonIdealityModel
from ..errors import ConfigurationError

__all__ = ["ProcessVariationModel", "VariationSample"]


@dataclass(frozen=True)
class VariationSample:
    """One Monte-Carlo draw of the die-level and per-device variations.

    Attributes
    ----------
    common_factor:
        Multiplicative factor shared by every resistor on the die (absolute
        process corner).
    device_factors:
        Per-device multiplicative factors keyed by device name.
    """

    common_factor: float
    device_factors: Dict[str, float]

    def resistance(self, name: str, nominal: float) -> float:
        """Resistance of device ``name`` after applying the sampled variation."""
        return nominal * self.common_factor * self.device_factors.get(name, 1.0)

    def worst_ratio_error(self) -> float:
        """Largest pairwise ratio error among the sampled devices."""
        if not self.device_factors:
            return 0.0
        factors = list(self.device_factors.values())
        return max(factors) / min(factors) - 1.0


@dataclass
class ProcessVariationModel:
    """Generator of correlated (die) + uncorrelated (device) resistance variation.

    Parameters
    ----------
    absolute_tolerance:
        Sigma of the die-level (common) relative deviation, e.g. 0.25 for
        the +/-20..30 % absolute tolerance quoted by the paper.
    matched_mismatch:
        Sigma of the per-device relative mismatch when layout matching is
        applied (0.001..0.01 per the paper).
    unmatched_mismatch:
        Sigma of the per-device mismatch without matching; defaults to the
        absolute tolerance.
    distribution:
        ``"normal"`` or ``"lognormal"`` per-device distribution.
    """

    absolute_tolerance: float = 0.25
    matched_mismatch: float = 0.005
    unmatched_mismatch: Optional[float] = None
    distribution: str = "normal"

    def __post_init__(self) -> None:
        if self.absolute_tolerance < 0 or self.matched_mismatch < 0:
            raise ConfigurationError("variation sigmas must be non-negative")
        if self.unmatched_mismatch is None:
            self.unmatched_mismatch = self.absolute_tolerance
        if self.distribution not in ("normal", "lognormal"):
            raise ConfigurationError(f"unknown distribution {self.distribution!r}")

    # ------------------------------------------------------------------

    def _draw(self, rng: random.Random, sigma: float) -> float:
        if sigma <= 0:
            return 1.0
        if self.distribution == "normal":
            return max(1e-3, 1.0 + rng.gauss(0.0, sigma))
        return math.exp(rng.gauss(0.0, sigma))

    def sample(
        self,
        device_names: Iterable[str],
        matched: bool = True,
        seed: Optional[int] = None,
    ) -> VariationSample:
        """Draw one die: a common factor plus per-device factors."""
        rng = random.Random(seed)
        common = self._draw(rng, self.absolute_tolerance)
        sigma = self.matched_mismatch if matched else float(self.unmatched_mismatch)
        device_factors = {name: self._draw(rng, sigma) for name in device_names}
        return VariationSample(common_factor=common, device_factors=device_factors)

    def monte_carlo(
        self,
        device_names: List[str],
        num_samples: int,
        matched: bool = True,
        seed: Optional[int] = None,
    ) -> List[VariationSample]:
        """Draw ``num_samples`` independent dies."""
        rng = random.Random(seed)
        return [
            self.sample(device_names, matched=matched, seed=rng.getrandbits(32))
            for _ in range(num_samples)
        ]

    # ------------------------------------------------------------------

    def to_nonideality(self, matched: bool = True, seed: Optional[int] = None) -> NonIdealityModel:
        """Express this variation model as a solver :class:`NonIdealityModel`."""
        return NonIdealityModel(
            resistor_tolerance=self.absolute_tolerance,
            resistor_matching=self.matched_mismatch,
            use_matching=matched,
            seed=seed,
        )

    def expected_ratio_sigma(self, matched: bool = True) -> float:
        """Sigma of the ratio error between two devices (root-2 of per-device)."""
        sigma = self.matched_mismatch if matched else float(self.unmatched_mismatch)
        return math.sqrt(2.0) * sigma
