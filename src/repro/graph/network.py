"""Directed flow-network data structure.

A :class:`FlowNetwork` is a directed graph ``G = (V, E)`` with a nonnegative
capacity on every edge and two distinguished vertices, the source ``s`` and
the sink ``t`` (Section 2 of the paper).  Vertices are arbitrary hashable
labels; edges are identified by an integer index so that parallel edges are
supported (the analog substrate allocates one circuit node per edge, so edge
identity matters).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import (
    EdgeNotFoundError,
    InvalidGraphError,
    VertexNotFoundError,
)

__all__ = ["Edge", "FlowNetwork"]

Vertex = Hashable


@dataclass(frozen=True)
class Edge:
    """A single directed edge of a flow network.

    Attributes
    ----------
    index:
        Stable integer identifier of the edge within its network.  The analog
        compiler names the corresponding circuit node ``x{index}``.
    tail, head:
        Edge goes from ``tail`` to ``head``.
    capacity:
        Nonnegative edge capacity ``c_e``.  ``float('inf')`` is allowed and
        denotes an uncapacitated edge (used by the Section 6.5 example).
    """

    index: int
    tail: Vertex
    head: Vertex
    capacity: float

    def __post_init__(self) -> None:
        if self.capacity < 0:
            raise InvalidGraphError(
                f"edge {self.tail}->{self.head} has negative capacity {self.capacity}"
            )

    @property
    def is_uncapacitated(self) -> bool:
        """True when the edge has infinite capacity."""
        return self.capacity == float("inf")

    def reversed(self) -> "Edge":
        """Return an :class:`Edge` with tail and head swapped (same index)."""
        return Edge(self.index, self.head, self.tail, self.capacity)


class FlowNetwork:
    """Directed graph with edge capacities and a source/sink pair.

    Parameters
    ----------
    source, sink:
        Labels of the source and sink vertices.  They are added to the vertex
        set immediately.

    Notes
    -----
    The class intentionally stores edges in insertion order and exposes them
    through :meth:`edges`; algorithms and the circuit compiler rely on that
    stable ordering so that results are reproducible.
    """

    def __init__(self, source: Vertex = "s", sink: Vertex = "t") -> None:
        if source == sink:
            raise InvalidGraphError("source and sink must be distinct vertices")
        self._source: Vertex = source
        self._sink: Vertex = sink
        self._edges: List[Edge] = []
        self._out: Dict[Vertex, List[int]] = {}
        self._in: Dict[Vertex, List[int]] = {}
        self.add_vertex(source)
        self.add_vertex(sink)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_vertex(self, vertex: Vertex) -> Vertex:
        """Add ``vertex`` to the network (no-op if already present)."""
        if vertex not in self._out:
            self._out[vertex] = []
            self._in[vertex] = []
        return vertex

    def add_edge(self, tail: Vertex, head: Vertex, capacity: float) -> Edge:
        """Add a directed edge ``tail -> head`` with the given capacity.

        Self-loops are rejected because they can never carry flow and the
        analog substrate has no widget for them.  Parallel edges are allowed.
        """
        if tail == head:
            raise InvalidGraphError(f"self-loop on vertex {tail!r} is not allowed")
        if capacity < 0:
            raise InvalidGraphError(
                f"edge {tail!r}->{head!r} has negative capacity {capacity}"
            )
        self.add_vertex(tail)
        self.add_vertex(head)
        edge = Edge(len(self._edges), tail, head, float(capacity))
        self._edges.append(edge)
        self._out[tail].append(edge.index)
        self._in[head].append(edge.index)
        return edge

    def add_edges_from(
        self, triples: Iterable[Tuple[Vertex, Vertex, float]]
    ) -> List[Edge]:
        """Add many ``(tail, head, capacity)`` triples and return the edges."""
        return [self.add_edge(t, h, c) for t, h, c in triples]

    def set_capacity(self, index: int, capacity: float) -> Edge:
        """Replace the capacity of the edge at ``index`` (same endpoints).

        :class:`Edge` objects are immutable, so the edge is replaced by a
        fresh instance with the same index/tail/head; previously handed-out
        ``Edge`` references keep their old capacity (they are snapshots).
        This is the primitive the streaming update log
        (:class:`~repro.graph.updates.MutableFlowNetwork`) builds on.
        """
        old = self.edge(index)
        if capacity < 0:
            raise InvalidGraphError(
                f"edge {old.tail!r}->{old.head!r} has negative capacity {capacity}"
            )
        replacement = Edge(index, old.tail, old.head, float(capacity))
        self._edges[index] = replacement
        return replacement

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------

    @property
    def source(self) -> Vertex:
        """The source vertex ``s``."""
        return self._source

    @property
    def sink(self) -> Vertex:
        """The sink vertex ``t``."""
        return self._sink

    @property
    def num_vertices(self) -> int:
        """Number of vertices ``|V|`` (including source and sink)."""
        return len(self._out)

    @property
    def num_edges(self) -> int:
        """Number of edges ``|E|``."""
        return len(self._edges)

    def vertices(self) -> List[Vertex]:
        """All vertices in insertion order."""
        return list(self._out.keys())

    def internal_vertices(self) -> List[Vertex]:
        """Vertices other than the source and the sink."""
        return [v for v in self._out if v != self._source and v != self._sink]

    def edges(self) -> List[Edge]:
        """All edges in insertion order (edge ``index`` equals position)."""
        return list(self._edges)

    def edge(self, index: int) -> Edge:
        """Return the edge with the given index."""
        try:
            return self._edges[index]
        except IndexError as exc:
            raise EdgeNotFoundError(f"no edge with index {index}") from exc

    def has_vertex(self, vertex: Vertex) -> bool:
        """True when ``vertex`` belongs to the network."""
        return vertex in self._out

    def has_edge(self, tail: Vertex, head: Vertex) -> bool:
        """True when at least one edge ``tail -> head`` exists."""
        if tail not in self._out:
            return False
        return any(self._edges[i].head == head for i in self._out[tail])

    def find_edges(self, tail: Vertex, head: Vertex) -> List[Edge]:
        """Return every edge going from ``tail`` to ``head``."""
        self._require_vertex(tail)
        self._require_vertex(head)
        return [self._edges[i] for i in self._out[tail] if self._edges[i].head == head]

    def out_edges(self, vertex: Vertex) -> List[Edge]:
        """Edges leaving ``vertex``."""
        self._require_vertex(vertex)
        return [self._edges[i] for i in self._out[vertex]]

    def in_edges(self, vertex: Vertex) -> List[Edge]:
        """Edges entering ``vertex``."""
        self._require_vertex(vertex)
        return [self._edges[i] for i in self._in[vertex]]

    def out_degree(self, vertex: Vertex) -> int:
        """Number of edges leaving ``vertex``."""
        self._require_vertex(vertex)
        return len(self._out[vertex])

    def in_degree(self, vertex: Vertex) -> int:
        """Number of edges entering ``vertex``."""
        self._require_vertex(vertex)
        return len(self._in[vertex])

    def degree(self, vertex: Vertex) -> int:
        """Total degree (in + out) of ``vertex``."""
        return self.in_degree(vertex) + self.out_degree(vertex)

    def neighbors(self, vertex: Vertex) -> List[Vertex]:
        """Distinct heads of edges leaving ``vertex``."""
        seen: Dict[Vertex, None] = {}
        for edge in self.out_edges(vertex):
            seen.setdefault(edge.head, None)
        return list(seen)

    def max_capacity(self) -> float:
        """Largest finite edge capacity ``C`` (0.0 for an edgeless network)."""
        finite = [e.capacity for e in self._edges if not e.is_uncapacitated]
        return max(finite) if finite else 0.0

    def total_capacity(self) -> float:
        """Sum of all finite edge capacities."""
        return sum(e.capacity for e in self._edges if not e.is_uncapacitated)

    def __iter__(self) -> Iterator[Edge]:
        return iter(self._edges)

    def __len__(self) -> int:
        return len(self._edges)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FlowNetwork(|V|={self.num_vertices}, |E|={self.num_edges}, "
            f"source={self._source!r}, sink={self._sink!r})"
        )

    # ------------------------------------------------------------------
    # Derived structures
    # ------------------------------------------------------------------

    def copy(self) -> "FlowNetwork":
        """Return a deep copy of the network (alias of :meth:`snapshot`)."""
        return self.snapshot()

    def snapshot(self) -> "FlowNetwork":
        """Deep, independent checkpoint of the network.

        Every :class:`Edge` of the snapshot is a freshly constructed object
        (even when ``self`` holds instances of a mutable ``Edge`` subclass),
        vertices keep their insertion order and edge indices are preserved,
        so later :meth:`set_capacity` / :meth:`add_edge` calls on either
        network can never alias into the other.  Streaming sessions use this
        to checkpoint a revision before applying further updates.
        """
        clone = FlowNetwork(self._source, self._sink)
        for vertex in self._out:
            clone.add_vertex(vertex)
        for edge in self._edges:
            # Rebuild through Edge directly (not the handed-in object) so a
            # snapshot never shares edge instances with the original.
            added = clone.add_edge(edge.tail, edge.head, float(edge.capacity))
            assert added.index == edge.index  # insertion order preserves indices
        return clone

    def reversed(self) -> "FlowNetwork":
        """Return the network with every edge reversed and s/t swapped."""
        rev = FlowNetwork(self._sink, self._source)
        for vertex in self._out:
            rev.add_vertex(vertex)
        for edge in self._edges:
            rev.add_edge(edge.head, edge.tail, edge.capacity)
        return rev

    def subgraph(self, vertices: Sequence[Vertex]) -> "FlowNetwork":
        """Return the induced subgraph on ``vertices`` (must contain s and t)."""
        keep = set(vertices)
        if self._source not in keep or self._sink not in keep:
            raise InvalidGraphError("subgraph must contain both source and sink")
        sub = FlowNetwork(self._source, self._sink)
        for vertex in self._out:
            if vertex in keep:
                sub.add_vertex(vertex)
        for edge in self._edges:
            if edge.tail in keep and edge.head in keep:
                sub.add_edge(edge.tail, edge.head, edge.capacity)
        return sub

    def adjacency_matrix(self) -> Tuple[List[Vertex], List[List[float]]]:
        """Dense capacity adjacency matrix and the vertex order used.

        Parallel edges are merged by summing capacities, matching the view
        the crossbar takes of the graph (one cell per vertex pair).
        """
        order = self.vertices()
        position = {v: i for i, v in enumerate(order)}
        matrix = [[0.0 for _ in order] for _ in order]
        for edge in self._edges:
            i, j = position[edge.tail], position[edge.head]
            matrix[i][j] += edge.capacity
        return order, matrix

    def vertex_index_map(self) -> Dict[Vertex, int]:
        """Mapping from vertex label to a dense 0-based index."""
        return {v: i for i, v in enumerate(self._out)}

    # ------------------------------------------------------------------
    # Flow utilities
    # ------------------------------------------------------------------

    def flow_value(self, flow: Dict[int, float]) -> float:
        """Net flow out of the source for a per-edge-index flow assignment."""
        out_flow = sum(flow.get(e.index, 0.0) for e in self.out_edges(self._source))
        in_flow = sum(flow.get(e.index, 0.0) for e in self.in_edges(self._source))
        return out_flow - in_flow

    def excess(self, flow: Dict[int, float], vertex: Vertex) -> float:
        """Flow into ``vertex`` minus flow out of it."""
        inflow = sum(flow.get(e.index, 0.0) for e in self.in_edges(vertex))
        outflow = sum(flow.get(e.index, 0.0) for e in self.out_edges(vertex))
        return inflow - outflow

    def check_flow(
        self,
        flow: Dict[int, float],
        capacity_tol: float = 1e-9,
        conservation_tol: float = 1e-9,
    ) -> List[str]:
        """Return a list of human-readable constraint violations (empty if feasible).

        Parameters
        ----------
        flow:
            Mapping from edge index to flow value.
        capacity_tol, conservation_tol:
            Absolute tolerances for capacity bounds and conservation.
        """
        problems: List[str] = []
        for edge in self._edges:
            value = flow.get(edge.index, 0.0)
            if value < -capacity_tol:
                problems.append(
                    f"edge {edge.index} ({edge.tail}->{edge.head}): negative flow {value}"
                )
            if not edge.is_uncapacitated and value > edge.capacity + capacity_tol:
                problems.append(
                    f"edge {edge.index} ({edge.tail}->{edge.head}): flow {value} exceeds "
                    f"capacity {edge.capacity}"
                )
        for vertex in self.internal_vertices():
            excess = self.excess(flow, vertex)
            if abs(excess) > conservation_tol:
                problems.append(f"vertex {vertex!r}: conservation violated by {excess}")
        return problems

    def is_feasible_flow(
        self,
        flow: Dict[int, float],
        capacity_tol: float = 1e-9,
        conservation_tol: float = 1e-9,
    ) -> bool:
        """True when ``flow`` satisfies capacity and conservation constraints."""
        return not self.check_flow(flow, capacity_tol, conservation_tol)

    def cut_capacity(self, source_side: Iterable[Vertex]) -> float:
        """Capacity of the cut defined by the vertex set containing the source."""
        side = set(source_side)
        if self._source not in side:
            raise InvalidGraphError("source_side must contain the source vertex")
        if self._sink in side:
            raise InvalidGraphError("source_side must not contain the sink vertex")
        total = 0.0
        for edge in self._edges:
            if edge.tail in side and edge.head not in side:
                total += edge.capacity
        return total

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------

    def _require_vertex(self, vertex: Vertex) -> None:
        if vertex not in self._out:
            raise VertexNotFoundError(f"vertex {vertex!r} is not in the network")
