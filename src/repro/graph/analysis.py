"""Structural analysis of flow networks.

Provides reachability queries, pruning of vertices that can never carry s-t
flow, simple upper bounds on the max-flow value, and summary statistics used
by the benchmark harness and by the crossbar mapper (which needs to know how
many crossbar cells a graph will occupy).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Hashable, List, Set

from .network import FlowNetwork

__all__ = [
    "GraphStatistics",
    "graph_statistics",
    "reachable_from",
    "reaches",
    "prune_useless_vertices",
    "is_source_sink_connected",
    "upper_bound_flow",
]

Vertex = Hashable


def reachable_from(network: FlowNetwork, start: Vertex) -> Set[Vertex]:
    """Vertices reachable from ``start`` following edge directions."""
    visited: Set[Vertex] = {start}
    frontier = deque([start])
    while frontier:
        vertex = frontier.popleft()
        for edge in network.out_edges(vertex):
            if edge.head not in visited:
                visited.add(edge.head)
                frontier.append(edge.head)
    return visited


def reaches(network: FlowNetwork, target: Vertex) -> Set[Vertex]:
    """Vertices from which ``target`` is reachable (reverse reachability)."""
    visited: Set[Vertex] = {target}
    frontier = deque([target])
    while frontier:
        vertex = frontier.popleft()
        for edge in network.in_edges(vertex):
            if edge.tail not in visited:
                visited.add(edge.tail)
                frontier.append(edge.tail)
    return visited


def is_source_sink_connected(network: FlowNetwork) -> bool:
    """True when at least one directed path from source to sink exists."""
    return network.sink in reachable_from(network, network.source)


def prune_useless_vertices(network: FlowNetwork) -> FlowNetwork:
    """Remove vertices that cannot lie on any s-t path.

    A vertex can carry flow only if it is reachable from the source *and*
    can reach the sink.  Removing the others shrinks the circuit (and the
    crossbar occupancy) without changing the max-flow value.
    """
    forward = reachable_from(network, network.source)
    backward = reaches(network, network.sink)
    useful = (forward & backward) | {network.source, network.sink}
    return network.subgraph([v for v in network.vertices() if v in useful])


def upper_bound_flow(network: FlowNetwork) -> float:
    """Cheap upper bound on the max-flow value.

    The bound is ``min(capacity out of s, capacity into t)``; both are valid
    cuts.  Infinite capacities propagate (the bound may be ``inf``).
    """
    out_cap = sum(e.capacity for e in network.out_edges(network.source))
    in_cap = sum(e.capacity for e in network.in_edges(network.sink))
    return min(out_cap, in_cap)


@dataclass(frozen=True)
class GraphStatistics:
    """Summary statistics of a flow network."""

    num_vertices: int
    num_edges: int
    num_internal_vertices: int
    max_capacity: float
    min_capacity: float
    total_capacity: float
    max_out_degree: int
    max_in_degree: int
    average_degree: float
    density: float
    source_out_degree: int
    sink_in_degree: int
    has_st_path: bool

    def is_sparse(self, degree_threshold: float = 8.0) -> bool:
        """Heuristic classification matching the paper's sparse regime."""
        return self.average_degree <= degree_threshold


def graph_statistics(network: FlowNetwork) -> GraphStatistics:
    """Compute :class:`GraphStatistics` for ``network``."""
    capacities = [e.capacity for e in network.edges() if not e.is_uncapacitated]
    n = network.num_vertices
    m = network.num_edges
    degrees: Dict[Vertex, int] = {v: network.degree(v) for v in network.vertices()}
    max_out = max((network.out_degree(v) for v in network.vertices()), default=0)
    max_in = max((network.in_degree(v) for v in network.vertices()), default=0)
    return GraphStatistics(
        num_vertices=n,
        num_edges=m,
        num_internal_vertices=len(network.internal_vertices()),
        max_capacity=max(capacities) if capacities else 0.0,
        min_capacity=min(capacities) if capacities else 0.0,
        total_capacity=sum(capacities),
        max_out_degree=max_out,
        max_in_degree=max_in,
        average_degree=(2.0 * m / n) if n else 0.0,
        density=(m / (n * (n - 1))) if n > 1 else 0.0,
        source_out_degree=network.out_degree(network.source),
        sink_in_degree=network.in_degree(network.sink),
        has_st_path=is_source_sink_connected(network),
    )
